"""Figure 12: latency with 146,515 initial routes, different peering.

As Figure 11 but the test routes arrive on a second peering, exercising
different code paths (a separate PeerIn branch, a second nexthop, and
decision-process comparisons against the feed peering's routes).
"""

from conftest import FEED_ROUTES, TEST_ROUTES

from repro.experiments.latency import PROFILE_POINTS, run_latency_experiment


def test_fig12_latency_full_table_different_peering(benchmark):
    box = {}

    def run():
        box["result"] = run_latency_experiment(
            initial_routes=FEED_ROUTES, same_peering=False,
            test_routes=TEST_ROUTES)

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = box["result"]
    print()
    print(result.table())
    print()
    print(result.ascii_plot())

    labels = [label for label, __, __ in PROFILE_POINTS]
    for label in labels[1:]:
        assert len(result.deltas[label]) == TEST_ROUTES
    averages = [result.stats(label)[0] for label in labels[1:]]
    assert averages == sorted(averages), averages
    avg_kernel = result.stats("Entering kernel")[0]
    assert avg_kernel < 50.0, f"kernel entry too slow: {avg_kernel:.3f} ms"
