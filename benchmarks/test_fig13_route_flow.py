"""Figure 13: BGP route latency induced by a router.

255 routes at one-second intervals through a router under test; the
sink records per-route propagation delay.  Expected shape:

* XORP (our stack) and MRTD (event-driven monolithic): delay never
  exceeds one second — "the consistent behavior achieved by XORP";
* Cisco / Quagga (30-second route scanner): the classic sawtooth, with
  delays spread between ~0 and the scan interval and batched arrivals.
"""

import gc
import time
from pathlib import Path

from conftest import FIG13_ROUTES

from repro.core import stages as stages_module
from repro.core.stages import RouteTableStage
from repro.eventloop.eventloop import EventLoop
from repro.experiments.routeflow import run_route_flow
from repro.fea.fib import Fib
from repro.net import IPNet, IPv4
from repro.obs import Observability
from repro.sanitizer import RuntimeSanitizer
from repro.xrl.router import XrlRouter


def test_fig13_route_flow(benchmark):
    box = {}

    def run():
        box["result"] = run_route_flow(route_count=FIG13_ROUTES)

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = box["result"]
    print()
    print(result.table())
    for kind in ("xorp", "cisco"):
        print()
        print(result.ascii_plot(kind))

    # Event-driven routers: delay never exceeds one second.
    assert result.max_delay("xorp") < 1.0, result.max_delay("xorp")
    assert result.max_delay("mrtd") < 1.0, result.max_delay("mrtd")
    # "the multi-process architecture used by XORP delivers similar
    # performance to a closely-coupled single-process architecture":
    assert abs(result.mean_delay("xorp") - result.mean_delay("mrtd")) < 1.0
    # Scanner-based routers: sawtooth between 0 and ~30 s.
    for kind in ("cisco", "quagga"):
        delays = [d for __, d in result.series[kind]]
        assert max(delays) > 20.0, f"{kind}: no scanner sawtooth visible"
        assert result.mean_delay(kind) > 5.0
        assert max(delays) <= 31.0
    # The scanner's batching: many routes share one arrival instant.
    cisco = result.series["cisco"]
    arrival_times = [round(inject + delay, 1) for inject, delay in cisco]
    from collections import Counter

    biggest_batch = Counter(arrival_times).most_common(1)[0][1]
    assert biggest_batch >= 10, "expected batched arrivals from the scanner"


def test_fig13_sanitizer_overhead(benchmark):
    """Route flow with runtime sanitizers off vs on.

    Both timings land in the pytest-benchmark JSON output via
    ``extra_info``.  The ≤2% disabled-path guarantee is structural, not
    statistical: arming rebinds the stage methods and ``XrlRouter.send``
    and disarming restores the *original function objects*, so the
    disabled hot path is byte-for-byte the uninstrumented code — no
    residual ``if sanitizer:`` checks, i.e. exactly 0% overhead.  We
    assert that identity below, and additionally measure adjacent
    before/after-flip pair ratios as a wall-clock backstop against a
    reintroduced hot-path guard.
    """
    routes = min(FIG13_ROUTES, 64)
    pristine_methods = {
        name: RouteTableStage.__dict__[name]
        for name in ("add_route", "delete_route", "replace_route",
                     "lookup_route", "add_routes", "delete_routes")
        if name in RouteTableStage.__dict__
    }
    pristine_send = XrlRouter.__dict__["send"]

    def run_off():
        run_route_flow(kinds=["xorp"], route_count=routes)

    def run_on():
        with RuntimeSanitizer() as sanitizer:
            run_route_flow(kinds=["xorp"], route_count=routes)
            assert not sanitizer.violations, [
                v.render() for v in sanitizer.violations]

    def timed(fn):
        gc.collect()
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    # CPU-frequency drift over the test dwarfs a 2% bound, so the
    # wall-clock check uses *adjacent* paired samples: a run just
    # before a bare arm/disarm flip vs a run just after it, compared
    # per pair.  The untimed run between flip and sample re-fills
    # Python's type-attribute cache (invalidated by the disarm's
    # setattr) so the pair compares steady state against steady state.
    # Armed runs are timed in a separate loop afterwards so their
    # extra work can't heat the pairs.
    run_off()
    baseline, disabled, pair_ratios = [], [], []
    for _ in range(5):
        base = timed(run_off)
        flip = RuntimeSanitizer()
        flip.arm()
        flip.disarm()
        run_off()
        post = timed(run_off)
        baseline.append(base)
        disabled.append(post)
        pair_ratios.append(post / base)
    armed = [timed(run_on) for _ in range(3)]

    # Structural no-op proof — the actual ≤2% disabled-path gate: after
    # disarm every instrumented method is the pristine function object
    # again, no stage class anywhere retains a sanitizer wrapper, and
    # the instrumentation-hook registry is empty.  The disabled path is
    # byte-for-byte the uninstrumented code, i.e. exactly 0% overhead.
    for name, fn in pristine_methods.items():
        assert RouteTableStage.__dict__[name] is fn, (
            f"{name} not restored after disarm")
    assert XrlRouter.__dict__["send"] is pristine_send
    for cls in stages_module.all_stage_classes():
        for name in ("add_route", "delete_route", "replace_route",
                     "lookup_route", "add_routes", "delete_routes",
                     "insert_downstream", "unplumb"):
            fn = cls.__dict__.get(name)
            assert fn is None or not hasattr(
                fn, "_repro_sanitizer_original"), (
                f"{cls.__name__}.{name} still wrapped after disarm")
    assert not stages_module._instrumentation_hooks

    # Best pair = the one window free of CPU-noise bursts; same-code
    # pairs reliably land near 1.0 there, while genuine residual
    # instrumentation (+10% or more) inflates every pair.
    disabled_ratio = min(pair_ratios)
    benchmark.extra_info["routes"] = routes
    benchmark.extra_info["sanitizers_off_s"] = round(min(baseline), 6)
    benchmark.extra_info["sanitizers_disabled_after_arm_s"] = round(
        min(disabled), 6)
    benchmark.extra_info["sanitizers_on_s"] = round(min(armed), 6)
    benchmark.extra_info["disabled_overhead_ratio"] = round(
        disabled_ratio, 4)
    benchmark.extra_info["armed_overhead_ratio"] = round(
        min(armed) / min(baseline), 4)
    print(f"\nsanitizers off {min(baseline):.3f}s  "
          f"disabled-after-arm {min(disabled):.3f}s  "
          f"on {min(armed):.3f}s  "
          f"(disabled ratio {disabled_ratio:.4f})")
    # Wall-clock backstop only: shared-runner timing has a ±5% noise
    # floor on *identical* code (these pair ratios measure the same
    # bytecode on both sides), so sub-2% discrimination is decidable
    # only structurally — see the identity asserts above.  This bound
    # still catches a reintroduced hot-path wrapper or guard, which
    # costs well over 10% on this workload (compare the armed ratio).
    assert disabled_ratio <= 1.05, (
        f"best disabled-path pair ratio {disabled_ratio:.4f} — a "
        "hot-path guard was likely reintroduced")

    benchmark.pedantic(run_off, rounds=1, iterations=1)


def test_fig13_obs_overhead(benchmark):
    """Route flow with the observability layer (repro.obs) off vs on.

    Same methodology as ``test_fig13_sanitizer_overhead``: the ≤2%
    disarmed-path guarantee is structural — arming rebinds stage
    methods, ``XrlRouter.send``/``dispatch_frame_async``,
    ``EventLoop.call_soon`` and ``Fib.insert``/``remove``; disarming
    restores the original function objects, so the disarmed hot path is
    byte-for-byte the uninstrumented code.  We assert that identity
    below and measure adjacent before/after-flip pair ratios as a
    wall-clock backstop.  Both off and on timings land in the
    pytest-benchmark JSON via ``extra_info`` (the acceptance artifact
    for the tracing layer's overhead).
    """
    routes = min(FIG13_ROUTES, 64)
    stage_methods = ("add_route", "delete_route", "replace_route",
                     "add_routes", "delete_routes", "originate",
                     "originate_batch", "withdraw", "withdraw_if_present",
                     "withdraw_batch")
    pristine_methods = {
        name: RouteTableStage.__dict__[name]
        for name in stage_methods
        if name in RouteTableStage.__dict__
    }
    pristine_send = XrlRouter.__dict__["send"]
    pristine_dispatch = XrlRouter.__dict__["dispatch_frame_async"]
    pristine_call_soon = EventLoop.__dict__["call_soon"]
    pristine_fib = {name: Fib.__dict__[name] for name in ("insert", "remove")}

    # Trace one prefix per run so the armed path exercises every hook
    # (origin, stage, xrl send/recv, fib) rather than the early-out.
    traced_net = IPNet(IPv4("198.18.0.0"), 24)

    def run_off():
        run_route_flow(kinds=["xorp"], route_count=routes)

    def run_on():
        obs = Observability()
        obs.trace(traced_net)
        with obs:
            run_route_flow(kinds=["xorp"], route_count=routes)

    def timed(fn):
        gc.collect()
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    # Adjacent paired samples around a bare arm/disarm flip, with an
    # untimed cache-refill run between flip and sample — see the
    # sanitizer benchmark above for the full rationale.
    run_off()
    baseline, disabled, pair_ratios = [], [], []
    for _ in range(5):
        base = timed(run_off)
        flip = Observability()
        flip.arm()
        flip.disarm()
        run_off()
        post = timed(run_off)
        baseline.append(base)
        disabled.append(post)
        pair_ratios.append(post / base)
    armed = [timed(run_on) for _ in range(3)]

    # Structural no-op proof — the actual ≤2% disarmed-path gate.
    for name, fn in pristine_methods.items():
        assert RouteTableStage.__dict__[name] is fn, (
            f"{name} not restored after disarm")
    assert XrlRouter.__dict__["send"] is pristine_send
    assert XrlRouter.__dict__["dispatch_frame_async"] is pristine_dispatch
    assert EventLoop.__dict__["call_soon"] is pristine_call_soon
    for name, fn in pristine_fib.items():
        assert Fib.__dict__[name] is fn, f"Fib.{name} not restored"
    for cls in stages_module.all_stage_classes():
        for name in stage_methods:
            fn = cls.__dict__.get(name)
            assert fn is None or not hasattr(fn, "_repro_obs_original"), (
                f"{cls.__name__}.{name} still obs-wrapped after disarm")
    assert not stages_module._instrumentation_hooks

    disabled_ratio = min(pair_ratios)
    benchmark.extra_info["routes"] = routes
    benchmark.extra_info["obs_off_s"] = round(min(baseline), 6)
    benchmark.extra_info["obs_disabled_after_arm_s"] = round(min(disabled), 6)
    benchmark.extra_info["obs_on_s"] = round(min(armed), 6)
    benchmark.extra_info["obs_disabled_overhead_ratio"] = round(
        disabled_ratio, 4)
    benchmark.extra_info["obs_armed_overhead_ratio"] = round(
        min(armed) / min(baseline), 4)
    print(f"\nobs off {min(baseline):.3f}s  "
          f"disabled-after-arm {min(disabled):.3f}s  "
          f"on {min(armed):.3f}s  "
          f"(disabled ratio {disabled_ratio:.4f})")
    # Wall-clock backstop; the identity asserts above are the real gate
    # (see the sanitizer benchmark's noise-floor discussion).
    assert disabled_ratio <= 1.05, (
        f"best disarmed-path pair ratio {disabled_ratio:.4f} — a "
        "hot-path guard was likely reintroduced")

    benchmark.pedantic(run_off, rounds=1, iterations=1)


def test_fig13_hotpath_agreement(benchmark):
    """Static hot set vs the sampled runtime hot set.

    ``repro.analysis.hotpath`` *derives* the hot-path function set
    statically (reachability from the batched stage entry points, the
    XRL dispatch surface and the FIB backends).  Here a sampling
    profiler measures where the fig13 route flow actually spends its
    time, and we assert the static set covers >=80% of the samples that
    land in repro code — the analyzer lints the code the router really
    executes, not a guessed set.

    A sample is *considered* when at least one frame executes in a
    non-exempt repro module; it is *covered* when any such frame is in
    the static hot set (see ``repro.analysis.profile``).
    """
    import repro
    from repro.analysis.hotpath import build_hotpath
    from repro.analysis.profile import SamplingProfiler, coverage_against
    from repro.analysis.runner import collect_modules

    src_root = Path(repro.__file__).resolve().parent
    modules, parse_findings = collect_modules([src_root])
    assert not parse_findings, [f.render() for f in parse_findings]
    graph = build_hotpath(modules)
    assert graph.hot, "static hot set is empty"

    routes = FIG13_ROUTES
    min_samples = 200

    def run_once():
        run_route_flow(kinds=["xorp"], route_count=routes)

    # Warm caches (imports, type-attribute cache) before sampling so
    # first-run one-time work doesn't pollute the measured hot set.
    run_once()
    profiler = SamplingProfiler(interval=0.001)
    with profiler:
        for _ in range(20):
            run_once()
            covered, considered = coverage_against(profiler.samples, graph)
            if considered >= min_samples:
                break
    covered, considered = coverage_against(profiler.samples, graph)
    assert considered >= min_samples, (
        f"only {considered} in-repro samples collected "
        f"({len(profiler.samples)} total) — workload too small to judge")
    coverage = covered / considered

    benchmark.extra_info["routes"] = routes
    benchmark.extra_info["hot_functions"] = len(graph.hot)
    benchmark.extra_info["samples_total"] = len(profiler.samples)
    benchmark.extra_info["samples_considered"] = considered
    benchmark.extra_info["samples_covered"] = covered
    benchmark.extra_info["hotpath_coverage"] = round(coverage, 4)
    print(f"\nhot set {len(graph.hot)} functions; "
          f"{covered}/{considered} in-repro samples covered "
          f"({coverage:.1%}, {len(profiler.samples)} samples total)")
    assert coverage >= 0.8, (
        f"static hot set covers only {coverage:.1%} of profile samples "
        f"({covered}/{considered}) — hot-root derivation has drifted "
        "from the measured runtime hot path")

    benchmark.pedantic(run_once, rounds=1, iterations=1)
