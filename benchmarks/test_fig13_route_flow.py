"""Figure 13: BGP route latency induced by a router.

255 routes at one-second intervals through a router under test; the
sink records per-route propagation delay.  Expected shape:

* XORP (our stack) and MRTD (event-driven monolithic): delay never
  exceeds one second — "the consistent behavior achieved by XORP";
* Cisco / Quagga (30-second route scanner): the classic sawtooth, with
  delays spread between ~0 and the scan interval and batched arrivals.
"""

from conftest import FIG13_ROUTES

from repro.experiments.routeflow import run_route_flow


def test_fig13_route_flow(benchmark):
    box = {}

    def run():
        box["result"] = run_route_flow(route_count=FIG13_ROUTES)

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = box["result"]
    print()
    print(result.table())
    for kind in ("xorp", "cisco"):
        print()
        print(result.ascii_plot(kind))

    # Event-driven routers: delay never exceeds one second.
    assert result.max_delay("xorp") < 1.0, result.max_delay("xorp")
    assert result.max_delay("mrtd") < 1.0, result.max_delay("mrtd")
    # "the multi-process architecture used by XORP delivers similar
    # performance to a closely-coupled single-process architecture":
    assert abs(result.mean_delay("xorp") - result.mean_delay("mrtd")) < 1.0
    # Scanner-based routers: sawtooth between 0 and ~30 s.
    for kind in ("cisco", "quagga"):
        delays = [d for __, d in result.series[kind]]
        assert max(delays) > 20.0, f"{kind}: no scanner sawtooth visible"
        assert result.mean_delay(kind) > 5.0
        assert max(delays) <= 31.0
    # The scanner's batching: many routes share one arrival instant.
    cisco = result.series["cisco"]
    arrival_times = [round(inject + delay, 1) for inject, delay in cisco]
    from collections import Counter

    biggest_batch = Counter(arrival_times).most_common(1)[0][1]
    assert biggest_batch >= 10, "expected batched arrivals from the scanner"
