"""Memory footprint sanity check (paper §5.1 text).

    "a XORP router holding a full backbone routing table of about 150,000
    routes requires about 120 MB for BGP and 60 MB for the RIB, which is
    simply not a problem on any recent hardware."

A fresh subprocess loads the synthetic feed into the BGP pipeline + RIB +
FEA and reports resident-memory growth, isolated from the other benches.
The target is the paper's order of magnitude (a full table fits
comfortably), accepting that Python objects are fatter than C++ ones —
plus the stage design's known cost of "slightly greater memory usage, due
to some duplication between stages".
"""

import json
import subprocess
import sys

from conftest import FEED_ROUTES

_CHILD = r"""
import json, sys

def rss_mb():
    with open("/proc/self/status") as f:
        for line in f:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) / 1024.0
    return 0.0

feed_routes = int(sys.argv[1])
before = rss_mb()
from repro.experiments.latency import run_latency_experiment
imported = rss_mb()
run_latency_experiment(initial_routes=feed_routes, same_peering=True,
                       test_routes=1)
after = rss_mb()
print(json.dumps({"before": before, "imported": imported, "after": after}))
"""


_SLOTS_CHILD = r"""
import gc, json, sys

def rss_kb():
    with open("/proc/self/status") as f:
        for line in f:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0

mode = sys.argv[1]
count = int(sys.argv[2])

from repro.bgp.messages import UpdateMessage
from repro.net import IPNet, IPv4

class UnslottedUpdate:
    # Dynamically-dict'd twin of UpdateMessage: same three fields, no
    # __slots__ — what the class looked like before HOT003 flagged it.
    def __init__(self, withdrawn=None, attributes=None, nlri=None):
        self.withdrawn = list(withdrawn) if withdrawn else []
        self.attributes = attributes
        self.nlri = list(nlri) if nlri else []

factory = UpdateMessage if mode == "slotted" else UnslottedUpdate
net = IPNet(IPv4("198.18.0.0"), 24)
warmup = [factory(withdrawn=[net]) for __ in range(1024)]
del warmup
gc.collect()
before = rss_kb()
keep = [factory(withdrawn=[net]) for __ in range(count)]
gc.collect()
after = rss_kb()
print(json.dumps({"mode": mode, "count": len(keep),
                  "delta_kb": after - before}))
"""


def _slots_child(mode: str, count: int) -> dict:
    output = subprocess.run(
        [sys.executable, "-c", _SLOTS_CHILD, mode, str(count)],
        capture_output=True, text=True, check=True, timeout=600)
    return json.loads(output.stdout.strip().splitlines()[-1])


def test_memory_footprint_update_message_slots(benchmark):
    """RSS delta of ``__slots__`` on the hot BGP message classes.

    HOT003 flagged ``UpdateMessage`` (one instance per peer per flush on
    the announce path) as instantiated on the hot path without
    ``__slots__``.  This bench allocates the same population of the now
    slotted class and of an unslotted twin in two fresh subprocesses and
    records the before/after resident-memory delta of each — the
    acceptance artifact for the satellite that slotted the route and
    message classes.
    """
    count = 200_000
    box = {}

    def run():
        box["slotted"] = _slots_child("slotted", count)
        box["unslotted"] = _slots_child("unslotted", count)

    benchmark.pedantic(run, rounds=1, iterations=1)
    slotted_kb = box["slotted"]["delta_kb"]
    unslotted_kb = box["unslotted"]["delta_kb"]
    saved_kb = unslotted_kb - slotted_kb
    per_instance = saved_kb * 1024.0 / count
    benchmark.extra_info["instances"] = count
    benchmark.extra_info["slotted_delta_kb"] = slotted_kb
    benchmark.extra_info["unslotted_delta_kb"] = unslotted_kb
    benchmark.extra_info["saved_bytes_per_instance"] = round(per_instance, 1)
    print(f"\n{count} UpdateMessages: slotted {slotted_kb / 1024.0:.1f} MB, "
          f"unslotted twin {unslotted_kb / 1024.0:.1f} MB "
          f"(~{per_instance:.0f} B/instance saved)")
    # The __dict__ a slotted instance no longer pays is worth well over
    # this floor even with key-sharing dicts; the margin absorbs
    # allocator noise between the two subprocesses.
    assert slotted_kb < unslotted_kb, (
        f"slotted {slotted_kb} KB >= unslotted {unslotted_kb} KB — "
        "did UpdateMessage lose its __slots__?")
    assert per_instance > 8, (
        f"only {per_instance:.1f} B/instance saved — suspiciously small")


def test_memory_footprint_full_table(benchmark):
    box = {}

    def run():
        output = subprocess.run(
            [sys.executable, "-c", _CHILD, str(FEED_ROUTES)],
            capture_output=True, text=True, check=True, timeout=1800)
        box["stats"] = json.loads(output.stdout.strip().splitlines()[-1])

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = box["stats"]
    growth = stats["after"] - stats["imported"]
    print(f"\nRSS at start: {stats['before']:.0f} MB, after imports: "
          f"{stats['imported']:.0f} MB, after loading {FEED_ROUTES} routes: "
          f"{stats['after']:.0f} MB")
    print(f"table cost: {growth:.0f} MB "
          f"(~{growth * 1024.0 / max(FEED_ROUTES, 1):.1f} KB/route across "
          f"all stage copies; paper: ~180 MB total for BGP + RIB in C++)")
    # Order-of-magnitude: a full table must fit in single-digit GB.
    assert growth < 8192, f"table used {growth:.0f} MB"
    assert growth > 1, "suspiciously small: did the feed load?"
