"""Memory footprint sanity check (paper §5.1 text).

    "a XORP router holding a full backbone routing table of about 150,000
    routes requires about 120 MB for BGP and 60 MB for the RIB, which is
    simply not a problem on any recent hardware."

A fresh subprocess loads the synthetic feed into the BGP pipeline + RIB +
FEA and reports resident-memory growth, isolated from the other benches.
The target is the paper's order of magnitude (a full table fits
comfortably), accepting that Python objects are fatter than C++ ones —
plus the stage design's known cost of "slightly greater memory usage, due
to some duplication between stages".
"""

import json
import subprocess
import sys

from conftest import FEED_ROUTES

_CHILD = r"""
import json, sys

def rss_mb():
    with open("/proc/self/status") as f:
        for line in f:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) / 1024.0
    return 0.0

feed_routes = int(sys.argv[1])
before = rss_mb()
from repro.experiments.latency import run_latency_experiment
imported = rss_mb()
run_latency_experiment(initial_routes=feed_routes, same_peering=True,
                       test_routes=1)
after = rss_mb()
print(json.dumps({"before": before, "imported": imported, "after": after}))
"""


def test_memory_footprint_full_table(benchmark):
    box = {}

    def run():
        output = subprocess.run(
            [sys.executable, "-c", _CHILD, str(FEED_ROUTES)],
            capture_output=True, text=True, check=True, timeout=1800)
        box["stats"] = json.loads(output.stdout.strip().splitlines()[-1])

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = box["stats"]
    growth = stats["after"] - stats["imported"]
    print(f"\nRSS at start: {stats['before']:.0f} MB, after imports: "
          f"{stats['imported']:.0f} MB, after loading {FEED_ROUTES} routes: "
          f"{stats['after']:.0f} MB")
    print(f"table cost: {growth:.0f} MB "
          f"(~{growth * 1024.0 / max(FEED_ROUTES, 1):.1f} KB/route across "
          f"all stage copies; paper: ~180 MB total for BGP + RIB in C++)")
    # Order-of-magnitude: a full table must fit in single-digit GB.
    assert growth < 8192, f"table used {growth:.0f} MB"
    assert growth > 1, "suspiciously small: did the feed load?"
