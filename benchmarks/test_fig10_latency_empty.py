"""Figure 10: route propagation latency with no initial routes.

Paper: 255 test routes into a BGP with an empty table; eight profiling
points from "Entering BGP" to "Entering kernel"; typical end-to-end
latency a few ms, dominated by the IPC hops between processes.
"""

from conftest import TEST_ROUTES

from repro.experiments.latency import PROFILE_POINTS, run_latency_experiment


def test_fig10_latency_no_initial_routes(benchmark):
    box = {}

    def run():
        box["result"] = run_latency_experiment(
            initial_routes=0, same_peering=True, test_routes=TEST_ROUTES)

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = box["result"]
    print()
    print(result.table())
    print()
    print(result.ascii_plot())

    labels = [label for label, __, __ in PROFILE_POINTS]
    # Every route was measured at every point.
    for label in labels[1:]:
        assert len(result.deltas[label]) == TEST_ROUTES
    # Averages increase monotonically along the pipeline.
    averages = [result.stats(label)[0] for label in labels[1:]]
    assert averages == sorted(averages), averages
    # Routes reach the kernel quickly (paper: "typically within 4ms").
    avg_kernel = result.stats("Entering kernel")[0]
    assert avg_kernel < 50.0, f"kernel entry too slow: {avg_kernel:.3f} ms"
    # The IPC hops (BGP->RIB, RIB->FEA) dominate the profile: crossing the
    # two process boundaries costs more than everything inside BGP.
    sent_rib = result.stats("Sent to RIB")[0]
    arrive_fea = result.stats("Arriving at FEA")[0]
    assert arrive_fea - sent_rib > 0
