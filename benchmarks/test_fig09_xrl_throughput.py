"""Figure 9: XRL performance for various communication families.

Paper series: XRLs/sec vs. number of XRL arguments (0-25) for
Intra-Process, TCP and UDP.  Expected shape (paper §8.1):

* Intra-Process fastest at low argument counts;
* TCP close behind, converging with Intra-Process as argument
  marshaling starts to dominate;
* UDP significantly slower throughout — it does not pipeline requests.
"""

from repro.experiments.xrlperf import run_xrl_throughput

ARG_COUNTS = [0, 5, 10, 15, 20, 25]


def test_fig09_xrl_throughput(benchmark):
    result_box = {}

    def run():
        result_box["result"] = run_xrl_throughput(
            arg_counts=ARG_COUNTS, transaction_size=10000, window=100,
            families=["intra", "local", "tcp", "udp"])

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = result_box["result"]
    print()
    print(result.table())
    # §8.1 footnote: two processes on one host are "very slightly worse"
    # than intra-process (allowing noise headroom).
    assert result.mean("local", 0) < result.mean("intra", 0) * 1.15

    # Shape assertions, per the paper's findings.
    for arg_count in ARG_COUNTS:
        intra = result.mean("intra", arg_count)
        tcp = result.mean("tcp", arg_count)
        udp = result.mean("udp", arg_count)
        assert intra > 0 and tcp > 0 and udp > 0
        # UDP (unpipelined) is the slowest family at every size.
        assert udp < tcp, f"args={arg_count}: udp {udp} !< tcp {tcp}"
        assert udp < intra, f"args={arg_count}: udp {udp} !< intra {intra}"
    # Intra-process wins with few arguments...
    assert result.mean("intra", 0) > result.mean("tcp", 0)
    # ...and the intra/TCP gap narrows as marshaling dominates.
    gap_small = result.mean("intra", 0) / result.mean("tcp", 0)
    gap_large = result.mean("intra", 25) / result.mean("tcp", 25)
    assert gap_large < gap_small, (
        f"gap did not narrow: {gap_small:.2f} -> {gap_large:.2f}")
    # Several thousand XRLs/sec, as in the paper.
    assert result.mean("intra", 0) > 2000
