"""Ablation benches for the design choices the paper argues for.

1. **Fanout single queue vs. per-peer queues** (§5.1.1): with slow peers,
   the single shared change queue holds one copy of each pending change;
   per-peer queues would hold n copies.
2. **Event-driven vs. scanner inside our own stack** (§2, §8.2):
   re-running the Figure 13 flow with the scanner interval reduced shows
   the latency scales with the scanner interval — the design parameter,
   not the implementation, causes the delay.
3. **Background deletion slicing** (§5.1.2): deleting a large peer table
   must not block the event loop; we measure the longest single
   event-loop stall during a 20k-route peer-down while another peering
   keeps receiving routes.
"""

import sys

from repro.bgp.fanout import FanoutQueue
from repro.eventloop import EventLoop, SimulatedClock
from repro.experiments.routeflow import run_route_flow
from repro.net import IPNet, IPv4


class _Route:
    __slots__ = ("net",)

    def __init__(self, net):
        self.net = net


def test_ablation_fanout_single_queue_memory(benchmark):
    """One queue with n readers vs n queues: measure retained entries."""

    def run():
        loop = EventLoop(SimulatedClock())
        fanout = FanoutQueue("fanout", loop)
        n_peers = 20
        for index in range(n_peers):
            fanout.add_reader(f"peer{index}", lambda *a: None, dump=False)
            fanout.set_reader_busy(f"peer{index}", True)  # all slow
        changes = 2000
        for index in range(changes):
            fanout.add_route(_Route(IPNet(IPv4(0x0A000000 + (index << 8)), 24)))
        shared_entries = fanout.queue_length
        per_peer_entries = shared_entries * n_peers  # the alternative design
        return shared_entries, per_peer_entries

    shared, per_peer = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\npending entries, 20 slow peers x 2000 changes: "
          f"single shared queue = {shared}, per-peer queues would hold "
          f"= {per_peer}")
    assert shared == 2000
    assert per_peer == 40000


def test_ablation_scanner_interval_drives_latency(benchmark):
    """The scanner *interval* is the latency: halve it, latency halves."""
    box = {}

    def run():
        fast = run_route_flow(kinds=["cisco"], route_count=40,
                              scan_interval=10.0)
        slow = run_route_flow(kinds=["cisco"], route_count=40,
                              scan_interval=30.0)
        box["fast"] = fast.mean_delay("cisco")
        box["slow"] = slow.mean_delay("cisco")

    benchmark.pedantic(run, rounds=1, iterations=1)
    fast, slow = box["fast"], box["slow"]
    print(f"\nscanner mean delay: 10s interval -> {fast:.2f}s, "
          f"30s interval -> {slow:.2f}s")
    assert fast < slow
    assert 2.0 < slow / max(fast, 0.01) < 4.5  # roughly proportional


def test_ablation_background_deletion_responsiveness(benchmark):
    """A 20k-route peer-down must not stall concurrent event handling."""
    from repro.core.stages import DeletionStage, OriginStage, RouteTableStage
    from repro.trie import RouteTrie

    def run():
        loop = EventLoop(SimulatedClock())
        origin = OriginStage("peer-in")
        deleted = []
        sink = RouteTableStage("sink")
        sink.delete_route = lambda route, caller=None: deleted.append(route)
        sink.add_route = lambda route, caller=None: None
        RouteTableStage.plumb(origin, sink)
        for index in range(20000):
            origin.originate(_Route(IPNet(IPv4(0x0B000000 + (index << 8)), 24)))
        # Peering goes down: hand the table to a deletion stage.
        old_routes = origin.routes
        origin.routes = RouteTrie(32)
        stage = DeletionStage("del", loop, old_routes, slice_size=256)
        origin.insert_downstream(stage)
        stage.start()
        # A competing event source: a timer that must keep firing on time.
        ticks = []
        loop.call_periodic(0.1, lambda: ticks.append(loop.now()))
        import time

        max_stall = 0.0
        last = time.perf_counter()
        while not stage.done:
            loop.run_once()
            now = time.perf_counter()
            max_stall = max(max_stall, now - last)
            last = now
        return len(deleted), max_stall

    deleted_count, max_stall = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ndeleted {deleted_count} routes in background; "
          f"longest single event-loop stall: {max_stall * 1000:.2f} ms")
    assert deleted_count == 20000
    # One slice (256 deletions) must stay well under human-visible stalls.
    assert max_stall < 0.5
