"""Backend-resilience bench: dataplane blackhole time and queue bounds.

Two numbers behind the pluggable-FIB robustness story:

* **blackhole time** — the netlink-like backend crashes (tables and
  in-flight ops lost) under seeded nack/drop-ack faults while route
  churn continues; the FEA serves lookups from its shadow table, and on
  reattach the reconciliation pass replays exactly the delta.  The
  metric is virtual seconds from the crash until ``dump()`` again
  equals the shadow.
* **throttled-flush peak queue** — a full-table flush into a 10x-slower
  backend; the congested latch plus the RIB's flow controller must keep
  the FEA's un-acked queue under ``high_watermark + window`` no matter
  the table size.

Both land in the committed ``BENCH_backend.json`` trajectory so future
PRs regress against recorded numbers.

Knobs: ``REPRO_RESIL_SEED`` (default 7), ``REPRO_RESIL_ROUTES``
(default 64), ``REPRO_FLUSH_ROUTES`` (default 256),
``REPRO_FLUSH_SLOWDOWN`` (default 10).
"""

from pathlib import Path

import pytest

from conftest import env_int

from repro.experiments.batchflow import record_trajectory
from repro.experiments.resilience import (
    run_backend_resilience,
    run_throttled_flush,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

RESIL_SEED = env_int("REPRO_RESIL_SEED", 7)
RESIL_ROUTES = env_int("REPRO_RESIL_ROUTES", 64)
FLUSH_ROUTES = env_int("REPRO_FLUSH_ROUTES", 256)
FLUSH_SLOWDOWN = env_int("REPRO_FLUSH_SLOWDOWN", 10)

ISSUE = 6
LABEL = "pluggable FIB backends: ack/nack, backpressure, reconciliation"


@pytest.mark.chaos
def test_backend_blackhole_time(benchmark):
    box = {}

    def run():
        box["result"] = run_backend_resilience(seed=RESIL_SEED,
                                               routes=RESIL_ROUTES)

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = box["result"]
    print()
    print(f"seed={RESIL_SEED} routes={RESIL_ROUTES}")
    print(f"  blackhole time      {result.blackhole_time * 1000:9.3f} ms "
          "(virtual)")
    print(f"  repair time         {result.repair_time * 1000:9.3f} ms "
          "(virtual)")
    print(f"  deferred writes     {result.deferred:6d}")
    print(f"  reconcile adds      {result.reconcile_adds:6d}")
    print(f"  reconcile deletes   {result.reconcile_deletes:6d}")
    print(f"  shadow lookups ok   {result.served_during_outage:6d}")

    # Convergence: the run itself raises if dump != shadow; sanity-check
    # the repair actually replayed the table and the shadow kept serving.
    assert result.reconcile_adds >= RESIL_ROUTES
    assert result.served_during_outage > 0
    assert 0 < result.repair_time <= result.blackhole_time < 10.0

    flush = run_throttled_flush(routes=FLUSH_ROUTES,
                                slowdown=FLUSH_SLOWDOWN)
    print(f"  flush peak queue    {flush.peak_pending:6d} "
          f"(bound {flush.pending_bound})")
    print(f"  flush pause polls   {flush.polls_sent:6d}")
    # The watermark bound: no unbounded queue growth into a slow
    # backend, and the backpressure path actually engaged.
    assert flush.bounded, (flush.peak_pending, flush.pending_bound)
    assert flush.paused

    benchmark.extra_info["blackhole_ms"] = round(
        result.blackhole_time * 1000, 3)
    benchmark.extra_info["flush_peak_pending"] = flush.peak_pending

    entry = {
        "issue": ISSUE,
        "label": LABEL,
        "seed": RESIL_SEED,
        "routes": RESIL_ROUTES,
        "blackhole_ms": round(result.blackhole_time * 1000, 3),
        "repair_ms": round(result.repair_time * 1000, 3),
        "reconcile_adds": result.reconcile_adds,
        "reconcile_deletes": result.reconcile_deletes,
        "deferred_writes": result.deferred,
        "flush": {
            "routes": FLUSH_ROUTES,
            "slowdown": FLUSH_SLOWDOWN,
            "peak_pending": flush.peak_pending,
            "pending_bound": flush.pending_bound,
            "elapsed_virtual_s": round(flush.elapsed, 6),
        },
    }
    record_trajectory(REPO_ROOT / "BENCH_backend.json", "backend",
                      "dataplane blackhole ms (virtual) across "
                      "crash/reattach; peak un-acked queue on a "
                      "throttled flush", entry)


@pytest.mark.chaos
def test_blackhole_time_is_deterministic(benchmark):
    def run():
        return run_backend_resilience(seed=RESIL_SEED, routes=RESIL_ROUTES)

    first = benchmark.pedantic(run, rounds=1, iterations=1)
    assert first.fingerprint() == run().fingerprint()
