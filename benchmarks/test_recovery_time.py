"""Recovery micro-bench: time-to-reconverge after killing BGP (§3, §6.5).

The supervised crash scenario from :mod:`repro.experiments.recovery`:
the BGP process is killed mid-session under seeded 10% XRL frame loss;
the supervisor restarts it and the router re-converges.  The benchmark
reports the wall-clock cost of driving one full recovery through the
simulator, and prints the *virtual* recovery timeline — the number the
paper's robustness story actually cares about.

Knobs: ``REPRO_RECOVERY_SEED`` (default 7), ``REPRO_RECOVERY_DROP``
(frame-loss percentage, default 10).
"""

import os

import pytest

from conftest import env_int

from repro.experiments.recovery import run_recovery

RECOVERY_SEED = env_int("REPRO_RECOVERY_SEED", 7)
RECOVERY_DROP = env_int("REPRO_RECOVERY_DROP", 10)


@pytest.mark.chaos
def test_recovery_time(benchmark):
    box = {}

    def run():
        box["result"] = run_recovery(seed=RECOVERY_SEED,
                                     drop_probability=RECOVERY_DROP / 100.0)

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = box["result"]
    print()
    print(f"seed={RECOVERY_SEED} drop={RECOVERY_DROP}%")
    print(f"  time to restart     {result.time_to_restart * 1000:9.3f} ms "
          "(virtual)")
    print(f"  time to reconverge  {result.time_to_reconverge * 1000:9.3f} ms "
          "(virtual)")
    print(f"  frames dropped      {result.dropped:6d}")
    print(f"  frames passed       {result.passed:6d}")
    print(f"  xrl retries         {result.retries:6d}")

    assert result.restarts == 1
    # Detection + backoff + restart is sub-second virtual time...
    assert result.time_to_restart < 1.0
    # ...and full reconvergence (session re-establishment, RIB/FEA
    # resync under frame loss) lands within the ping-period scale.
    assert result.time_to_reconverge < 30.0
