"""Batch-size sweeps: the perf trajectory behind the batched-flow API.

Two sweeps over batch sizes 1 / 16 / 256 (singular baseline, a
peering-burst-sized batch, a resync-sized batch):

* Figure 9 hot path — the XRL transaction with the sender coalescing
  groups via ``send(batch=True)``;
* Figure 13 hot path — routes through origin -> staged pipeline ->
  pipelined XRLs -> FEA FIB, singular entry points vs
  ``originate_batch``/``withdraw_batch``.

Each test writes its sweep into the committed trajectory artifact
(``BENCH_fig09.json`` / ``BENCH_fig13.json`` at the repo root) so future
PRs regress against recorded numbers; CI uploads both as artifacts.

Env knobs: ``REPRO_FIG09_BATCH_TXN`` (transaction size),
``REPRO_FIG13_BATCH_ROUTES`` (routes per sweep point),
``REPRO_BATCH_REPS`` (best-of repetitions for the fig13 sweep).
"""

from pathlib import Path

from conftest import env_int

from repro.experiments.batchflow import (
    BATCH_SIZES,
    record_trajectory,
    run_route_batch_sweep,
    run_xrl_batch_sweep,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

FIG09_TXN = env_int("REPRO_FIG09_BATCH_TXN", 5000)
FIG13_SWEEP_ROUTES = env_int("REPRO_FIG13_BATCH_ROUTES", 2048)
BATCH_REPS = env_int("REPRO_BATCH_REPS", 3)

#: this PR's entry in the trajectory ("the first entries of the
#: benchmark JSON trajectory")
ISSUE = 4
LABEL = "batched route flow & XRL pipelining"


def test_fig09_batch_sweep(benchmark):
    box = {}

    def run():
        box["rates"] = run_xrl_batch_sweep(
            BATCH_SIZES, transaction_size=FIG09_TXN,
            families=["intra", "tcp"])

    benchmark.pedantic(run, rounds=1, iterations=1)
    rates = box["rates"]
    print()
    for family, table in rates.items():
        for size, rate in sorted(table.items()):
            print(f"{family:>6} batch {size:>3}: {rate:>9.0f} XRLs/s "
                  f"({rate / table[1]:.2f}x singular)")

    for family, table in rates.items():
        # Coalescing must not cost throughput anywhere; on the framed
        # TCP transport it buys a measurable win (fewer flushes).
        assert table[256] > 0.9 * table[1], (family, table)
        benchmark.extra_info[f"{family}_speedup_256"] = round(
            table[256] / table[1], 3)

    entry = {
        "issue": ISSUE,
        "label": LABEL,
        "transaction_size": FIG09_TXN,
        "xrls_per_sec": {
            family: {str(size): round(rate, 1)
                     for size, rate in sorted(table.items())}
            for family, table in rates.items()
        },
        "speedup_256_vs_1": {
            family: round(table[256] / table[1], 3)
            for family, table in rates.items()
        },
    }
    record_trajectory(REPO_ROOT / "BENCH_fig09.json", "fig09",
                      "XRLs/sec by (family, batch size)", entry)


def test_fig13_batch_sweep(benchmark):
    box = {}

    def run():
        box["rates"] = run_route_batch_sweep(
            BATCH_SIZES, route_count=FIG13_SWEEP_ROUTES,
            repetitions=BATCH_REPS)

    benchmark.pedantic(run, rounds=1, iterations=1)
    rates = box["rates"]
    print()
    for size, rate in sorted(rates.items()):
        print(f"route flow batch {size:>3}: {rate:>9.0f} routes/s "
              f"({rate / rates[1]:.2f}x singular)")

    speedup = rates[256] / rates[1]
    benchmark.extra_info["routes"] = FIG13_SWEEP_ROUTES
    benchmark.extra_info["speedup_256_vs_1"] = round(speedup, 3)
    benchmark.extra_info["speedup_16_vs_1"] = round(rates[16] / rates[1], 3)

    entry = {
        "issue": ISSUE,
        "label": LABEL,
        "route_count": FIG13_SWEEP_ROUTES,
        "routes_per_sec": {str(size): round(rate, 1)
                           for size, rate in sorted(rates.items())},
        "speedup_16_vs_1": round(rates[16] / rates[1], 3),
        "speedup_256_vs_1": round(speedup, 3),
    }
    record_trajectory(REPO_ROOT / "BENCH_fig13.json", "fig13",
                      "routes/sec through RIB->FEA (adds + withdrawals)",
                      entry)

    # The acceptance bar: vectorized flow is >= 1.5x the singular
    # baseline at batch size 256.
    assert speedup >= 1.5, (
        f"batch-256 route flow only {speedup:.2f}x the singular baseline")
