"""Shared benchmark configuration.

Environment knobs:

* ``REPRO_FEED_ROUTES``  — size of the preloaded backbone feed for the
  Figure 11/12 benches (default: the paper's 146515);
* ``REPRO_TEST_ROUTES``  — number of measured test routes (default: the
  paper's 255);
* ``REPRO_FIG13_ROUTES`` — routes injected in the Figure 13 bench
  (default 255).
"""

import os


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


FEED_ROUTES = env_int("REPRO_FEED_ROUTES", 146515)
TEST_ROUTES = env_int("REPRO_TEST_ROUTES", 255)
FIG13_ROUTES = env_int("REPRO_FIG13_ROUTES", 255)
