"""Figure 11: latency with 146,515 initial routes, same peering.

The paper's key claim: "the latency does not significantly degrade when
the router has a full routing table."  This bench preloads the synthetic
backbone feed on the injecting peering and repeats Figure 10.
"""

from conftest import FEED_ROUTES, TEST_ROUTES

from repro.experiments.latency import run_latency_experiment


def test_fig11_latency_full_table_same_peering(benchmark):
    box = {}

    def run():
        box["result"] = run_latency_experiment(
            initial_routes=FEED_ROUTES, same_peering=True,
            test_routes=TEST_ROUTES)

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = box["result"]
    print()
    print(result.table())
    print()
    print(result.ascii_plot())

    assert len(result.deltas["Entering kernel"]) == TEST_ROUTES
    avg_kernel = result.stats("Entering kernel")[0]
    # Latency stays in the same regime as the empty-table case: run the
    # empty-table experiment inline for a same-machine comparison.
    empty = run_latency_experiment(initial_routes=0, same_peering=True,
                                   test_routes=min(TEST_ROUTES, 64))
    empty_avg = empty.stats("Entering kernel")[0]
    print(f"\nempty-table avg kernel entry: {empty_avg:.3f} ms; "
          f"full-table ({FEED_ROUTES} routes): {avg_kernel:.3f} ms")
    assert avg_kernel < 10 * max(empty_avg, 0.05), (
        f"latency degraded with a full table: {empty_avg:.3f} -> "
        f"{avg_kernel:.3f} ms")
