"""Codec and deployment-mode sweeps: the perf story of the binary frames.

Two measurements extend the committed trajectories:

* Figure 9 — the XRL transaction over TCP with the frame codec as the
  swept variable (textual canonical frames vs. the negotiated binary
  form with method interning), across batch sizes 1 / 16 / 256.  The
  acceptance bar: binary is >= 1.3x textual at batch 256.
* Figure 13 — one deployment-mode point: routes/sec with the RIB and
  FEA as real OS subprocesses, every route crossing two process
  boundaries over TCP.  No bar beyond completing — the point exists so
  the trajectory records what real process isolation costs relative to
  the in-process pipeline.

Env knobs: ``REPRO_FIG09_CODEC_TXN`` (transaction size),
``REPRO_FIG13_SUBPROC_ROUTES`` (routes in the subprocess point).
"""

from pathlib import Path

from conftest import env_int

from repro.experiments.batchflow import (
    BATCH_SIZES,
    record_trajectory,
    run_codec_sweep,
    run_subprocess_route_point,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

CODEC_TXN = env_int("REPRO_FIG09_CODEC_TXN", 5000)
SUBPROC_ROUTES = env_int("REPRO_FIG13_SUBPROC_ROUTES", 512)

ISSUE = 9
LABEL = "negotiated binary frame codec & multi-process deployment"


def test_fig09_codec_sweep(benchmark):
    box = {}

    def run():
        box["rates"] = run_codec_sweep(BATCH_SIZES,
                                       transaction_size=CODEC_TXN)

    benchmark.pedantic(run, rounds=1, iterations=1)
    rates = box["rates"]
    print()
    for name, table in rates.items():
        for size, rate in sorted(table.items()):
            print(f"{name:>12} batch {size:>3}: {rate:>9.0f} XRLs/s")

    speedups = {
        size: rates["tcp-binary"][size] / rates["tcp-textual"][size]
        for size in BATCH_SIZES
    }
    for size, speedup in sorted(speedups.items()):
        print(f"binary/textual at batch {size:>3}: {speedup:.2f}x")
        benchmark.extra_info[f"binary_speedup_{size}"] = round(speedup, 3)

    entry = {
        "issue": ISSUE,
        "label": LABEL,
        "transaction_size": CODEC_TXN,
        "xrls_per_sec": {
            name: {str(size): round(rate, 1)
                   for size, rate in sorted(table.items())}
            for name, table in rates.items()
        },
        "binary_speedup_vs_textual": {
            str(size): round(speedup, 3)
            for size, speedup in sorted(speedups.items())
        },
    }
    record_trajectory(REPO_ROOT / "BENCH_fig09.json", "fig09",
                      "XRLs/sec by (family, batch size)", entry)

    # The acceptance bar for the binary codec.
    assert speedups[256] >= 1.3, (
        f"binary frames only {speedups[256]:.2f}x textual at batch 256")


def test_fig13_subprocess_point(benchmark):
    box = {}

    def run():
        box["rate"] = run_subprocess_route_point(SUBPROC_ROUTES)

    benchmark.pedantic(run, rounds=1, iterations=1)
    rate = box["rate"]
    print(f"\nsubprocess mode: {rate:.0f} routes/s "
          f"({SUBPROC_ROUTES} routes, rib+fea as OS processes)")
    benchmark.extra_info["routes_per_sec"] = round(rate, 1)

    entry = {
        "issue": ISSUE,
        "label": LABEL,
        "mode": "subprocess (rib + fea as OS processes, TCP transport)",
        "route_count": SUBPROC_ROUTES,
        "routes_per_sec": round(rate, 1),
    }
    record_trajectory(REPO_ROOT / "BENCH_fig13.json", "fig13",
                      "routes/sec through RIB->FEA (adds + withdrawals)",
                      entry)
    assert rate > 100, f"subprocess route flow implausibly slow: {rate:.0f}/s"
