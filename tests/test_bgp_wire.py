"""Tests for BGP path attributes and message wire codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.attributes import (
    AS_SEQUENCE,
    AS_SET,
    ASPath,
    BGPAttributeError,
    Origin,
    PathAttributeList,
)
from repro.bgp.messages import (
    BGPDecodeError,
    ErrorCode,
    KeepaliveMessage,
    MessageReader,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    decode_message,
)
from repro.net import IPNet, IPv4


def attrs(**kw):
    kw.setdefault("nexthop", IPv4("10.0.0.1"))
    return PathAttributeList(**kw)


class TestASPath:
    def test_empty(self):
        path = ASPath()
        assert path.path_length() == 0
        assert ASPath.decode(path.encode()) == path

    def test_sequence(self):
        path = ASPath.from_sequence(65001, 65002, 65003)
        assert path.path_length() == 3
        assert path.as_list() == [65001, 65002, 65003]
        assert path.first_asn() == 65001

    def test_prepend(self):
        path = ASPath.from_sequence(65002).prepend(65001)
        assert path.as_list() == [65001, 65002]

    def test_prepend_to_empty(self):
        assert ASPath().prepend(65001).as_list() == [65001]

    def test_as_set_counts_one(self):
        path = ASPath([(AS_SEQUENCE, (1, 2)), (AS_SET, (3, 4, 5))])
        assert path.path_length() == 3

    def test_contains(self):
        path = ASPath([(AS_SEQUENCE, (1, 2)), (AS_SET, (3,))])
        assert path.contains(2) and path.contains(3)
        assert not path.contains(9)

    def test_encode_decode_round_trip(self):
        path = ASPath([(AS_SEQUENCE, (65001, 65002)), (AS_SET, (100, 200))])
        assert ASPath.decode(path.encode()) == path

    def test_rejects_bad_segment_type(self):
        with pytest.raises(BGPAttributeError):
            ASPath([(9, (1,))])

    def test_rejects_huge_asn(self):
        with pytest.raises(BGPAttributeError):
            ASPath([(AS_SEQUENCE, (70000,))])

    def test_str(self):
        assert str(ASPath.from_sequence(1, 2)) == "1 2"
        assert "{" in str(ASPath([(AS_SET, (3, 4))]))

    @given(st.lists(st.integers(0, 0xFFFF), max_size=20))
    def test_sequence_round_trip(self, as_numbers):
        path = ASPath.from_sequence(*as_numbers)
        assert ASPath.decode(path.encode()) == path


class TestPathAttributes:
    def test_requires_nexthop(self):
        with pytest.raises(BGPAttributeError):
            PathAttributeList()

    def test_minimal_round_trip(self):
        a = attrs()
        assert PathAttributeList.decode(a.encode()) == a

    def test_full_round_trip(self):
        a = attrs(origin=Origin.EGP,
                  as_path=ASPath.from_sequence(65001, 65002),
                  med=50, local_pref=200, atomic_aggregate=True,
                  aggregator=(65001, IPv4("1.2.3.4")),
                  communities=[0xFFFF0001, 100])
        decoded = PathAttributeList.decode(a.encode())
        assert decoded == a
        assert decoded.med == 50
        assert decoded.local_pref == 200
        assert decoded.atomic_aggregate
        assert decoded.aggregator == (65001, IPv4("1.2.3.4"))
        assert decoded.communities == (100, 0xFFFF0001)

    def test_replace_is_pure(self):
        a = attrs(med=10)
        b = a.replace(med=20)
        assert a.med == 10 and b.med == 20
        assert b.nexthop == a.nexthop

    def test_hashable_and_groupable(self):
        a1 = attrs(med=10)
        a2 = attrs(med=10)
        assert a1 == a2 and hash(a1) == hash(a2)
        assert len({a1, a2, attrs(med=11)}) == 2

    def test_decode_rejects_duplicate_attribute(self):
        a = attrs()
        data = a.encode()
        # append a second ORIGIN attribute
        with pytest.raises(BGPAttributeError):
            PathAttributeList.decode(data + bytes([0x40, 1, 1, 0]))

    def test_decode_rejects_missing_mandatory(self):
        with pytest.raises(BGPAttributeError):
            PathAttributeList.decode(b"")

    def test_decode_rejects_truncated(self):
        data = attrs().encode()
        with pytest.raises(BGPAttributeError):
            PathAttributeList.decode(data[:-1])

    def test_unknown_optional_tolerated(self):
        data = attrs().encode() + bytes([0x80, 99, 2, 1, 2])
        decoded = PathAttributeList.decode(data)
        assert decoded.nexthop == IPv4("10.0.0.1")

    def test_unknown_wellknown_rejected(self):
        data = attrs().encode() + bytes([0x40, 99, 0])
        with pytest.raises(BGPAttributeError):
            PathAttributeList.decode(data)


class TestOpenMessage:
    def test_round_trip(self):
        msg = OpenMessage(65001, 90, IPv4("1.2.3.4"))
        decoded = decode_message(msg.encode())
        assert isinstance(decoded, OpenMessage)
        assert decoded.asn == 65001
        assert decoded.holdtime == 90
        assert decoded.bgp_id == IPv4("1.2.3.4")

    def test_bad_version_rejected(self):
        msg = OpenMessage(65001, 90, IPv4("1.2.3.4"), version=3)
        with pytest.raises(BGPDecodeError) as err:
            decode_message(msg.encode())
        assert err.value.code == ErrorCode.OPEN_MESSAGE_ERROR

    def test_unacceptable_holdtime(self):
        msg = OpenMessage(65001, 2, IPv4("1.2.3.4"))
        with pytest.raises(BGPDecodeError):
            decode_message(msg.encode())


class TestUpdateMessage:
    def test_announce_round_trip(self):
        msg = UpdateMessage(attributes=attrs(),
                            nlri=[IPNet.parse("10.0.1.0/24"),
                                  IPNet.parse("10.0.2.0/24")])
        decoded = decode_message(msg.encode())
        assert decoded.nlri == msg.nlri
        assert decoded.attributes == msg.attributes
        assert decoded.withdrawn == []

    def test_withdraw_round_trip(self):
        msg = UpdateMessage(withdrawn=[IPNet.parse("10.0.0.0/8")])
        decoded = decode_message(msg.encode())
        assert decoded.withdrawn == msg.withdrawn
        assert decoded.nlri == []

    def test_mixed_round_trip(self):
        msg = UpdateMessage(withdrawn=[IPNet.parse("9.0.0.0/8")],
                            attributes=attrs(),
                            nlri=[IPNet.parse("10.0.0.0/9")])
        decoded = decode_message(msg.encode())
        assert decoded.withdrawn == msg.withdrawn
        assert decoded.nlri == msg.nlri

    def test_odd_prefix_lengths(self):
        nets = [IPNet.parse(p) for p in
                ("0.0.0.0/0", "128.0.0.0/1", "10.0.0.0/7", "10.1.2.3/32",
                 "192.168.1.0/25")]
        msg = UpdateMessage(attributes=attrs(), nlri=nets)
        assert decode_message(msg.encode()).nlri == nets

    def test_nlri_without_attributes_rejected(self):
        with pytest.raises(BGPDecodeError):
            UpdateMessage(nlri=[IPNet.parse("10.0.0.0/8")])

    def test_bad_prefix_length_rejected(self):
        msg = UpdateMessage(withdrawn=[IPNet.parse("10.0.0.0/8")])
        raw = bytearray(msg.encode())
        raw[21] = 33  # corrupt the prefix length
        with pytest.raises(BGPDecodeError):
            decode_message(bytes(raw))

    @given(st.lists(st.tuples(st.integers(0, (1 << 32) - 1),
                              st.integers(0, 32)), max_size=30))
    def test_prefix_list_round_trip(self, raw_prefixes):
        nets = list({IPNet(IPv4(v), p) for v, p in raw_prefixes})
        msg = UpdateMessage(withdrawn=nets)
        assert set(decode_message(msg.encode()).withdrawn) == set(nets)


class TestOtherMessages:
    def test_keepalive(self):
        assert isinstance(decode_message(KeepaliveMessage().encode()),
                          KeepaliveMessage)

    def test_notification(self):
        msg = NotificationMessage(ErrorCode.CEASE, 1, b"bye")
        decoded = decode_message(msg.encode())
        assert decoded.code == ErrorCode.CEASE
        assert decoded.subcode == 1
        assert decoded.data == b"bye"

    def test_bad_marker_rejected(self):
        raw = bytearray(KeepaliveMessage().encode())
        raw[0] = 0
        with pytest.raises(BGPDecodeError) as err:
            decode_message(bytes(raw))
        assert err.value.code == ErrorCode.MESSAGE_HEADER_ERROR

    def test_bad_type_rejected(self):
        raw = bytearray(KeepaliveMessage().encode())
        raw[18] = 99
        with pytest.raises(BGPDecodeError):
            decode_message(bytes(raw))


class TestMessageReader:
    def test_reassembles_fragmented_stream(self):
        stream = (OpenMessage(1, 90, IPv4("1.1.1.1")).encode()
                  + KeepaliveMessage().encode()
                  + UpdateMessage(withdrawn=[IPNet.parse("10.0.0.0/8")]).encode())
        reader = MessageReader()
        messages = []
        # Feed one byte at a time: brutal fragmentation.
        for i in range(len(stream)):
            messages.extend(reader.feed(stream[i:i + 1]))
        assert [type(m).__name__ for m in messages] == [
            "OpenMessage", "KeepaliveMessage", "UpdateMessage"]

    def test_multiple_messages_one_chunk(self):
        stream = KeepaliveMessage().encode() * 5
        assert len(MessageReader().feed(stream)) == 5

    def test_bad_length_raises(self):
        raw = bytearray(KeepaliveMessage().encode())
        raw[16] = 0xFF
        raw[17] = 0xFF
        with pytest.raises(BGPDecodeError):
            MessageReader().feed(bytes(raw))
