"""Integration tests: XrlRouter + Finder + protocol families end to end."""

import random

import pytest

from repro.eventloop import EventLoop, SimulatedClock, SystemClock
from repro.xrl import Finder, Xrl, XrlArgs, XrlError, XrlRouter, parse_idl
from repro.xrl.call_xrl import call_xrl, call_xrl_checked
from repro.xrl.error import XrlErrorCode
from repro.xrl.finder import BIRTH, DEATH
from repro.xrl.transport import IntraProcessFamily, SimFamily, TcpFamily, UdpFamily

TEST_IDL = """
interface test/1.0 {
    echo ? value:u32 -> value:u32;
    greet ? name:txt -> greeting:txt;
    fail;
    noop;
}
"""


class EchoTarget:
    def xrl_echo(self, value):
        return {"value": value}

    def xrl_greet(self, name):
        return {"greeting": f"hello {name}"}

    def xrl_fail(self):
        raise RuntimeError("deliberate failure")

    def xrl_noop(self):
        return None


def build_pair(family_factory, clock=None, shared_process=False):
    """One server router and one client router over the given family."""
    loop = EventLoop(clock or SimulatedClock())
    finder = Finder(rng=random.Random(7))
    family = family_factory()
    iface = parse_idl(TEST_IDL)["test/1.0"]
    token = 999 if shared_process else None
    server = XrlRouter(loop, "echo", finder, families=[family],
                       process_token=token)
    server.bind(iface, EchoTarget())
    client = XrlRouter(loop, "client", finder, families=[family],
                       process_token=token)
    return loop, finder, server, client, iface


FAMILIES = [
    ("intra", lambda: IntraProcessFamily(), None, True),
    ("sim", lambda: SimFamily(), None, False),
    ("tcp", lambda: TcpFamily(), SystemClock(), False),
    ("udp", lambda: UdpFamily(), SystemClock(), False),
]


@pytest.mark.parametrize("name,factory,clock,shared", FAMILIES,
                         ids=[f[0] for f in FAMILIES])
class TestEndToEnd:
    def test_echo(self, name, factory, clock, shared):
        loop, __, __, client, __ = build_pair(factory, clock, shared)
        xrl = Xrl("echo", "test", "1.0", "echo", XrlArgs().add_u32("value", 42))
        error, args = client.send_sync(xrl, deadline=10)
        assert error.is_okay, error
        assert args.get_u32("value") == 42

    def test_txt_round_trip(self, name, factory, clock, shared):
        loop, __, __, client, __ = build_pair(factory, clock, shared)
        xrl = Xrl("echo", "test", "1.0", "greet", XrlArgs().add_txt("name", "xorp"))
        error, args = client.send_sync(xrl, deadline=10)
        assert error.is_okay
        assert args.get_txt("greeting") == "hello xorp"

    def test_handler_exception_becomes_command_failed(self, name, factory, clock, shared):
        loop, __, __, client, __ = build_pair(factory, clock, shared)
        error, __ = client.send_sync(Xrl("echo", "test", "1.0", "fail"), deadline=10)
        assert error.code == XrlErrorCode.COMMAND_FAILED
        assert "deliberate" in error.note

    def test_bad_args_rejected_remotely(self, name, factory, clock, shared):
        loop, __, __, client, __ = build_pair(factory, clock, shared)
        xrl = Xrl("echo", "test", "1.0", "echo", XrlArgs().add_txt("value", "x"))
        error, __ = client.send_sync(xrl, deadline=10)
        assert error.code == XrlErrorCode.BAD_ARGS

    def test_pipelined_burst(self, name, factory, clock, shared):
        loop, __, __, client, __ = build_pair(factory, clock, shared)
        results = []
        for i in range(50):
            xrl = Xrl("echo", "test", "1.0", "echo", XrlArgs().add_u32("value", i))
            client.send(xrl, lambda err, args, i=i: results.append(
                (i, err.is_okay, args.get_u32("value") if err.is_okay else None)))
        assert loop.run_until(lambda: len(results) == 50, timeout=15)
        assert all(ok and got == i for i, ok, got in results)


class TestResolutionAndSecurity:
    def test_unknown_target(self):
        loop, __, __, client, __ = build_pair(IntraProcessFamily, None, True)
        error, __ = client.send_sync(Xrl("ghost", "test", "1.0", "echo",
                                         XrlArgs().add_u32("value", 1)))
        assert error.code == XrlErrorCode.RESOLVE_FAILED

    def test_unknown_method_fails_at_resolve(self):
        loop, __, __, client, __ = build_pair(IntraProcessFamily, None, True)
        error, __ = client.send_sync(Xrl("echo", "test", "1.0", "bogus"))
        assert error.code == XrlErrorCode.RESOLVE_FAILED

    def test_intra_cannot_cross_processes(self):
        """Two distinct process tokens must not short-circuit via intra."""
        loop = EventLoop(SimulatedClock())
        finder = Finder(rng=random.Random(1))
        family = IntraProcessFamily()
        iface = parse_idl(TEST_IDL)["test/1.0"]
        server = XrlRouter(loop, "echo", finder, families=[family])
        server.bind(iface, EchoTarget())
        client = XrlRouter(loop, "client", finder, families=[family])
        error, __ = client.send_sync(Xrl("echo", "test", "1.0", "noop"))
        assert error.code == XrlErrorCode.SEND_FAILED

    def test_key_rejection(self):
        """A forged key (bypassing the Finder) is rejected (paper §7)."""
        loop, finder, server, client, iface = build_pair(
            IntraProcessFamily, None, True)
        from repro.xrl.transport.base import decode_response, encode_request

        forged = encode_request(1, "0" * 32 + "/test/1.0/noop", XrlArgs())
        response = server.dispatch_frame(forged)
        __, error, __ = decode_response(response)
        assert error.code == XrlErrorCode.BAD_KEY

    def test_acl_denies_resolution(self):
        loop, finder, server, client, iface = build_pair(
            IntraProcessFamily, None, True)
        finder.set_acl(client.instance_name, allowed_targets={"rib"})
        error, __ = client.send_sync(Xrl("echo", "test", "1.0", "noop"))
        assert error.code == XrlErrorCode.ACCESS_DENIED

    def test_acl_method_globs(self):
        loop, finder, server, client, iface = build_pair(
            IntraProcessFamily, None, True)
        finder.set_acl(client.instance_name,
                       allowed_xrls={"test/1.0/noop"})
        okay, __ = client.send_sync(Xrl("echo", "test", "1.0", "noop"))
        assert okay.is_okay
        denied, __ = client.send_sync(
            Xrl("echo", "test", "1.0", "echo", XrlArgs().add_u32("value", 1)))
        assert denied.code == XrlErrorCode.ACCESS_DENIED

    def test_cache_invalidation_on_restart(self):
        """Client cache must survive a target restart transparently."""
        loop = EventLoop(SimulatedClock())
        finder = Finder(rng=random.Random(3))
        family = IntraProcessFamily()
        iface = parse_idl(TEST_IDL)["test/1.0"]
        token = 5
        server = XrlRouter(loop, "echo", finder, families=[family],
                           process_token=token)
        server.bind(iface, EchoTarget())
        client = XrlRouter(loop, "client", finder, families=[family],
                           process_token=token)
        xrl = Xrl("echo", "test", "1.0", "echo", XrlArgs().add_u32("value", 1))
        error, __ = client.send_sync(xrl)
        assert error.is_okay
        # Restart the echo component: new key, new address.
        server.shutdown()
        server2 = XrlRouter(loop, "echo", finder, families=[family],
                            process_token=token)
        server2.bind(iface, EchoTarget())
        error, args = client.send_sync(xrl)
        assert error.is_okay
        assert args.get_u32("value") == 1

    def test_send_after_shutdown_fails(self):
        loop, __, __, client, __ = build_pair(IntraProcessFamily, None, True)
        client.shutdown()
        error, __ = client.send_sync(Xrl("echo", "test", "1.0", "noop"))
        assert error.code == XrlErrorCode.SEND_FAILED

    def test_singleton_conflict(self):
        loop = EventLoop(SimulatedClock())
        finder = Finder()
        XrlRouter(loop, "rib", finder, singleton=True, families=[])
        with pytest.raises(XrlError):
            XrlRouter(loop, "rib", finder, singleton=True, families=[])


class TestLifetimeNotification:
    def test_birth_and_death_events(self):
        loop = EventLoop(SimulatedClock())
        finder = Finder()
        events = []
        finder.watch("watcher", "bgp",
                     lambda event, cls, inst: events.append((event, inst)))
        router = XrlRouter(loop, "bgp", finder, families=[])
        assert events == [(BIRTH, router.instance_name)]
        router.shutdown()
        assert events[-1] == (DEATH, router.instance_name)

    def test_watch_existing_fires_immediately(self):
        loop = EventLoop(SimulatedClock())
        finder = Finder()
        router = XrlRouter(loop, "bgp", finder, families=[])
        events = []
        finder.watch("w", "bgp", lambda e, c, i: events.append(e))
        assert events == [BIRTH]

    def test_unwatch(self):
        loop = EventLoop(SimulatedClock())
        finder = Finder()
        events = []
        finder.watch("w", "bgp", lambda e, c, i: events.append(e))
        finder.unwatch("w", "bgp")
        XrlRouter(loop, "bgp", finder, families=[])
        assert events == []


class TestStubs:
    def test_client_stub(self):
        loop, __, __, client, iface = build_pair(IntraProcessFamily, None, True)
        stub = iface.client(client, "echo")
        results = []
        stub.echo(callback=lambda err, args: results.append(args.get_u32("value")),
                  value=7)
        assert loop.run_until(lambda: bool(results), timeout=5)
        assert results == [7]

    def test_stub_rejects_bad_kwargs(self):
        loop, __, __, client, iface = build_pair(IntraProcessFamily, None, True)
        stub = iface.client(client, "echo")
        with pytest.raises(XrlError):
            stub.echo(value=1, extra=2)

    def test_bind_requires_all_methods(self):
        loop = EventLoop(SimulatedClock())
        finder = Finder()
        iface = parse_idl(TEST_IDL)["test/1.0"]
        router = XrlRouter(loop, "bad", finder, families=[IntraProcessFamily()])

        class Partial:
            def xrl_echo(self, value):
                return {"value": value}

        from repro.xrl import IdlError

        with pytest.raises(IdlError):
            router.bind(iface, Partial())


class TestCallXrlScripting:
    def test_textual_invocation(self):
        loop, __, __, client, __ = build_pair(IntraProcessFamily, None, True)
        error, text = call_xrl(
            client, "finder://echo/test/1.0/echo?value:u32=99")
        assert error.is_okay
        assert text == "value:u32=99"

    def test_checked_raises(self):
        loop, __, __, client, __ = build_pair(IntraProcessFamily, None, True)
        with pytest.raises(XrlError):
            call_xrl_checked(client, "finder://ghost/test/1.0/echo?value:u32=1")

    def test_checked_returns_text(self):
        loop, __, __, client, __ = build_pair(IntraProcessFamily, None, True)
        text = call_xrl_checked(
            client, "finder://echo/test/1.0/greet?name:txt=world")
        assert text == "greeting:txt=hello%20world"
