"""Tests for the BGP peer state machine."""

import pytest

from repro.bgp.fsm import BgpState, PeerFSM
from repro.bgp.messages import (
    BGPDecodeError,
    ErrorCode,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.eventloop import EventLoop, SimulatedClock
from repro.net import IPv4


class RecordingActions:
    def __init__(self):
        self.sent = []
        self.connects = 0
        self.drops = 0
        self.established = []
        self.downs = []
        self.updates = []

    def start_connect(self):
        self.connects += 1

    def send_message(self, message):
        self.sent.append(message)

    def drop_connection(self):
        self.drops += 1

    def session_established(self, peer_open):
        self.established.append(peer_open)

    def session_down(self, reason):
        self.downs.append(reason)

    def update_received(self, update):
        self.updates.append(update)


@pytest.fixture
def machine():
    loop = EventLoop(SimulatedClock())
    actions = RecordingActions()
    fsm = PeerFSM(loop, actions, local_as=65001, bgp_id=IPv4("1.1.1.1"),
                  peer_as=65002, holdtime=90, connect_retry_secs=5.0)
    return loop, actions, fsm


def establish(loop, actions, fsm):
    fsm.manual_start()
    fsm.connection_opened()
    fsm.message_received(OpenMessage(65002, 90, IPv4("2.2.2.2")))
    fsm.message_received(KeepaliveMessage())


class TestHappyPath:
    def test_idle_to_established(self, machine):
        loop, actions, fsm = machine
        assert fsm.state == BgpState.IDLE
        fsm.manual_start()
        assert fsm.state == BgpState.CONNECT
        assert actions.connects == 1
        fsm.connection_opened()
        assert fsm.state == BgpState.OPENSENT
        assert isinstance(actions.sent[0], OpenMessage)
        fsm.message_received(OpenMessage(65002, 90, IPv4("2.2.2.2")))
        assert fsm.state == BgpState.OPENCONFIRM
        assert isinstance(actions.sent[1], KeepaliveMessage)
        fsm.message_received(KeepaliveMessage())
        assert fsm.state == BgpState.ESTABLISHED
        assert len(actions.established) == 1

    def test_holdtime_negotiation_takes_min(self, machine):
        loop, actions, fsm = machine
        fsm.manual_start()
        fsm.connection_opened()
        fsm.message_received(OpenMessage(65002, 30, IPv4("2.2.2.2")))
        assert fsm.negotiated_holdtime == 30

    def test_update_dispatched(self, machine):
        loop, actions, fsm = machine
        establish(loop, actions, fsm)
        update = UpdateMessage()
        fsm.message_received(update)
        assert actions.updates == [update]


class TestErrors:
    def test_wrong_peer_as_rejected(self, machine):
        loop, actions, fsm = machine
        fsm.manual_start()
        fsm.connection_opened()
        fsm.message_received(OpenMessage(65999, 90, IPv4("2.2.2.2")))
        assert fsm.state == BgpState.ACTIVE
        assert any(isinstance(m, NotificationMessage) for m in actions.sent)

    def test_update_before_established_is_fsm_error(self, machine):
        loop, actions, fsm = machine
        fsm.manual_start()
        fsm.connection_opened()
        fsm.message_received(UpdateMessage())
        notifications = [m for m in actions.sent
                         if isinstance(m, NotificationMessage)]
        assert notifications and notifications[0].code == ErrorCode.FSM_ERROR

    def test_notification_tears_down(self, machine):
        loop, actions, fsm = machine
        establish(loop, actions, fsm)
        fsm.message_received(NotificationMessage(ErrorCode.CEASE))
        assert fsm.state == BgpState.ACTIVE
        assert actions.downs

    def test_decode_error_sends_notification(self, machine):
        loop, actions, fsm = machine
        establish(loop, actions, fsm)
        fsm.decode_error(BGPDecodeError("bad", ErrorCode.UPDATE_MESSAGE_ERROR, 1))
        notifications = [m for m in actions.sent
                         if isinstance(m, NotificationMessage)]
        assert notifications[-1].code == ErrorCode.UPDATE_MESSAGE_ERROR


class TestTimers:
    def test_hold_timer_expiry(self, machine):
        loop, actions, fsm = machine
        establish(loop, actions, fsm)
        # Nothing arrives for the negotiated holdtime: session must drop.
        loop.run(duration=91)
        assert fsm.state != BgpState.ESTABLISHED
        assert actions.downs
        notifications = [m for m in actions.sent
                         if isinstance(m, NotificationMessage)]
        assert any(n.code == ErrorCode.HOLD_TIMER_EXPIRED for n in notifications)

    def test_keepalives_hold_session_up(self, machine):
        loop, actions, fsm = machine
        establish(loop, actions, fsm)
        for __ in range(10):
            loop.run(duration=25)
            fsm.message_received(KeepaliveMessage())
        assert fsm.state == BgpState.ESTABLISHED

    def test_keepalives_are_sent(self, machine):
        loop, actions, fsm = machine
        establish(loop, actions, fsm)
        loop.run(duration=35)
        keepalives = [m for m in actions.sent if isinstance(m, KeepaliveMessage)]
        assert len(keepalives) >= 2  # the OPENCONFIRM one plus periodic

    def test_connect_retry(self, machine):
        loop, actions, fsm = machine
        fsm.manual_start()
        fsm.connection_failed()
        assert fsm.state == BgpState.ACTIVE
        loop.run(duration=6)
        assert fsm.state == BgpState.CONNECT
        assert actions.connects == 2

    def test_established_connection_loss_reconnects(self, machine):
        loop, actions, fsm = machine
        establish(loop, actions, fsm)
        fsm.connection_failed()
        assert actions.downs == ["connection lost"]
        loop.run(duration=6)
        assert actions.connects == 2


class TestAdmin:
    def test_manual_stop_sends_cease(self, machine):
        loop, actions, fsm = machine
        establish(loop, actions, fsm)
        fsm.manual_stop()
        assert fsm.state == BgpState.IDLE
        notifications = [m for m in actions.sent
                         if isinstance(m, NotificationMessage)]
        assert notifications[-1].code == ErrorCode.CEASE
        assert actions.downs

    def test_stop_then_restart(self, machine):
        loop, actions, fsm = machine
        establish(loop, actions, fsm)
        fsm.manual_stop()
        fsm.manual_start()
        assert fsm.state == BgpState.CONNECT

    def test_start_twice_is_noop(self, machine):
        loop, actions, fsm = machine
        fsm.manual_start()
        fsm.manual_start()
        assert actions.connects == 1
