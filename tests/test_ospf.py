"""OSPF-lite tests: codec, SPF, and full protocol over the simulated net."""

import pytest

from repro.net import IPNet, IPv4
from repro.ospf import (
    HelloPacket,
    LsUpdatePacket,
    OspfDecodeError,
    OspfProcess,
    RouterLSA,
    shortest_path_routes,
)
from repro.ospf.packets import decode_packet
from repro.simnet import SimNetwork


def net(text):
    return IPNet.parse(text)


class TestCodec:
    def test_hello_round_trip(self):
        hello = HelloPacket(IPv4("1.1.1.1"), 10, 40,
                            [IPv4("2.2.2.2"), IPv4("3.3.3.3")])
        decoded = decode_packet(hello.encode())
        assert isinstance(decoded, HelloPacket)
        assert decoded.router_id == IPv4("1.1.1.1")
        assert decoded.neighbors == [IPv4("2.2.2.2"), IPv4("3.3.3.3")]
        assert decoded.dead_interval == 40

    def test_lsa_round_trip(self):
        lsa = RouterLSA(IPv4("1.1.1.1"), 7, [])
        lsa.add_ptp(IPv4("2.2.2.2"), IPv4("10.0.0.1"), 3)
        lsa.add_stub(net("10.0.0.0/24"), 1)
        update = LsUpdatePacket(IPv4("1.1.1.1"), [lsa])
        decoded = decode_packet(update.encode())
        assert isinstance(decoded, LsUpdatePacket)
        assert decoded.lsas == [lsa]
        assert decoded.lsas[0].ptp_neighbors() == [
            (IPv4("2.2.2.2"), IPv4("10.0.0.1"), 3)]
        assert decoded.lsas[0].stub_prefixes() == [(net("10.0.0.0/24"), 1)]

    def test_checksum_verified(self):
        raw = bytearray(HelloPacket(IPv4("1.1.1.1"), 10, 40, []).encode())
        raw[-1] ^= 0xFF
        with pytest.raises(OspfDecodeError):
            decode_packet(bytes(raw))

    def test_bad_version(self):
        raw = bytearray(HelloPacket(IPv4("1.1.1.1"), 10, 40, []).encode())
        raw[0] = 3
        with pytest.raises(OspfDecodeError):
            decode_packet(bytes(raw))

    def test_truncated(self):
        with pytest.raises(OspfDecodeError):
            decode_packet(b"\x02\x01\x00\x10")


def lsa(rid, ptp=(), stubs=()):
    out = RouterLSA(IPv4(rid), 1, [])
    for neighbor, addr, metric in ptp:
        out.add_ptp(IPv4(neighbor), IPv4(addr), metric)
    for prefix, metric in stubs:
        out.add_stub(net(prefix), metric)
    return out


class TestSpf:
    def test_line_topology(self):
        """a(1) -- b(2) -- c(3): a reaches c's stub through b."""
        lsdb = {
            IPv4("1.1.1.1").to_int(): lsa(
                "1.1.1.1", ptp=[("2.2.2.2", "10.0.0.1", 1)],
                stubs=[("10.0.0.0/24", 1)]),
            IPv4("2.2.2.2").to_int(): lsa(
                "2.2.2.2",
                ptp=[("1.1.1.1", "10.0.0.2", 1), ("3.3.3.3", "10.0.1.1", 1)],
                stubs=[("10.0.0.0/24", 1), ("10.0.1.0/24", 1)]),
            IPv4("3.3.3.3").to_int(): lsa(
                "3.3.3.3", ptp=[("2.2.2.2", "10.0.1.2", 1)],
                stubs=[("10.0.1.0/24", 1), ("99.0.0.0/24", 2)]),
        }
        routes = shortest_path_routes(IPv4("1.1.1.1"), lsdb)
        metric, nexthop, via = routes[net("99.0.0.0/24")]
        assert metric == 1 + 1 + 2
        assert nexthop == IPv4("10.0.0.2")  # b's address towards a
        assert via == IPv4("2.2.2.2")

    def test_unidirectional_link_ignored(self):
        """A link reported by only one side must not be used."""
        lsdb = {
            IPv4("1.1.1.1").to_int(): lsa(
                "1.1.1.1", ptp=[("2.2.2.2", "10.0.0.1", 1)]),
            IPv4("2.2.2.2").to_int(): lsa(
                "2.2.2.2", stubs=[("99.0.0.0/24", 1)]),  # no back link
        }
        routes = shortest_path_routes(IPv4("1.1.1.1"), lsdb)
        assert routes == {}

    def test_picks_cheaper_path(self):
        """Triangle with one expensive direct edge."""
        lsdb = {
            IPv4("1.1.1.1").to_int(): lsa(
                "1.1.1.1",
                ptp=[("2.2.2.2", "10.0.0.1", 1), ("3.3.3.3", "10.0.2.1", 10)]),
            IPv4("2.2.2.2").to_int(): lsa(
                "2.2.2.2",
                ptp=[("1.1.1.1", "10.0.0.2", 1), ("3.3.3.3", "10.0.1.1", 1)]),
            IPv4("3.3.3.3").to_int(): lsa(
                "3.3.3.3",
                ptp=[("2.2.2.2", "10.0.1.2", 1), ("1.1.1.1", "10.0.2.2", 10)],
                stubs=[("99.0.0.0/24", 0)]),
        }
        routes = shortest_path_routes(IPv4("1.1.1.1"), lsdb)
        metric, nexthop, via = routes[net("99.0.0.0/24")]
        assert metric == 2  # via b, not the metric-10 direct edge
        assert via == IPv4("2.2.2.2")

    def test_empty_or_unknown_root(self):
        assert shortest_path_routes(IPv4("9.9.9.9"), {}) == {}


def build_ospf_network(count=3, hello=1.0, dead=4.0):
    """A chain of *count* routers running OSPF on every link."""
    network = SimNetwork()
    routers = []
    processes = []
    for index in range(count):
        router = network.add_router(f"r{index + 1}")
        routers.append(router)
        if index:
            network.link(routers[index - 1], f"10.0.{index}.1",
                         router, f"10.0.{index}.2", prefix_len=24)
    network.run(duration=0.5)
    for index, router in enumerate(routers):
        process = OspfProcess(router.host, IPv4(f"{index + 1}.{index + 1}."
                                                f"{index + 1}.{index + 1}"),
                              hello_interval=hello, dead_interval=dead)
        for ifname in router.fea.ifmgr.names():
            interface = router.fea.ifmgr.get(ifname)
            process.xrl_add_ospf_interface(ifname, interface.addr,
                                           interface.prefix_len, 1)
        processes.append(process)
    return network, routers, processes


class TestProtocol:
    def test_adjacency_forms(self):
        network, routers, processes = build_ospf_network(2)
        assert network.run_until(
            lambda: "Full" in processes[0].xrl_get_neighbors()["neighbors"],
            timeout=30)
        assert "2.2.2.2@eth0:Full" in \
            processes[0].xrl_get_neighbors()["neighbors"]

    def test_lsdb_synchronises(self):
        network, routers, processes = build_ospf_network(3)
        assert network.run_until(
            lambda: all(len(p.lsdb) == 3 for p in processes), timeout=60)

    def test_routes_reach_fib_across_chain(self):
        network, routers, processes = build_ospf_network(3)
        # r1 must learn the far link's subnet (10.0.2.0/24) through r2.
        assert network.run_until(
            lambda: routers[0].fea.fib4.exact(net("10.0.2.0/24")) is not None,
            timeout=60)
        entry = routers[0].fea.fib4.exact(net("10.0.2.0/24"))
        assert entry.nexthop == IPv4("10.0.1.2")  # r2's address towards r1
        # Admin distance: OSPF is 110 in the RIB.
        rib_route = routers[0].rib.v4.register.lookup_by_dest(IPv4("10.0.2.5"))
        assert rib_route.protocol == "ospf"
        assert rib_route.admin_distance == 110

    def test_neighbor_death_triggers_reconvergence(self):
        network, routers, processes = build_ospf_network(3, hello=1.0,
                                                         dead=3.5)
        # Give r3 a stub subnet nobody else touches (a non-OSPF stub link).
        edge = network.add_router("edge")
        network.link(routers[2], "10.0.99.1", edge, "10.0.99.2",
                     prefix_len=24)
        processes[2].xrl_add_ospf_interface("eth1", IPv4("10.0.99.1"), 24, 1)
        assert network.run_until(
            lambda: routers[0].fea.fib4.exact(net("10.0.99.0/24")) is not None,
            timeout=60)
        # Kill the r2-r3 link: r3 becomes unreachable, and r1 must
        # withdraw the subnet only r3 advertises.
        network.links[1].set_up(False)
        assert network.run_until(
            lambda: routers[0].fea.fib4.exact(net("10.0.99.0/24")) is None,
            timeout=60)
        # ...but keep 10.0.2.0/24: r2's interface on it is still up.
        assert routers[0].fea.fib4.exact(net("10.0.2.0/24")) is not None

    def test_spf_is_event_driven(self):
        """SPF reruns on events, with debouncing — no periodic scanning."""
        network, routers, processes = build_ospf_network(2)
        assert network.run_until(
            lambda: "Full" in processes[0].xrl_get_neighbors()["neighbors"],
            timeout=30)
        network.run(duration=10)  # let both sides finish converging
        runs_after_convergence = processes[0].spf_runs
        network.run(duration=30)  # several hello periods, nothing changes
        assert processes[0].spf_runs == runs_after_convergence

    def test_duplicate_interface_rejected(self):
        network, routers, processes = build_ospf_network(2)
        from repro.xrl import XrlError

        with pytest.raises(XrlError):
            processes[0].xrl_add_ospf_interface("eth0", IPv4("10.0.1.1"),
                                                24, 1)

    def test_metric_respects_interface_cost(self):
        network = SimNetwork()
        a = network.add_router("a")
        b = network.add_router("b")
        network.link(a, "10.0.0.1", b, "10.0.0.2")
        network.link(a, "10.0.9.1", b, "10.0.9.2")  # parallel, expensive
        network.run(duration=0.5)
        ospf_a = OspfProcess(a.host, IPv4("1.1.1.1"), hello_interval=1.0)
        ospf_b = OspfProcess(b.host, IPv4("2.2.2.2"), hello_interval=1.0)
        ospf_a.xrl_add_ospf_interface("eth0", IPv4("10.0.0.1"), 24, 1)
        ospf_a.xrl_add_ospf_interface("eth1", IPv4("10.0.9.1"), 24, 10)
        ospf_b.xrl_add_ospf_interface("eth0", IPv4("10.0.0.2"), 24, 1)
        ospf_b.xrl_add_ospf_interface("eth1", IPv4("10.0.9.2"), 24, 10)
        # b alone advertises an extra stub subnet.
        edge = network.add_router("edge")
        network.link(b, "10.0.5.1", edge, "10.0.5.2", prefix_len=24)
        ospf_b.xrl_add_ospf_interface("eth2", IPv4("10.0.5.1"), 24, 1)
        assert network.run_until(
            lambda: net("10.0.5.0/24") in ospf_a._installed, timeout=60)
        metric, nexthop = ospf_a._installed[net("10.0.5.0/24")]
        # The nexthop must be over the cheap link, and the metric 1+1.
        assert nexthop == IPv4("10.0.0.2")
        assert metric == 2
