"""Property-based test of the fanout queue under adversarial schedules.

Random interleavings of route changes, reader attachment (with background
dumps), slow-reader busy toggling, and partial event-loop turns.  After
quiescing, every reader's reconstructed table must equal the winners trie
and every reader's message stream must satisfy the consistency rules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.fanout import FanoutQueue
from repro.eventloop import EventLoop, SimulatedClock
from repro.net import IPNet, IPv4

PREFIX_COUNT = 8


class _Route:
    __slots__ = ("net", "version")

    def __init__(self, index, version):
        self.net = IPNet(IPv4(0x0A000000 + (index << 8)), 24)
        self.version = version

    def __repr__(self):
        return f"_Route({self.net} v{self.version})"


operations = st.lists(
    st.one_of(
        st.tuples(st.just("change"), st.integers(0, PREFIX_COUNT - 1)),
        st.tuples(st.just("attach"), st.integers(0, 3)),
        st.tuples(st.just("busy"), st.integers(0, 3)),
        st.tuples(st.just("ready"), st.integers(0, 3)),
        st.tuples(st.just("turn"), st.integers(1, 4)),
    ),
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(operations)
def test_every_reader_converges_to_winners(ops):
    loop = EventLoop(SimulatedClock())
    fanout = FanoutQueue("fanout", loop, dump_slice=3)
    logs = {}
    version = [0]
    attached = set()

    def attach(name):
        if name in attached:
            return
        attached.add(name)
        logs[name] = []
        fanout.add_reader(
            name, lambda op, r, old, n=name: logs[n].append((op, r, old)),
            dump=True)

    current = {}  # index -> route (mirror of what we told the fanout)
    for op, value in ops:
        if op == "change":
            index = value
            existing = current.get(index)
            version[0] += 1
            if existing is None:
                fresh = _Route(index, version[0])
                current[index] = fresh
                fanout.add_route(fresh)
            elif version[0] % 3 == 0:
                fanout.delete_route(existing)
                del current[index]
            else:
                fresh = _Route(index, version[0])
                fanout.replace_route(existing, fresh)
                current[index] = fresh
        elif op == "attach":
            attach(f"r{value}")
        elif op == "busy":
            name = f"r{value}"
            if name in attached:
                fanout.set_reader_busy(name, True)
        elif op == "ready":
            name = f"r{value}"
            if name in attached:
                fanout.set_reader_busy(name, False)
        else:  # turn: run a few loop iterations mid-stream
            for __ in range(value):
                loop.run_once(block=False)

    # Quiesce: everyone ready, loop drained.
    for name in attached:
        fanout.set_reader_busy(name, False)
    loop.run()

    winners = {net: route for net, route in fanout.winners.items()}
    expected = {route.net: route for route in current.values()}
    assert winners == expected

    for name in attached:
        state = {}
        for op, route, old in logs[name]:
            if op == "add":
                assert route.net not in state, (
                    f"{name}: duplicate add {route.net}")
                state[route.net] = route
            elif op == "delete":
                assert route.net in state, (
                    f"{name}: spurious delete {route.net}")
                del state[route.net]
            else:
                assert route.net in state, (
                    f"{name}: spurious replace {route.net}")
                state[route.net] = route
        assert state == expected, f"{name}: diverged"
    # The drained queue holds nothing once every reader caught up.
    assert fanout.queue_length == 0
