"""Tests for the simulated network: links, forwarding, baseline routers."""

from repro.bgp.attributes import ASPath, PathAttributeList
from repro.bgp.fsm import BgpState
from repro.bgp.messages import UpdateMessage
from repro.net import IPNet, IPv4
from repro.simnet import (
    EventDrivenRouterModel,
    ScannerRouterModel,
    SimNetwork,
)
from repro.fea.fib import FibEntry


def net(text):
    return IPNet.parse(text)


class TestTopology:
    def test_link_creates_interfaces_and_connected_routes(self):
        network = SimNetwork()
        a = network.add_router("a")
        b = network.add_router("b")
        network.link(a, "10.0.0.1", b, "10.0.0.2", prefix_len=24)
        assert a.fea.ifmgr.get("eth0").addr == IPv4("10.0.0.1")
        assert b.fea.ifmgr.get("eth0").addr == IPv4("10.0.0.2")
        # Connected routes land in the FIB through the RIB pipeline.
        assert network.run_until(
            lambda: a.fea.fib4.lookup(IPv4("10.0.0.2")) is not None,
            timeout=10)

    def test_datagram_delivery_with_latency(self):
        network = SimNetwork()
        a = network.add_router("a")
        b = network.add_router("b")
        network.link(a, "10.0.0.1", b, "10.0.0.2", delay=0.5)
        received = []
        b.packet_io.bind(lambda ifname, src, port, payload:
                         received.append((ifname, str(src), payload)))
        start = network.loop.now()
        a.packet_io.send("eth0", IPv4("10.0.0.1"), IPv4("10.0.0.2"), 99,
                         b"hello")
        assert network.run_until(lambda: bool(received), timeout=5)
        assert received == [("eth0", "10.0.0.1", b"hello")]
        assert network.loop.now() - start >= 0.5

    def test_link_down_drops(self):
        network = SimNetwork()
        a = network.add_router("a")
        b = network.add_router("b")
        link = network.link(a, "10.0.0.1", b, "10.0.0.2")
        received = []
        b.packet_io.bind(lambda *args: received.append(args))
        link.set_up(False)
        a.packet_io.send("eth0", IPv4("10.0.0.1"), IPv4("10.0.0.2"), 9, b"x")
        network.run(duration=2)
        assert received == []


class TestForwarding:
    def _chain(self):
        """a -- b -- c with static FIB entries for an end-to-end path."""
        network = SimNetwork()
        a, b, c = (network.add_router(n) for n in "abc")
        network.link(a, "10.0.0.1", b, "10.0.0.2", prefix_len=24)
        network.link(b, "10.0.1.1", c, "10.0.1.2", prefix_len=24)
        network.run(duration=1)  # connected routes settle
        # Route towards c's far address through b.
        a.fea.fib4.insert(FibEntry(net("10.0.1.0/24"), IPv4("10.0.0.2"), "eth0"))
        return network, a, b, c

    def test_multihop_delivery(self):
        network, a, b, c = self._chain()
        network.send_packet(a, IPv4("10.0.0.1"), IPv4("10.0.1.2"), 7, b"ping")
        assert network.run_until(lambda: bool(network.delivered), timeout=10)
        name, dst, port, payload = network.delivered[0]
        assert name == "c" and payload == b"ping"

    def test_no_route_drops(self):
        network, a, b, c = self._chain()
        network.send_packet(a, IPv4("10.0.0.1"), IPv4("99.9.9.9"), 7, b"x")
        network.run(duration=2)
        assert network.dropped >= 1
        assert not network.delivered

    def test_ttl_expiry(self):
        network, a, b, c = self._chain()
        network.send_packet(a, IPv4("10.0.0.1"), IPv4("10.0.1.2"), 7, b"x",
                            ttl=1)
        network.run(duration=2)
        assert not network.delivered
        assert network.dropped >= 1


def wire_model_pair(loop, left, right, latency=0.001):
    """Connect two baseline-model peers with a session pair."""
    from repro.bgp.session import session_pair

    s1, s2 = session_pair(loop, latency)
    left.attach_session(s1)
    right.attach_session(s2)


def make_update(prefix):
    attrs = PathAttributeList(as_path=ASPath.from_sequence(65001),
                              nexthop=IPv4("10.0.0.1"))
    return UpdateMessage(attributes=attrs, nlri=[net(prefix)])


class SinkPeer:
    """Records update arrival times at the far side of a model router."""

    def __init__(self, loop, local_as, peer_as):
        from repro.simnet.baselines import _BaselineRouter

        self.arrivals = []
        outer = self

        class _Sink(_BaselineRouter):
            def update_from_peer(self, peer, update):
                for prefix in update.nlri:
                    outer.arrivals.append((network_now(loop), prefix))

        def network_now(loop_):
            return loop_.now()

        self.router = _Sink(loop, "sink", local_as, "9.9.9.9")
        self.peer = self.router.add_peer("in", peer_as)

    def start(self):
        self.router.start()


class TestBaselineModels:
    def _run_experiment(self, model, loop, inject_count=5, spacing=1.0):
        """Feed routes at 1/s through the model; measure arrival delay."""
        source = EventDrivenRouterModel(loop, "src", 65001, "1.1.1.1",
                                        processing_delay=0.0)
        sink = SinkPeer(loop, 65003, model.local_as)
        src_peer = source.add_peer("out", model.local_as)
        model_in = model.add_peer("in", 65001)
        model_out = model.add_peer("out", 65003)
        wire_model_pair(loop, src_peer, model_in)
        wire_model_pair(loop, model_out, sink.peer)
        source.start()
        model.start()
        sink.start()
        assert loop.run_until(
            lambda: all(p.fsm.state == BgpState.ESTABLISHED
                        for p in [src_peer, model_in, model_out, sink.peer]),
            timeout=60)
        inject_times = []
        for i in range(inject_count):
            when = loop.now() + (i + 1) * spacing
            inject_times.append(when)
            loop.call_at(when, lambda i=i: source.update_from_peer(
                None, make_update(f"99.{i}.0.0/16")))
        assert loop.run_until(
            lambda: len(sink.arrivals) >= inject_count, timeout=300)
        delays = []
        for when, (arrival, prefix) in zip(inject_times, sink.arrivals):
            delays.append(arrival - when)
        return delays

    def test_event_driven_model_is_fast(self):
        from repro.eventloop import EventLoop, SimulatedClock

        loop = EventLoop(SimulatedClock())
        model = EventDrivenRouterModel(loop, "mrtd", 65002, "2.2.2.2")
        delays = self._run_experiment(model, loop)
        assert all(d < 1.0 for d in delays), delays

    def test_scanner_model_shows_batching(self):
        from repro.eventloop import EventLoop, SimulatedClock

        loop = EventLoop(SimulatedClock())
        model = ScannerRouterModel(loop, "cisco", 65002, "2.2.2.2",
                                   scan_interval=30.0)
        delays = self._run_experiment(model, loop, inject_count=8)
        assert max(d for d in delays) > 5.0  # scanner latency visible
        assert any(d > 20.0 for d in delays)  # sawtooth reaches near 30s

    def test_scanner_batches_together(self):
        """Routes injected over 30s arrive in one batch."""
        from repro.eventloop import EventLoop, SimulatedClock

        loop = EventLoop(SimulatedClock())
        model = ScannerRouterModel(loop, "cisco", 65002, "2.2.2.2",
                                   scan_interval=30.0)
        source = EventDrivenRouterModel(loop, "src", 65001, "1.1.1.1",
                                        processing_delay=0.0)
        sink = SinkPeer(loop, 65003, 65002)
        src_peer = source.add_peer("out", 65002)
        model_in = model.add_peer("in", 65001)
        model_out = model.add_peer("out", 65003)
        wire_model_pair(loop, src_peer, model_in)
        wire_model_pair(loop, model_out, sink.peer)
        source.start()
        model.start()
        sink.start()
        assert loop.run_until(
            lambda: model_in.fsm.state == BgpState.ESTABLISHED
            and model_out.fsm.state == BgpState.ESTABLISHED
            and sink.peer.fsm.state == BgpState.ESTABLISHED
            and src_peer.fsm.state == BgpState.ESTABLISHED, timeout=60)
        for i in range(10):
            loop.call_at(loop.now() + i,
                         lambda i=i: source.update_from_peer(
                             None, make_update(f"99.{i}.0.0/16")))
        assert loop.run_until(lambda: len(sink.arrivals) >= 10, timeout=120)
        arrival_times = [t for t, __ in sink.arrivals]
        assert max(arrival_times) - min(arrival_times) < 2.0  # one batch
