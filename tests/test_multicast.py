"""Tests for IGMP membership tracking and PIM-SM-lite."""

import pytest

from repro.mld6igmp import IgmpPacket, IgmpPacketError, Mld6igmpProcess
from repro.mld6igmp.igmp import (
    IGMP_LEAVE_GROUP,
    IGMP_MEMBERSHIP_QUERY,
    IGMP_V2_MEMBERSHIP_REPORT,
)
from repro.net import IPNet, IPv4
from repro.pim import PimProcess
from repro.simnet import SimNetwork
from repro.xrl import Xrl, XrlArgs


class TestIgmpCodec:
    def test_report_round_trip(self):
        packet = IgmpPacket(IGMP_V2_MEMBERSHIP_REPORT, IPv4("239.1.2.3"))
        decoded = IgmpPacket.decode(packet.encode())
        assert decoded.type == IGMP_V2_MEMBERSHIP_REPORT
        assert decoded.group == IPv4("239.1.2.3")

    def test_query_round_trip(self):
        packet = IgmpPacket(IGMP_MEMBERSHIP_QUERY, IPv4(0), max_resp=100)
        decoded = IgmpPacket.decode(packet.encode())
        assert decoded.max_resp == 100

    def test_checksum_verified(self):
        raw = bytearray(IgmpPacket(IGMP_LEAVE_GROUP, IPv4("239.0.0.1")).encode())
        raw[7] ^= 0xFF
        with pytest.raises(IgmpPacketError):
            IgmpPacket.decode(bytes(raw))

    def test_bad_type(self):
        with pytest.raises(IgmpPacketError):
            IgmpPacket(0x42, IPv4(0))

    def test_bad_length(self):
        with pytest.raises(IgmpPacketError):
            IgmpPacket.decode(b"\x16\x00\x00")


@pytest.fixture
def multicast_router():
    """Router with FEA+RIB+IGMP+PIM, two links, and a route to the RP."""
    network = SimNetwork()
    router = network.add_router("r1")
    rp_side = network.add_router("rp")
    receiver_side = network.add_router("recv")
    network.link(router, "10.0.0.1", rp_side, "10.0.0.2")       # eth0 -> RP
    network.link(router, "10.1.0.1", receiver_side, "10.1.0.2")  # eth1
    igmp = Mld6igmpProcess(router.host)
    pim = PimProcess(router.host)
    network.run(duration=1)  # connected routes settle
    return network, router, igmp, pim


def xrl_sync(process, xrl_text):
    return process.xrl.send_sync(Xrl.from_text(xrl_text), deadline=10)


class TestIgmpProcess:
    def test_membership_via_xrl(self, multicast_router):
        network, router, igmp, pim = multicast_router
        error, __ = xrl_sync(
            igmp, "finder://mld6igmp/mld6igmp/0.1/add_membership4"
                  "?ifname:txt=eth1&group:ipv4=239.1.1.1")
        assert error.is_okay
        error, args = xrl_sync(
            igmp, "finder://mld6igmp/mld6igmp/0.1/list_memberships4"
                  "?ifname:txt=eth1")
        assert args.get_txt("groups") == "239.1.1.1"

    def test_non_multicast_group_rejected(self, multicast_router):
        network, router, igmp, pim = multicast_router
        error, __ = xrl_sync(
            igmp, "finder://mld6igmp/mld6igmp/0.1/add_membership4"
                  "?ifname:txt=eth1&group:ipv4=10.0.0.1")
        assert not error.is_okay

    def test_wire_report_processing(self, multicast_router):
        network, router, igmp, pim = multicast_router
        packet = IgmpPacket(IGMP_V2_MEMBERSHIP_REPORT, IPv4("239.2.2.2"))
        igmp.process_report("eth1", IgmpPacket.decode(packet.encode()))
        assert 0xEF020202 in igmp.memberships["eth1"]
        leave = IgmpPacket(IGMP_LEAVE_GROUP, IPv4("239.2.2.2"))
        igmp.process_report("eth1", leave)
        assert 0xEF020202 not in igmp.memberships["eth1"]

    def test_duplicate_join_single_notification(self, multicast_router):
        network, router, igmp, pim = multicast_router
        igmp.xrl_add_membership4("eth1", IPv4("239.1.1.1"))
        igmp.xrl_add_membership4("eth1", IPv4("239.1.1.1"))
        network.run(duration=1)
        # PIM saw exactly one join: one oif entry.
        state = pim.groups.get(IPv4("239.1.1.1").to_int())
        assert state is not None and state.oifs == {"eth1"}


class TestPim:
    def _set_rp(self, pim, prefix="239.0.0.0/8", rp="10.0.0.2"):
        args = (XrlArgs().add_ipv4net("group_prefix", prefix)
                .add_ipv4("rp", rp))
        error, __ = pim.xrl.send_sync(
            Xrl("pim", "pim", "0.1", "set_rp", args), deadline=10)
        assert error.is_okay, error

    def test_join_installs_mfc(self, multicast_router):
        network, router, igmp, pim = multicast_router
        self._set_rp(pim)
        igmp.xrl_add_membership4("eth1", IPv4("239.1.1.1"))
        key = (IPv4("10.0.0.2").to_int(), IPv4("239.1.1.1").to_int())
        assert network.run_until(lambda: key in router.fea.mfib, timeout=20)
        entry = router.fea.mfib[key]
        assert entry.iif == "eth0"        # RPF towards the RP
        assert entry.oifs == ("eth1",)    # receiver side

    def test_leave_removes_mfc(self, multicast_router):
        network, router, igmp, pim = multicast_router
        self._set_rp(pim)
        igmp.xrl_add_membership4("eth1", IPv4("239.1.1.1"))
        key = (IPv4("10.0.0.2").to_int(), IPv4("239.1.1.1").to_int())
        assert network.run_until(lambda: key in router.fea.mfib, timeout=20)
        igmp.xrl_delete_membership4("eth1", IPv4("239.1.1.1"))
        assert network.run_until(lambda: key not in router.fea.mfib,
                                 timeout=20)
        assert not pim.groups

    def test_rp_selection_most_specific(self, multicast_router):
        network, router, igmp, pim = multicast_router
        self._set_rp(pim, "239.0.0.0/8", "10.0.0.2")
        self._set_rp(pim, "239.1.0.0/16", "10.1.0.2")
        assert pim.rp_for(IPv4("239.1.5.5")) == IPv4("10.1.0.2")
        assert pim.rp_for(IPv4("239.2.5.5")) == IPv4("10.0.0.2")
        assert pim.rp_for(IPv4("224.0.1.1")) is None

    def test_join_without_rp_holds(self, multicast_router):
        network, router, igmp, pim = multicast_router
        igmp.xrl_add_membership4("eth1", IPv4("239.1.1.1"))
        network.run(duration=2)
        assert not router.fea.mfib  # no RP: no tree
        # RP configured later: the tree comes up.
        self._set_rp(pim)
        key = (IPv4("10.0.0.2").to_int(), IPv4("239.1.1.1").to_int())
        assert network.run_until(lambda: key in router.fea.mfib, timeout=20)

    def test_rpf_reresolves_on_route_change(self, multicast_router):
        """Paper: PIM monitors routing changes affecting RP routes."""
        network, router, igmp, pim = multicast_router
        self._set_rp(pim, "239.0.0.0/8", "77.0.0.1")  # distant RP
        # Route to the RP via eth0 initially.
        args = (XrlArgs().add_txt("protocol", "static")
                .add_ipv4net("net", "77.0.0.0/8")
                .add_ipv4("nexthop", "10.0.0.2")
                .add_u32("metric", 1).add_list("policytags", []))
        pim.xrl.send_sync(Xrl("rib", "rib", "1.0", "add_route4", args),
                          deadline=10)
        igmp.xrl_add_membership4("eth1", IPv4("239.1.1.1"))
        key = (IPv4("77.0.0.1").to_int(), IPv4("239.1.1.1").to_int())
        assert network.run_until(lambda: key in router.fea.mfib, timeout=20)
        assert router.fea.mfib[key].iif == "eth0"
        # Move the RP route to the other interface: a more specific route
        # via eth1 invalidates PIM's registration; RPF must re-resolve.
        args = (XrlArgs().add_txt("protocol", "static")
                .add_ipv4net("net", "77.0.0.0/16")
                .add_ipv4("nexthop", "10.1.0.2")
                .add_u32("metric", 1).add_list("policytags", []))
        pim.xrl.send_sync(Xrl("rib", "rib", "1.0", "add_route4", args),
                          deadline=10)
        assert network.run_until(
            lambda: key in router.fea.mfib
            and router.fea.mfib[key].iif == "eth1", timeout=20)
