"""RIP tests: packet codec, protocol behaviour over the simulated network."""

import pytest

from repro.net import IPNet, IPv4
from repro.rip import RipEntry, RipPacket, RipPacketError, RipProcess
from repro.rip.packets import (
    RIP_COMMAND_REQUEST,
    RIP_COMMAND_RESPONSE,
    RIP_INFINITY,
)
from repro.simnet import SimNetwork
from repro.xrl import Xrl, XrlArgs


def net(text):
    return IPNet.parse(text)


class TestPacketCodec:
    def test_entry_round_trip(self):
        entry = RipEntry(net("10.1.0.0/16"), 3, tag=7, nexthop=IPv4("1.2.3.4"))
        assert RipEntry.decode(entry.encode(), 0) == entry

    def test_packet_round_trip(self):
        packet = RipPacket(RIP_COMMAND_RESPONSE,
                           [RipEntry(net("10.0.0.0/8"), 1),
                            RipEntry(net("11.0.0.0/8"), 2)])
        decoded = RipPacket.decode(packet.encode())
        assert decoded.command == RIP_COMMAND_RESPONSE
        assert decoded.entries == packet.entries

    def test_whole_table_request(self):
        packet = RipPacket.whole_table_request()
        decoded = RipPacket.decode(packet.encode())
        assert decoded.command == RIP_COMMAND_REQUEST
        assert decoded.entries[0].is_whole_table_request()

    def test_auth_round_trip(self):
        packet = RipPacket(RIP_COMMAND_RESPONSE,
                           [RipEntry(net("10.0.0.0/8"), 1)],
                           auth_password="s3cret")
        decoded = RipPacket.decode(packet.encode())
        assert decoded.auth_password == "s3cret"
        assert len(decoded.entries) == 1

    def test_max_entries_enforced(self):
        entries = [RipEntry(net(f"10.{i}.0.0/16"), 1) for i in range(26)]
        with pytest.raises(RipPacketError):
            RipPacket(RIP_COMMAND_RESPONSE, entries)

    def test_bad_metric_rejected(self):
        with pytest.raises(RipPacketError):
            RipEntry(net("10.0.0.0/8"), 17)

    def test_bad_length_rejected(self):
        with pytest.raises(RipPacketError):
            RipPacket.decode(b"\x02\x02\x00\x00\x01")

    def test_noncontiguous_mask_rejected(self):
        packet = RipPacket(RIP_COMMAND_RESPONSE, [RipEntry(net("10.0.0.0/8"), 1)])
        raw = bytearray(packet.encode())
        raw[12] = 0x0F  # corrupt the netmask
        with pytest.raises(RipPacketError):
            RipPacket.decode(bytes(raw))

    def test_bad_command_rejected(self):
        with pytest.raises(RipPacketError):
            RipPacket(9)


def build_rip_pair(update_interval=5.0, triggered_delay=0.5):
    """Two routers on one link, RIP enabled on both ends."""
    network = SimNetwork()
    a = network.add_router("a")
    b = network.add_router("b")
    network.link(a, "10.0.0.1", b, "10.0.0.2", prefix_len=24)
    rip_a = RipProcess(a.host, update_interval=update_interval,
                       route_timeout=4 * update_interval,
                       gc_timeout=2 * update_interval,
                       triggered_delay=triggered_delay)
    rip_b = RipProcess(b.host, update_interval=update_interval,
                       route_timeout=4 * update_interval,
                       gc_timeout=2 * update_interval,
                       triggered_delay=triggered_delay)
    a.processes["rip"] = rip_a
    b.processes["rip"] = rip_b
    enable_rip(rip_a, "eth0", "10.0.0.1")
    enable_rip(rip_b, "eth0", "10.0.0.2")
    return network, a, b, rip_a, rip_b


def enable_rip(rip, ifname, addr):
    args = XrlArgs().add_txt("ifname", ifname).add_ipv4("addr", addr)
    error, __ = rip.xrl.send_sync(
        Xrl("rip", "rip", "1.0", "add_rip_address", args), deadline=10)
    assert error.is_okay, error


class TestRipProtocol:
    def test_static_route_propagates(self):
        network, a, b, rip_a, rip_b = build_rip_pair()
        rip_a.xrl_add_static_route(net("99.0.0.0/8"), IPv4("10.0.0.1"), 1)
        assert network.run_until(
            lambda: rip_b.routes.exact(net("99.0.0.0/8")) is not None,
            timeout=30)
        entry = rip_b.routes.exact(net("99.0.0.0/8"))
        assert entry.metric == 2  # 1 + interface cost
        assert entry.nexthop == IPv4("10.0.0.1")

    def test_route_lands_in_rib_and_fib(self):
        network, a, b, rip_a, rip_b = build_rip_pair()
        rip_a.xrl_add_static_route(net("99.0.0.0/8"), IPv4("10.0.0.1"), 1)
        assert network.run_until(
            lambda: b.fea.fib4.lookup(IPv4("99.1.1.1")) is not None,
            timeout=30)
        assert b.fea.fib4.lookup(IPv4("99.1.1.1")).nexthop == IPv4("10.0.0.1")

    def test_triggered_update_is_fast(self):
        """Event-driven: a new route must not wait for the periodic timer."""
        network, a, b, rip_a, rip_b = build_rip_pair(update_interval=30.0,
                                                     triggered_delay=0.5)
        network.run(duration=2)  # initial exchange settles
        start = network.loop.now()
        rip_a.xrl_add_static_route(net("99.0.0.0/8"), IPv4("10.0.0.1"), 1)
        assert network.run_until(
            lambda: rip_b.routes.exact(net("99.0.0.0/8")) is not None,
            timeout=30)
        assert network.loop.now() - start < 5.0  # well under 30s

    def test_route_timeout_and_gc(self):
        network, a, b, rip_a, rip_b = build_rip_pair(update_interval=2.0)
        rip_a.xrl_add_static_route(net("99.0.0.0/8"), IPv4("10.0.0.1"), 1)
        assert network.run_until(
            lambda: rip_b.routes.exact(net("99.0.0.0/8")) is not None,
            timeout=30)
        # Cut the link: B must time the route out (metric 16) then GC it.
        network.links[0].set_up(False)
        assert network.run_until(
            lambda: (rip_b.routes.exact(net("99.0.0.0/8")) is None
                     or rip_b.routes.exact(net("99.0.0.0/8")).metric
                     == RIP_INFINITY),
            timeout=60)
        assert network.run_until(
            lambda: rip_b.routes.exact(net("99.0.0.0/8")) is None, timeout=60)
        # And the FIB entry must be gone.
        assert b.fea.fib4.lookup(IPv4("99.1.1.1")) is None

    def test_withdrawal_propagates_as_poison(self):
        network, a, b, rip_a, rip_b = build_rip_pair()
        rip_a.xrl_add_static_route(net("99.0.0.0/8"), IPv4("10.0.0.1"), 1)
        assert network.run_until(
            lambda: rip_b.routes.exact(net("99.0.0.0/8")) is not None,
            timeout=30)
        entry = rip_a.routes.exact(net("99.0.0.0/8"))
        rip_a._start_deletion(entry)
        assert network.run_until(
            lambda: (rip_b.routes.exact(net("99.0.0.0/8")) is None
                     or rip_b.routes.exact(net("99.0.0.0/8")).metric
                     == RIP_INFINITY),
            timeout=30)

    def test_three_router_chain_metric_accumulates(self):
        network = SimNetwork()
        routers = [network.add_router(name) for name in "abc"]
        network.link(routers[0], "10.0.0.1", routers[1], "10.0.0.2")
        network.link(routers[1], "10.0.1.1", routers[2], "10.0.1.2")
        rips = []
        for router in routers:
            rip = RipProcess(router.host, update_interval=5.0,
                             triggered_delay=0.5)
            rips.append(rip)
        enable_rip(rips[0], "eth0", "10.0.0.1")
        enable_rip(rips[1], "eth0", "10.0.0.2")
        enable_rip(rips[1], "eth1", "10.0.1.1")
        enable_rip(rips[2], "eth0", "10.0.1.2")
        rips[0].xrl_add_static_route(net("99.0.0.0/8"), IPv4("10.0.0.1"), 1)
        assert network.run_until(
            lambda: rips[2].routes.exact(net("99.0.0.0/8")) is not None,
            timeout=60)
        assert rips[2].routes.exact(net("99.0.0.0/8")).metric == 3

    def test_split_horizon_poisoned_reverse(self):
        network, a, b, rip_a, rip_b = build_rip_pair()
        rip_a.xrl_add_static_route(net("99.0.0.0/8"), IPv4("10.0.0.1"), 1)
        assert network.run_until(
            lambda: rip_b.routes.exact(net("99.0.0.0/8")) is not None,
            timeout=30)
        # B advertises the route back to A only with metric 16, so A's own
        # entry must never be displaced by a learned one.
        network.run(duration=20)
        entry = rip_a.routes.exact(net("99.0.0.0/8"))
        assert entry.is_local and entry.metric == 1

    def test_request_answered(self):
        network, a, b, rip_a, rip_b = build_rip_pair(update_interval=1000.0)
        rip_a.xrl_add_static_route(net("99.0.0.0/8"), IPv4("10.0.0.1"), 1)
        network.run(duration=1)
        # B joined before the route existed; a fresh C-style request works.
        rip_b._send_packet(rip_b.ports["eth0"],
                           RipPacket.whole_table_request(),
                           IPv4("224.0.0.9"))
        assert network.run_until(
            lambda: rip_b.routes.exact(net("99.0.0.0/8")) is not None,
            timeout=30)

    def test_counters(self):
        network, a, b, rip_a, rip_b = build_rip_pair()
        network.run(duration=12)
        error, args = rip_a.xrl.send_sync(
            Xrl("rip", "rip", "1.0", "get_counters",
                XrlArgs().add_txt("ifname", "eth0")), deadline=10)
        assert error.is_okay
        assert args.get_u32("packets_out") > 0
        assert args.get_u32("packets_in") > 0

    def test_redistribution_from_rib(self):
        """Static route in the RIB redistributes into RIP via redist4."""
        network, a, b, rip_a, rip_b = build_rip_pair()
        # Enable redistribution of static routes into RIP at router A.
        args = (XrlArgs().add_txt("target", "rip")
                .add_txt("from_protocol", "static"))
        error, __ = rip_a.xrl.send_sync(
            Xrl("rib", "rib", "1.0", "redist_enable4", args), deadline=10)
        assert error.is_okay
        # Add a static route to A's RIB (as the static_routes process would).
        route_args = (XrlArgs().add_txt("protocol", "static")
                      .add_ipv4net("net", "42.0.0.0/8")
                      .add_ipv4("nexthop", "10.0.0.1")
                      .add_u32("metric", 1).add_list("policytags", []))
        error, __ = rip_a.xrl.send_sync(
            Xrl("rib", "rib", "1.0", "add_route4", route_args), deadline=10)
        assert error.is_okay
        assert network.run_until(
            lambda: rip_b.routes.exact(net("42.0.0.0/8")) is not None,
            timeout=30)


class TestStaticRoutesProcess:
    def test_feeds_rib(self):
        from repro.staticroutes import StaticRoutesProcess

        network = SimNetwork()
        a = network.add_router("a")
        static = StaticRoutesProcess(a.host)
        args = (XrlArgs().add_ipv4net("net", "10.0.0.0/8")
                .add_ipv4("nexthop", "1.1.1.1").add_u32("metric", 1))
        error, __ = static.xrl.send_sync(
            Xrl("static_routes", "static_routes", "0.1", "add_route4", args),
            deadline=10)
        assert error.is_okay
        assert network.run_until(
            lambda: a.fea.fib4.lookup(IPv4("10.1.1.1")) is not None,
            timeout=10)
        # Delete via XRL as well.
        del_args = XrlArgs().add_ipv4net("net", "10.0.0.0/8")
        error, __ = static.xrl.send_sync(
            Xrl("static_routes", "static_routes", "0.1", "delete_route4",
                del_args), deadline=10)
        assert error.is_okay
        assert network.run_until(
            lambda: a.fea.fib4.lookup(IPv4("10.1.1.1")) is None, timeout=10)
