"""Shared fixtures: opt-in runtime sanitizers for integration tests.

``runtime_sanitizers`` arms the stage-graph consistency sanitizer and
the XRL dispatch sanitizer (see :mod:`repro.sanitizer`) around a test
and asserts at teardown that the run produced **zero** violations — the
dynamic analogue of the clean-tree gate in ``test_analysis.py``.  Tests
opt in with ``pytest.mark.usefixtures("runtime_sanitizers")`` (or a
module-level ``pytestmark``); everything else runs uninstrumented.
"""

import pytest

from repro.sanitizer import RuntimeSanitizer


@pytest.fixture
def runtime_sanitizers():
    sanitizer = RuntimeSanitizer()
    sanitizer.arm()
    try:
        yield sanitizer
    finally:
        sanitizer.disarm()
    rendered = "\n".join(v.render() for v in sanitizer.violations)
    assert not sanitizer.violations, (
        f"runtime sanitizer violations:\n{rendered}")
