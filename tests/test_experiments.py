"""Tests for the experiment harnesses (small scales; benches run full)."""

import pytest

from repro.experiments import (
    run_latency_experiment,
    run_route_flow,
    run_xrl_throughput,
    synthetic_feed,
)
from repro.experiments.latency import PROFILE_POINTS
from repro.experiments.synth import synthetic_prefixes


class TestSyntheticFeed:
    def test_exact_count_unique(self):
        prefixes = synthetic_prefixes(5000)
        assert len(prefixes) == 5000
        assert len({p.key() for p in prefixes}) == 5000

    def test_deterministic(self):
        assert [str(p) for p in synthetic_prefixes(100)] == \
            [str(p) for p in synthetic_prefixes(100)]

    def test_length_mix_dominated_by_24s(self):
        prefixes = synthetic_prefixes(5000)
        share_24 = sum(1 for p in prefixes if p.prefix_len == 24) / 5000
        assert 0.35 < share_24 < 0.60

    def test_feed_groups_cover_all_prefixes(self):
        total = 0
        for attributes, prefixes in synthetic_feed(3000, group_size=100):
            assert len(prefixes) <= 100
            assert attributes.nexthop is not None
            assert attributes.as_path.first_asn() == 65002
            total += len(prefixes)
        assert total == 3000

    def test_avoids_experiment_address_space(self):
        for p in synthetic_prefixes(3000):
            assert not p.overlaps(__import__("repro.net", fromlist=["IPNet"])
                                  .IPNet.parse("10.0.0.0/8"))


class TestXrlPerfHarness:
    def test_small_run(self):
        result = run_xrl_throughput(arg_counts=[0, 4], transaction_size=500,
                                    families=["intra", "tcp"])
        assert result.mean("intra", 0) > 0
        assert result.mean("tcp", 4) > 0
        table = result.table()
        assert "intra" in table and "tcp" in table

    def test_udp_family(self):
        result = run_xrl_throughput(arg_counts=[0], transaction_size=200,
                                    families=["udp"])
        assert result.mean("udp", 0) > 0

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            run_xrl_throughput(arg_counts=[0], families=["carrier-pigeon"])


class TestLatencyHarness:
    def test_empty_table_run(self):
        result = run_latency_experiment(initial_routes=0, test_routes=8)
        for label, __, __ in PROFILE_POINTS[1:]:
            assert len(result.deltas[label]) == 8
        averages = [result.stats(label)[0]
                    for label, __, __ in PROFILE_POINTS[1:]]
        assert averages == sorted(averages)
        assert "Entering kernel" in result.table()

    def test_preloaded_run_small(self):
        result = run_latency_experiment(initial_routes=2000, test_routes=5)
        assert result.initial_routes == 2000
        assert len(result.kernel_latencies()) == 5

    def test_different_peering(self):
        result = run_latency_experiment(initial_routes=500, test_routes=5,
                                        same_peering=False)
        assert result.peering == "different"
        assert len(result.kernel_latencies()) == 5


class TestRouteFlowHarness:
    def test_shapes_small(self):
        result = run_route_flow(route_count=20, scan_interval=10.0)
        assert result.max_delay("xorp") < 1.0
        assert result.max_delay("mrtd") < 1.0
        assert result.max_delay("cisco") > 3.0
        assert result.max_delay("quagga") > 3.0
        table = result.table()
        assert "xorp" in table and "cisco" in table
        assert "*" in result.ascii_plot("cisco")

    def test_subset_of_kinds(self):
        result = run_route_flow(kinds=["mrtd"], route_count=5)
        assert list(result.series) == ["mrtd"]
