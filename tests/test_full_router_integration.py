"""Whole-router integration: Router-Manager-driven routers running BGP,
OSPF and static routes concurrently over the simulated network."""

import pytest

from repro.bgp import BgpState
from repro.net import IPNet, IPv4
from repro.rtrmgr import Cli, RouterManager
from repro.simnet import SimNetwork

# Arm the runtime sanitizers (stage-graph consistency + XRL
# dispatch conformance) for every test in this module; the
# conftest fixture asserts zero violations at teardown.  Autouse
# at module level so it arms before class setup_method fixtures.
@pytest.fixture(autouse=True)
def _runtime_sanitizers(runtime_sanitizers):
    yield runtime_sanitizers


def net(text):
    return IPNet.parse(text)


@pytest.fixture
def two_managed_routers():
    network = SimNetwork()
    r1 = network.add_router("r1")
    r2 = network.add_router("r2")
    network.link(r1, "10.0.0.1", r2, "10.0.0.2")
    network.run(duration=1)
    mgr1 = RouterManager(r1.host)
    mgr2 = RouterManager(r2.host)
    return network, r1, r2, mgr1, mgr2


def wire_bgp_sessions(network, mgr1, mgr2):
    """Connect the two managed BGP processes with a session pair."""
    sessions = network.bgp_session(latency=0.002)
    handler1 = mgr1.modules["bgp"].peers["10.0.0.2"]
    handler2 = mgr2.modules["bgp"].peers["10.0.0.1"]
    handler1.attach_session(sessions[0])
    handler2.attach_session(sessions[1])
    handler1.enable()
    handler2.enable()
    return handler1, handler2


class TestManagedBgpPair:
    def test_config_to_established_to_routes(self, two_managed_routers):
        network, r1, r2, mgr1, mgr2 = two_managed_routers
        cli1, cli2 = Cli(mgr1), Cli(mgr2)
        for cli, local_as, peer, bgp_id in (
                (cli1, 65001, "10.0.0.2 as 65002", "1.1.1.1"),
                (cli2, 65002, "10.0.0.1 as 65001", "2.2.2.2")):
            assert cli.execute(f"set protocols bgp local-as {local_as}") == "OK"
            assert cli.execute(f"set protocols bgp bgp-id {bgp_id}") == "OK"
            addr, __, asn = peer.partition(" as ")
            assert cli.execute(
                f"set protocols bgp peer {addr} as {asn.strip()}") == "OK"
            local_ip = "10.0.0.1" if cli is cli1 else "10.0.0.2"
            assert cli.execute(
                f"set protocols bgp peer {addr} local-ip {local_ip}") == "OK"
            assert cli.execute("commit") == "Commit OK"
        handler1, handler2 = wire_bgp_sessions(network, mgr1, mgr2)
        assert network.run_until(
            lambda: handler1.fsm.state == BgpState.ESTABLISHED
            and handler2.fsm.state == BgpState.ESTABLISHED, timeout=60)
        # Originate a route at r1 through the CLI's XRL scripting facility.
        out = cli1.execute(
            'call "finder://bgp/bgp/1.0/originate_route4'
            '?net:ipv4net=99.0.0.0/8&next_hop:ipv4=10.0.0.1&unicast:bool=true"')
        assert not out.startswith("error"), out
        assert network.run_until(
            lambda: r2.fea.fib4.lookup(IPv4("99.1.1.1")) is not None,
            timeout=60)
        # Operator visibility on the receiving side.
        assert "99.0.0.0/8" in cli2.execute("show bgp routes")
        assert "Established" in cli2.execute("show bgp")

    def test_mixed_protocol_router(self, two_managed_routers):
        """BGP + OSPF + static all configured on one router via commit."""
        network, r1, r2, mgr1, mgr2 = two_managed_routers
        cli = Cli(mgr1)
        for line in (
            "set protocols bgp local-as 65001",
            "set protocols ospf router-id 1.1.1.1",
            "set protocols ospf interface eth0 cost 1",
            "set protocols static route 192.168.0.0/16 next-hop 10.0.0.2",
        ):
            assert cli.execute(line) == "OK", line
        assert cli.execute("commit") == "Commit OK"
        modules = cli.execute("show modules").split("\n")
        assert {"bgp", "ospf", "static_routes"} <= set(modules)
        # The static route reaches the FIB; OSPF speaks on eth0.
        assert network.run_until(
            lambda: r1.fea.fib4.lookup(IPv4("192.168.5.5")) is not None,
            timeout=30)
        ospf = mgr1.modules["ospf"]
        assert "eth0" in ospf.interfaces

    def test_second_commit_is_incremental(self, two_managed_routers):
        network, r1, r2, mgr1, mgr2 = two_managed_routers
        cli = Cli(mgr1)
        cli.execute("set protocols static route 192.168.0.0/16 next-hop 10.0.0.2")
        assert cli.execute("commit") == "Commit OK"
        static = mgr1.modules["static_routes"]
        assert len(static.routes) == 1
        cli.execute("set protocols static route 172.16.0.0/12 next-hop 10.0.0.2")
        assert cli.execute("commit") == "Commit OK"
        assert static is mgr1.modules["static_routes"]  # not restarted
        assert len(static.routes) == 2
        assert mgr1.commit_count == 2
