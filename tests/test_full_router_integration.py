"""Whole-router integration: Router-Manager-driven routers running BGP,
OSPF and static routes concurrently over the simulated network."""

from pathlib import Path

import pytest

from repro.analysis import build_protocol_graph, collect_modules
from repro.bgp import BgpState
from repro.bgp.attributes import ASPath, Origin, PathAttributeList
from repro.bgp.process import LOCAL_PEER_ID
from repro.bgp.route import BGPRoute
from repro.net import IPNet, IPv4
from repro.obs import Observability
from repro.rtrmgr import Cli, RouterManager
from repro.sanitizer import runtime_xrl_edges, unexplained_edges
from repro.simnet import SimNetwork

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"

_PROTOCOL_GRAPH = None


def protocol_graph():
    """The static protocol graph of the shipped tree, built once."""
    global _PROTOCOL_GRAPH
    if _PROTOCOL_GRAPH is None:
        modules, errors = collect_modules([SRC_REPRO])
        assert errors == []
        _PROTOCOL_GRAPH = build_protocol_graph(modules)
    return _PROTOCOL_GRAPH

# Arm the runtime sanitizers (stage-graph consistency + XRL
# dispatch conformance) for every test in this module; the
# conftest fixture asserts zero violations at teardown.  Autouse
# at module level so it arms before class setup_method fixtures.
@pytest.fixture(autouse=True)
def _runtime_sanitizers(runtime_sanitizers):
    yield runtime_sanitizers


def net(text):
    return IPNet.parse(text)


@pytest.fixture
def two_managed_routers():
    network = SimNetwork()
    r1 = network.add_router("r1")
    r2 = network.add_router("r2")
    network.link(r1, "10.0.0.1", r2, "10.0.0.2")
    network.run(duration=1)
    mgr1 = RouterManager(r1.host)
    mgr2 = RouterManager(r2.host)
    return network, r1, r2, mgr1, mgr2


def wire_bgp_sessions(network, mgr1, mgr2):
    """Connect the two managed BGP processes with a session pair."""
    sessions = network.bgp_session(latency=0.002)
    handler1 = mgr1.modules["bgp"].peers["10.0.0.2"]
    handler2 = mgr2.modules["bgp"].peers["10.0.0.1"]
    handler1.attach_session(sessions[0])
    handler2.attach_session(sessions[1])
    handler1.enable()
    handler2.enable()
    return handler1, handler2


class TestManagedBgpPair:
    def test_config_to_established_to_routes(self, two_managed_routers):
        network, r1, r2, mgr1, mgr2 = two_managed_routers
        cli1, cli2 = Cli(mgr1), Cli(mgr2)
        for cli, local_as, peer, bgp_id in (
                (cli1, 65001, "10.0.0.2 as 65002", "1.1.1.1"),
                (cli2, 65002, "10.0.0.1 as 65001", "2.2.2.2")):
            assert cli.execute(f"set protocols bgp local-as {local_as}") == "OK"
            assert cli.execute(f"set protocols bgp bgp-id {bgp_id}") == "OK"
            addr, __, asn = peer.partition(" as ")
            assert cli.execute(
                f"set protocols bgp peer {addr} as {asn.strip()}") == "OK"
            local_ip = "10.0.0.1" if cli is cli1 else "10.0.0.2"
            assert cli.execute(
                f"set protocols bgp peer {addr} local-ip {local_ip}") == "OK"
            assert cli.execute("commit") == "Commit OK"
        handler1, handler2 = wire_bgp_sessions(network, mgr1, mgr2)
        assert network.run_until(
            lambda: handler1.fsm.state == BgpState.ESTABLISHED
            and handler2.fsm.state == BgpState.ESTABLISHED, timeout=60)
        # Originate a route at r1 through the CLI's XRL scripting facility.
        out = cli1.execute(
            'call "finder://bgp/bgp/1.0/originate_route4'
            '?net:ipv4net=99.0.0.0/8&next_hop:ipv4=10.0.0.1&unicast:bool=true"')
        assert not out.startswith("error"), out
        assert network.run_until(
            lambda: r2.fea.fib4.lookup(IPv4("99.1.1.1")) is not None,
            timeout=60)
        # Operator visibility on the receiving side.
        assert "99.0.0.0/8" in cli2.execute("show bgp routes")
        assert "Established" in cli2.execute("show bgp")

    def test_mixed_protocol_router(self, two_managed_routers):
        """BGP + OSPF + static all configured on one router via commit."""
        network, r1, r2, mgr1, mgr2 = two_managed_routers
        cli = Cli(mgr1)
        for line in (
            "set protocols bgp local-as 65001",
            "set protocols ospf router-id 1.1.1.1",
            "set protocols ospf interface eth0 cost 1",
            "set protocols static route 192.168.0.0/16 next-hop 10.0.0.2",
        ):
            assert cli.execute(line) == "OK", line
        assert cli.execute("commit") == "Commit OK"
        modules = cli.execute("show modules").split("\n")
        assert {"bgp", "ospf", "static_routes"} <= set(modules)
        # The static route reaches the FIB; OSPF speaks on eth0.
        assert network.run_until(
            lambda: r1.fea.fib4.lookup(IPv4("192.168.5.5")) is not None,
            timeout=30)
        ospf = mgr1.modules["ospf"]
        assert "eth0" in ospf.interfaces

    def test_second_commit_is_incremental(self, two_managed_routers):
        network, r1, r2, mgr1, mgr2 = two_managed_routers
        cli = Cli(mgr1)
        cli.execute("set protocols static route 192.168.0.0/16 next-hop 10.0.0.2")
        assert cli.execute("commit") == "Commit OK"
        static = mgr1.modules["static_routes"]
        assert len(static.routes) == 1
        cli.execute("set protocols static route 172.16.0.0/12 next-hop 10.0.0.2")
        assert cli.execute("commit") == "Commit OK"
        assert static is mgr1.modules["static_routes"]  # not restarted
        assert len(static.routes) == 2
        assert mgr1.commit_count == 2


def _is_subsequence(needle, haystack):
    it = iter(haystack)
    return all(item in it for item in needle)


def establish_bgp_pair(two_managed_routers):
    """Configure and establish the r1<->r2 eBGP session; returns the CLIs."""
    network, r1, r2, mgr1, mgr2 = two_managed_routers
    cli1, cli2 = Cli(mgr1), Cli(mgr2)
    for cli, local_as, peer, bgp_id in (
            (cli1, 65001, "10.0.0.2 as 65002", "1.1.1.1"),
            (cli2, 65002, "10.0.0.1 as 65001", "2.2.2.2")):
        assert cli.execute(f"set protocols bgp local-as {local_as}") == "OK"
        assert cli.execute(f"set protocols bgp bgp-id {bgp_id}") == "OK"
        addr, __, asn = peer.partition(" as ")
        assert cli.execute(
            f"set protocols bgp peer {addr} as {asn.strip()}") == "OK"
        local_ip = "10.0.0.1" if cli is cli1 else "10.0.0.2"
        assert cli.execute(
            f"set protocols bgp peer {addr} local-ip {local_ip}") == "OK"
        assert cli.execute("commit") == "Commit OK"
    handler1, handler2 = wire_bgp_sessions(network, mgr1, mgr2)
    assert network.run_until(
        lambda: handler1.fsm.state == BgpState.ESTABLISHED
        and handler2.fsm.state == BgpState.ESTABLISHED, timeout=60)
    return cli1, cli2


class TestTracedRouteFlow:
    """End-to-end trace assertion: one BGP route from origination on r1
    through the eBGP session to r2's decision process, RIB and FEA FIB,
    reconstructed as a causal span tree (ISSUE tentpole acceptance)."""

    #: the r1-side and r2-side hops every cross-router route must take,
    #: in causal order.  ``decision`` appears twice — once per router —
    #: and the RIB tail (ExtInt -> redist -> FEA transfer -> kernel FIB)
    #: belongs to r2's pipeline.
    EXPECTED_HOPS = [
        "local-origin",                     # r1 BGP origination
        "nexthop-local", "decision", "fanout",   # r1 decision process
        "peer-in-10.0.0.1",                 # arrives at r2 from 10.0.0.1
        "in-filter-10.0.0.1", "nexthop-10.0.0.1",
        "decision", "fanout",               # r2 decision process
        "origin-ebgp4", "extint4",          # r2 RIB merge / ExtInt
        "redist4",                          # r2 redistribution
        "to-fea4",                          # r2 RIB -> FEA transfer
        "fib4",                             # r2 kernel FIB
    ]

    def _traced_flow(self, two_managed_routers, prefix, originate):
        """Originate *prefix* on r1 via *originate*, follow it to r2's
        FIB under an armed tracer; returns the trace context."""
        network, r1, r2, mgr1, mgr2 = two_managed_routers
        # Arm *after* the module fixture armed the sanitizers: wrappers
        # are method rebinds, so disarm order must be LIFO (the obs
        # context exits inside the test body, sanitizers at teardown).
        obs = Observability(clock=network.loop.clock.now)
        obs.trace(prefix)
        host_addr = IPv4(prefix.network.to_int() + 0x00010101)  # x.1.1.1
        with obs:
            originate(prefix)
            assert network.run_until(
                lambda: r2.fea.fib4.lookup(host_addr) is not None,
                timeout=60)
            network.run(duration=1)  # drain in-flight frames before disarm
        ctx = obs.tracer.context_for(prefix)
        assert ctx is not None and ctx.spans
        return obs, ctx

    def _assert_causal_tree(self, obs, ctx):
        hops = obs.tracer.hop_sequence(ctx.trace_id)
        assert _is_subsequence(self.EXPECTED_HOPS, hops), (
            f"expected hop subsequence {self.EXPECTED_HOPS}, got {hops}")
        # Timestamps never decrease along the recorded causal chain, and
        # every parent reference resolves to an earlier span.
        by_id = {s.span_id: s for s in ctx.spans}
        for earlier, later in zip(ctx.spans, ctx.spans[1:]):
            assert later.ts >= earlier.ts, (
                f"span {later.span_id} at t={later.ts} recorded after "
                f"span {earlier.span_id} at t={earlier.ts}")
        for span in ctx.spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.ts <= span.ts, (
                f"span {span.span_id} precedes its parent {parent.span_id}")
        # The tree reconstructs: every span lands at a definite depth.
        tree = obs.tracer.span_tree(ctx.trace_id)
        assert len(tree) == len(ctx.spans)
        # The route crossed both XRL process boundaries: BGP -> RIB and
        # RIB -> FEA each leave an xrl-send/xrl-recv pair in the tree.
        kinds = [s.kind for s in ctx.spans]
        assert kinds.count("xrl-send") >= 2
        assert kinds.count("xrl-recv") >= 2
        return hops

    def test_traced_route_unbatched(self, two_managed_routers):
        cli1, cli2 = establish_bgp_pair(two_managed_routers)
        prefix = net("99.0.0.0/8")

        def originate(prefix):
            out = cli1.execute(
                'call "finder://bgp/bgp/1.0/originate_route4'
                f'?net:ipv4net={prefix}&next_hop:ipv4=10.0.0.1'
                '&unicast:bool=true"')
            assert not out.startswith("error"), out

        obs, ctx = self._traced_flow(two_managed_routers, prefix, originate)
        self._assert_causal_tree(obs, ctx)

    def test_runtime_edges_subset_of_static_graph(self,
                                                  two_managed_routers):
        """Dynamic/static agreement: every XRL edge the tracer observed
        must be explained by the static protocol graph (ISSUE tentpole
        acceptance).  A runtime edge the graph cannot explain means the
        interprocedural analysis has a blind spot."""
        cli1, cli2 = establish_bgp_pair(two_managed_routers)
        prefix = net("97.0.0.0/8")

        def originate(prefix):
            out = cli1.execute(
                'call "finder://bgp/bgp/1.0/originate_route4'
                f'?net:ipv4net={prefix}&next_hop:ipv4=10.0.0.1'
                '&unicast:bool=true"')
            assert not out.startswith("error"), out

        obs, _ctx = self._traced_flow(two_managed_routers, prefix, originate)
        observed = runtime_xrl_edges(obs.tracer)
        assert observed, "the traced flow must cross XRL boundaries"
        pairs = {(send, recv) for send, recv, _method in observed}
        assert ("bgp", "rib") in pairs       # BGP pushed the route down
        assert ("rib", "fea") in pairs       # RIB transferred it to the FIB
        problems = unexplained_edges(obs.tracer, protocol_graph())
        assert problems == [], "\n".join(problems)

    def test_traced_route_batched_matches_unbatched(self,
                                                    two_managed_routers):
        """The batch contract, observed: a route delivered through the
        vectorized surface takes the identical hop sequence."""
        network, r1, r2, mgr1, mgr2 = two_managed_routers
        cli1, cli2 = establish_bgp_pair(two_managed_routers)
        unbatched_net, batched_net = net("99.0.0.0/8"), net("98.0.0.0/8")

        def originate_cli(prefix):
            out = cli1.execute(
                'call "finder://bgp/bgp/1.0/originate_route4'
                f'?net:ipv4net={prefix}&next_hop:ipv4=10.0.0.1'
                '&unicast:bool=true"')
            assert not out.startswith("error"), out

        def originate_batch(prefix):
            attributes = PathAttributeList(
                origin=Origin.IGP, as_path=ASPath(),
                nexthop=IPv4("10.0.0.1"))
            mgr1.modules["bgp"].local_origin.originate_batch(
                [BGPRoute(prefix, attributes, peer_id=LOCAL_PEER_ID)])

        obs1, ctx1 = self._traced_flow(
            two_managed_routers, unbatched_net, originate_cli)
        hops_unbatched = self._assert_causal_tree(obs1, ctx1)
        obs2, ctx2 = self._traced_flow(
            two_managed_routers, batched_net, originate_batch)
        hops_batched = self._assert_causal_tree(obs2, ctx2)
        assert hops_batched == hops_unbatched, (
            f"batched {hops_batched} != unbatched {hops_unbatched}")
