"""Unit tests for the PeerOut stage: coalescing, grouping, size limits."""

import pytest

from repro.bgp.attributes import ASPath, PathAttributeList
from repro.bgp.messages import MAX_MESSAGE_LEN, UpdateMessage, decode_message
from repro.bgp.peer import PeerOutStage
from repro.bgp.route import BGPRoute
from repro.eventloop import EventLoop, SimulatedClock
from repro.net import IPNet, IPv4


def attrs(**kw):
    kw.setdefault("nexthop", IPv4("10.0.0.1"))
    kw.setdefault("as_path", ASPath.from_sequence(65001))
    return PathAttributeList(**kw)


def route(i, attributes=None):
    return BGPRoute(IPNet(IPv4(0x0A000000 + (i << 8)), 24),
                    attributes if attributes is not None else attrs(),
                    peer_id="p")


@pytest.fixture
def stage():
    loop = EventLoop(SimulatedClock())
    sent = []
    out = PeerOutStage("out", loop, sent.append)
    return loop, out, sent


class TestPeerOut:
    def test_coalesces_same_attributes_into_one_update(self, stage):
        loop, out, sent = stage
        shared = attrs()
        for i in range(5):
            out.add_route(route(i, shared))
        loop.run_once()
        assert len(sent) == 1
        assert len(sent[0].nlri) == 5

    def test_different_attributes_split_updates(self, stage):
        loop, out, sent = stage
        out.add_route(route(0, attrs(med=1)))
        out.add_route(route(1, attrs(med=2)))
        loop.run_once()
        assert len(sent) == 2

    def test_withdrawals_batched(self, stage):
        loop, out, sent = stage
        for i in range(10):
            out.delete_route(route(i))
        loop.run_once()
        assert len(sent) == 1
        assert len(sent[0].withdrawn) == 10

    def test_replace_becomes_fresh_announcement(self, stage):
        loop, out, sent = stage
        old, new = route(0, attrs(med=1)), route(0, attrs(med=2))
        out.replace_route(old, new)
        loop.run_once()
        assert len(sent) == 1
        assert sent[0].nlri == [new.net]
        assert sent[0].withdrawn == []

    def test_large_batches_respect_max_message_size(self, stage):
        """Regression for the Figure 12 full-table dump overflow."""
        loop, out, sent = stage
        shared = attrs()
        for i in range(5000):
            out.add_route(route(i, shared))
        loop.run_once()
        assert len(sent) > 1
        for update in sent:
            encoded = update.encode()  # must not raise "message too long"
            assert len(encoded) <= MAX_MESSAGE_LEN
            decode_message(encoded)
        total = sum(len(u.nlri) for u in sent)
        assert total == 5000

    def test_large_withdrawal_batches_chunked(self, stage):
        loop, out, sent = stage
        for i in range(3000):
            out.delete_route(route(i))
        loop.run_once()
        assert sum(len(u.withdrawn) for u in sent) == 3000
        for update in sent:
            assert len(update.encode()) <= MAX_MESSAGE_LEN

    def test_flush_is_deferred_within_one_turn(self, stage):
        loop, out, sent = stage
        out.add_route(route(0))
        assert sent == []  # nothing leaves until the loop turns
        loop.run_once()
        assert len(sent) == 1

    def test_updates_sent_counter(self, stage):
        loop, out, sent = stage
        out.add_route(route(0))
        out.delete_route(route(1))
        loop.run_once()
        assert out.updates_sent == 2
