"""Tests for the Router Manager: templates, config tree, commit, CLI."""

import pytest

from repro.net import IPNet, IPv4
from repro.rtrmgr import (
    Cli,
    ConfigError,
    ConfigTree,
    RouterManager,
    TemplateError,
    parse_template,
)
from repro.rtrmgr.rtrmgr import CommitError
from repro.rtrmgr.template import DEFAULT_TEMPLATE
from repro.simnet import SimNetwork

SMALL_TEMPLATE = """
protocols {
    bgp {
        local-as: u32;
        peer @ : ipv4 {
            as: u32;
            holdtime: u32 = 90;
        }
    }
}
"""


class TestTemplateParsing:
    def test_parses_default_template(self):
        root = parse_template(DEFAULT_TEMPLATE)
        bgp = root.child("protocols").child("bgp")
        assert bgp.child("local-as").value_type.value == "u32"
        assert bgp.child("peer").is_tag

    def test_defaults(self):
        root = parse_template(SMALL_TEMPLATE)
        holdtime = (root.child("protocols").child("bgp")
                    .child("peer").child("holdtime"))
        assert holdtime.default == "90"

    def test_unknown_type_rejected(self):
        with pytest.raises(TemplateError):
            parse_template("a { b: float32; }")

    def test_unbalanced_rejected(self):
        with pytest.raises(TemplateError):
            parse_template("a { b: u32;")

    def test_empty_rejected(self):
        with pytest.raises(TemplateError):
            parse_template("   ")

    def test_value_validation(self):
        root = parse_template(SMALL_TEMPLATE)
        node = root.child("protocols").child("bgp").child("local-as")
        assert node.validate_value("65001") == 65001
        with pytest.raises(TemplateError):
            node.validate_value("not-a-number")


class TestConfigTree:
    def setup_method(self):
        self.tree = ConfigTree(parse_template(SMALL_TEMPLATE))

    def test_set_leaf(self):
        self.tree.set(["protocols", "bgp", "local-as"], "65001")
        assert self.tree.get_value(["protocols", "bgp", "local-as"]) == 65001

    def test_tag_instances(self):
        self.tree.set(["protocols", "bgp", "peer", "10.0.0.2", "as"], 65002)
        self.tree.set(["protocols", "bgp", "peer", "10.0.0.3", "as"], 65003)
        peers = self.tree.tag_instances(["protocols", "bgp", "peer"])
        assert [str(p.tag_value) for p in peers] == ["10.0.0.2", "10.0.0.3"]

    def test_template_default_via_get_value(self):
        self.tree.set(["protocols", "bgp", "peer", "10.0.0.2", "as"], 65002)
        assert self.tree.get_value(
            ["protocols", "bgp", "peer", "10.0.0.2", "holdtime"]) == 90

    def test_invalid_node_rejected(self):
        with pytest.raises((ConfigError, TemplateError)):
            self.tree.set(["protocols", "ospf"], None)

    def test_invalid_value_rejected(self):
        with pytest.raises((ConfigError, TemplateError)):
            self.tree.set(["protocols", "bgp", "local-as"], "abc")

    def test_delete(self):
        self.tree.set(["protocols", "bgp", "peer", "10.0.0.2", "as"], 65002)
        self.tree.delete(["protocols", "bgp", "peer", "10.0.0.2"])
        assert not self.tree.exists(["protocols", "bgp", "peer", "10.0.0.2"])

    def test_delete_missing_raises(self):
        with pytest.raises(ConfigError):
            self.tree.delete(["protocols", "bgp", "peer", "10.0.0.2"])

    def test_render_load_round_trip(self):
        self.tree.set(["protocols", "bgp", "local-as"], "65001")
        self.tree.set(["protocols", "bgp", "peer", "10.0.0.2", "as"], 65002)
        rendered = self.tree.render()
        fresh = ConfigTree(parse_template(SMALL_TEMPLATE))
        fresh.load(rendered)
        assert fresh.render() == rendered

    def test_load_braces_text(self):
        self.tree.load("""
            protocols {
                bgp {
                    local-as: 65001
                    peer 10.0.0.2 {
                        as: 65002
                    }
                }
            }
        """)
        assert self.tree.get_value(["protocols", "bgp", "local-as"]) == 65001
        assert self.tree.exists(["protocols", "bgp", "peer", "10.0.0.2"])

    def test_diff(self):
        old = {("a",): 1, ("b",): 2}
        new = {("a",): 1, ("b",): 3, ("c",): 4}
        created, changed, deleted = ConfigTree.diff(old, new)
        assert created == [("c",)]
        assert changed == [("b",)]
        assert deleted == []


@pytest.fixture
def managed_router():
    network = SimNetwork()
    router = network.add_router("r1")
    peer_router = network.add_router("r2")
    network.link(router, "10.0.0.1", peer_router, "10.0.0.2")
    rtrmgr = RouterManager(router.host)
    network.run(duration=1)
    return network, router, peer_router, rtrmgr


class TestCommit:
    def test_commit_starts_modules(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        rtrmgr.set("protocols bgp local-as", 65001)
        rtrmgr.set("protocols bgp bgp-id", "1.1.1.1")
        rtrmgr.commit()
        assert "bgp" in rtrmgr.modules
        assert rtrmgr.modules["bgp"].local_as == 65001

    def test_commit_configures_bgp_peer(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        rtrmgr.set("protocols bgp local-as", 65001)
        rtrmgr.set("protocols bgp peer 10.0.0.2 as", 65002)
        rtrmgr.set("protocols bgp peer 10.0.0.2 local-ip", "10.0.0.1")
        rtrmgr.commit()
        bgp = rtrmgr.modules["bgp"]
        assert "10.0.0.2" in bgp.peers
        assert bgp.peers["10.0.0.2"].config.peer_as == 65002

    def test_commit_static_routes(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        rtrmgr.set("protocols static route 99.0.0.0/8 next-hop", "10.0.0.2")
        rtrmgr.commit()
        assert network.run_until(
            lambda: router.fea.fib4.lookup(IPv4("99.1.1.1")) is not None,
            timeout=10)
        # Delete the route, commit again: it must disappear.
        rtrmgr.delete("protocols static route 99.0.0.0/8")
        rtrmgr.set("protocols static", None)  # keep the subtree
        rtrmgr.commit()
        assert network.run_until(
            lambda: router.fea.fib4.lookup(IPv4("99.1.1.1")) is None,
            timeout=10)

    def test_commit_rip(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        rtrmgr.set("protocols rip interface eth0 cost", 2)
        rtrmgr.commit()
        rip = rtrmgr.modules["rip"]
        assert "eth0" in rip.ports
        assert rip.ports["eth0"].cost == 2

    def test_commit_missing_mandatory_rolls_back(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        rtrmgr.set("protocols bgp local-as", 65001)
        rtrmgr.set("protocols bgp peer 10.0.0.2 as", 65002)
        # local-ip missing: the commit must fail and roll back.
        with pytest.raises(CommitError):
            rtrmgr.commit()
        assert not rtrmgr.config.exists(["protocols", "bgp"])

    def test_commit_without_local_as_fails(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        rtrmgr.set("protocols bgp bgp-id", "1.1.1.1")
        with pytest.raises(CommitError):
            rtrmgr.commit()

    def test_acls_installed_for_modules(self, managed_router):
        """Paper §7: the rtrmgr restricts what each process may resolve."""
        network, router, peer_router, rtrmgr = managed_router
        rtrmgr.set("protocols bgp local-as", 65001)
        rtrmgr.commit()
        bgp = rtrmgr.modules["bgp"]
        finder = router.host.finder
        acl = finder._acls.get(bgp.xrl.instance_name)
        assert acl is not None
        assert "rib" in acl.allowed_targets
        assert "fea" not in acl.allowed_targets

    def test_third_party_module_factory(self, managed_router):
        """Extensibility: a custom protocol plugs into the rtrmgr."""
        network, router, peer_router, rtrmgr = managed_router
        created = []

        class ToyProtocol:
            def __init__(self):
                self.routers = []
                created.append(self)

        rtrmgr.register_module_factory("toy", lambda: ToyProtocol(),
                                       allowed_targets={"rib"})
        rtrmgr._start_module("toy")
        assert created and "toy" in rtrmgr.modules


class TestCli:
    def test_set_show_commit(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        cli = Cli(rtrmgr)
        assert cli.execute("set protocols bgp local-as 65001") == "OK"
        assert cli.execute("set protocols bgp bgp-id 1.1.1.1") == "OK"
        assert "local-as: 65001" in cli.execute("show candidate")
        assert cli.execute("commit") == "Commit OK"
        assert "local-as: 65001" in cli.execute("show configuration")
        assert "bgp" in cli.execute("show modules")

    def test_show_bgp(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        cli = Cli(rtrmgr)
        cli.execute("set protocols bgp local-as 65001")
        cli.execute("commit")
        out = cli.execute("show bgp")
        assert "local AS: 65001" in out

    def test_show_route(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        cli = Cli(rtrmgr)
        out = cli.execute("show route")
        assert "10.0.0.0/24" in out

    def test_bad_command(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        cli = Cli(rtrmgr)
        assert cli.execute("frobnicate").startswith("error")
        assert cli.execute("set onlyonearg").startswith("error")
        assert cli.execute("show nonsense").startswith("error")

    def test_error_on_bad_config(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        cli = Cli(rtrmgr)
        assert cli.execute("set protocols ospf area 0").startswith("error")

    def test_call_xrl_scripting(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        cli = Cli(rtrmgr)
        out = cli.execute(
            'call "finder://fea/common/0.1/get_status"')
        assert "running" in out

    def test_help(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        assert "commit" in Cli(rtrmgr).execute("help")


class TestOspfCommit:
    def test_commit_ospf(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        cli = Cli(rtrmgr)
        assert cli.execute("set protocols ospf router-id 1.1.1.1") == "OK"
        assert cli.execute("set protocols ospf interface eth0 cost 2") == "OK"
        assert cli.execute("commit") == "Commit OK"
        ospf = rtrmgr.modules["ospf"]
        assert "eth0" in ospf.interfaces
        assert ospf.interfaces["eth0"].cost == 2
        out = cli.execute("show ospf")
        assert "router id: 1.1.1.1" in out

    def test_ospf_without_router_id_fails(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        rtrmgr.set("protocols ospf interface eth0 cost", 1)
        with pytest.raises(CommitError):
            rtrmgr.commit()

    def test_ospf_between_managed_routers(self, managed_router):
        """Two rtrmgr-managed routers form an OSPF adjacency."""
        network, router, peer_router, rtrmgr = managed_router
        rtrmgr.set("protocols ospf router-id", "1.1.1.1")
        rtrmgr.set("protocols ospf interface eth0 cost", 1)
        rtrmgr.commit()
        rtrmgr2 = RouterManager(peer_router.host)
        rtrmgr2.set("protocols ospf router-id", "2.2.2.2")
        rtrmgr2.set("protocols ospf interface eth0 cost", 1)
        rtrmgr2.commit()
        ospf = rtrmgr.modules["ospf"]
        assert network.run_until(
            lambda: "Full" in ospf.xrl_get_neighbors()["neighbors"],
            timeout=120)


class TestCliExtras:
    def test_show_bgp_routes(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        cli = Cli(rtrmgr)
        cli.execute("set protocols bgp local-as 65001")
        cli.execute("commit")
        bgp = rtrmgr.modules["bgp"]
        bgp.xrl_originate_route4(IPNet.parse("99.0.0.0/8"),
                                 IPv4("10.0.0.1"), True)
        network.run(duration=2)
        out = cli.execute("show bgp routes")
        assert "99.0.0.0/8" in out and "as-path" in out

    def test_interactive_shell(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        cli = Cli(rtrmgr)
        script = iter(["show modules", "bogus-command", "exit"])
        outputs = []
        cli.run_interactive(input_fn=lambda prompt: next(script),
                            output_fn=outputs.append)
        assert any("error" in out for out in outputs)

    def test_interactive_eof_exits(self, managed_router):
        network, router, peer_router, rtrmgr = managed_router
        cli = Cli(rtrmgr)

        def raise_eof(prompt):
            raise EOFError

        cli.run_interactive(input_fn=raise_eof)  # must return, not loop
