"""Integration tests: RIB process + FEA process over real XRLs."""

import pytest

from repro.core.process import Host
from repro.fea import FeaProcess
from repro.net import IPNet, IPv4
from repro.rib import RibProcess
from repro.xrl import Xrl, XrlArgs
from repro.xrl.error import XrlErrorCode


def net(text):
    return IPNet.parse(text)


@pytest.fixture
def setup():
    host = Host()
    fea = FeaProcess(host)
    rib = RibProcess(host)
    # a client process to drive the RIB over XRLs
    from repro.core.process import XorpProcess

    client_process = XorpProcess(host, "testclient")
    client = client_process.create_router("testclient")
    return host, fea, rib, client


def send(host, client, xrl_text):
    error, args = client.send_sync(Xrl.from_text(xrl_text), deadline=10)
    return error, args


def add_route(host, client, protocol, net_text, nexthop, metric=1):
    args = (XrlArgs().add_txt("protocol", protocol)
            .add_ipv4net("net", net_text).add_ipv4("nexthop", nexthop)
            .add_u32("metric", metric).add_list("policytags", []))
    error, __ = client.send_sync(Xrl("rib", "rib", "1.0", "add_route4", args),
                                 deadline=10)
    return error


def settle(host):
    """Let queued work (txqueue to FEA, notifications) drain."""
    host.loop.run_until(lambda: False, timeout=2.0)


class TestRouteFlow:
    def test_route_reaches_fib(self, setup):
        host, fea, rib, client = setup
        error = add_route(host, client, "static", "10.0.0.0/8", "192.168.0.1")
        assert error.is_okay
        assert host.loop.run_until(lambda: len(fea.fib4) == 1, timeout=5)
        entry = fea.fib4.lookup(IPv4("10.1.2.3"))
        assert entry.nexthop == IPv4("192.168.0.1")

    def test_admin_distance_arbitration(self, setup):
        """'As multiple protocols can supply different routes to the same
        destination subnet, the RIB must arbitrate between alternatives.'"""
        host, fea, rib, client = setup
        send(host, client, "finder://rib/rib/1.0/add_igp_table4?protocol:txt=rip")
        assert add_route(host, client, "rip", "10.0.0.0/8", "1.1.1.1").is_okay
        assert add_route(host, client, "static", "10.0.0.0/8", "2.2.2.2").is_okay
        settle(host)
        assert fea.fib4.lookup(IPv4("10.0.0.1")).nexthop == IPv4("2.2.2.2")
        # Withdraw the static route: RIP takes over.
        args = XrlArgs().add_txt("protocol", "static").add_ipv4net("net", "10.0.0.0/8")
        client.send_sync(Xrl("rib", "rib", "1.0", "delete_route4", args), deadline=10)
        settle(host)
        assert fea.fib4.lookup(IPv4("10.0.0.1")).nexthop == IPv4("1.1.1.1")

    def test_delete_unknown_route_fails(self, setup):
        host, fea, rib, client = setup
        args = XrlArgs().add_txt("protocol", "static").add_ipv4net("net", "10.0.0.0/8")
        error, __ = client.send_sync(
            Xrl("rib", "rib", "1.0", "delete_route4", args), deadline=10)
        assert error.code == XrlErrorCode.COMMAND_FAILED

    def test_route_to_unknown_table_fails(self, setup):
        host, fea, rib, client = setup
        error = add_route(host, client, "ospf", "10.0.0.0/8", "1.1.1.1")
        assert error.code == XrlErrorCode.COMMAND_FAILED

    def test_external_route_needs_resolvable_nexthop(self, setup):
        host, fea, rib, client = setup
        send(host, client, "finder://rib/rib/1.0/add_egp_table4?protocol:txt=ebgp")
        assert add_route(host, client, "ebgp", "20.0.0.0/8", "9.9.9.9").is_okay
        settle(host)
        assert fea.fib4.lookup(IPv4("20.0.0.1")) is None  # held: unresolvable
        assert add_route(host, client, "static", "9.9.9.0/24", "0.0.0.0").is_okay
        settle(host)
        assert fea.fib4.lookup(IPv4("20.0.0.1")) is not None  # released

    def test_lookup_route_by_dest(self, setup):
        host, fea, rib, client = setup
        add_route(host, client, "static", "10.0.0.0/8", "192.168.0.1", metric=7)
        error, args = send(host, client,
                           "finder://rib/rib/1.0/lookup_route_by_dest4?addr:ipv4=10.5.5.5")
        assert error.is_okay
        assert args.get_bool("resolves")
        assert args.get_ipv4net("net") == net("10.0.0.0/8")
        assert args.get_u32("metric") == 7
        assert args.get_txt("protocol") == "static"

    def test_lookup_no_route(self, setup):
        host, fea, rib, client = setup
        error, args = send(host, client,
                           "finder://rib/rib/1.0/lookup_route_by_dest4?addr:ipv4=10.5.5.5")
        assert error.is_okay
        assert not args.get_bool("resolves")

    def test_admin_distance_query(self, setup):
        host, __, __, client = setup
        error, args = send(host, client,
                           "finder://rib/rib/1.0/get_protocol_admin_distance?protocol:txt=rip")
        assert args.get_u32("admin_distance") == 120


class TestInterestRegistration:
    def register(self, client, target, addr):
        args = XrlArgs().add_txt("target", target).add_ipv4("addr", addr)
        return client.send_sync(
            Xrl("rib", "rib", "1.0", "register_interest4", args), deadline=10)

    def test_register_and_answer(self, setup):
        host, fea, rib, client = setup
        add_route(host, client, "static", "128.16.0.0/16", "1.1.1.1", metric=3)
        add_route(host, client, "static", "128.16.0.0/18", "2.2.2.2", metric=5)
        error, args = self.register(client, "testclient", "128.16.32.1")
        assert error.is_okay
        assert args.get_bool("resolves")
        assert args.get_ipv4net("net") == net("128.16.0.0/18")
        assert args.get_ipv4net("subnet") == net("128.16.0.0/18")
        assert args.get_u32("metric") == 5

    def test_invalidation_xrl_delivered(self, setup):
        host, fea, rib, client = setup
        from repro.interfaces import RIB_CLIENT_IDL

        invalid = []

        class Watcher:
            def xrl_route_info_invalid4(self, subnet):
                invalid.append(subnet)

        client.bind(RIB_CLIENT_IDL, Watcher())
        add_route(host, client, "static", "128.16.0.0/16", "1.1.1.1")
        error, args = self.register(client, client.class_name, "128.16.32.1")
        assert error.is_okay
        subnet = args.get_ipv4net("subnet")
        add_route(host, client, "static", "128.16.32.0/24", "3.3.3.3")
        assert host.loop.run_until(lambda: bool(invalid), timeout=5)
        assert invalid[0] == subnet

    def test_deregister(self, setup):
        host, fea, rib, client = setup
        add_route(host, client, "static", "128.16.0.0/16", "1.1.1.1")
        error, args = self.register(client, "testclient", "128.16.32.1")
        dereg = (XrlArgs().add_txt("target", "testclient")
                 .add_ipv4net("subnet", args.get_ipv4net("subnet")))
        error, __ = client.send_sync(
            Xrl("rib", "rib", "1.0", "deregister_interest4", dereg), deadline=10)
        assert error.is_okay


class TestRedistribution:
    def test_redist_feed(self, setup):
        host, fea, rib, client = setup
        from repro.interfaces import REDIST4_IDL

        feed = []

        class RedistTarget:
            def xrl_redist_add_route4(self, net, nexthop, metric,
                                      admin_distance, protocol, policytags):
                feed.append(("add", net, protocol))

            def xrl_redist_delete_route4(self, net, protocol):
                feed.append(("delete", net, protocol))

        client.bind(REDIST4_IDL, RedistTarget())
        send(host, client, "finder://rib/rib/1.0/add_igp_table4?protocol:txt=rip")
        add_route(host, client, "static", "10.0.0.0/8", "1.1.1.1")
        add_route(host, client, "rip", "11.0.0.0/8", "2.2.2.2")
        # Enable redistribution of static routes to the client target.
        args = (XrlArgs().add_txt("target", client.class_name)
                .add_txt("from_protocol", "static"))
        error, __ = client.send_sync(
            Xrl("rib", "rib", "1.0", "redist_enable4", args), deadline=10)
        assert error.is_okay
        assert host.loop.run_until(lambda: bool(feed), timeout=5)
        assert feed == [("add", net("10.0.0.0/8"), "static")]
        # New matching routes keep flowing.
        add_route(host, client, "static", "12.0.0.0/8", "1.1.1.1")
        assert host.loop.run_until(lambda: len(feed) == 2, timeout=5)
        assert feed[1][0] == "add" and feed[1][1] == net("12.0.0.0/8")


class TestProfilingPoints:
    def test_rib_profile_points_log(self, setup):
        host, fea, rib, client = setup
        rib.profiler.enable("route_arrive_rib")
        rib.profiler.enable("route_queued_fea")
        rib.profiler.enable("route_sent_fea")
        fea.profiler.enable("route_arrive_fea")
        fea.profiler.enable("route_kernel")
        add_route(host, client, "static", "10.0.1.0/24", "1.1.1.1")
        settle(host)
        assert rib.profiler.var("route_arrive_rib").entries
        assert rib.profiler.var("route_queued_fea").entries
        assert rib.profiler.var("route_sent_fea").entries
        assert fea.profiler.var("route_arrive_fea").entries
        assert fea.profiler.var("route_kernel").entries
        # Paper record format: "route_arrive_rib <secs> <usecs> add 10.0.1.0/24"
        line = rib.profiler.var("route_arrive_rib").format_entries()[0]
        parts = line.split()
        assert parts[0] == "route_arrive_rib"
        assert parts[3:] == ["add", "10.0.1.0/24"]

    def test_profiler_via_xrl(self, setup):
        host, fea, rib, client = setup
        error, __ = send(host, client,
                         "finder://rib/profile/1.0/enable?pname:txt=route_arrive_rib")
        assert error.is_okay
        add_route(host, client, "static", "10.0.1.0/24", "1.1.1.1")
        error, args = send(host, client,
                           "finder://rib/profile/1.0/get_entries?pname:txt=route_arrive_rib")
        assert error.is_okay
        assert "add 10.0.1.0/24" in args.get_txt("entries")
