"""Unit tests for BGP pipeline stages: nexthop, decision, fanout, damping."""

import pytest

from repro.bgp.attributes import ASPath, Origin, PathAttributeList
from repro.bgp.damping import DampingStage
from repro.bgp.decision import DecisionStage, PeerInfo, route_ranking_key
from repro.bgp.fanout import FanoutQueue
from repro.bgp.nexthop import NexthopCache, NexthopResolver, NexthopResolverStage
from repro.bgp.route import BGPRoute
from repro.core.stages import OriginStage, RouteTableStage
from repro.eventloop import EventLoop, SimulatedClock
from repro.net import IPNet, IPv4


def net(text):
    return IPNet.parse(text)


def bgp_route(net_text, peer="p1", nexthop="10.0.0.1", as_path=(),
              local_pref=None, med=None, origin=Origin.IGP, **annotations):
    attributes = PathAttributeList(
        origin=origin, as_path=ASPath.from_sequence(*as_path),
        nexthop=IPv4(nexthop), local_pref=local_pref, med=med)
    return BGPRoute(net(net_text), attributes, peer_id=peer, **annotations)


class SinkStage(RouteTableStage):
    def __init__(self):
        super().__init__("sink")
        self.log = []

    def add_route(self, route, caller=None):
        self.log.append(("add", route))

    def delete_route(self, route, caller=None):
        self.log.append(("delete", route))

    def replace_route(self, old, new, caller=None):
        self.log.append(("replace", old, new))

    def table(self):
        state = {}
        for entry in self.log:
            if entry[0] == "add":
                assert entry[1].net not in state
                state[entry[1].net] = entry[1]
            elif entry[0] == "delete":
                assert state.pop(entry[1].net, None) is not None
            else:
                assert entry[1].net in state
                state[entry[2].net] = entry[2]
        return state


@pytest.fixture
def loop():
    return EventLoop(SimulatedClock())


class TestNexthopCache:
    def test_empty_lookup(self):
        assert NexthopCache().lookup(IPv4("1.2.3.4")) is None

    def test_insert_and_hit(self):
        cache = NexthopCache()
        cache.insert(net("10.0.0.0/18"), True, 5)
        entry = cache.lookup(IPv4("10.0.32.1"))
        assert entry.resolvable and entry.metric == 5

    def test_miss_outside_subnet(self):
        cache = NexthopCache()
        cache.insert(net("10.0.0.0/18"), True, 5)
        assert cache.lookup(IPv4("10.0.64.1")) is None

    def test_many_disjoint_subnets(self):
        cache = NexthopCache()
        for i in range(100):
            cache.insert(net(f"10.{i}.0.0/16"), True, i)
        assert cache.lookup(IPv4("10.57.1.1")).metric == 57
        assert cache.lookup(IPv4("11.0.0.1")) is None

    def test_invalidate_overlapping(self):
        cache = NexthopCache()
        cache.insert(net("10.0.0.0/16"), True, 1)
        cache.insert(net("10.1.0.0/16"), True, 2)
        removed = cache.invalidate(net("10.0.0.0/15"))
        assert len(removed) == 2
        assert len(cache) == 0

    def test_refresh_keeps_users(self):
        cache = NexthopCache()
        entry = cache.insert(net("10.0.0.0/16"), True, 1)
        entry.users.add(123)
        refreshed = cache.insert(net("10.0.0.0/16"), False, 9)
        assert refreshed.users == {123}
        assert len(cache) == 1


class SyncAnswers:
    """Scriptable query function for the resolver."""

    def __init__(self, loop):
        self.loop = loop
        self.queries = []
        self.auto = None  # (subnet_fn, resolvable, metric)
        self.pending = []

    def __call__(self, nexthop, reply_cb):
        self.queries.append(nexthop)
        if self.auto is not None:
            subnet_fn, resolvable, metric = self.auto
            self.loop.call_soon(reply_cb, subnet_fn(nexthop), resolvable, metric)
        else:
            self.pending.append((nexthop, reply_cb))

    def answer_all(self, resolvable=True, metric=0, prefix_len=24):
        while self.pending:
            nexthop, reply_cb = self.pending.pop(0)
            reply_cb(IPNet(nexthop, prefix_len), resolvable, metric)


class TestNexthopResolverStage:
    def _build(self, loop):
        answers = SyncAnswers(loop)
        resolver = NexthopResolver(answers)
        stage = NexthopResolverStage("nh", resolver)
        sink = SinkStage()
        stage.set_next(sink)
        return answers, resolver, stage, sink

    def test_add_waits_for_answer(self, loop):
        answers, resolver, stage, sink = self._build(loop)
        stage.add_route(bgp_route("20.0.0.0/8", nexthop="1.1.1.1"))
        assert sink.log == []  # parked
        answers.answer_all(resolvable=True, metric=7)
        assert len(sink.log) == 1
        annotated = sink.log[0][1]
        assert annotated.resolvable and annotated.igp_metric == 7

    def test_cache_hit_is_synchronous(self, loop):
        answers, resolver, stage, sink = self._build(loop)
        stage.add_route(bgp_route("20.0.0.0/8", nexthop="1.1.1.1"))
        answers.answer_all(metric=3)
        stage.add_route(bgp_route("21.0.0.0/8", nexthop="1.1.1.2"))
        assert len(sink.log) == 2  # same /24 answer covers 1.1.1.2
        assert resolver.cache_hits == 1
        assert len(answers.queries) == 1

    def test_delete_while_parked_cancels(self, loop):
        answers, resolver, stage, sink = self._build(loop)
        route = bgp_route("20.0.0.0/8", nexthop="1.1.1.1")
        stage.add_route(route)
        stage.delete_route(route)
        answers.answer_all()
        assert sink.log == []

    def test_delete_forwards_annotated_version(self, loop):
        answers, resolver, stage, sink = self._build(loop)
        route = bgp_route("20.0.0.0/8", nexthop="1.1.1.1")
        stage.add_route(route)
        answers.answer_all()
        annotated = sink.log[0][1]
        stage.delete_route(route)
        assert sink.log[1] == ("delete", annotated)

    def test_unresolvable_annotation(self, loop):
        answers, resolver, stage, sink = self._build(loop)
        stage.add_route(bgp_route("20.0.0.0/8", nexthop="1.1.1.1"))
        answers.answer_all(resolvable=False)
        assert sink.log[0][1].resolvable is False

    def test_replace_produces_replace(self, loop):
        answers, resolver, stage, sink = self._build(loop)
        old = bgp_route("20.0.0.0/8", nexthop="1.1.1.1")
        stage.add_route(old)
        answers.answer_all()
        new = bgp_route("20.0.0.0/8", nexthop="1.1.1.1", med=9)
        stage.replace_route(old, new)
        answers.answer_all()
        assert sink.log[-1][0] == "replace"
        assert sink.log[-1][2].attributes.med == 9

    def test_reresolve_pushes_replacements(self, loop):
        answers, resolver, stage, sink = self._build(loop)
        stage.add_route(bgp_route("20.0.0.0/8", nexthop="1.1.1.1"))
        answers.answer_all(metric=5)
        # The RIB invalidates the covering subnet; new answer metric=9.
        resolver.invalidate(net("1.1.1.0/24"))
        answers.answer_all(metric=9)
        assert sink.log[-1][0] == "replace"
        assert sink.log[-1][2].igp_metric == 9

    def test_lookup_returns_forwarded(self, loop):
        answers, resolver, stage, sink = self._build(loop)
        route = bgp_route("20.0.0.0/8", nexthop="1.1.1.1")
        stage.add_route(route)
        assert stage.lookup_route(route.net) is None  # still parked
        answers.answer_all()
        assert stage.lookup_route(route.net).resolvable


PEERS = {
    "p1": PeerInfo("p1", is_ibgp=False, bgp_id=IPv4("1.1.1.1"),
                   peer_addr=IPv4("10.0.1.1")),
    "p2": PeerInfo("p2", is_ibgp=False, bgp_id=IPv4("2.2.2.2"),
                   peer_addr=IPv4("10.0.2.1")),
    "p3": PeerInfo("p3", is_ibgp=True, bgp_id=IPv4("3.3.3.3"),
                   peer_addr=IPv4("10.0.3.1")),
}


class Branch(OriginStage):
    """A fake peer branch: an origin with annotated routes."""


def build_decision(branch_names=("p1", "p2")):
    decision = DecisionStage("decision", lambda pid: PEERS[pid])
    sink = SinkStage()
    decision.set_next(sink)
    branches = {}
    for name in branch_names:
        branch = Branch(name)
        decision.add_branch(branch)
        branches[name] = branch
    return decision, sink, branches


def resolved(route, metric=0):
    return route.annotated(igp_metric=metric, resolvable=True)


class TestDecision:
    def test_first_eligible_route_wins(self):
        decision, sink, branches = build_decision()
        route = resolved(bgp_route("10.0.0.0/8", peer="p1"))
        branches["p1"].originate(route)
        assert sink.table()[route.net] is route

    def test_unresolvable_route_ignored(self):
        decision, sink, branches = build_decision()
        route = bgp_route("10.0.0.0/8", peer="p1",
                          resolvable=False, igp_metric=None)
        branches["p1"].originate(route)
        assert sink.log == []

    def test_local_pref_dominates(self):
        decision, sink, branches = build_decision()
        low = resolved(bgp_route("10.0.0.0/8", peer="p1", local_pref=50,
                                 as_path=(1,)))
        high = resolved(bgp_route("10.0.0.0/8", peer="p2", local_pref=200,
                                  as_path=(1, 2, 3)))
        branches["p1"].originate(low)
        branches["p2"].originate(high)
        assert sink.table()[low.net] is high

    def test_shorter_as_path_wins(self):
        decision, sink, branches = build_decision()
        long_path = resolved(bgp_route("10.0.0.0/8", peer="p1",
                                       as_path=(1, 2, 3)))
        short_path = resolved(bgp_route("10.0.0.0/8", peer="p2", as_path=(7,)))
        branches["p1"].originate(long_path)
        branches["p2"].originate(short_path)
        assert sink.table()[long_path.net] is short_path

    def test_lower_med_wins(self):
        decision, sink, branches = build_decision()
        high_med = resolved(bgp_route("10.0.0.0/8", peer="p1", med=50,
                                      as_path=(1,)))
        low_med = resolved(bgp_route("10.0.0.0/8", peer="p2", med=10,
                                     as_path=(1,)))
        branches["p1"].originate(high_med)
        branches["p2"].originate(low_med)
        assert sink.table()[low_med.net] is low_med

    def test_ebgp_beats_ibgp(self):
        decision, sink, branches = build_decision(("p1", "p3"))
        ibgp = resolved(bgp_route("10.0.0.0/8", peer="p3", as_path=(1,)))
        ebgp = resolved(bgp_route("10.0.0.0/8", peer="p1", as_path=(1,)))
        branches["p3"].originate(ibgp)
        branches["p1"].originate(ebgp)
        assert sink.table()[ebgp.net] is ebgp

    def test_lower_igp_metric_wins(self):
        decision, sink, branches = build_decision()
        far = resolved(bgp_route("10.0.0.0/8", peer="p1", as_path=(1,)), metric=100)
        near = resolved(bgp_route("10.0.0.0/8", peer="p2", as_path=(1,)), metric=5)
        branches["p1"].originate(far)
        branches["p2"].originate(near)
        assert sink.table()[far.net] is near

    def test_bgp_id_tiebreak(self):
        decision, sink, branches = build_decision()
        route1 = resolved(bgp_route("10.0.0.0/8", peer="p1", as_path=(1,)))
        route2 = resolved(bgp_route("10.0.0.0/8", peer="p2", as_path=(1,)))
        branches["p2"].originate(route2)
        branches["p1"].originate(route1)
        assert sink.table()[route1.net] is route1  # p1 has the lower BGP ID

    def test_withdraw_winner_promotes_alternative(self):
        decision, sink, branches = build_decision()
        best = resolved(bgp_route("10.0.0.0/8", peer="p1", as_path=(1,)))
        alt = resolved(bgp_route("10.0.0.0/8", peer="p2", as_path=(1, 2)))
        branches["p1"].originate(best)
        branches["p2"].originate(alt)
        branches["p1"].withdraw(best.net)
        assert sink.table()[best.net] is alt

    def test_withdraw_last_route(self):
        decision, sink, branches = build_decision()
        route = resolved(bgp_route("10.0.0.0/8", peer="p1"))
        branches["p1"].originate(route)
        branches["p1"].withdraw(route.net)
        assert sink.table() == {}

    def test_withdraw_loser_is_silent(self):
        decision, sink, branches = build_decision()
        best = resolved(bgp_route("10.0.0.0/8", peer="p1", as_path=(1,)))
        alt = resolved(bgp_route("10.0.0.0/8", peer="p2", as_path=(1, 2)))
        branches["p1"].originate(best)
        branches["p2"].originate(alt)
        count = len(sink.log)
        branches["p2"].withdraw(alt.net)
        assert len(sink.log) == count

    def test_replace_winner_reelects(self):
        decision, sink, branches = build_decision()
        best = resolved(bgp_route("10.0.0.0/8", peer="p1", as_path=(1,)))
        alt = resolved(bgp_route("10.0.0.0/8", peer="p2", as_path=(1, 2)))
        branches["p1"].originate(best)
        branches["p2"].originate(alt)
        worse = resolved(bgp_route("10.0.0.0/8", peer="p1", as_path=(1, 2, 3)))
        branches["p1"].originate(worse)  # replace: p1 now has a longer path
        assert sink.table()[best.net] is alt

    def test_ranking_key_total_order(self):
        routes = [
            resolved(bgp_route("10.0.0.0/8", peer="p1", as_path=(1,))),
            resolved(bgp_route("10.0.0.0/8", peer="p2", as_path=(1, 2))),
            resolved(bgp_route("10.0.0.0/8", peer="p3", local_pref=300)),
        ]
        keys = [route_ranking_key(r, PEERS[r.peer_id]) for r in routes]
        assert len(set(keys)) == len(keys)


class TestFanout:
    def _build(self, loop):
        fanout = FanoutQueue("fanout", loop, dump_slice=4)
        logs = {}

        def attach(name, dump=True):
            logs[name] = []
            fanout.add_reader(
                name,
                lambda op, r, old, n=name: logs[n].append((op, r.net)),
                dump=dump)

        return fanout, logs, attach

    def test_all_readers_receive(self, loop):
        fanout, logs, attach = self._build(loop)
        attach("a", dump=False)
        attach("b", dump=False)
        fanout.add_route(resolved(bgp_route("10.0.0.0/8")))
        loop.run()
        assert logs["a"] == logs["b"] == [("add", net("10.0.0.0/8"))]

    def test_busy_reader_queues(self, loop):
        fanout, logs, attach = self._build(loop)
        attach("a", dump=False)
        attach("b", dump=False)
        fanout.set_reader_busy("b", True)
        for i in range(5):
            fanout.add_route(resolved(bgp_route(f"10.{i}.0.0/16")))
        loop.run()
        assert len(logs["a"]) == 5
        assert logs["b"] == []
        assert fanout.queue_length == 5  # held for the slow reader
        fanout.set_reader_busy("b", False)
        loop.run()
        assert len(logs["b"]) == 5
        assert fanout.queue_length == 0  # single queue drained and trimmed

    def test_single_queue_not_per_reader(self, loop):
        """Paper: one queue with n readers, not n queues."""
        fanout, logs, attach = self._build(loop)
        for name in ("a", "b", "c"):
            attach(name, dump=False)
            fanout.set_reader_busy(name, True)
        for i in range(100):
            fanout.add_route(resolved(bgp_route(f"10.{i}.0.0/16")))
        assert fanout.queue_length == 100  # not 300

    def test_late_reader_gets_background_dump(self, loop):
        fanout, logs, attach = self._build(loop)
        attach("early", dump=False)
        for i in range(10):
            fanout.add_route(resolved(bgp_route(f"10.{i}.0.0/16")))
        loop.run()
        attach("late", dump=True)
        loop.run()
        assert len(logs["late"]) == 10
        assert sorted(n.key() for __, n in logs["late"]) == sorted(
            n.key() for __, n in logs["early"])

    def test_dump_interleaved_with_live_changes(self, loop):
        fanout, logs, attach = self._build(loop)
        attach("early", dump=False)
        for i in range(20):
            fanout.add_route(resolved(bgp_route(f"10.{i}.0.0/16")))
        loop.run()
        attach("late", dump=True)
        # While the dump is in progress, delete some routes and add others.
        loop.run_once()  # one dump slice (4 routes)
        fanout.delete_route(fanout.winners.exact(net("10.1.0.0/16")))
        fanout.delete_route(fanout.winners.exact(net("10.19.0.0/16")))
        fanout.add_route(resolved(bgp_route("10.99.0.0/16")))
        loop.run()
        # Reconstruct the late reader's table; must equal current winners.
        state = set()
        for op, prefix in logs["late"]:
            if op == "add":
                assert prefix not in state, f"duplicate add {prefix}"
                state.add(prefix)
            elif op == "delete":
                assert prefix in state, f"spurious delete {prefix}"
                state.discard(prefix)
            else:
                assert prefix in state
        expected = {n for n, __ in fanout.winners.items()}
        assert state == expected

    def test_remove_reader_trims_queue(self, loop):
        fanout, logs, attach = self._build(loop)
        attach("a", dump=False)
        attach("b", dump=False)
        fanout.set_reader_busy("b", True)
        fanout.add_route(resolved(bgp_route("10.0.0.0/8")))
        loop.run()
        assert fanout.queue_length == 1
        fanout.remove_reader("b")
        assert fanout.queue_length == 0

    def test_duplicate_reader_rejected(self, loop):
        fanout, logs, attach = self._build(loop)
        attach("a", dump=False)
        with pytest.raises(ValueError):
            fanout.add_reader("a", lambda *a: None)


class TestDamping:
    def _flap(self, loop, stage, route, times):
        for __ in range(times):
            stage.add_route(route)
            stage.delete_route(route)

    def test_stable_route_unaffected(self, loop):
        stage = DampingStage("damp", loop, suppress_threshold=2000)
        sink = SinkStage()
        stage.set_next(sink)
        route = resolved(bgp_route("10.0.0.0/8"))
        stage.add_route(route)
        assert sink.table()[route.net] is route
        assert stage.suppress_count == 0

    def test_flapping_route_suppressed(self, loop):
        stage = DampingStage("damp", loop, suppress_threshold=2000,
                             half_life=900)
        sink = SinkStage()
        stage.set_next(sink)
        route = resolved(bgp_route("10.0.0.0/8"))
        self._flap(loop, stage, route, 3)  # 3000 penalty
        stage.add_route(route)
        assert stage.suppress_count >= 1 or route.net not in sink.table()
        assert route.net not in sink.table()

    def test_suppressed_route_reused_after_decay(self, loop):
        stage = DampingStage("damp", loop, suppress_threshold=2000,
                             reuse_threshold=750, half_life=10.0)
        sink = SinkStage()
        stage.set_next(sink)
        route = resolved(bgp_route("10.0.0.0/8"))
        self._flap(loop, stage, route, 3)
        stage.add_route(route)
        assert route.net not in sink.table()
        # Half-life 10s: penalty 3000 -> below 750 within ~25s.
        loop.run(duration=40)
        assert route.net in sink.table()

    def test_withdrawal_while_suppressed(self, loop):
        stage = DampingStage("damp", loop, suppress_threshold=2000,
                             reuse_threshold=750, half_life=10.0)
        sink = SinkStage()
        stage.set_next(sink)
        route = resolved(bgp_route("10.0.0.0/8"))
        self._flap(loop, stage, route, 3)
        stage.add_route(route)   # suppressed, held
        stage.delete_route(route)  # withdrawn while suppressed
        loop.run(duration=60)
        assert route.net not in sink.table()  # never resurrected

    def test_penalty_decays(self, loop):
        stage = DampingStage("damp", loop, half_life=10.0)
        sink = SinkStage()
        stage.set_next(sink)
        route = resolved(bgp_route("10.0.0.0/8"))
        stage.add_route(route)
        stage.delete_route(route)
        p0 = stage.penalty_of(route.net)
        loop.clock.advance(10.0)
        assert stage.penalty_of(route.net) == pytest.approx(p0 / 2, rel=0.01)

    def test_other_stages_unaware(self, loop):
        """Paper: 'The code does not impact other stages.'"""
        origin = OriginStage("in")
        stage = DampingStage("damp", loop)
        sink = SinkStage()
        RouteTableStage.plumb(origin, stage, sink)
        route = resolved(bgp_route("10.0.0.0/8"))
        origin.originate(route)
        assert sink.lookup_route(route.net) is route


class TestDecisionUnresolvableTransitions:
    """Resolvability flips at decision level (complements RIB ExtInt tests)."""

    def test_winner_turning_unresolvable_is_withdrawn(self, loop):
        decision, sink, branches = build_decision(("p1",))
        answers_route = resolved(bgp_route("10.0.0.0/8", peer="p1"))
        branches["p1"].originate(answers_route)
        assert answers_route.net in sink.table()
        # The branch revises it to unresolvable (IGP lost the nexthop).
        dead = bgp_route("10.0.0.0/8", peer="p1",
                         resolvable=False, igp_metric=None)
        branches["p1"].originate(dead)
        assert answers_route.net not in sink.table()

    def test_unresolvable_becoming_resolvable_is_announced(self, loop):
        decision, sink, branches = build_decision(("p1",))
        dead = bgp_route("10.0.0.0/8", peer="p1",
                         resolvable=False, igp_metric=None)
        branches["p1"].originate(dead)
        assert sink.log == []
        alive = resolved(bgp_route("10.0.0.0/8", peer="p1"))
        branches["p1"].originate(alive)
        assert sink.table()[alive.net] is alive

    def test_winner_unresolvable_falls_back_to_alternative(self, loop):
        decision, sink, branches = build_decision()
        best = resolved(bgp_route("10.0.0.0/8", peer="p1", as_path=(1,)))
        alt = resolved(bgp_route("10.0.0.0/8", peer="p2", as_path=(1, 2)))
        branches["p1"].originate(best)
        branches["p2"].originate(alt)
        assert sink.table()[best.net] is best
        dead = bgp_route("10.0.0.0/8", peer="p1", as_path=(1,),
                         resolvable=False, igp_metric=None)
        branches["p1"].originate(dead)
        assert sink.table()[alt.net] is alt
