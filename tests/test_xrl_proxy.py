"""Tests for deferred dispatch and the §7 XRL proxy intermediary."""

import pytest

from repro.core.process import Host, XorpProcess
from repro.net import IPNet, IPv4
from repro.xrl import Xrl, XrlArgs, parse_idl
from repro.xrl.error import XrlErrorCode
from repro.xrl.proxy import XrlProxy
from repro.xrl.router import DeferredReply

SVC_IDL = parse_idl("""
interface svc/1.0 {
    add ? a:u32 & b:u32 -> total:u32;
    fail;
}
""")["svc/1.0"]


class Backend:
    def xrl_add(self, a, b):
        return {"total": a + b}

    def xrl_fail(self):
        raise RuntimeError("backend exploded")


@pytest.fixture
def setup():
    host = Host()
    backend_process = XorpProcess(host, "backend-p")
    backend = backend_process.create_router("svc")
    backend.bind(SVC_IDL, Backend())
    proxy_process = XorpProcess(host, "proxy-p")
    proxy_router = proxy_process.create_router("svc-proxy")
    proxy = XrlProxy(proxy_router, SVC_IDL, "svc")
    client_process = XorpProcess(host, "client-p")
    client = client_process.create_router("client")
    return host, proxy, client


class TestDeferredDispatch:
    def test_deferred_reply_roundtrip(self):
        host = Host()
        process = XorpProcess(host, "p")
        router = process.create_router("slow")
        pending = []

        def handler(args):
            deferred = DeferredReply()
            pending.append(deferred)
            return deferred

        router.register_raw_method("slow/1.0/wait", handler)
        client_process = XorpProcess(host, "cp")
        client = client_process.create_router("cli")
        results = []
        client.send(Xrl("slow", "slow", "1.0", "wait"),
                    lambda err, args: results.append(err))
        host.loop.run_until(lambda: bool(pending), timeout=5)
        assert not results  # nothing answered yet
        pending[0].reply(XrlArgs())
        assert host.loop.run_until(lambda: bool(results), timeout=5)
        assert results[0].is_okay

    def test_deferred_fail(self):
        host = Host()
        process = XorpProcess(host, "p")
        router = process.create_router("slow")
        pending = []
        router.register_raw_method(
            "slow/1.0/wait",
            lambda args: pending.append(DeferredReply()) or pending[-1])
        client_process = XorpProcess(host, "cp")
        client = client_process.create_router("cli")
        results = []
        client.send(Xrl("slow", "slow", "1.0", "wait"),
                    lambda err, args: results.append(err))
        host.loop.run_until(lambda: bool(pending), timeout=5)
        from repro.xrl import XrlError

        pending[0].fail(XrlError(XrlErrorCode.COMMAND_FAILED, "later-no"))
        assert host.loop.run_until(lambda: bool(results), timeout=5)
        assert results[0].code == XrlErrorCode.COMMAND_FAILED

    def test_sync_dispatch_frame_raises_on_deferral(self):
        host = Host()
        process = XorpProcess(host, "p")
        router = process.create_router("slow")
        router.register_raw_method("slow/1.0/wait",
                                   lambda args: DeferredReply())
        from repro.xrl.transport.base import encode_request

        frame = encode_request(1, router._key + "/slow/1.0/wait", XrlArgs())
        with pytest.raises(RuntimeError):
            router.dispatch_frame(frame)

    def test_double_completion_is_idempotent(self):
        deferred = DeferredReply()
        responses = []
        deferred._bind(responses.append, 1, None)
        deferred.reply(XrlArgs())
        deferred.reply(XrlArgs())
        from repro.xrl import XrlError

        deferred.fail(XrlError(XrlErrorCode.COMMAND_FAILED))
        assert len(responses) == 1


class TestXrlProxy:
    def _call(self, client, target, a, b):
        args = XrlArgs().add_u32("a", a).add_u32("b", b)
        return client.send_sync(Xrl(target, "svc", "1.0", "add", args),
                                deadline=10)

    def test_unconstrained_forwarding(self, setup):
        host, proxy, client = setup
        error, result = self._call(client, "svc-proxy", 2, 3)
        assert error.is_okay, error
        assert result.get_u32("total") == 5
        assert proxy.forwarded == 1

    def test_constraint_refuses_out_of_range(self, setup):
        host, proxy, client = setup
        proxy.set_constraint(
            "add", lambda kw: None if kw["a"] <= 100 else "a too large")
        okay, result = self._call(client, "svc-proxy", 7, 1)
        assert okay.is_okay and result.get_u32("total") == 8
        denied, __ = self._call(client, "svc-proxy", 101, 1)
        assert denied.code == XrlErrorCode.ACCESS_DENIED
        assert "too large" in denied.note
        assert proxy.refused == 1

    def test_backend_errors_propagate(self, setup):
        host, proxy, client = setup
        error, __ = client.send_sync(
            Xrl("svc-proxy", "svc", "1.0", "fail"), deadline=10)
        assert error.code == XrlErrorCode.COMMAND_FAILED
        assert "exploded" in error.note

    def test_constraint_on_unknown_method_rejected(self, setup):
        host, proxy, client = setup
        from repro.xrl import XrlError

        with pytest.raises(XrlError):
            proxy.set_constraint("bogus", lambda kw: None)

    def test_sandboxed_caller_sees_only_the_proxy(self, setup):
        """Finder ACL + proxy: argument-level sandboxing end to end."""
        host, proxy, client = setup
        host.finder.set_acl(client.instance_name,
                            allowed_targets={"svc-proxy"})
        proxy.set_constraint(
            "add", lambda kw: None if kw["b"] != 0 else "b must be nonzero")
        # Direct backend access: denied at resolution.
        direct, __ = self._call(client, "svc", 1, 1)
        assert direct.code == XrlErrorCode.ACCESS_DENIED
        # Through the proxy, within constraints: allowed.
        okay, result = self._call(client, "svc-proxy", 1, 1)
        assert okay.is_okay and result.get_u32("total") == 2
        # Through the proxy, outside constraints: refused.
        denied, __ = self._call(client, "svc-proxy", 1, 0)
        assert denied.code == XrlErrorCode.ACCESS_DENIED
