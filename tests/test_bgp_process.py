"""End-to-end BGP: multiple routers exchanging real BGP byte streams.

Each "router" is a Host (own Finder) holding FEA + RIB + BGP processes;
routers share one simulated-clock event loop.  Peerings run over loopback
byte-stream sessions carrying fully encoded BGP messages.
"""

import pytest

from repro.bgp import BgpProcess, BgpState
from repro.bgp.peer import PeerConfig
from repro.bgp.session import session_pair
from repro.core.process import Host
from repro.eventloop import EventLoop, SimulatedClock
from repro.fea import FeaProcess
from repro.net import IPNet, IPv4
from repro.rib import RibProcess
from repro.xrl import Xrl, XrlArgs


def net(text):
    return IPNet.parse(text)


class Router:
    def __init__(self, loop, name, local_as, router_id):
        self.name = name
        self.host = Host(loop=loop)
        self.loop = loop
        self.fea = FeaProcess(self.host)
        self.rib = RibProcess(self.host)
        self.bgp = BgpProcess(self.host, local_as=local_as,
                              bgp_id=IPv4(router_id),
                              debug_cache_stages=True)
        self.local_as = local_as

    def add_static(self, net_text, nexthop):
        """Install a static route in the RIB (gives BGP resolvability)."""
        args = (XrlArgs().add_txt("protocol", "static")
                .add_ipv4net("net", net_text).add_ipv4("nexthop", nexthop)
                .add_u32("metric", 1).add_list("policytags", []))
        error, __ = self.bgp.xrl.send_sync(
            Xrl("rib", "rib", "1.0", "add_route4", args), deadline=10)
        assert error.is_okay, error

    def originate(self, net_text, nexthop):
        self.bgp.xrl_originate_route4(net(net_text), IPv4(nexthop), True)

    def withdraw(self, net_text):
        self.bgp.xrl_withdraw_route4(net(net_text))


def connect(router_a, router_b, addr_a, addr_b, latency=0.001):
    loop = router_a.loop
    session_a, session_b = session_pair(loop, latency)
    peer_a = router_a.bgp.add_peer(PeerConfig(
        IPv4(addr_b), router_b.local_as, router_a.local_as, IPv4(addr_a)))
    peer_a.attach_session(session_a)
    peer_b = router_b.bgp.add_peer(PeerConfig(
        IPv4(addr_a), router_a.local_as, router_b.local_as, IPv4(addr_b)))
    peer_b.attach_session(session_b)
    # Each side needs an IGP route towards the peering subnet.
    subnet = IPNet(IPv4(addr_a), 24)
    router_a.add_static(str(subnet), "0.0.0.0")
    router_b.add_static(str(subnet), "0.0.0.0")
    peer_a.enable()
    peer_b.enable()
    return peer_a, peer_b


def established(*peers):
    return all(p.fsm.state == BgpState.ESTABLISHED for p in peers)


@pytest.fixture
def two_routers():
    loop = EventLoop(SimulatedClock())
    a = Router(loop, "A", 65001, "1.1.1.1")
    b = Router(loop, "B", 65002, "2.2.2.2")
    peer_ab, peer_ba = connect(a, b, "10.0.0.1", "10.0.0.2")
    assert loop.run_until(lambda: established(peer_ab, peer_ba), timeout=60)
    return loop, a, b, peer_ab, peer_ba


class TestTwoRouters:
    def test_session_establishes(self, two_routers):
        loop, a, b, peer_ab, peer_ba = two_routers
        assert peer_ab.fsm.state == BgpState.ESTABLISHED
        assert peer_ab.info.bgp_id == IPv4("2.2.2.2")

    def test_route_propagates(self, two_routers):
        loop, a, b, peer_ab, peer_ba = two_routers
        a.originate("99.0.0.0/8", "10.0.0.1")
        assert loop.run_until(
            lambda: b.fea.fib4.lookup(IPv4("99.1.2.3")) is not None,
            timeout=30)
        entry = b.fea.fib4.lookup(IPv4("99.1.2.3"))
        assert entry.nexthop == IPv4("10.0.0.1")

    def test_as_path_and_nexthop_rewritten(self, two_routers):
        loop, a, b, peer_ab, peer_ba = two_routers
        a.originate("99.0.0.0/8", "10.0.0.1")
        assert loop.run_until(
            lambda: net("99.0.0.0/8") in b.bgp.decision.winners, timeout=30)
        route = b.bgp.decision.winners[net("99.0.0.0/8")]
        assert route.attributes.as_path.as_list() == [65001]
        assert route.nexthop == IPv4("10.0.0.1")
        assert route.attributes.local_pref == 100  # default applied on import

    def test_withdraw_propagates(self, two_routers):
        loop, a, b, peer_ab, peer_ba = two_routers
        a.originate("99.0.0.0/8", "10.0.0.1")
        assert loop.run_until(
            lambda: net("99.0.0.0/8") in b.bgp.decision.winners, timeout=30)
        a.withdraw("99.0.0.0/8")
        assert loop.run_until(
            lambda: net("99.0.0.0/8") not in b.bgp.decision.winners,
            timeout=30)
        assert loop.run_until(
            lambda: b.fea.fib4.lookup(IPv4("99.1.2.3")) is None, timeout=30)

    def test_many_routes_propagate(self, two_routers):
        loop, a, b, peer_ab, peer_ba = two_routers
        for i in range(50):
            a.originate(f"99.{i}.0.0/16", "10.0.0.1")
        assert loop.run_until(
            lambda: b.bgp.decision.route_count >= 50, timeout=60)
        assert b.bgp.decision.route_count == 50

    def test_peering_down_deletes_routes_in_background(self, two_routers):
        loop, a, b, peer_ab, peer_ba = two_routers
        for i in range(20):
            a.originate(f"99.{i}.0.0/16", "10.0.0.1")
        assert loop.run_until(
            lambda: b.bgp.decision.route_count == 20, timeout=60)
        # Drop the peering from A's side: B must withdraw everything.
        peer_ab.disable()
        assert loop.run_until(
            lambda: b.bgp.decision.route_count == 0, timeout=120)
        assert peer_ba.deletion_stages_created >= 1
        assert loop.run_until(
            lambda: b.fea.fib4.lookup(IPv4("99.1.0.1")) is None, timeout=30)

    def test_flap_reconverges(self, two_routers):
        loop, a, b, peer_ab, peer_ba = two_routers
        for i in range(10):
            a.originate(f"99.{i}.0.0/16", "10.0.0.1")
        assert loop.run_until(lambda: b.bgp.decision.route_count == 10,
                              timeout=60)
        peer_ab.disable()
        assert loop.run_until(lambda: b.bgp.decision.route_count == 0,
                              timeout=120)
        peer_ab.enable()
        assert loop.run_until(
            lambda: established(peer_ab, peer_ba), timeout=120)
        assert loop.run_until(lambda: b.bgp.decision.route_count == 10,
                              timeout=120)

    def test_late_peer_receives_full_table_via_dump(self, two_routers):
        loop, a, b, peer_ab, peer_ba = two_routers
        for i in range(30):
            a.originate(f"99.{i}.0.0/16", "10.0.0.1")
        assert loop.run_until(lambda: b.bgp.decision.route_count == 30,
                              timeout=60)
        # Router C joins later and must receive the whole table.
        c = Router(loop, "C", 65003, "3.3.3.3")
        peer_bc, peer_cb = connect(b, c, "10.0.1.1", "10.0.1.2")
        assert loop.run_until(lambda: established(peer_bc, peer_cb),
                              timeout=120)
        assert loop.run_until(lambda: c.bgp.decision.route_count == 30,
                              timeout=120)
        route = c.bgp.decision.winners[net("99.0.0.0/16")]
        assert route.attributes.as_path.as_list() == [65002, 65001]


class TestThreeRouterChain:
    def test_transit_propagation(self):
        loop = EventLoop(SimulatedClock())
        a = Router(loop, "A", 65001, "1.1.1.1")
        b = Router(loop, "B", 65002, "2.2.2.2")
        c = Router(loop, "C", 65003, "3.3.3.3")
        peer_ab, peer_ba = connect(a, b, "10.0.0.1", "10.0.0.2")
        peer_bc, peer_cb = connect(b, c, "10.0.1.1", "10.0.1.2")
        assert loop.run_until(
            lambda: established(peer_ab, peer_ba, peer_bc, peer_cb),
            timeout=120)
        a.originate("99.0.0.0/8", "10.0.0.1")
        assert loop.run_until(
            lambda: net("99.0.0.0/8") in c.bgp.decision.winners, timeout=60)
        route = c.bgp.decision.winners[net("99.0.0.0/8")]
        assert route.attributes.as_path.as_list() == [65002, 65001]
        assert route.nexthop == IPv4("10.0.1.1")  # rewritten by B

    def test_no_route_back_to_origin(self):
        """Split horizon: A's route must not be advertised back to A."""
        loop = EventLoop(SimulatedClock())
        a = Router(loop, "A", 65001, "1.1.1.1")
        b = Router(loop, "B", 65002, "2.2.2.2")
        peer_ab, peer_ba = connect(a, b, "10.0.0.1", "10.0.0.2")
        assert loop.run_until(lambda: established(peer_ab, peer_ba),
                              timeout=60)
        a.originate("99.0.0.0/8", "10.0.0.1")
        assert loop.run_until(
            lambda: net("99.0.0.0/8") in b.bgp.decision.winners, timeout=30)
        loop.run(duration=30)
        # A's own PeerIn for the peering with B must stay empty.
        assert peer_ab.peer_in.route_count == 0


class TestIbgp:
    def test_ibgp_no_reflection(self):
        """A route learned from one IBGP peer is not sent to another."""
        loop = EventLoop(SimulatedClock())
        a = Router(loop, "A", 65001, "1.1.1.1")
        b = Router(loop, "B", 65001, "2.2.2.2")  # same AS: IBGP
        c = Router(loop, "C", 65001, "3.3.3.3")
        peer_ab, peer_ba = connect(a, b, "10.0.0.1", "10.0.0.2")
        peer_bc, peer_cb = connect(b, c, "10.0.1.1", "10.0.1.2")
        assert loop.run_until(
            lambda: established(peer_ab, peer_ba, peer_bc, peer_cb),
            timeout=120)
        b.add_static("10.0.0.0/24", "0.0.0.0")  # resolvability at B
        a.originate("99.0.0.0/8", "10.0.0.1")
        assert loop.run_until(
            lambda: net("99.0.0.0/8") in b.bgp.decision.winners, timeout=60)
        loop.run(duration=30)
        assert net("99.0.0.0/8") not in c.bgp.decision.winners

    def test_ibgp_keeps_nexthop_and_localpref(self):
        loop = EventLoop(SimulatedClock())
        a = Router(loop, "A", 65001, "1.1.1.1")
        b = Router(loop, "B", 65001, "2.2.2.2")
        peer_ab, peer_ba = connect(a, b, "10.0.0.1", "10.0.0.2")
        assert loop.run_until(lambda: established(peer_ab, peer_ba),
                              timeout=60)
        a.originate("99.0.0.0/8", "10.0.0.5")
        b.add_static("10.0.0.0/24", "0.0.0.0")
        assert loop.run_until(
            lambda: net("99.0.0.0/8") in b.bgp.decision.winners, timeout=30)
        route = b.bgp.decision.winners[net("99.0.0.0/8")]
        assert route.nexthop == IPv4("10.0.0.5")  # NOT rewritten on IBGP
        assert route.attributes.as_path.as_list() == []  # no prepend
