"""Property tests for the negotiated binary XRL frame codec.

The binary codec is stateful (per-connection method interning) and its
decode path deliberately skips per-atom validation, so the properties
that matter are:

* **round trip** — any encodable frame decodes to the same
  seq/method/error/args, for every atom type, nested lists included;
* **codec equivalence** — the textual and binary codecs agree on the
  semantic content of every frame;
* **structured failure** — truncated or corrupted frames either decode
  (corruption can be semantically invisible) or raise :class:`XrlError`;
  never any other exception, because a transport feeds these to a live
  dispatch loop;
* **interning** — repeated methods shrink to a 1–2 byte reference and
  decode through the paired table; a dangling reference is a structured
  error;
* **negotiation** — HELLO payloads round-trip, garbage is rejected as
  :class:`XrlError`, and codec choice always lands on a codec both ends
  speak, with textual as the floor.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import IPNet, IPv4, IPv6, Mac
from repro.xrl.args import XrlArgs
from repro.xrl.codec import (
    CODEC_PREFERENCE,
    TEXTUAL,
    BinaryCodec,
    choose_codec,
    decode_hello,
    encode_hello,
    make_codec,
)
from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.types import XrlAtom, XrlAtomType

# -- strategies ---------------------------------------------------------------

atom_names = st.text(
    alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E,
                           exclude_characters="%&=?/:,"),
    min_size=1, max_size=12)


def _scalar_atom(name):
    return st.one_of(
        st.builds(lambda n, v: XrlAtom(n, XrlAtomType.I32, v), name,
                  st.integers(-(1 << 31), (1 << 31) - 1)),
        st.builds(lambda n, v: XrlAtom(n, XrlAtomType.U32, v), name,
                  st.integers(0, (1 << 32) - 1)),
        st.builds(lambda n, v: XrlAtom(n, XrlAtomType.I64, v), name,
                  st.integers(-(1 << 63), (1 << 63) - 1)),
        st.builds(lambda n, v: XrlAtom(n, XrlAtomType.U64, v), name,
                  st.integers(0, (1 << 64) - 1)),
        st.builds(lambda n, v: XrlAtom(n, XrlAtomType.TXT, v), name,
                  st.text(max_size=48)),
        st.builds(lambda n, v: XrlAtom(n, XrlAtomType.BOOL, v), name,
                  st.booleans()),
        st.builds(lambda n, v: XrlAtom(n, XrlAtomType.IPV4, IPv4(v)), name,
                  st.integers(0, (1 << 32) - 1)),
        st.builds(lambda n, v: XrlAtom(n, XrlAtomType.IPV6, IPv6(v)), name,
                  st.integers(0, (1 << 128) - 1)),
        st.builds(lambda n, v, p: XrlAtom(n, XrlAtomType.IPV4NET,
                                          IPNet(IPv4(v), p)),
                  name, st.integers(0, (1 << 32) - 1), st.integers(0, 32)),
        st.builds(lambda n, v, p: XrlAtom(n, XrlAtomType.IPV6NET,
                                          IPNet(IPv6(v), p)),
                  name, st.integers(0, (1 << 128) - 1), st.integers(0, 128)),
        st.builds(lambda n, v: XrlAtom(n, XrlAtomType.MAC, Mac(v)), name,
                  st.integers(0, (1 << 48) - 1)),
        st.builds(lambda n, v: XrlAtom(n, XrlAtomType.BINARY, bytes(v)), name,
                  st.lists(st.integers(0, 255), max_size=48)),
    )


def _list_atom(name):
    return st.builds(
        lambda n, items: XrlAtom(n, XrlAtomType.LIST, items),
        name, st.lists(_scalar_atom(atom_names), max_size=4))


def _args_from(atoms):
    args = XrlArgs()
    for atom in atoms:
        if atom.name not in args._index:
            args.add(atom)
    return args


args_strategy = st.builds(
    _args_from,
    st.lists(st.one_of(_scalar_atom(atom_names), _list_atom(atom_names)),
             max_size=6))

methods = st.text(
    alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E),
    min_size=1, max_size=80)

seqs = st.integers(0, (1 << 32) - 1)

error_codes = st.sampled_from(list(XrlErrorCode))


def _assert_args_equal(a: XrlArgs, b: XrlArgs) -> None:
    assert list(a) == list(b)


# -- round trips --------------------------------------------------------------

class TestBinaryRoundTrip:
    @settings(max_examples=200)
    @given(seqs, methods, args_strategy)
    def test_request(self, seq, method, args):
        encoder, decoder = BinaryCodec(), BinaryCodec()
        seq2, method2, args2 = decoder.decode_request(
            encoder.encode_request(seq, method, args))
        assert (seq2, method2) == (seq, method)
        _assert_args_equal(args2, args)

    @settings(max_examples=200)
    @given(seqs, error_codes, st.text(max_size=80), args_strategy)
    def test_response(self, seq, code, note, args):
        encoder, decoder = BinaryCodec(), BinaryCodec()
        seq2, error, args2 = decoder.decode_response(
            encoder.encode_response(seq, XrlError(code, note), args))
        assert (seq2, error.code, error.note) == (seq, code, note)
        _assert_args_equal(args2, args)

    @given(seqs, methods, args_strategy)
    def test_equivalent_to_textual(self, seq, method, args):
        """Both codecs agree on the semantic content of any frame."""
        encoder, decoder = BinaryCodec(), BinaryCodec()
        binary = decoder.decode_request(
            encoder.encode_request(seq, method, args))
        textual = TEXTUAL.decode_request(
            TEXTUAL.encode_request(seq, method, args))
        assert binary[:2] == textual[:2]
        _assert_args_equal(binary[2], textual[2])

    @given(seqs, methods, args_strategy)
    def test_seq_is_first_four_bytes_in_both_codecs(self, seq, method, args):
        """Transports demux replies on bytes 0–3 without knowing the codec."""
        binary = BinaryCodec().encode_request(seq, method, args)
        textual = TEXTUAL.encode_request(seq, method, args)
        assert binary[:4] == textual[:4]


# -- adversarial frames -------------------------------------------------------

class TestStructuredFailure:
    @settings(max_examples=200)
    @given(seqs, methods, args_strategy, st.data())
    def test_truncated_request_raises_xrl_error(self, seq, method, args, data):
        frame = BinaryCodec().encode_request(seq, method, args)
        cut = data.draw(st.integers(0, len(frame) - 1))
        with pytest.raises(XrlError) as excinfo:
            BinaryCodec().decode_request(frame[:cut])
        assert excinfo.value.code == XrlErrorCode.BAD_ARGS

    @settings(max_examples=200)
    @given(seqs, methods, args_strategy, st.data())
    def test_corrupt_request_never_escapes_xrl_error(self, seq, method, args,
                                                     data):
        """A flipped byte decodes or raises XrlError — nothing else."""
        frame = bytearray(BinaryCodec().encode_request(seq, method, args))
        position = data.draw(st.integers(0, len(frame) - 1))
        frame[position] ^= data.draw(st.integers(1, 255))
        try:
            BinaryCodec().decode_request(bytes(frame))
        except XrlError:
            pass

    @settings(max_examples=200)
    @given(seqs, error_codes, st.text(max_size=40), args_strategy, st.data())
    def test_corrupt_response_never_escapes_xrl_error(self, seq, code, note,
                                                      args, data):
        frame = bytearray(BinaryCodec().encode_response(
            seq, XrlError(code, note), args))
        position = data.draw(st.integers(0, len(frame) - 1))
        frame[position] ^= data.draw(st.integers(1, 255))
        try:
            BinaryCodec().decode_response(bytes(frame))
        except XrlError:
            pass

    @given(st.binary(max_size=64))
    def test_random_garbage_raises_or_decodes(self, junk):
        try:
            BinaryCodec().decode_request(junk)
        except XrlError:
            pass
        try:
            BinaryCodec().decode_response(junk)
        except XrlError:
            pass

    def test_trailing_bytes_rejected(self):
        frame = BinaryCodec().encode_request(1, "m", XrlArgs())
        with pytest.raises(XrlError):
            BinaryCodec().decode_request(frame + b"\x00")


# -- method interning ---------------------------------------------------------

class TestMethodInterning:
    def test_repeat_method_shrinks_to_reference(self):
        encoder = BinaryCodec()
        method = "k" * 16 + "/bgp/1.0/add_peer"
        args = XrlArgs().add_u32("x", 1)
        first = encoder.encode_request(1, method, args)
        second = encoder.encode_request(2, method, args)
        assert len(second) < len(first)
        assert len(second) - len(args.to_binary()) <= 6

    def test_paired_decoder_follows_the_table(self):
        encoder, decoder = BinaryCodec(), BinaryCodec()
        for seq, method in enumerate(["a/1.0/x", "b/1.0/y", "a/1.0/x",
                                      "b/1.0/y", "a/1.0/x"]):
            frame = encoder.encode_request(seq, method, XrlArgs())
            seq2, method2, __ = decoder.decode_request(frame)
            assert (seq2, method2) == (seq, method)

    @given(st.lists(st.sampled_from(["m/1/a", "m/1/b", "m/1/c"]),
                    min_size=1, max_size=12))
    def test_interning_stream_round_trips(self, stream):
        encoder, decoder = BinaryCodec(), BinaryCodec()
        for seq, method in enumerate(stream):
            decoded = decoder.decode_request(
                encoder.encode_request(seq, method, XrlArgs()))
            assert decoded[1] == method

    def test_dangling_reference_is_structured_error(self):
        encoder = BinaryCodec()
        encoder.encode_request(1, "m/1/a", XrlArgs())  # interned: id 1
        frame = encoder.encode_request(2, "m/1/a", XrlArgs())
        # A fresh decoder has an empty table: the reference must fail
        # as BAD_ARGS, not IndexError.
        with pytest.raises(XrlError) as excinfo:
            BinaryCodec().decode_request(frame)
        assert excinfo.value.code == XrlErrorCode.BAD_ARGS


# -- negotiation --------------------------------------------------------------

class TestNegotiation:
    @given(st.lists(st.sampled_from(["binary", "textual", "zstd"]),
                    max_size=3))
    def test_hello_round_trip(self, codecs):
        assert decode_hello(encode_hello(codecs)) == codecs

    @given(st.binary(max_size=40))
    def test_garbage_hello_raises_or_decodes(self, junk):
        try:
            codecs = decode_hello(junk)
        except XrlError:
            return
        assert isinstance(codecs, list)

    @given(st.lists(st.sampled_from(["binary", "textual", "zstd"]),
                    max_size=3),
           st.lists(st.sampled_from(["binary", "textual", "zstd"]),
                    max_size=3))
    def test_choice_is_common_or_textual_floor(self, local, remote):
        chosen = choose_codec(local, remote)
        if chosen != "textual":
            assert chosen in local and chosen in remote
        assert chosen in CODEC_PREFERENCE

    def test_binary_preferred_when_shared(self):
        assert choose_codec(("binary", "textual"),
                            ["textual", "binary"]) == "binary"
        assert choose_codec(("textual",), ["binary", "textual"]) == "textual"

    def test_make_codec(self):
        assert isinstance(make_codec("binary"), BinaryCodec)
        assert make_codec("textual") is TEXTUAL
        fresh_a, fresh_b = make_codec("binary"), make_codec("binary")
        assert fresh_a is not fresh_b  # interning state is per-connection
