"""Real OS multi-process deployment tests (paper §6.1).

Children here are genuine ``python -m repro.<module>`` subprocesses: they
connect to the parent's Finder daemon over TCP, register their
components, and serve XRLs over the negotiated TCP transport.  The
acceptance scenario runs two routers — BGP, RIB, and FEA each as a
separate OS process under a :class:`~repro.rtrmgr.spawn.SpawnManager` —
peers them over a real BGP TCP session, SIGKILLs a child mid-flow, and
asserts the supervisor's death-watch/restart/replay machinery brings the
forwarding state back.

These tests fork real processes and use generous wall-clock timeouts;
each cleans up its children in teardown even on failure.
"""

import os
import signal
import socket

import pytest

from repro.core.process import Host
from repro.eventloop import EventLoop, SystemClock
from repro.interfaces import BGP_IDL, COMMON_IDL, FEA_FIB_IDL, RIB_IDL
from repro.rtrmgr.spawn import SpawnManager
from repro.rtrmgr.supervisor import UP, SupervisorPolicy
from repro.xrl import XrlArgs
from repro.xrl.finder import Finder
from repro.xrl.transport.tcp import TcpFamily
from repro.xrl.xrl import Xrl


def snappy_policy() -> SupervisorPolicy:
    """Restart fast and never give up inside a test's lifetime."""
    return SupervisorPolicy(ping_period=1.0, ping_timeout=2.0,
                            backoff_initial=0.05, backoff_max=0.5,
                            storm_window=60.0, storm_budget=50,
                            stable_after=1.0)


def free_port() -> int:
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def call(manager: SpawnManager, target: str, interface, method: str,
         values=None, *, deadline: float = 10.0) -> XrlArgs:
    """Synchronous IDL-typed XRL through a manager's rtrmgr router."""
    args = interface.method(method).build_args(values or {})
    error, reply = manager.xrl.send_sync(
        Xrl(target, interface.name, interface.version, method, args),
        deadline=deadline)
    assert error.is_okay, f"{target} {method}: {error}"
    return reply


class TestSingleModule:
    """One supervised RIB child: register, call, SIGKILL, reconverge."""

    @pytest.fixture
    def manager(self):
        manager = SpawnManager(policy=snappy_policy())
        yield manager
        manager.shutdown()

    def test_spawn_registers_and_serves_xrls(self, manager):
        shell = manager.spawn_module("rib")
        assert shell.alive
        assert manager.host.finder.known_target("rib")
        manager.loop.run(duration=0.3)
        reply = call(manager, "rib", COMMON_IDL, "get_status")
        assert reply.get_txt("status") == "running"

    def test_sigkill_triggers_restart_and_replay(self, manager):
        shell = manager.spawn_module("rib")
        manager.supervisor.start()
        manager.loop.run(duration=0.3)
        manager.provision("rib", Xrl(
            "rib", "rib", "1.0", "add_route4",
            RIB_IDL.method("add_route4").build_args({
                "protocol": "static", "net": "192.0.2.0/24",
                "nexthop": "198.51.100.1", "metric": 1, "policytags": []})))

        first_pid = shell.pid
        os.kill(first_pid, signal.SIGKILL)
        assert manager.loop.run_until(
            lambda: shell.alive and shell.pid != first_pid
            and manager.supervisor.status("rib") == UP, timeout=30)
        assert manager.restart_log == ["rib"]

        # The replayed provisioning is visible in the reborn child.
        reply = call(manager, "rib", RIB_IDL, "lookup_route_by_dest4",
                     {"addr": "192.0.2.7"})
        assert reply.get_bool("resolves")
        assert str(reply.get_ipv4("nexthop")) == "198.51.100.1"


class _Router:
    """One simulated chassis: fea + rib + bgp children under one manager."""

    def __init__(self, name, loop, *, addr, local_as, bgp_listen=None,
                 bgp_connect=None):
        self.name = name
        self.addr = addr
        host = Host(loop, Finder(), extra_families=[TcpFamily()])
        self.manager = SpawnManager(host, policy=snappy_policy())
        self.manager.spawn_module(
            "fea", args=["--ifaddr", f"eth0={addr}/24"])
        self.manager.spawn_module("rib")
        bgp_args = ["--local-as", str(local_as), "--bgp-id", addr]
        if bgp_listen is not None:
            bgp_args += ["--bgp-listen", str(bgp_listen)]
        for peer, endpoint in (bgp_connect or {}).items():
            bgp_args += ["--bgp-connect", f"{peer}={endpoint}"]
        self.manager.spawn_module("bgp", args=bgp_args)
        self.manager.supervisor.start()

    def provision_connected_route(self):
        subnet = self.addr.rsplit(".", 1)[0] + ".0/24"
        self.manager.provision("rib", Xrl(
            "rib", "rib", "1.0", "add_route4",
            RIB_IDL.method("add_route4").build_args({
                "protocol": "connected", "net": subnet,
                "nexthop": "0.0.0.0", "metric": 0, "policytags": []})))

    def provision_peer(self, peer_addr, peer_as):
        self.manager.provision("bgp", Xrl(
            "bgp", "bgp", "1.0", "add_peer",
            BGP_IDL.method("add_peer").build_args({
                "peer": peer_addr, "as": peer_as,
                "next_hop": self.addr, "holdtime": 90})))
        self.manager.provision("bgp", Xrl(
            "bgp", "bgp", "1.0", "enable_peer",
            BGP_IDL.method("enable_peer").build_args({"peer": peer_addr})))

    def originate(self, net):
        self.manager.provision("bgp", Xrl(
            "bgp", "bgp", "1.0", "originate_route4",
            BGP_IDL.method("originate_route4").build_args({
                "net": net, "next_hop": self.addr, "unicast": True})))

    def fib_resolves(self, addr) -> bool:
        args = FEA_FIB_IDL.method("lookup_entry4").build_args({"addr": addr})
        error, reply = self.manager.xrl.send_sync(
            Xrl("fea", "fea_fib", "1.0", "lookup_entry4", args), deadline=5)
        return error.is_okay and reply.get_bool("resolves")

    def shutdown(self):
        self.manager.shutdown()


class TestTwoRouterDeployment:
    """BGP/RIB/FEA as six OS processes across two routers."""

    def test_peering_routes_and_sigkill_reconvergence(self):
        loop = EventLoop(SystemClock())
        r1_port = free_port()
        r1 = r2 = None
        try:
            r1 = _Router("r1", loop, addr="10.0.0.1", local_as=65001,
                         bgp_listen=r1_port)
            r2 = _Router("r2", loop, addr="10.0.0.2", local_as=65002,
                         bgp_connect={"10.0.0.1": f"127.0.0.1:{r1_port}"})
            loop.run(duration=0.5)

            for router in (r1, r2):
                router.provision_connected_route()
            r1.provision_peer("10.0.0.2", 65002)
            r2.provision_peer("10.0.0.1", 65001)
            r1.originate("203.0.113.0/24")

            # BGP peers over a real TCP session between the two bgp
            # processes; the route then flows bgp -> rib -> fea inside
            # r2, every hop crossing an OS process boundary.
            assert loop.run_until(
                lambda: r2.fib_resolves("203.0.113.7"), timeout=60), \
                "route never reached r2's FEA"

            # Chaos: SIGKILL r1's BGP. The supervisor must notice via the
            # Finder connection death, respawn it, replay the peering and
            # originated route, and r2 must reconverge.
            bgp_shell = r1.manager.modules["bgp"]
            old_pid = bgp_shell.pid
            os.kill(old_pid, signal.SIGKILL)
            assert loop.run_until(
                lambda: bgp_shell.alive and bgp_shell.pid != old_pid
                and r1.manager.supervisor.status("bgp") == UP, timeout=30)

            # r2's dial timer reconnects to the reborn listener; the
            # replayed originate_route4 re-advertises; forwarding state
            # returns to r2's FEA.
            assert loop.run_until(
                lambda: r2.fib_resolves("203.0.113.7"), timeout=60), \
                "route did not reconverge after SIGKILL"
            assert "bgp" in r1.manager.restart_log
        finally:
            for router in (r1, r2):
                if router is not None:
                    router.shutdown()
