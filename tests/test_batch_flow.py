"""Batched route flow & XRL pipelining: the batch contract, end to end.

A batch is semantically identical to its singular decomposition, in
order.  These tests pin that contract at every layer it touches:

* staged tables — any interleaving of ``add_routes``/``delete_routes``
  through the RIB pipeline yields the same final table and the same FEA
  redistribution stream as the singular interleaving (property test);
* the stage-graph sanitizer — SAN verdicts are identical batched or
  unbatched, for clean flows and seeded violations alike;
* the XRL layer — ``send(batch=True)`` coalesces same-sender calls in
  one event-loop turn into a single wire transmission with unchanged
  per-call semantics, across transports;
* the unified ``send``/``send_sync`` keyword surface and the
  ``timeout=`` deprecation shim.
"""

import random
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stages import OriginStage, RouteTableStage
from repro.core.txqueue import XrlTransmitQueue
from repro.eventloop import EventLoop, SimulatedClock, SystemClock
from repro.net import IPNet, IPv4
from repro.rib.rib import _Pipeline
from repro.rib.route import RibRoute
from repro.sanitizer import StageSanitizer
from repro.xrl import Finder, Xrl, XrlArgs, XrlRouter, parse_idl
from repro.xrl.transport import IntraProcessFamily, TcpFamily

# ---------------------------------------------------------------------------
# staged tables: batched == singular, through the full RIB pipeline


PREFIXES = [f"10.{i}.0.0/16" for i in range(6)]
PROTOCOLS = ["rip", "ebgp"]


def net(text):
    return IPNet.parse(text)


def make_route(prefix, protocol, metric=1):
    return RibRoute(net(prefix), IPv4("192.168.0.1"), metric, protocol)


class _StreamLog:
    """Collects the FEA-bound emission stream of one pipeline."""

    def __init__(self):
        self.events = []

    def emit(self, op, route, batching=False):
        # ``batching`` only affects wire coalescing, never semantics:
        # drop it from the comparison key on purpose.
        self.events.append((op, str(route.net), route.protocol, route.metric))


def build_pipeline():
    log = _StreamLog()
    pipe = _Pipeline(32, "", log.emit, invalidate_cb=lambda *a: None)
    for protocol in PROTOCOLS:
        pipe.add_origin(protocol, external=(protocol == "ebgp"))
    return pipe, log


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "delete"]),
        st.integers(min_value=0, max_value=len(PREFIXES) - 1),
        st.sampled_from(PROTOCOLS),
        st.integers(min_value=1, max_value=3),  # metric
    ),
    max_size=24,
)


def apply_singular(pipe, ops):
    for op, prefix_idx, protocol, metric in ops:
        origin = pipe.origin(protocol)
        if op == "add":
            origin.originate(make_route(PREFIXES[prefix_idx], protocol,
                                        metric))
        else:
            origin.withdraw_if_present(net(PREFIXES[prefix_idx]))


def apply_batched(pipe, ops):
    """Group maximal same-(op, protocol) runs into batch entry points."""
    run = []

    def flush():
        if not run:
            return
        op, protocol = run[0][0], run[0][2]
        origin = pipe.origin(protocol)
        if op == "add":
            origin.originate_batch(
                [make_route(PREFIXES[i], protocol, m)
                 for __, i, __p, m in run])
        else:
            origin.withdraw_batch([net(PREFIXES[i]) for __, i, __p, __m
                                   in run])
        run.clear()

    for entry in ops:
        if run and (entry[0] != run[0][0] or entry[2] != run[0][2]):
            flush()
        run.append(entry)
    flush()


def final_table(pipe):
    table = {}
    for prefix in PREFIXES:
        winner = pipe.extint.lookup_route(net(prefix))
        if winner is not None:
            table[prefix] = (str(winner.net), winner.protocol, winner.metric)
    return table


class TestBatchSingularEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops_strategy)
    def test_same_fea_stream_and_final_rib(self, ops):
        pipe_s, log_s = build_pipeline()
        apply_singular(pipe_s, ops)
        pipe_b, log_b = build_pipeline()
        apply_batched(pipe_b, ops)
        assert log_b.events == log_s.events
        assert final_table(pipe_b) == final_table(pipe_s)

    @settings(max_examples=30, deadline=None)
    @given(ops_strategy)
    def test_batched_flow_is_sanitizer_clean(self, ops):
        with StageSanitizer() as san:
            pipe, __ = build_pipeline()
            apply_batched(pipe, ops)
        rendered = "\n".join(v.render() for v in san.violations)
        assert not san.violations, rendered


# ---------------------------------------------------------------------------
# sanitizer: batched and unbatched flows produce identical SAN verdicts


class SinkStage(RouteTableStage):
    def __init__(self):
        super().__init__("sink")


def verdicts(drive):
    with StageSanitizer() as san:
        drive()
    return sorted((v.rule, v.context.get("net", "")) for v in san.violations)


class TestSanitizerBatchEquivalence:
    def test_clean_batch_no_violations(self):
        def batched():
            origin = OriginStage("o")
            origin.set_next(SinkStage())
            origin.originate_batch(
                [make_route(p, "rip") for p in PREFIXES])
            origin.withdraw_batch([net(p) for p in PREFIXES])

        assert verdicts(batched) == []

    def test_double_add_batch_matches_singular_san001(self):
        route = make_route(PREFIXES[0], "rip")

        def singular():
            sink = SinkStage()
            sink.add_route(route, caller=None)
            sink.add_route(route, caller=None)

        def batched():
            sink = SinkStage()
            sink.add_routes([route, route], caller=None)

        expected = verdicts(singular)
        assert expected and expected[0][0] == "SAN001"
        assert verdicts(batched) == expected

    def test_delete_without_add_batch_matches_singular_san002(self):
        route = make_route(PREFIXES[1], "rip")

        def singular():
            SinkStage().delete_route(route, caller=None)

        def batched():
            SinkStage().delete_routes([route], caller=None)

        expected = verdicts(singular)
        assert expected and expected[0][0] == "SAN002"
        assert verdicts(batched) == expected

    def test_seeded_interleavings_same_verdicts(self):
        rng = random.Random(20240806)
        for __ in range(10):
            script = [(rng.choice(["add", "delete"]),
                       rng.randrange(len(PREFIXES)))
                      for __ in range(12)]
            routes = {p: make_route(p, "rip") for p in PREFIXES}

            def singular():
                sink = SinkStage()
                for op, i in script:
                    r = routes[PREFIXES[i]]
                    if op == "add":
                        sink.add_route(r, caller=None)
                    else:
                        sink.delete_route(r, caller=None)

            def batched():
                sink = SinkStage()
                run = []
                def flush():
                    if not run:
                        return
                    rs = [routes[PREFIXES[i]] for __, i in run]
                    if run[0][0] == "add":
                        sink.add_routes(rs, caller=None)
                    else:
                        sink.delete_routes(rs, caller=None)
                    run.clear()
                for entry in script:
                    if run and entry[0] != run[0][0]:
                        flush()
                    run.append(entry)
                flush()

            assert verdicts(batched) == verdicts(singular)


# ---------------------------------------------------------------------------
# XRL layer: per-turn coalescing with unchanged per-call semantics


TEST_IDL = """
interface test/1.0 {
    echo ? value:u32 -> value:u32;
}
"""


class EchoTarget:
    def xrl_echo(self, value):
        return {"value": value}


def build_pair(family_factory, clock=None, shared_process=False):
    loop = EventLoop(clock or SimulatedClock())
    finder = Finder(rng=random.Random(7))
    family = family_factory()
    iface = parse_idl(TEST_IDL)["test/1.0"]
    token = 999 if shared_process else None
    server = XrlRouter(loop, "echo", finder, families=[family],
                       process_token=token)
    server.bind(iface, EchoTarget())
    client = XrlRouter(loop, "client", finder, families=[family],
                       process_token=token)
    return loop, server, client


def echo_xrl(value):
    return Xrl("echo", "test", "1.0", "echo", XrlArgs().add_u32("value",
                                                               value))


XRL_FAMILIES = [
    ("intra", lambda: IntraProcessFamily(), None, True),
    ("tcp", lambda: TcpFamily(), SystemClock(), False),
]


@pytest.mark.parametrize("name,factory,clock,shared", XRL_FAMILIES,
                         ids=[f[0] for f in XRL_FAMILIES])
class TestXrlBatchHint:
    def test_batched_sends_complete_in_order(self, name, factory, clock,
                                             shared):
        loop, __, client = build_pair(factory, clock, shared)
        replies = []
        for value in range(8):
            client.send(echo_xrl(value),
                        lambda e, a: replies.append((e.is_okay,
                                                     a.get_u32("value"))),
                        batch=True)
        assert loop.run_until(lambda: len(replies) == 8, timeout=5)
        assert replies == [(True, v) for v in range(8)]
        assert client.batches_sent == 1

    def test_batch_and_singular_interleave(self, name, factory, clock,
                                           shared):
        loop, __, client = build_pair(factory, clock, shared)
        replies = []
        client.send(echo_xrl(1), lambda e, a: replies.append(
            a.get_u32("value")))
        client.send(echo_xrl(2), lambda e, a: replies.append(
            a.get_u32("value")), batch=True)
        client.send(echo_xrl(3), lambda e, a: replies.append(
            a.get_u32("value")), batch=True)
        assert loop.run_until(lambda: len(replies) == 3, timeout=5)
        assert sorted(replies) == [1, 2, 3]

    def test_single_hinted_call_skips_call_batch(self, name, factory, clock,
                                                 shared):
        loop, __, client = build_pair(factory, clock, shared)
        replies = []
        client.send(echo_xrl(7), lambda e, a: replies.append(
            a.get_u32("value")), batch=True)
        assert loop.run_until(lambda: len(replies) == 1, timeout=5)
        assert replies == [7]
        assert client.batches_sent == 0


class TestXrlBatchFailure:
    def test_batch_to_dead_target_fails_each_call(self):
        loop, server, client = build_pair(lambda: IntraProcessFamily(),
                                          shared_process=True)
        errors = []
        # Prime the resolution cache, then kill the server so the batch
        # flush hits a broken sender and falls back to the singular path.
        error, __ = client.send_sync(echo_xrl(0), deadline=5)
        assert error.is_okay
        server.shutdown()
        for value in range(3):
            client.send(echo_xrl(value), lambda e, a: errors.append(e),
                        batch=True, deadline=2)
        assert loop.run_until(lambda: len(errors) == 3, timeout=5)
        assert all(not e.is_okay for e in errors)

    def test_shutdown_with_pending_batch(self):
        loop, __, client = build_pair(lambda: IntraProcessFamily(),
                                      shared_process=True)
        errors = []
        client.send(echo_xrl(1), lambda e, a: errors.append(e), batch=True)
        client.shutdown()
        assert loop.run_until(lambda: len(errors) == 1, timeout=5)
        assert not errors[0].is_okay


class TestTxQueueBatch:
    def test_enqueue_batch_drains_and_coalesces(self):
        loop, __, client = build_pair(lambda: IntraProcessFamily(),
                                      shared_process=True)
        txq = XrlTransmitQueue(client, window=100)
        replies = []
        txq.enqueue_batch([
            (echo_xrl(v), None, lambda e, a: replies.append(e.is_okay))
            for v in range(6)
        ])
        assert loop.run_until(lambda: len(replies) == 6, timeout=5)
        assert all(replies)
        assert txq.idle
        assert client.batches_sent == 1

    def test_enqueue_batch_hint_passthrough(self):
        loop, __, client = build_pair(lambda: IntraProcessFamily(),
                                      shared_process=True)
        txq = XrlTransmitQueue(client, window=100)
        done = []
        for v in range(4):
            txq.enqueue(echo_xrl(v),
                        on_reply=lambda e, a: done.append(e.is_okay),
                        batch=True)
        assert loop.run_until(lambda: len(done) == 4, timeout=5)
        assert all(done)
        assert client.batches_sent == 1


# ---------------------------------------------------------------------------
# unified send/send_sync surface


class TestSendSyncSurface:
    def test_deadline_keyword(self):
        __, __, client = build_pair(lambda: IntraProcessFamily(),
                                    shared_process=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # nothing deprecated fires
            error, args = client.send_sync(echo_xrl(5), deadline=10)
        assert error.is_okay
        assert args.get_u32("value") == 5

    def test_removed_timeout_keyword_rejected(self):
        __, __, client = build_pair(lambda: IntraProcessFamily(),
                                    shared_process=True)
        with pytest.raises(TypeError):
            client.send_sync(echo_xrl(6), timeout=10)

    def test_positional_deadline_rejected(self):
        # deadline/retry/batch are keyword-only, matching send().
        __, __, client = build_pair(lambda: IntraProcessFamily(),
                                    shared_process=True)
        with pytest.raises(TypeError):
            client.send_sync(echo_xrl(8), 10)

    def test_send_sync_accepts_batch_hint(self):
        __, __, client = build_pair(lambda: IntraProcessFamily(),
                                    shared_process=True)
        error, args = client.send_sync(echo_xrl(4), deadline=10, batch=True)
        assert error.is_okay
        assert args.get_u32("value") == 4


# ---------------------------------------------------------------------------
# the vectorized FEA interface: add_entries4/delete_entries4 == N singular


class TestVectorizedFeaDistribution:
    """A batched RIB flush reaches the FEA as vectorized XRLs whose
    effect — FIB contents and every profiling stream — is identical to
    the singular per-route XRLs, in order."""

    PROFILE_POINTS = ("route_queued_fea", "route_sent_fea",
                      "route_arrive_fea", "route_kernel")

    def _run(self, batched, route_count=40, batch_limit=None, family=32):
        from repro.core.process import Host
        from repro.fea import FeaProcess
        from repro.net import IPv6
        from repro.rib import RibProcess

        loop = EventLoop(SystemClock())
        host = Host(loop=loop)
        fea = FeaProcess(host)
        rib = RibProcess(host)
        if batch_limit is not None:
            rib.FEA_BATCH_LIMIT = batch_limit
        for name in ("route_queued_fea", "route_sent_fea"):
            rib.profiler.enable(name)
        for name in ("route_arrive_fea", "route_kernel"):
            fea.profiler.enable(name)
        if family == 32:
            origin = rib.v4.origin("static")
            fea_fib = fea.fib4
            routes = [
                RibRoute(IPNet(IPv4(0x0A000000 + (i << 8)), 24),
                         IPv4("10.0.0.1"), 1, "static", ifname="eth0")
                for i in range(route_count)
            ]
        else:
            origin = rib.v6.origin("static")
            fea_fib = fea.fib6
            routes = [
                RibRoute(IPNet.parse(f"2001:db8:{i:x}::/48"),
                         IPv6("2001:db8::1"), 1, "static", ifname="eth0")
                for i in range(route_count)
            ]
        if batched:
            origin.originate_batch(routes)
        else:
            for route in routes:
                origin.originate(route)
        assert loop.run_until(
            lambda: len(fea_fib) == route_count and rib.txq.idle,
            timeout=30.0)
        fib = sorted((str(n), str(e.nexthop), e.ifname)
                     for n, e in fea_fib.entries())
        nets = [route.net for route in routes]
        if batched:
            origin.withdraw_batch(nets)
        else:
            for n in nets:
                origin.withdraw(n)
        assert loop.run_until(
            lambda: len(fea_fib) == 0 and rib.txq.idle, timeout=30.0)
        streams = {}
        for name in ("route_queued_fea", "route_sent_fea"):
            streams[name] = [data for __, data in
                             rib.profiler.var(name).entries]
        for name in ("route_arrive_fea", "route_kernel"):
            streams[name] = [data for __, data in
                             fea.profiler.var(name).entries]
        xrl_count = rib.txq.sent_count
        rib.shutdown()
        fea.shutdown()
        host.shutdown()
        return fib, streams, xrl_count

    def test_batched_equals_singular(self):
        fib_b, streams_b, xrls_b = self._run(batched=True)
        fib_s, streams_s, xrls_s = self._run(batched=False)
        assert fib_b == fib_s
        for name in self.PROFILE_POINTS:
            assert streams_b[name] == streams_s[name], name
        # The whole point: 40 adds + 40 deletes in 2 XRLs, not 80.
        assert xrls_s == 80
        assert xrls_b == 2

    def test_segments_respect_batch_limit(self):
        __, __, xrls = self._run(batched=True, route_count=20,
                                 batch_limit=8)
        # 20 adds -> segments of 8+8+4, 20 deletes likewise.
        assert xrls == 6

    def test_v6_batched_equals_singular(self):
        """The v6 vectorized path has full parity: same FIB, same
        profiling streams, same 40x coalescing as v4."""
        fib_b, streams_b, xrls_b = self._run(batched=True, family=128)
        fib_s, streams_s, xrls_s = self._run(batched=False, family=128)
        assert fib_b == fib_s
        for name in self.PROFILE_POINTS:
            assert streams_b[name] == streams_s[name], name
        assert xrls_s == 80
        assert xrls_b == 2

    def test_v6_segments_respect_batch_limit(self):
        __, __, xrls = self._run(batched=True, route_count=20,
                                 batch_limit=8, family=128)
        assert xrls == 6

    def test_single_route_batch_falls_back_to_singular_xrl(self):
        fib_b, streams_b, __ = self._run(batched=True, route_count=1)
        fib_s, streams_s, __ = self._run(batched=False, route_count=1)
        assert fib_b == fib_s
        for name in self.PROFILE_POINTS:
            assert streams_b[name] == streams_s[name], name

    def test_resync_fea_replays_table_vectorized(self):
        from repro.core.process import Host
        from repro.fea import FeaProcess
        from repro.rib import RibProcess

        loop = EventLoop(SystemClock())
        host = Host(loop=loop)
        fea = FeaProcess(host)
        rib = RibProcess(host)
        origin = rib.v4.origin("static")
        routes = [
            RibRoute(IPNet(IPv4(0x0A000000 + (i << 8)), 24),
                     IPv4("10.0.0.1"), 1, "static", ifname="eth0")
            for i in range(30)
        ]
        origin.originate_batch(routes)
        assert loop.run_until(
            lambda: len(fea.fib4) == 30 and rib.txq.idle, timeout=30.0)
        before = rib.txq.sent_count
        fea.fib4.clear()
        rib.resync_fea()
        assert loop.run_until(
            lambda: len(fea.fib4) == 30 and rib.txq.idle, timeout=30.0)
        # The whole-table replay is one vectorized XRL, not 30.
        assert rib.txq.sent_count == before + 1
        rib.shutdown()
        fea.shutdown()
        host.shutdown()
