"""Unit tests for the RIB stages: merge, extint, redist, register."""

import pytest

from repro.core.stages import OriginStage, RouteTableStage
from repro.net import IPNet, IPv4
from repro.rib import ExtIntStage, MergeStage, RedistStage, RegisterStage, RibRoute
from repro.rib.route import preferred

# Arm the runtime sanitizers (stage-graph consistency + XRL
# dispatch conformance) for every test in this module; the
# conftest fixture asserts zero violations at teardown.  Autouse
# at module level so it arms before class setup_method fixtures.
@pytest.fixture(autouse=True)
def _runtime_sanitizers(runtime_sanitizers):
    yield runtime_sanitizers


def net(text):
    return IPNet.parse(text)


def route(net_text, protocol, nexthop="192.168.0.1", metric=1, **kw):
    return RibRoute(net(net_text), IPv4(nexthop), metric, protocol, **kw)


class SinkStage(RouteTableStage):
    def __init__(self):
        super().__init__("sink")
        self.log = []

    def add_route(self, r, caller=None):
        self.log.append(("add", r))

    def delete_route(self, r, caller=None):
        self.log.append(("delete", r))

    def replace_route(self, old, new, caller=None):
        self.log.append(("replace", old, new))

    def current(self):
        """Reconstruct the visible table from the message log."""
        table = {}
        for entry in self.log:
            if entry[0] == "add":
                assert entry[1].net not in table, "duplicate add"
                table[entry[1].net] = entry[1]
            elif entry[0] == "delete":
                assert table.pop(entry[1].net, None) is not None, "spurious delete"
            else:
                assert entry[1].net in table, "spurious replace"
                table[entry[2].net] = entry[2]
        return table


class TestPreference:
    def test_admin_distance_order(self):
        static = route("10.0.0.0/8", "static")
        rip = route("10.0.0.0/8", "rip")
        assert preferred(static, rip) is static
        assert preferred(rip, static) is static

    def test_none_handling(self):
        r = route("10.0.0.0/8", "rip")
        assert preferred(None, r) is r
        assert preferred(r, None) is r
        assert preferred(None, None) is None

    def test_default_distances(self):
        assert route("1.0.0.0/8", "connected").admin_distance == 0
        assert route("1.0.0.0/8", "static").admin_distance == 1
        assert route("1.0.0.0/8", "ebgp").admin_distance == 20
        assert route("1.0.0.0/8", "rip").admin_distance == 120
        assert route("1.0.0.0/8", "ibgp").admin_distance == 200
        assert route("1.0.0.0/8", "martian").admin_distance == 255

    def test_bgp_routes_external(self):
        assert route("1.0.0.0/8", "ebgp").is_external
        assert not route("1.0.0.0/8", "rip").is_external


def merged_pair():
    a, b = OriginStage("a"), OriginStage("b")
    merge = MergeStage("m")
    merge.set_parents(a, b)
    sink = SinkStage()
    merge.set_next(sink)
    return a, b, merge, sink


class TestMergeStage:
    def test_single_branch_passthrough(self):
        a, b, merge, sink = merged_pair()
        r = route("10.0.0.0/8", "rip")
        a.originate(r)
        assert sink.current() == {r.net: r}

    def test_better_branch_displaces(self):
        a, b, merge, sink = merged_pair()
        rip = route("10.0.0.0/8", "rip")
        static = route("10.0.0.0/8", "static")
        a.originate(rip)
        b.originate(static)
        assert sink.current()[rip.net] is static
        assert sink.log[-1][0] == "replace"

    def test_worse_branch_swallowed(self):
        a, b, merge, sink = merged_pair()
        static = route("10.0.0.0/8", "static")
        rip = route("10.0.0.0/8", "rip")
        a.originate(static)
        b.originate(rip)
        assert sink.current()[static.net] is static
        assert len(sink.log) == 1  # the rip add never surfaced

    def test_delete_of_winner_promotes_loser(self):
        a, b, merge, sink = merged_pair()
        static = route("10.0.0.0/8", "static")
        rip = route("10.0.0.0/8", "rip")
        a.originate(static)
        b.originate(rip)
        a.withdraw(static.net)
        assert sink.current()[rip.net] is rip

    def test_delete_of_loser_is_silent(self):
        a, b, merge, sink = merged_pair()
        static = route("10.0.0.0/8", "static")
        rip = route("10.0.0.0/8", "rip")
        a.originate(static)
        b.originate(rip)
        before = len(sink.log)
        b.withdraw(rip.net)
        assert len(sink.log) == before

    def test_delete_last_route(self):
        a, b, merge, sink = merged_pair()
        r = route("10.0.0.0/8", "rip")
        a.originate(r)
        a.withdraw(r.net)
        assert sink.current() == {}

    def test_lookup_returns_winner(self):
        a, b, merge, sink = merged_pair()
        static = route("10.0.0.0/8", "static")
        rip = route("10.0.0.0/8", "rip")
        a.originate(rip)
        b.originate(static)
        assert merge.lookup_route(static.net) is static

    def test_replace_with_now_losing_route(self):
        a, b, merge, sink = merged_pair()
        static = route("10.0.0.0/8", "static")
        a.originate(route("10.0.0.0/8", "connected"))
        b.originate(static)  # swallowed
        a.originate(route("10.0.0.0/8", "rip"))  # replace: now loses to static
        assert sink.current()[static.net] is static

    def test_message_from_unknown_branch_asserts(self):
        a, b, merge, sink = merged_pair()
        stranger = OriginStage("x")
        with pytest.raises(AssertionError):
            merge.add_route(route("10.0.0.0/8", "rip"), caller=stranger)


class TestExtIntStage:
    def setup_method(self):
        self.extint = ExtIntStage("extint")
        self.sink = SinkStage()
        self.extint.set_next(self.sink)

    def test_internal_passes(self):
        r = route("10.0.0.0/8", "rip")
        self.extint.add_route(r)
        assert self.sink.current() == {r.net: r}

    def test_unresolvable_external_held(self):
        bgp = route("20.0.0.0/8", "ebgp", nexthop="1.1.1.1")
        self.extint.add_route(bgp)
        assert self.sink.current() == {}
        assert bgp.net in self.extint.unresolved

    def test_external_resolves_via_internal(self):
        igp = route("1.1.1.0/24", "rip", nexthop="0.0.0.0")
        self.extint.add_route(igp)
        bgp = route("20.0.0.0/8", "ebgp", nexthop="1.1.1.1")
        self.extint.add_route(bgp)
        assert self.sink.current()[bgp.net] is bgp

    def test_held_external_released_when_igp_appears(self):
        bgp = route("20.0.0.0/8", "ebgp", nexthop="1.1.1.1")
        self.extint.add_route(bgp)
        self.extint.add_route(route("1.1.1.0/24", "rip"))
        assert self.sink.current()[bgp.net] is bgp
        assert not self.extint.unresolved

    def test_external_withdrawn_when_igp_goes(self):
        igp = route("1.1.1.0/24", "rip")
        bgp = route("20.0.0.0/8", "ebgp", nexthop="1.1.1.1")
        self.extint.add_route(igp)
        self.extint.add_route(bgp)
        self.extint.delete_route(igp)
        assert bgp.net not in self.sink.current()
        assert bgp.net in self.extint.unresolved

    def test_delete_held_external(self):
        bgp = route("20.0.0.0/8", "ebgp", nexthop="1.1.1.1")
        self.extint.add_route(bgp)
        self.extint.delete_route(bgp)
        assert not self.extint.unresolved
        assert self.sink.current() == {}

    def test_lookup_consistent_with_announcements(self):
        bgp = route("20.0.0.0/8", "ebgp", nexthop="1.1.1.1")
        self.extint.add_route(bgp)
        assert self.extint.lookup_route(bgp.net) is None  # held, not announced
        self.extint.add_route(route("1.1.1.0/24", "rip"))
        assert self.extint.lookup_route(bgp.net) is bgp

    def test_replace_internal(self):
        old = route("10.0.0.0/8", "rip", metric=2)
        new = route("10.0.0.0/8", "rip", metric=5)
        self.extint.add_route(old)
        self.extint.replace_route(old, new)
        assert self.sink.current()[new.net] is new


class TestRedistStage:
    def setup_method(self):
        self.redist = RedistStage("redist")
        self.sink = SinkStage()
        self.redist.set_next(self.sink)
        self.events = []

    def _target(self, protocol):
        self.redist.add_target(
            "t", lambda r: r.protocol == protocol,
            lambda op, r: self.events.append((op, r)))

    def test_matching_routes_redistributed(self):
        self._target("rip")
        rip = route("10.0.0.0/8", "rip")
        static = route("11.0.0.0/8", "static")
        self.redist.add_route(rip)
        self.redist.add_route(static)
        assert self.events == [("add", rip)]

    def test_initial_dump(self):
        rip = route("10.0.0.0/8", "rip")
        self.redist.add_route(rip)
        self._target("rip")
        assert self.events == [("add", rip)]

    def test_delete_propagates(self):
        self._target("rip")
        rip = route("10.0.0.0/8", "rip")
        self.redist.add_route(rip)
        self.redist.delete_route(rip)
        assert self.events == [("add", rip), ("delete", rip)]

    def test_replace_crossing_predicate(self):
        self._target("rip")
        rip = route("10.0.0.0/8", "rip")
        static = route("10.0.0.0/8", "static")
        self.redist.add_route(rip)
        self.redist.replace_route(rip, static)  # no longer matches
        assert self.events == [("add", rip), ("delete", rip)]
        self.redist.replace_route(static, rip)  # matches again
        assert self.events[-1] == ("add", rip)

    def test_messages_still_flow_downstream(self):
        self._target("rip")
        rip = route("10.0.0.0/8", "rip")
        self.redist.add_route(rip)
        assert self.sink.current() == {rip.net: rip}

    def test_remove_target(self):
        self._target("rip")
        self.redist.remove_target("t")
        self.redist.add_route(route("10.0.0.0/8", "rip"))
        assert self.events == []


class TestRegisterStage:
    """Paper §5.2.1 / Figure 8 semantics."""

    def setup_method(self):
        self.invalidations = []
        self.register = RegisterStage(
            "reg", invalidate_cb=lambda c, s: self.invalidations.append((c, s)))
        for prefix in ("128.16.0.0/16", "128.16.0.0/18",
                       "128.16.128.0/17", "128.16.192.0/18"):
            self.register.add_route(route(prefix, "rip"))

    def test_figure8_simple_case(self):
        """128.16.32.1 matches 128.16.0.0/18, valid for the whole /18."""
        subnet, matched = self.register.register_interest(
            "bgp", IPv4("128.16.32.1"))
        assert matched.net == net("128.16.0.0/18")
        assert subnet == net("128.16.0.0/18")

    def test_figure8_overlaid_case(self):
        """128.16.160.1 matches 128.16.128.0/17, but the /17 is overlaid by
        128.16.192.0/18, so the answer is valid only for 128.16.128.0/18."""
        subnet, matched = self.register.register_interest(
            "bgp", IPv4("128.16.160.1"))
        assert matched.net == net("128.16.128.0/17")
        assert subnet == net("128.16.128.0/18")

    def test_no_route_case(self):
        subnet, matched = self.register.register_interest(
            "bgp", IPv4("1.2.3.4"))
        assert matched is None
        # The valid subnet must not contain any existing route.
        for existing in ("128.16.0.0/16", "128.16.0.0/18"):
            assert not subnet.contains(net(existing))
        assert subnet.contains_addr(IPv4("1.2.3.4"))

    def test_valid_subnets_never_overlap(self):
        addrs = ["128.16.32.1", "128.16.160.1", "128.16.192.1",
                 "128.16.64.1", "1.2.3.4", "128.16.255.255"]
        subnets = [self.register.register_interest("bgp", IPv4(a))[0]
                   for a in addrs]
        for i, a in enumerate(subnets):
            for b in subnets[i + 1:]:
                assert not a.overlaps(b) or a == b

    def test_invalidation_on_overlapping_change(self):
        subnet, __ = self.register.register_interest("bgp", IPv4("128.16.32.1"))
        self.register.add_route(route("128.16.32.0/24", "static"))
        assert ("bgp", subnet) in self.invalidations

    def test_no_invalidation_for_unrelated_change(self):
        self.register.register_interest("bgp", IPv4("128.16.32.1"))
        self.register.add_route(route("99.0.0.0/8", "static"))
        assert self.invalidations == []

    def test_invalidation_on_delete(self):
        subnet, matched = self.register.register_interest(
            "bgp", IPv4("128.16.32.1"))
        self.register.delete_route(matched)
        assert ("bgp", subnet) in self.invalidations

    def test_reregistration_after_invalidation(self):
        subnet, __ = self.register.register_interest("bgp", IPv4("128.16.32.1"))
        self.register.add_route(route("128.16.32.0/24", "static"))
        new_subnet, matched = self.register.register_interest(
            "bgp", IPv4("128.16.32.1"))
        assert matched.net == net("128.16.32.0/24")

    def test_multiple_clients_share_registration(self):
        s1, __ = self.register.register_interest("bgp", IPv4("128.16.32.1"))
        s2, __ = self.register.register_interest("pim", IPv4("128.16.32.1"))
        assert s1 == s2
        self.register.add_route(route("128.16.32.0/24", "static"))
        clients = {c for c, __ in self.invalidations}
        assert clients == {"bgp", "pim"}

    def test_deregister(self):
        subnet, __ = self.register.register_interest("bgp", IPv4("128.16.32.1"))
        assert self.register.deregister_interest("bgp", subnet)
        self.register.add_route(route("128.16.32.0/24", "static"))
        assert self.invalidations == []

    def test_lookup_by_dest(self):
        assert self.register.lookup_by_dest(IPv4("128.16.200.1")).net == \
            net("128.16.192.0/18")
        assert self.register.lookup_by_dest(IPv4("9.9.9.9")) is None

    def test_host_route_interest(self):
        self.register.add_route(route("5.5.5.5/32", "static"))
        subnet, matched = self.register.register_interest("x", IPv4("5.5.5.5"))
        assert subnet == net("5.5.5.5/32")
        assert matched.net == net("5.5.5.5/32")
