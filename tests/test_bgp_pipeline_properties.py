"""Property-based tests of the whole BGP pipeline.

Random interleavings of announcements and withdrawals from several peers
flow through PeerIn -> filters -> nexthop resolvers -> decision -> fanout.
Invariants checked:

* the message stream leaving the pipeline obeys the paper's consistency
  rules (validated by a ConsistencyCheckStage reader);
* after quiescing, the decision's winners equal an oracle computed from
  the peers' current announcements with the documented ranking;
* the fanout's winners trie matches the decision winners.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import BgpProcess
from repro.bgp.attributes import ASPath, Origin, PathAttributeList
from repro.bgp.decision import route_ranking_key
from repro.bgp.messages import UpdateMessage
from repro.bgp.peer import PeerConfig
from repro.core.process import Host
from repro.core.stages import ConsistencyCheckStage
from repro.net import IPNet, IPv4

PREFIXES = [IPNet.parse(f"99.{i}.0.0/16") for i in range(6)]
PEERS = ["10.0.0.2", "10.0.1.2", "10.0.2.2"]

operations = st.lists(
    st.tuples(
        st.integers(0, len(PEERS) - 1),       # peer
        st.sampled_from(["announce", "withdraw"]),
        st.integers(0, len(PREFIXES) - 1),    # prefix
        st.integers(1, 4),                    # AS path length variant
        st.integers(0, 2),                    # MED variant
    ),
    max_size=40,
)


def attrs_for(peer_index: int, path_len: int, med: int) -> PathAttributeList:
    as_numbers = [65002 + peer_index] + [64000 + i for i in range(path_len - 1)]
    return PathAttributeList(
        origin=Origin.IGP,
        as_path=ASPath.from_sequence(*as_numbers),
        nexthop=IPv4(PEERS[peer_index]),
        med=med * 10,
    )


@settings(max_examples=40, deadline=None)
@given(operations)
def test_pipeline_consistency_and_winner_oracle(ops):
    host = Host()
    bgp = BgpProcess(host, local_as=65000, bgp_id=IPv4("9.9.9.9"),
                     rib_target=None)
    handlers = []
    for index, addr in enumerate(PEERS):
        handler = bgp.add_peer(PeerConfig(
            IPv4(addr), 65002 + index, 65000, IPv4("10.0.0.1")))
        handlers.append(handler)
    # A consistency-checking reader on the fanout (paper's cache stage).
    checker = ConsistencyCheckStage("reader-check")

    def deliver(op, route, old_route):
        if op == "add":
            checker.add_route(route)
        elif op == "delete":
            checker.delete_route(route)
        else:
            checker.replace_route(old_route, route)

    bgp.fanout.add_reader("checker", deliver, dump=False)

    # The oracle's view: per peer, prefix -> (attributes, peer_id).
    announced = [{} for __ in PEERS]

    for peer_index, op, prefix_index, path_len, med in ops:
        prefix = PREFIXES[prefix_index]
        handler = handlers[peer_index]
        if op == "announce":
            attributes = attrs_for(peer_index, path_len, med)
            handler.update_received(
                UpdateMessage(attributes=attributes, nlri=[prefix]))
            announced[peer_index][prefix] = attributes
        else:
            handler.update_received(UpdateMessage(withdrawn=[prefix]))
            announced[peer_index].pop(prefix, None)
        host.loop.run()  # quiesce (resolver callbacks etc.)

    host.loop.run()
    # Oracle: per prefix, rank every live announcement.
    for prefix in PREFIXES:
        candidates = []
        for peer_index, table in enumerate(announced):
            attributes = table.get(prefix)
            if attributes is None:
                continue
            # Mirror the import filter: default local_pref.
            effective = attributes if attributes.local_pref is not None \
                else attributes.replace(local_pref=100)
            candidates.append((peer_index, effective))
        winner = bgp.decision.winners.get(prefix)
        if not candidates:
            assert winner is None, f"{prefix}: ghost winner {winner}"
            continue
        assert winner is not None, f"{prefix}: missing winner"

        def rank(item):
            peer_index, attributes = item
            info = handlers[peer_index].info

            class FakeRoute:
                pass

            fake = FakeRoute()
            fake.attributes = attributes
            fake.igp_metric = 0
            return route_ranking_key(fake, info)

        best_peer, best_attrs = max(candidates, key=rank)
        assert winner.peer_id == PEERS[best_peer], (
            f"{prefix}: winner from {winner.peer_id}, oracle says "
            f"{PEERS[best_peer]}")
        assert winner.attributes == best_attrs
    # The fanout's winners trie mirrors the decision.
    fanout_winners = {net: route for net, route in bgp.fanout.winners.items()}
    assert fanout_winners == bgp.decision.winners
    # And the checker reader's reconstructed table matches too.
    checker_table = {net: route for net, route in checker.cache.items()}
    assert checker_table == bgp.decision.winners
    assert checker.checks_failed == 0
