"""Stress tests: out-of-order deferred replies over TCP; peer-down during
another peer's background table dump."""

import pytest

from repro.bgp import BgpProcess, BgpState
from repro.bgp.peer import PeerConfig
from repro.bgp.session import session_pair
from repro.core.process import Host
from repro.eventloop import EventLoop, SimulatedClock, SystemClock
from repro.net import IPNet, IPv4
from repro.xrl import Finder, Xrl, XrlArgs, XrlRouter, parse_idl
from repro.xrl.router import DeferredReply
from repro.xrl.transport import TcpFamily


class TestDeferredOverTcp:
    def test_out_of_order_replies_matched_by_sequence(self):
        """A deferred first request answered after a fast second request."""
        loop = EventLoop(SystemClock())
        finder = Finder()
        family = TcpFamily()
        server = XrlRouter(loop, "svc", finder, families=[family])
        parked = []

        def slow_handler(args):
            deferred = DeferredReply()
            parked.append((deferred, args.get_u32("value")))
            return deferred

        def fast_handler(args):
            from repro.xrl import XrlArgs as Args

            return Args().add_u32("value", args.get_u32("value"))

        server.register_raw_method("svc/1.0/slow", slow_handler)
        server.register_raw_method("svc/1.0/fast", fast_handler)
        client = XrlRouter(loop, "cli", finder, families=[family])
        results = []
        client.send(Xrl("svc", "svc", "1.0", "slow",
                        XrlArgs().add_u32("value", 1)),
                    lambda err, args: results.append(("slow", err.is_okay,
                                                      args.get_u32("value")
                                                      if err.is_okay else None)))
        client.send(Xrl("svc", "svc", "1.0", "fast",
                        XrlArgs().add_u32("value", 2)),
                    lambda err, args: results.append(("fast", err.is_okay,
                                                      args.get_u32("value")
                                                      if err.is_okay else None)))
        # The fast reply arrives while the slow one is parked.
        assert loop.run_until(lambda: len(results) == 1 and parked, timeout=10)
        assert results[0] == ("fast", True, 2)
        deferred, value = parked[0]
        deferred.reply(XrlArgs().add_u32("value", value + 100))
        assert loop.run_until(lambda: len(results) == 2, timeout=10)
        assert results[1] == ("slow", True, 101)

    def test_many_interleaved_deferrals(self):
        loop = EventLoop(SystemClock())
        finder = Finder()
        family = TcpFamily()
        server = XrlRouter(loop, "svc", finder, families=[family])
        parked = []

        def handler(args):
            deferred = DeferredReply()
            parked.append((deferred, args.get_u32("value")))
            return deferred

        server.register_raw_method("svc/1.0/echo", handler)
        client = XrlRouter(loop, "cli", finder, families=[family])
        results = {}
        for i in range(20):
            client.send(Xrl("svc", "svc", "1.0", "echo",
                            XrlArgs().add_u32("value", i)),
                        lambda err, args, i=i: results.__setitem__(
                            i, args.get_u32("value")))
        assert loop.run_until(lambda: len(parked) == 20, timeout=10)
        # Answer in reverse order: seq matching must pair them correctly.
        for deferred, value in reversed(parked):
            deferred.reply(XrlArgs().add_u32("value", value * 10))
        assert loop.run_until(lambda: len(results) == 20, timeout=10)
        assert all(results[i] == i * 10 for i in range(20))


class TestDumpDuringPeerFailure:
    def test_peer_down_mid_dump_stays_consistent(self):
        """Peer A's table is being dumped to late peer C when A dies.

        The deletion stage's withdrawals race the dump; C must end with
        exactly B's surviving routes and a rule-consistent stream (its
        out-branch cache stage asserts that on the fly).
        """
        loop = EventLoop(SimulatedClock())

        def build(name, asn, router_id):
            host = Host(loop=loop)
            return BgpProcess(host, local_as=asn, bgp_id=IPv4(router_id),
                              rib_target=None, debug_cache_stages=True)

        hub = build("hub", 65000, "9.9.9.9")
        feeder_a = build("a", 65001, "1.1.1.1")
        feeder_b = build("b", 65002, "2.2.2.2")
        late_c = build("c", 65003, "3.3.3.3")

        def connect(left, right, addr_l, addr_r):
            s1, s2 = session_pair(loop, 0.001)
            peer_l = left.add_peer(PeerConfig(
                IPv4(addr_r), right.local_as, left.local_as, IPv4(addr_l)))
            peer_r = right.add_peer(PeerConfig(
                IPv4(addr_l), left.local_as, right.local_as, IPv4(addr_r)))
            peer_l.attach_session(s1)
            peer_r.attach_session(s2)
            peer_l.enable()
            peer_r.enable()
            return peer_l, peer_r

        hub_a, a_hub = connect(hub, feeder_a, "10.0.1.9", "10.0.1.1")
        hub_b, b_hub = connect(hub, feeder_b, "10.0.2.9", "10.0.2.2")
        assert loop.run_until(
            lambda: all(p.fsm.state == BgpState.ESTABLISHED
                        for p in (hub_a, a_hub, hub_b, b_hub)), timeout=60)
        # A and B each feed 120 routes (disjoint prefixes).
        for i in range(120):
            feeder_a.xrl_originate_route4(
                IPNet.parse(f"99.{i}.0.0/16"), IPv4("10.0.1.1"), True)
            feeder_b.xrl_originate_route4(
                IPNet.parse(f"123.{i}.0.0/16"), IPv4("10.0.2.2"), True)
        assert loop.run_until(lambda: hub.decision.route_count == 240,
                              timeout=120)
        # C connects; the background dump to C begins.
        hub_c, c_hub = connect(hub, late_c, "10.0.3.9", "10.0.3.3")
        assert loop.run_until(
            lambda: hub_c.fsm.state == BgpState.ESTABLISHED
            and late_c.decision.route_count > 0, timeout=60)
        # Mid-dump, feeder A's session dies.
        hub_a.disable()
        assert loop.run_until(lambda: hub.decision.route_count == 120,
                              timeout=240)
        assert loop.run_until(lambda: late_c.decision.route_count == 120,
                              timeout=240)
        survivors = {str(net) for net in late_c.decision.winners}
        assert survivors == {f"123.{i}.0.0/16" for i in range(120)}
        # The consistency-checking cache stage on hub's C branch never
        # tripped (it raises on any rule violation).
        assert hub.peers[hub_c.peer_id].out_cache.checks_failed == 0
