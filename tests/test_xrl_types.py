"""Unit + property tests for XRL atoms, args, and the Xrl object."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import IPNet, IPv4, IPv6, Mac
from repro.xrl import Xrl, XrlArgs, XrlAtom, XrlAtomType, XrlError
from repro.xrl.types import escape_text, unescape_text


class TestAtomText:
    def test_u32(self):
        atom = XrlAtom("as", XrlAtomType.U32, 1777)
        assert atom.to_text() == "as:u32=1777"
        assert XrlAtom.from_text("as:u32=1777") == atom

    def test_txt_with_specials(self):
        atom = XrlAtom("s", XrlAtomType.TXT, "a&b=c d/e?f")
        parsed = XrlAtom.from_text(atom.to_text())
        assert parsed.value == "a&b=c d/e?f"

    def test_bool(self):
        assert XrlAtom.from_text("f:bool=true").value is True
        assert XrlAtom.from_text("f:bool=false").value is False

    def test_ipv4(self):
        atom = XrlAtom.from_text("peer:ipv4=10.0.0.1")
        assert atom.value == IPv4("10.0.0.1")

    def test_ipv4net(self):
        atom = XrlAtom.from_text("net:ipv4net=10.0.0.0/8")
        assert atom.value == IPNet.parse("10.0.0.0/8")

    def test_ipv6net(self):
        atom = XrlAtom("n", XrlAtomType.IPV6NET, "2001:db8::/32")
        assert XrlAtom.from_text(atom.to_text()) == atom

    def test_mac(self):
        atom = XrlAtom("hw", XrlAtomType.MAC, "aa:bb:cc:dd:ee:ff")
        assert XrlAtom.from_text(atom.to_text()) == atom

    def test_binary_hex(self):
        atom = XrlAtom("data", XrlAtomType.BINARY, b"\x00\xff")
        assert atom.to_text() == "data:binary=00ff"
        assert XrlAtom.from_text("data:binary=00ff").value == b"\x00\xff"

    def test_list(self):
        inner = [XrlAtom("x", XrlAtomType.U32, 1), XrlAtom("y", XrlAtomType.U32, 2)]
        atom = XrlAtom("l", XrlAtomType.LIST, inner)
        assert XrlAtom.from_text(atom.to_text()).value == inner

    def test_empty_list(self):
        atom = XrlAtom("l", XrlAtomType.LIST, [])
        assert XrlAtom.from_text(atom.to_text()).value == []

    def test_rejects_wrong_net_family(self):
        with pytest.raises(XrlError):
            XrlAtom("n", XrlAtomType.IPV4NET, "2001:db8::/32")

    def test_rejects_out_of_range(self):
        with pytest.raises(XrlError):
            XrlAtom("n", XrlAtomType.U32, -1)
        with pytest.raises(XrlError):
            XrlAtom("n", XrlAtomType.U32, 1 << 32)
        with pytest.raises(XrlError):
            XrlAtom("n", XrlAtomType.I32, 1 << 31)

    def test_rejects_bad_name(self):
        with pytest.raises(XrlError):
            XrlAtom("a&b", XrlAtomType.U32, 1)
        with pytest.raises(XrlError):
            XrlAtom("", XrlAtomType.U32, 1)

    def test_rejects_unknown_type_text(self):
        with pytest.raises(XrlError):
            XrlAtom.from_text("x:float=1.5")

    def test_rejects_malformed_text(self):
        with pytest.raises(XrlError):
            XrlAtom.from_text("novalue:u32")
        with pytest.raises(XrlError):
            XrlAtom.from_text("notype=5")


class TestEscaping:
    @given(st.text(max_size=200))
    def test_round_trip(self, text):
        assert unescape_text(escape_text(text)) == text

    def test_structural_chars_escaped(self):
        escaped = escape_text("a&b")
        assert "&" not in escaped

    def test_truncated_escape_raises(self):
        with pytest.raises(XrlError):
            unescape_text("%2")

    def test_bad_hex_raises(self):
        with pytest.raises(XrlError):
            unescape_text("%zz")


atom_strategy = st.one_of(
    st.builds(lambda v: XrlAtom("a", XrlAtomType.I32, v),
              st.integers(-(1 << 31), (1 << 31) - 1)),
    st.builds(lambda v: XrlAtom("b", XrlAtomType.U32, v),
              st.integers(0, (1 << 32) - 1)),
    st.builds(lambda v: XrlAtom("c", XrlAtomType.U64, v),
              st.integers(0, (1 << 64) - 1)),
    st.builds(lambda v: XrlAtom("d", XrlAtomType.TXT, v), st.text(max_size=64)),
    st.builds(lambda v: XrlAtom("e", XrlAtomType.BOOL, v), st.booleans()),
    st.builds(lambda v: XrlAtom("f", XrlAtomType.IPV4, IPv4(v)),
              st.integers(0, (1 << 32) - 1)),
    st.builds(lambda v: XrlAtom("g", XrlAtomType.IPV6, IPv6(v)),
              st.integers(0, (1 << 128) - 1)),
    st.builds(lambda v, p: XrlAtom("h", XrlAtomType.IPV4NET, IPNet(IPv4(v), p)),
              st.integers(0, (1 << 32) - 1), st.integers(0, 32)),
    st.builds(lambda v: XrlAtom("i", XrlAtomType.MAC, Mac(v)),
              st.integers(0, (1 << 48) - 1)),
    st.builds(lambda v: XrlAtom("j", XrlAtomType.BINARY, bytes(v)),
              st.lists(st.integers(0, 255), max_size=64)),
)


class TestBinaryCodec:
    @given(atom_strategy)
    def test_atom_round_trip(self, atom):
        decoded, offset = XrlAtom.from_binary(atom.to_binary())
        assert decoded == atom
        assert offset == len(atom.to_binary())

    @given(atom_strategy)
    def test_text_round_trip(self, atom):
        assert XrlAtom.from_text(atom.to_text()) == atom

    def test_nested_list_binary(self):
        inner = [XrlAtom("x", XrlAtomType.IPV4, "1.2.3.4")]
        atom = XrlAtom("l", XrlAtomType.LIST,
                       [XrlAtom("n", XrlAtomType.LIST, inner)])
        decoded, __ = XrlAtom.from_binary(atom.to_binary())
        assert decoded == atom

    def test_truncated_binary_raises(self):
        atom = XrlAtom("x", XrlAtomType.U32, 5)
        with pytest.raises(XrlError):
            XrlAtom.from_binary(atom.to_binary()[:-2])


class TestXrlArgs:
    def test_chaining_and_get(self):
        args = XrlArgs().add_u32("as", 1777).add_ipv4("peer", "10.0.0.1")
        assert args.get_u32("as") == 1777
        assert args.get_ipv4("peer") == IPv4("10.0.0.1")
        assert len(args) == 2

    def test_duplicate_rejected(self):
        with pytest.raises(XrlError):
            XrlArgs().add_u32("x", 1).add_u32("x", 2)

    def test_missing_raises(self):
        with pytest.raises(XrlError):
            XrlArgs().get_u32("absent")

    def test_wrong_type_raises(self):
        args = XrlArgs().add_u32("x", 1)
        with pytest.raises(XrlError):
            args.get_txt("x")

    def test_text_round_trip(self):
        args = (XrlArgs().add_u32("a", 1).add_txt("b", "hi there")
                .add_ipv4net("c", "10.0.0.0/8").add_bool("d", True))
        assert XrlArgs.from_text(args.to_text()) == args

    def test_binary_round_trip(self):
        args = (XrlArgs().add_u64("big", 1 << 40).add_binary("blob", b"\x01\x02")
                .add_ipv6("v6", "2001:db8::1"))
        assert XrlArgs.from_binary(args.to_binary()) == args

    def test_empty(self):
        assert XrlArgs.from_text("") == XrlArgs()
        assert XrlArgs.from_binary(XrlArgs().to_binary()) == XrlArgs()

    def test_preserves_order(self):
        args = XrlArgs().add_u32("z", 1).add_u32("a", 2)
        assert [a.name for a in args] == ["z", "a"]


class TestXrl:
    def test_paper_example(self):
        """The exact XRL from paper §6.1."""
        text = "finder://bgp/bgp/1.0/set_local_as?as:u32=1777"
        xrl = Xrl.from_text(text)
        assert xrl.target == "bgp"
        assert xrl.interface == "bgp"
        assert xrl.version == "1.0"
        assert xrl.method == "set_local_as"
        assert xrl.args.get_u32("as") == 1777
        assert xrl.to_text() == text
        assert not xrl.is_resolved

    def test_resolved_form(self):
        text = "stcp://192.1.2.3:16878/bgp/1.0/set_local_as?as:u32=1777"
        xrl = Xrl.from_text(text)
        assert xrl.is_resolved
        assert xrl.protocol == "stcp"
        assert xrl.target == "192.1.2.3:16878"

    def test_no_args(self):
        xrl = Xrl.from_text("finder://rib/rib/1.0/get_routes")
        assert len(xrl.args) == 0
        assert xrl.to_text() == "finder://rib/rib/1.0/get_routes"

    def test_method_path(self):
        xrl = Xrl("bgp", "bgp", "1.0", "set_local_as")
        assert xrl.method_path == "bgp/1.0/set_local_as"

    def test_bad_text_raises(self):
        with pytest.raises(XrlError):
            Xrl.from_text("no-protocol-separator")
        with pytest.raises(XrlError):
            Xrl.from_text("finder://only/two")

    def test_bad_fields_raise(self):
        with pytest.raises(XrlError):
            Xrl("bgp/evil", "bgp", "1.0", "m")
        with pytest.raises(XrlError):
            Xrl("bgp", "", "1.0", "m")
