"""Process supervision, XRL retry, and fault-injection tests.

Covers the failure-handling subsystem end to end (DESIGN.md "Failure
model"): the deterministic FaultFamily chaos transport, the XRL layer's
deadlines/retries/late-reply accounting, the kill family's delivery-time
liveness check, the Finder's invalidate-before-notify death ordering,
the Supervisor's backoff / storm budget / dependency ordering / ping
watchdog — and, as the acceptance test, the full kill-BGP-mid-session
recovery scenario from :mod:`repro.experiments.recovery`.
"""

import pytest

from repro.core.process import Host, XorpProcess
from repro.experiments.recovery import run_recovery
from repro.net import IPv4
from repro.rtrmgr import RouterManager, Supervisor, SupervisorPolicy
from repro.xrl import XrlArgs
from repro.xrl.error import XrlErrorCode
from repro.xrl.finder import BIRTH, DEATH
from repro.xrl.retry import RetryPolicy
from repro.xrl.router import DeferredReply
from repro.xrl.transport import FaultFamily
from repro.xrl.transport.base import decode_response
from repro.xrl.transport.kill import SIGTERM, KillFamily
from repro.xrl.xrl import Xrl


def _service(host, process_name="sp", class_name="svc"):
    """A process exposing ``svc/1.0 ping``; returns (process, router)."""
    process = XorpProcess(host, process_name)
    router = process.create_router(class_name)
    router.register_raw_method("svc/1.0/ping", lambda args: None)
    return process, router


def _client(host, process_name="cp", class_name="cli"):
    process = XorpProcess(host, process_name)
    return process, process.create_router(class_name)


def _ping_xrl():
    return Xrl("svc", "svc", "1.0", "ping", XrlArgs())


# ---------------------------------------------------------------------------
# FaultFamily
# ---------------------------------------------------------------------------

class TestFaultFamily:
    def _run_drop_sequence(self, seed):
        host = Host()
        fault = FaultFamily.wrap_host(host, seed=seed, drop_probability=0.3)
        _service(host)
        __, client = _client(host)
        outcomes = []
        for __unused in range(40):
            error, __ = client.send_sync(_ping_xrl(), deadline=1.0)
            outcomes.append(error.is_okay)
        return outcomes, fault.stats

    def test_same_seed_same_faults(self):
        outcomes_a, stats_a = self._run_drop_sequence(seed=5)
        outcomes_b, stats_b = self._run_drop_sequence(seed=5)
        assert outcomes_a == outcomes_b
        assert stats_a.dropped == stats_b.dropped
        assert stats_a.passed == stats_b.passed
        assert stats_a.dropped > 0
        assert any(outcomes_a) and not all(outcomes_a)

    def test_different_seed_different_faults(self):
        outcomes_a, __ = self._run_drop_sequence(seed=5)
        outcomes_b, __ = self._run_drop_sequence(seed=6)
        assert outcomes_a != outcomes_b

    def test_partition_and_heal(self):
        host = Host()
        fault = FaultFamily.wrap_host(host)
        _service(host)
        __, client = _client(host)
        fault.partition("cli", "svc")
        error, __ = client.send_sync(_ping_xrl(), deadline=1.0)
        assert error.code == XrlErrorCode.REPLY_TIMED_OUT
        assert fault.stats.partitioned > 0
        fault.heal_all()
        error, __ = client.send_sync(_ping_xrl(), deadline=1.0)
        assert error.is_okay

    def test_scope_limits_faults_to_named_pairs(self):
        host = Host()
        fault = FaultFamily.wrap_host(
            host, drop_probability=1.0,
            scope={frozenset({"cli", "svc"})})
        _service(host)
        other_process = XorpProcess(host, "op")
        other = other_process.create_router("other")
        other.register_raw_method("svc/1.0/ping", lambda args: None)
        __, client = _client(host)
        # In-scope traffic is annihilated...
        error, __ = client.send_sync(_ping_xrl(), deadline=1.0)
        assert not error.is_okay
        # ...but an out-of-scope pair sails through untouched.
        error, __ = client.send_sync(
            Xrl("other", "svc", "1.0", "ping", XrlArgs()), deadline=1.0)
        assert error.is_okay
        assert fault.stats.dropped == 1

    def test_duplicate_delivers_twice_and_late_reply_is_counted(self):
        host = Host()
        fault = FaultFamily.wrap_host(host, duplicate_probability=1.0)
        process = XorpProcess(host, "sp")
        router = process.create_router("svc")
        calls = {"n": 0}

        def ping(args):
            calls["n"] += 1
            return None

        router.register_raw_method("svc/1.0/ping", ping)
        __, client = _client(host)
        error, __ = client.send_sync(_ping_xrl(), deadline=1.0)
        assert error.is_okay
        host.loop.run(duration=0.1)
        assert calls["n"] == 2
        assert fault.stats.duplicated == 1
        # The duplicate's reply arrives after the call completed.
        assert client.late_replies == 1

    def test_corruption_is_rejected_not_crashed(self):
        host = Host()
        fault = FaultFamily.wrap_host(host, seed=1, corrupt_probability=1.0)
        _service(host)
        __, client = _client(host)
        error, __ = client.send_sync(_ping_xrl(), deadline=1.0)
        assert not error.is_okay
        assert fault.stats.corrupted > 0
        fault.corrupt_probability = 0.0
        error, __ = client.send_sync(_ping_xrl(), deadline=1.0)
        assert error.is_okay

    def test_delay_defers_delivery(self):
        host = Host()
        fault = FaultFamily.wrap_host(host, delay=0.5)
        _service(host)
        __, client = _client(host)
        start = host.loop.now()
        error, __ = client.send_sync(_ping_xrl(), deadline=5.0)
        assert error.is_okay
        # Request and reply each crossed the family once: >= 2 delays.
        assert host.loop.now() - start >= 1.0
        assert fault.stats.delayed >= 2


# ---------------------------------------------------------------------------
# XRL retry / deadline / late replies
# ---------------------------------------------------------------------------

class TestXrlReliability:
    def test_retry_recovers_from_drops(self):
        host = Host()
        # seed 1's first roll drops the frame, forcing at least one retry
        FaultFamily.wrap_host(host, seed=1, drop_probability=0.7)
        _service(host)
        __, client = _client(host)
        policy = RetryPolicy(max_attempts=20, backoff=0.05,
                             attempt_timeout=0.2, seed=2)
        error, __ = client.send_sync(_ping_xrl(), deadline=60.0, retry=policy)
        assert error.is_okay
        assert client.retries_performed > 0

    def test_no_retry_without_policy(self):
        host = Host()
        FaultFamily.wrap_host(host, drop_probability=1.0)
        _service(host)
        __, client = _client(host)
        error, __ = client.send_sync(_ping_xrl(), deadline=1.0)
        assert error.code == XrlErrorCode.REPLY_TIMED_OUT
        assert client.retries_performed == 0

    def test_send_sync_timeout_retires_pending_call(self):
        host = Host()
        process = XorpProcess(host, "sp")
        router = process.create_router("svc")
        parked = []

        def slow(args):
            reply = DeferredReply()
            parked.append(reply)
            return reply

        router.register_raw_method("svc/1.0/slow", slow)
        __, client = _client(host)
        error, __ = client.send_sync(
            Xrl("svc", "svc", "1.0", "slow", XrlArgs()), deadline=2.0)
        assert error.code == XrlErrorCode.REPLY_TIMED_OUT
        assert client.late_replies == 0
        # The handler answers long after the deadline: the reply must be
        # counted and dropped, not delivered into the dead call.
        parked[0].reply(None)
        host.loop.run(duration=0.5)
        assert client.late_replies == 1

    def test_shutdown_fails_pending_calls(self):
        host = Host()
        process = XorpProcess(host, "sp")
        router = process.create_router("svc")
        router.register_raw_method("svc/1.0/slow",
                                   lambda args: DeferredReply())
        __, client = _client(host)
        box = []
        client.send(Xrl("svc", "svc", "1.0", "slow", XrlArgs()),
                    lambda error, args: box.append(error))
        host.loop.run(duration=0.05)
        client.shutdown()
        host.loop.run(duration=0.05)
        assert len(box) == 1
        assert box[0].code == XrlErrorCode.SEND_FAILED


# ---------------------------------------------------------------------------
# Finder death ordering
# ---------------------------------------------------------------------------

class TestFinderDeathOrdering:
    def test_cache_invalidated_before_death_notification(self):
        """A DEATH watcher must observe the already-invalidated world.

        deregister_component runs cache invalidation before notifying
        watchers, so anything a watcher does in response (a supervisor
        scheduling a restart, a client re-sending) resolves fresh instead
        of riding a cached sender towards the corpse.
        """
        host = Host()
        server_process, __ = _service(host)
        __, client = _client(host)
        error, __ = client.send_sync(_ping_xrl(), deadline=1.0)
        assert error.is_okay
        assert any(key[0] == "svc" for key in client._cache)

        observed = []
        send_outcome = []

        def watcher(event, class_name, instance):
            cached = any(key[0] == "svc" for key in client._cache)
            observed.append((event, cached))
            if event == DEATH:
                # A send issued from inside the DEATH callback must fail
                # a fresh resolve, not reach a stale cached sender.
                client.send(_ping_xrl(),
                            lambda err, args: send_outcome.append(err))

        host.finder.watch("t", "svc", watcher)
        assert observed == [(BIRTH, True)]
        server_process.shutdown()
        assert observed[1] == (DEATH, False)
        host.loop.run(duration=0.05)  # resolution errors report deferred
        assert len(send_outcome) == 1
        assert send_outcome[0].code == XrlErrorCode.RESOLVE_FAILED


# ---------------------------------------------------------------------------
# Kill family liveness
# ---------------------------------------------------------------------------

class TestKillFamilyLiveness:
    def test_unlisten_between_call_and_delivery(self):
        host = Host()
        victim = XorpProcess(host, "victim")

        class Caller:
            loop = host.loop

        sender = host.kill_family.connect(victim._kill_address, Caller())
        replies = []
        sender.call(KillFamily.encode_signal(1, SIGTERM), replies.append)
        # The signal is queued on the loop; the target vanishes first.
        host.kill_family.unlisten(victim._kill_address)
        host.loop.run(duration=0.05)
        assert victim.running  # on_signal must NOT have fired
        assert len(replies) == 1
        __, error, __args = decode_response(replies[0])
        assert error.code == XrlErrorCode.SEND_FAILED

    def test_live_target_still_killed(self):
        host = Host()
        victim = XorpProcess(host, "victim")

        class Caller:
            loop = host.loop

        sender = host.kill_family.connect(victim._kill_address, Caller())
        replies = []
        sender.call(KillFamily.encode_signal(1, SIGTERM), replies.append)
        host.loop.run(duration=0.05)
        assert not victim.running
        __, error, __args = decode_response(replies[0])
        assert error.is_okay


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------

def _flappy_factory(host, name):
    def make():
        process = XorpProcess(host, name)
        process.create_router(name)
        return process
    return make


class TestSupervisor:
    def test_restart_after_death(self):
        host = Host()
        manager = RouterManager(host)
        make = _flappy_factory(host, "flappy")
        make()
        supervisor = Supervisor(manager, SupervisorPolicy(
            ping_period=0, backoff_initial=0.1, jitter=0, stable_after=0,
            seed=0))
        supervisor.add_module("flappy", restart=make)
        supervisor.start()
        assert supervisor.status("flappy") == "up"
        host.processes["flappy"].shutdown()
        assert supervisor.status("flappy") == "restarting"
        assert host.loop.run_until(
            lambda: supervisor.status("flappy") == "up", timeout=5.0)
        assert supervisor.restarts == 1
        assert host.processes["flappy"].running

    def test_storm_budget_gives_up(self):
        host = Host()
        manager = RouterManager(host)
        make = _flappy_factory(host, "flappy")
        make()
        supervisor = Supervisor(manager, SupervisorPolicy(
            ping_period=0, backoff_initial=0.1, backoff_multiplier=1.0,
            jitter=0, stable_after=0, storm_window=1000.0, storm_budget=3,
            seed=0))
        gave_up = []
        supervisor.on_gave_up = lambda name, reason: gave_up.append(reason)
        supervisor.add_module("flappy", restart=make)
        supervisor.start()

        def crash_if_up():
            process = host.processes.get("flappy")
            if process is not None and process.running:
                process.shutdown()

        host.loop.call_periodic(0.05, crash_if_up, name="crasher")
        assert host.loop.run_until(lambda: bool(gave_up), timeout=60.0)
        assert supervisor.status("flappy") == "failed"
        assert supervisor.restarts == 3  # exactly the budget, then stop
        assert "storm" in gave_up[0]

    def test_backoff_grows_between_attempts(self):
        host = Host()
        manager = RouterManager(host)
        make = _flappy_factory(host, "flappy")
        make()
        supervisor = Supervisor(manager, SupervisorPolicy(
            ping_period=0, backoff_initial=0.2, backoff_multiplier=2.0,
            jitter=0, stable_after=0, storm_budget=10, seed=0))
        supervisor.add_module("flappy", restart=make)
        supervisor.start()
        restart_times = []
        supervisor.on_restarted = (
            lambda name, process: restart_times.append(host.loop.now()))

        def crash_if_up():
            process = host.processes.get("flappy")
            if process is not None and process.running:
                process.shutdown()

        crasher = host.loop.call_periodic(0.01, crash_if_up, name="crasher")
        assert host.loop.run_until(lambda: len(restart_times) >= 3,
                                   timeout=30.0)
        crasher.cancel()
        first_gap = restart_times[1] - restart_times[0]
        second_gap = restart_times[2] - restart_times[1]
        # 0.2 -> 0.4 -> 0.8 doubling (no jitter configured).
        assert second_gap > first_gap > 0.2

    def test_dependency_restarted_first(self):
        host = Host()
        manager = RouterManager(host)
        order = []

        def make(name):
            def factory():
                order.append(name)
                process = XorpProcess(host, name)
                process.create_router(name)
                return process
            return factory

        make("ribx")()
        make("bgpx")()
        order.clear()
        supervisor = Supervisor(manager, SupervisorPolicy(
            ping_period=0, backoff_initial=0.1, jitter=0, stable_after=0,
            seed=0))
        supervisor.add_module("ribx", restart=make("ribx"))
        supervisor.add_module("bgpx", restart=make("bgpx"),
                              depends_on=("ribx",))
        supervisor.start()
        # Both die; bgpx's restart timer fires first (scheduled first)
        # and must bring ribx back before bgpx itself.
        host.processes["bgpx"].shutdown()
        host.processes["ribx"].shutdown()
        assert host.loop.run_until(
            lambda: supervisor.status("bgpx") == "up"
            and supervisor.status("ribx") == "up", timeout=5.0)
        assert order == ["ribx", "bgpx"]

    def test_ping_detects_wedged_module(self):
        host = Host()
        manager = RouterManager(host)
        state = {"wedged": False}

        def make():
            process = XorpProcess(host, "wsvc")
            router = process.create_router("wsvc")

            def get_status(args):
                if state["wedged"]:
                    return DeferredReply()  # alive but never answers
                return XrlArgs().add_txt("status", "running")

            router.register_raw_method("common/0.1/get_status", get_status)
            return process

        def restart():
            old = host.processes.get("wsvc")
            if old is not None and old.running:
                old.shutdown()
            state["wedged"] = False
            return make()

        make()
        supervisor = Supervisor(manager, SupervisorPolicy(
            ping_period=0.5, ping_timeout=0.2, ping_failures=2,
            backoff_initial=0.1, jitter=0, stable_after=0, seed=0))
        supervisor.add_module("wsvc", restart=restart)
        supervisor.start()
        host.loop.run(duration=2.0)
        assert supervisor.status("wsvc") == "up"
        assert supervisor.restarts == 0
        state["wedged"] = True
        assert host.loop.run_until(lambda: supervisor.restarts == 1,
                                   timeout=30.0)
        assert host.loop.run_until(
            lambda: supervisor.status("wsvc") == "up", timeout=5.0)
        # The replacement answers pings again: no further restarts.
        host.loop.run(duration=3.0)
        assert supervisor.restarts == 1


# ---------------------------------------------------------------------------
# The acceptance scenario: kill BGP mid-session under 10% frame loss
# ---------------------------------------------------------------------------

@pytest.mark.chaos
class TestRecoveryScenario:
    def test_kill_restart_reconverge(self):
        result = run_recovery(seed=7, drop_probability=0.10)
        assert result.restarts == 1
        assert result.dropped > 0          # the chaos actually happened
        assert result.retries > 0          # and retries papered over it
        assert result.time_to_restart > 0
        assert result.time_to_reconverge >= result.time_to_restart

    def test_recovery_is_deterministic(self):
        first = run_recovery(seed=7, drop_probability=0.10)
        second = run_recovery(seed=7, drop_probability=0.10)
        assert first.fingerprint() == second.fingerprint()

    def test_recovery_seed_sensitivity(self):
        first = run_recovery(seed=7, drop_probability=0.10)
        other = run_recovery(seed=11, drop_probability=0.10)
        assert first.fingerprint() != other.fingerprint()
