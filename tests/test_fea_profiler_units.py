"""Unit tests for FEA internals (fib, ifmgr, rawsock) and the profiler."""

import pytest

from repro.eventloop import EventLoop, SimulatedClock
from repro.fea import Fib, FibEntry, Interface, InterfaceManager, LoopbackPacketIO
from repro.fea.rawsock import RawSocketRelay
from repro.net import IPNet, IPv4, IPv6
from repro.profiler import Profiler
from repro.trie import RouteTrie


def net(text):
    return IPNet.parse(text)


class TestFib:
    def test_insert_lookup_remove(self):
        fib = Fib()
        entry = FibEntry(net("10.0.0.0/8"), IPv4("1.1.1.1"), "eth0")
        assert fib.insert(entry) is None
        assert fib.lookup(IPv4("10.9.9.9")) == entry
        assert fib.exact(net("10.0.0.0/8")) == entry
        assert fib.remove(net("10.0.0.0/8")) == entry
        assert len(fib) == 0

    def test_overwrite_returns_old(self):
        fib = Fib()
        old = FibEntry(net("10.0.0.0/8"), IPv4("1.1.1.1"))
        new = FibEntry(net("10.0.0.0/8"), IPv4("2.2.2.2"))
        fib.insert(old)
        assert fib.insert(new) == old
        assert fib.lookup(IPv4("10.0.0.1")) == new

    def test_lpm_order(self):
        fib = Fib()
        fib.insert(FibEntry(net("0.0.0.0/0"), IPv4("9.9.9.9"), "default"))
        fib.insert(FibEntry(net("10.0.0.0/8"), IPv4("1.1.1.1"), "eth0"))
        fib.insert(FibEntry(net("10.1.0.0/16"), IPv4("2.2.2.2"), "eth1"))
        assert fib.lookup(IPv4("10.1.5.5")).ifname == "eth1"
        assert fib.lookup(IPv4("10.2.5.5")).ifname == "eth0"
        assert fib.lookup(IPv4("99.9.9.9")).ifname == "default"

    def test_v6_fib(self):
        fib = Fib(128)
        fib.insert(FibEntry(net("2001:db8::/32"), IPv6("fe80::1"), "eth0"))
        assert fib.lookup(IPv6("2001:db8::99")).ifname == "eth0"
        assert fib.lookup(IPv6("2002::1")) is None

    def test_entries_and_clear(self):
        fib = Fib()
        for i in range(5):
            fib.insert(FibEntry(net(f"10.{i}.0.0/16"), IPv4("1.1.1.1")))
        assert len(list(fib.entries())) == 5
        fib.clear()
        assert len(fib) == 0


class TestInterfaceManager:
    def test_create_and_get(self):
        mgr = InterfaceManager()
        mgr.create("eth0", "10.0.0.1", 24)
        assert mgr.get("eth0").subnet == net("10.0.0.0/24")
        assert mgr.names() == ["eth0"]
        assert len(mgr) == 1

    def test_duplicate_rejected(self):
        mgr = InterfaceManager()
        mgr.create("eth0", "10.0.0.1", 24)
        with pytest.raises(ValueError):
            mgr.create("eth0", "10.0.0.2", 24)

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            InterfaceManager().get("eth9")

    def test_interface_for_addr_skips_disabled(self):
        mgr = InterfaceManager()
        interface = mgr.create("eth0", "10.0.0.1", 24)
        assert mgr.interface_for_addr(IPv4("10.0.0.7")) is interface
        interface.enabled = False
        assert mgr.interface_for_addr(IPv4("10.0.0.7")) is None

    def test_interface_repr_states(self):
        up = Interface("eth0", IPv4("10.0.0.1"), 24)
        assert "up" in repr(up)
        up.enabled = False
        assert "down" in repr(up)


class TestRawSocketRelay:
    def _relay(self):
        loop = EventLoop(SimulatedClock())
        io = LoopbackPacketIO(loop)
        relay = RawSocketRelay(io)
        inbound = []
        relay.set_notifier(lambda *args: inbound.append(args))
        return loop, io, relay, inbound

    def test_open_send_receive(self):
        loop, io, relay, inbound = self._relay()
        relay.open_udp("rip", "eth0", 520)
        relay.send_udp("eth0", IPv4("10.0.0.1"), IPv4("224.0.0.9"), 520, b"x")
        loop.run()
        assert inbound == [("rip", "eth0", IPv4("10.0.0.1"), 520, b"x")]
        assert relay.packets_relayed_out == 1
        assert relay.packets_relayed_in == 1

    def test_unclaimed_port_dropped(self):
        loop, io, relay, inbound = self._relay()
        relay.send_udp("eth0", IPv4("10.0.0.1"), IPv4("224.0.0.9"), 999, b"x")
        loop.run()
        assert inbound == []

    def test_port_ownership_conflict(self):
        loop, io, relay, inbound = self._relay()
        relay.open_udp("rip", "eth0", 520)
        with pytest.raises(ValueError):
            relay.open_udp("ospf", "eth0", 520)
        relay.open_udp("rip", "eth0", 520)  # same creator: idempotent

    def test_close_stops_delivery(self):
        loop, io, relay, inbound = self._relay()
        relay.open_udp("rip", "eth0", 520)
        relay.close_udp("rip", "eth0", 520)
        assert not relay.is_open("eth0", 520)
        relay.send_udp("eth0", IPv4("10.0.0.1"), IPv4("224.0.0.9"), 520, b"x")
        loop.run()
        assert inbound == []

    def test_close_by_wrong_creator_ignored(self):
        loop, io, relay, inbound = self._relay()
        relay.open_udp("rip", "eth0", 520)
        relay.close_udp("ospf", "eth0", 520)
        assert relay.is_open("eth0", 520)


class TestProfilerUnit:
    def _profiler(self):
        clock = SimulatedClock(1097173928.664085)
        return Profiler(clock), clock

    def test_disabled_is_free(self):
        profiler, clock = self._profiler()
        var = profiler.create("route_ribin")
        var.log("add 10.0.1.0/24")
        assert var.entries == []

    def test_paper_record_format(self):
        """The exact record format from paper §8.2."""
        profiler, clock = self._profiler()
        var = profiler.create("route_ribin")
        profiler.enable("route_ribin")
        var.log("add 10.0.1.0/24")
        line = var.format_entries()[0]
        assert line == "route_ribin 1097173928 664085 add 10.0.1.0/24"

    def test_enable_disable_clear(self):
        profiler, clock = self._profiler()
        var = profiler.create("x")
        profiler.enable("x")
        var.log("one")
        profiler.disable("x")
        var.log("two")
        assert [d for __, d in var.entries] == ["one"]
        profiler.clear("x")
        assert var.entries == []

    def test_unknown_variable_raises(self):
        profiler, __ = self._profiler()
        with pytest.raises(KeyError):
            profiler.enable("nope")

    def test_create_is_idempotent(self):
        profiler, __ = self._profiler()
        assert profiler.create("x") is profiler.create("x")
        assert profiler.names() == ["x"]


class TestTrieV6:
    def test_v6_operations(self):
        trie = RouteTrie(128)
        prefixes = ["2001:db8::/32", "2001:db8:1::/48", "::/0",
                    "fe80::/10", "2001:db8:1:2::/64"]
        for p in prefixes:
            trie.insert(net(p), p)
        assert len(trie) == 5
        assert trie.best_match(IPv6("2001:db8:1:2::9"))[1] == "2001:db8:1:2::/64"
        assert trie.best_match(IPv6("2001:db8:9::1"))[1] == "2001:db8::/32"
        assert trie.best_match(IPv6("9999::1"))[1] == "::/0"
        covers = [str(n) for n, __ in trie.covering(net("2001:db8:1:2::/64"))]
        assert covers == ["::/0", "2001:db8::/32", "2001:db8:1::/48",
                          "2001:db8:1:2::/64"]
        trie.remove(net("2001:db8::/32"))
        assert trie.best_match(IPv6("2001:db8:9::1"))[1] == "::/0"

    def test_v6_safe_iterator(self):
        trie = RouteTrie(128)
        for i in range(16):
            trie.insert(net(f"2001:db8:{i:x}::/48"), i)
        it = trie.iterator()
        seen = 0
        while not it.exhausted:
            if it.valid:
                seen += 1
                trie.discard(it.net)  # delete under the iterator
            it.advance()
        assert seen == 16
        assert len(trie) == 0
