"""Tests for the pipelined XRL transmit queue."""

import pytest

from repro.core.process import Host, XorpProcess
from repro.core.txqueue import XrlTransmitQueue
from repro.xrl import Xrl, XrlArgs
from repro.xrl.error import XrlErrorCode
from repro.xrl.idl import parse_idl

IDL = parse_idl("""
interface sink/1.0 {
    put ? value:u32;
    boom;
}
""")["sink/1.0"]


@pytest.fixture
def setup():
    host = Host()
    server_process = XorpProcess(host, "server")
    server = server_process.create_router("sink")
    received = []

    class Impl:
        def xrl_put(self, value):
            received.append(value)

        def xrl_boom(self):
            raise RuntimeError("boom")

    server.bind(IDL, Impl())
    client_process = XorpProcess(host, "client")
    client = client_process.create_router("client")
    return host, client, received


def put_xrl(value):
    return Xrl("sink", "sink", "1.0", "put", XrlArgs().add_u32("value", value))


class TestTransmitQueue:
    def test_all_delivered_in_order(self, setup):
        host, client, received = setup
        queue = XrlTransmitQueue(client, window=10)
        for value in range(100):
            queue.enqueue(put_xrl(value))
        assert host.loop.run_until(
            lambda: len(received) == 100 and queue.idle, timeout=10)
        assert received == list(range(100))

    def test_window_limits_outstanding(self, setup):
        host, client, received = setup
        queue = XrlTransmitQueue(client, window=5)
        for value in range(50):
            queue.enqueue(put_xrl(value))
        assert queue.inflight == 5
        assert len(queue) == 45
        host.loop.run_until(lambda: queue.idle, timeout=10)
        assert len(received) == 50

    def test_on_sent_fires_at_transmit_time(self, setup):
        host, client, received = setup
        queue = XrlTransmitQueue(client, window=1)
        sent_order = []
        for value in range(3):
            queue.enqueue(put_xrl(value),
                          on_sent=lambda v=value: sent_order.append(v))
        assert sent_order == [0]  # only the first is within the window
        host.loop.run_until(lambda: queue.idle, timeout=10)
        assert sent_order == [0, 1, 2]

    def test_on_reply(self, setup):
        host, client, received = setup
        queue = XrlTransmitQueue(client, window=10)
        replies = []
        queue.enqueue(put_xrl(1),
                      on_reply=lambda err, args: replies.append(err.is_okay))
        host.loop.run_until(lambda: bool(replies), timeout=10)
        assert replies == [True]

    def test_on_error_callback(self, setup):
        host, client, received = setup
        errors = []
        queue = XrlTransmitQueue(client, window=10,
                                 on_error=lambda xrl, err: errors.append(err))
        queue.enqueue(Xrl("sink", "sink", "1.0", "boom"))
        assert host.loop.run_until(lambda: bool(errors), timeout=10)
        assert errors[0].code == XrlErrorCode.COMMAND_FAILED

    def test_sent_count(self, setup):
        host, client, received = setup
        queue = XrlTransmitQueue(client, window=100)
        for value in range(7):
            queue.enqueue(put_xrl(value))
        host.loop.run_until(lambda: queue.idle, timeout=10)
        assert queue.sent_count == 7

    def test_rejects_bad_window(self, setup):
        host, client, received = setup
        with pytest.raises(ValueError):
            XrlTransmitQueue(client, window=0)


class TestProcessModel:
    def test_processes_isolated_via_intra(self):
        """Intra-process XRLs must not cross XorpProcess boundaries."""
        host = Host()
        p1 = XorpProcess(host, "p1")
        p2 = XorpProcess(host, "p2")
        assert p1.process_token != p2.process_token

    def test_kill_family_signal(self):
        host = Host()
        process = XorpProcess(host, "victim")
        assert process.running
        # Deliver a "signal" through the kill protocol family.
        from repro.xrl.transport.kill import KillFamily, SIGTERM

        sender = host.kill_family.connect(process._kill_address, None)

        class FakeCaller:
            loop = host.loop

        sender._caller = FakeCaller()
        replies = []
        sender.call(KillFamily.encode_signal(1, SIGTERM), replies.append)
        host.loop.run_until(lambda: bool(replies), timeout=5)
        assert not process.running

    def test_shutdown_deregisters_components(self):
        host = Host()
        process = XorpProcess(host, "p")
        router = process.create_router("thing")
        assert host.finder.known_target("thing")
        process.shutdown()
        assert not host.finder.known_target("thing")
        assert "p" not in host.processes

    def test_host_shutdown_stops_all(self):
        host = Host()
        processes = [XorpProcess(host, f"p{i}") for i in range(3)]
        host.shutdown()
        assert all(not p.running for p in processes)

    def test_common_interface_everywhere(self):
        """Every stock process implements common/0.1."""
        from repro.simnet import SimNetwork
        from repro.rip import RipProcess
        from repro.xrl import Xrl

        network = SimNetwork()
        router = network.add_router("r")
        rip = RipProcess(router.host)
        for target in ("fea", "rib", "rip"):
            error, args = rip.xrl.send_sync(
                Xrl(target, "common", "0.1", "get_status"), deadline=10)
            assert error.is_okay, (target, error)
            assert args.get_txt("status") == "running"
