"""Fault injection and robustness: corrupt wire data, dead transports,
IPv6 paths, hold timers over real session plumbing."""

import pytest

from repro.bgp import BgpProcess, BgpState
from repro.bgp.peer import PeerConfig
from repro.bgp.session import session_pair
from repro.core.process import Host
from repro.eventloop import EventLoop, SimulatedClock, SystemClock
from repro.net import IPNet, IPv4, IPv6
from repro.xrl import Finder, Xrl, XrlArgs, XrlRouter
from repro.xrl.error import XrlErrorCode


def bgp_pair(loop, holdtime=90):
    host_a, host_b = Host(loop=loop), Host(loop=loop)
    bgp_a = BgpProcess(host_a, local_as=65001, bgp_id=IPv4("1.1.1.1"),
                       rib_target=None)
    bgp_b = BgpProcess(host_b, local_as=65002, bgp_id=IPv4("2.2.2.2"),
                       rib_target=None)
    peer_a = bgp_a.add_peer(PeerConfig(IPv4("10.0.0.2"), 65002, 65001,
                                       IPv4("10.0.0.1"), holdtime=holdtime))
    peer_b = bgp_b.add_peer(PeerConfig(IPv4("10.0.0.1"), 65001, 65002,
                                       IPv4("10.0.0.2"), holdtime=holdtime))
    s1, s2 = session_pair(loop, 0.001)
    peer_a.attach_session(s1)
    peer_b.attach_session(s2)
    peer_a.enable()
    peer_b.enable()
    assert loop.run_until(
        lambda: peer_a.fsm.state == BgpState.ESTABLISHED
        and peer_b.fsm.state == BgpState.ESTABLISHED, timeout=60)
    return bgp_a, bgp_b, peer_a, peer_b, s1, s2


class TestBgpWireRobustness:
    def test_corrupt_marker_triggers_notification_and_reset(self):
        loop = EventLoop(SimulatedClock())
        bgp_a, bgp_b, peer_a, peer_b, s1, s2 = bgp_pair(loop)
        # Inject garbage into B's receive path (desynchronised marker).
        s1.send(b"\x00" * 19)
        loop.run_until(lambda: peer_b.fsm.state != BgpState.ESTABLISHED,
                       timeout=30)
        assert peer_b.fsm.state != BgpState.ESTABLISHED
        # Both sides eventually re-establish via connect-retry.
        assert loop.run_until(
            lambda: peer_a.fsm.state == BgpState.ESTABLISHED
            and peer_b.fsm.state == BgpState.ESTABLISHED, timeout=300)

    def test_truncated_stream_does_not_crash(self):
        loop = EventLoop(SimulatedClock())
        bgp_a, bgp_b, peer_a, peer_b, s1, s2 = bgp_pair(loop)
        from repro.bgp.messages import KeepaliveMessage

        frame = KeepaliveMessage().encode()
        # Send the first half now; the second half later: must reassemble.
        s1.send(frame[:7])
        loop.run(duration=1)
        s1.send(frame[7:])
        loop.run(duration=1)
        assert peer_b.fsm.state == BgpState.ESTABLISHED

    def test_hold_timer_over_real_sessions(self):
        """Kill the wire silently: hold timers fire on both sides."""
        loop = EventLoop(SimulatedClock())
        bgp_a, bgp_b, peer_a, peer_b, s1, s2 = bgp_pair(loop, holdtime=30)
        # Sever delivery without close notifications.
        s1._peer = None
        s2._peer = None
        assert loop.run_until(
            lambda: peer_a.fsm.state != BgpState.ESTABLISHED
            and peer_b.fsm.state != BgpState.ESTABLISHED, timeout=120)

    def test_session_down_withdraws_from_rib_stream(self):
        loop = EventLoop(SimulatedClock())
        bgp_a, bgp_b, peer_a, peer_b, s1, s2 = bgp_pair(loop)
        bgp_a.xrl_originate_route4(IPNet.parse("99.0.0.0/8"),
                                   IPv4("10.0.0.1"), True)
        assert loop.run_until(lambda: bgp_b.decision.route_count == 1,
                              timeout=30)
        peer_a.disable()
        assert loop.run_until(lambda: bgp_b.decision.route_count == 0,
                              timeout=120)


class TestXrlTransportRobustness:
    def test_tcp_server_vanishes_mid_conversation(self):
        loop = EventLoop(SystemClock())
        finder = Finder()
        from repro.xrl.transport import TcpFamily

        family = TcpFamily()
        server = XrlRouter(loop, "svc", finder, families=[family])
        server.register_raw_method("svc/1.0/ping", lambda args: None)
        client = XrlRouter(loop, "cli", finder, families=[family])
        error, __ = client.send_sync(Xrl("svc", "svc", "1.0", "ping"),
                                     deadline=10)
        assert error.is_okay
        server.shutdown()
        # The cached sender's socket dies; the client must surface an
        # error (resolve failure after deregistration) rather than hang.
        error, __ = client.send_sync(Xrl("svc", "svc", "1.0", "ping"),
                                     deadline=10)
        assert not error.is_okay

    def test_tcp_large_payload_fragmentation(self):
        loop = EventLoop(SystemClock())
        finder = Finder()
        from repro.xrl.transport import TcpFamily

        family = TcpFamily()
        server = XrlRouter(loop, "svc", finder, families=[family])
        received = []

        def handler(args):
            received.append(len(args.get_binary("blob")))
            return None

        server.register_raw_method("svc/1.0/put", handler)
        client = XrlRouter(loop, "cli", finder, families=[family])
        blob = bytes(range(256)) * 2000  # 512 KB, many TCP segments
        args = XrlArgs().add_binary("blob", blob)
        error, __ = client.send_sync(Xrl("svc", "svc", "1.0", "put", args),
                                     deadline=30)
        assert error.is_okay
        assert received == [len(blob)]

    def test_resolution_error_does_not_poison_cache(self):
        loop = EventLoop(SimulatedClock())
        host = Host(loop=loop)
        from repro.core.process import XorpProcess

        client_process = XorpProcess(host, "cp")
        client = client_process.create_router("cli")
        error, __ = client.send_sync(Xrl("late", "svc", "1.0", "ping"),
                                     deadline=5)
        assert error.code == XrlErrorCode.RESOLVE_FAILED
        # The target appears later: the same XRL now succeeds.
        server_process = XorpProcess(host, "sp")
        server = server_process.create_router("late")
        server.register_raw_method("svc/1.0/ping", lambda args: None)
        error, __ = client.send_sync(Xrl("late", "svc", "1.0", "ping"),
                                     deadline=5)
        assert error.is_okay


@pytest.mark.chaos
class TestDataplaneCrashRecovery:
    """Kill the FEA's dataplane backend under live route flow: lookups
    keep answering from the shadow table, and the reattach edge
    reconciles the backend back to shadow equality."""

    def test_backend_kill_serve_from_shadow_reconcile_on_reattach(self):
        from repro.fea import FeaProcess
        from repro.rib import RibProcess

        host = Host()
        fea = FeaProcess(host, backend="netlink")
        rib = RibProcess(host)
        for i in range(8):
            rib.xrl_add_route4("static", IPNet.parse(f"10.9.{i}.0/24"),
                               IPv4("192.168.0.1"), 1, [])
        assert host.loop.run_until(
            lambda: fea.driver.settled and len(fea.backend.dump(32)) == 8,
            timeout=30)
        assert fea.xrl_get_backend_status()["state"] == "synced"

        fea.backend.crash()
        # Graceful degradation: the shadow keeps answering lookups and
        # the supervisor-visible status says why writes are deferred.
        status = fea.xrl_get_backend_status()
        assert status == {"backend": "netlink", "healthy": False,
                          "state": "stale"}
        looked_up = fea.xrl_lookup_entry4(IPv4("10.9.3.7"))
        assert looked_up["nexthop"] == IPv4("192.168.0.1")
        # Route churn while down lands in the shadow only.
        rib.xrl_add_route4("static", IPNet.parse("10.77.0.0/16"),
                           IPv4("192.168.0.1"), 1, [])
        rib.xrl_delete_route4("static", IPNet.parse("10.9.0.0/24"))
        host.loop.run(duration=1.0)
        assert fea.backend.dump(32) == []

        fea.backend.restart()  # the up edge triggers reconciliation
        assert host.loop.run_until(
            lambda: fea.driver.settled
            and set(fea.backend.dump(32))
            == {entry for __, entry in fea.fib4.entries()},
            timeout=30)
        assert len(fea.backend.dump(32)) == 8  # 8 - 1 deleted + 1 added
        assert fea.xrl_get_backend_status()["state"] == "synced"
        assert fea.metrics.get("fea.backend.reconcile.runs").value == 1

    def test_recovery_is_deterministic(self):
        from repro.fea import FeaProcess
        from repro.rib import RibProcess

        def run():
            host = Host()
            fea = FeaProcess(host, backend="netlink")
            rib = RibProcess(host)
            for i in range(4):
                rib.xrl_add_route4("static", IPNet.parse(f"10.8.{i}.0/24"),
                                   IPv4("192.168.0.1"), 1, [])
            host.loop.run_until(lambda: fea.driver.settled, timeout=30)
            fea.backend.crash()
            fea.backend.restart()
            host.loop.run_until(lambda: fea.driver.settled, timeout=30)
            return sorted(str(e.net) for e in fea.backend.dump(32))

        assert run() == run()


class TestIpv6Paths:
    def test_rib_v6_route_to_fib(self):
        from repro.fea import FeaProcess
        from repro.rib import RibProcess

        host = Host()
        fea = FeaProcess(host)
        rib = RibProcess(host)
        from repro.core.process import XorpProcess

        process = XorpProcess(host, "tester")
        client = process.create_router("tester")
        args = (XrlArgs().add_txt("protocol", "static")
                .add_ipv6net("net", "2001:db8::/32")
                .add_ipv6("nexthop", "fe80::1")
                .add_u32("metric", 1).add_list("policytags", []))
        error, __ = client.send_sync(
            Xrl("rib", "rib", "1.0", "add_route6", args), deadline=10)
        assert error.is_okay, error
        assert host.loop.run_until(
            lambda: fea.fib6.lookup(IPv6("2001:db8::42")) is not None,
            timeout=10)
        # And delete.
        del_args = (XrlArgs().add_txt("protocol", "static")
                    .add_ipv6net("net", "2001:db8::/32"))
        error, __ = client.send_sync(
            Xrl("rib", "rib", "1.0", "delete_route6", del_args), deadline=10)
        assert error.is_okay
        assert host.loop.run_until(
            lambda: fea.fib6.lookup(IPv6("2001:db8::42")) is None, timeout=10)

    def test_v6_admin_distance_arbitration(self):
        from repro.fea import FeaProcess
        from repro.rib import RibProcess

        host = Host()
        fea = FeaProcess(host)
        rib = RibProcess(host)
        rib.xrl_add_igp_table6("rip")
        from repro.net import IPNet as Net

        rib.xrl_add_route6("rip", Net.parse("2001:db8::/32"),
                           IPv6("fe80::1"), 5, [])
        rib.xrl_add_route6("static", Net.parse("2001:db8::/32"),
                           IPv6("fe80::2"), 1, [])
        host.loop.run_until(lambda: False, timeout=1)
        entry = fea.fib6.lookup(IPv6("2001:db8::1"))
        assert entry is not None and entry.nexthop == IPv6("fe80::2")
