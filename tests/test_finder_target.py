"""Tests for the Finder's own XRL interface and RIP authentication."""

from repro.core.process import Host, XorpProcess
from repro.net import IPNet, IPv4
from repro.xrl import Xrl, XrlArgs
from repro.xrl.error import XrlErrorCode
from repro.xrl.finder_target import bind_finder_target


class TestFinderTarget:
    def _setup(self):
        host = Host()
        bind_finder_target(host)
        process = XorpProcess(host, "mgmt")
        client = process.create_router("mgmt")
        rib_process = XorpProcess(host, "fake-rib")
        rib_router = rib_process.create_router("rib")
        rib_router.register_raw_method("rib/1.0/ping", lambda args: None)
        return host, client, rib_router

    def test_resolve_xrl_textual(self):
        """Paper §6.1: finder://... resolves to family://address/key-method."""
        host, client, rib_router = self._setup()
        args = XrlArgs().add_txt("xrl", "finder://rib/rib/1.0/ping")
        error, result = client.send_sync(
            Xrl("finder", "finder", "1.0", "resolve_xrl", args), deadline=10)
        assert error.is_okay, error
        resolved = result.get_txt("resolved")
        # Contains a concrete family, an address, and the 32-hex-char key.
        first = resolved.splitlines()[0]
        family, rest = first.split("://", 1)
        assert family in ("local", "unix")
        address, key_and_path = rest.split("/", 1)
        key = key_and_path.split("/")[0]
        assert len(key) == 32 and all(c in "0123456789abcdef" for c in key)
        assert key_and_path.endswith("rib/1.0/ping")

    def test_resolve_unknown_target_fails(self):
        host, client, __ = self._setup()
        args = XrlArgs().add_txt("xrl", "finder://ghost/x/1.0/y")
        error, __ = client.send_sync(
            Xrl("finder", "finder", "1.0", "resolve_xrl", args), deadline=10)
        assert error.code == XrlErrorCode.RESOLVE_FAILED

    def test_target_list(self):
        host, client, __ = self._setup()
        error, result = client.send_sync(
            Xrl("finder", "finder", "1.0", "get_target_list"), deadline=10)
        assert error.is_okay
        targets = result.get_txt("targets").split(",")
        assert "rib" in targets and "finder" in targets

    def test_class_instances(self):
        host, client, rib_router = self._setup()
        args = XrlArgs().add_txt("class_name", "rib")
        error, result = client.send_sync(
            Xrl("finder", "finder", "1.0", "get_class_instances", args),
            deadline=10)
        assert error.is_okay
        assert rib_router.instance_name in result.get_txt("instances")

    def test_target_exists(self):
        host, client, __ = self._setup()
        for target, expected in (("rib", True), ("nothing", False)):
            args = XrlArgs().add_txt("target", target)
            error, result = client.send_sync(
                Xrl("finder", "finder", "1.0", "target_exists", args),
                deadline=10)
            assert error.is_okay
            assert result.get_bool("exists") is expected


class TestRipAuthentication:
    def _pair(self):
        from tests.test_rip import build_rip_pair

        return build_rip_pair()

    def test_matching_passwords_converge(self):
        network, a, b, rip_a, rip_b = self._pair()
        rip_a.xrl_set_authentication("eth0", "s3cret")
        rip_b.xrl_set_authentication("eth0", "s3cret")
        rip_a.xrl_add_static_route(IPNet.parse("99.0.0.0/8"),
                                   IPv4("10.0.0.1"), 1)
        assert network.run_until(
            lambda: rip_b.routes.exact(IPNet.parse("99.0.0.0/8")) is not None,
            timeout=30)

    def test_mismatched_password_rejected(self):
        network, a, b, rip_a, rip_b = self._pair()
        rip_a.xrl_set_authentication("eth0", "alpha")
        rip_b.xrl_set_authentication("eth0", "bravo")
        rip_a.xrl_add_static_route(IPNet.parse("99.0.0.0/8"),
                                   IPv4("10.0.0.1"), 1)
        network.run(duration=20)
        assert rip_b.routes.exact(IPNet.parse("99.0.0.0/8")) is None
        assert rip_b.ports["eth0"].bad_packets > 0

    def test_unauthenticated_sender_rejected(self):
        network, a, b, rip_a, rip_b = self._pair()
        rip_b.xrl_set_authentication("eth0", "s3cret")  # receiver requires
        rip_a.xrl_add_static_route(IPNet.parse("99.0.0.0/8"),
                                   IPv4("10.0.0.1"), 1)
        network.run(duration=20)
        assert rip_b.routes.exact(IPNet.parse("99.0.0.0/8")) is None
