"""Unit and property tests for the Patricia trie and its safe iterators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import IPNet, IPv4, IPv6
from repro.trie import RouteTrie


def net(text):
    return IPNet.parse(text)


@pytest.fixture
def trie():
    return RouteTrie(32)


class TestInsertLookup:
    def test_empty(self, trie):
        assert len(trie) == 0
        assert trie.exact(net("10.0.0.0/8")) is None
        assert trie.best_match(IPv4("10.0.0.1")) is None

    def test_insert_and_exact(self, trie):
        trie.insert(net("10.0.0.0/8"), "a")
        assert trie.exact(net("10.0.0.0/8")) == "a"
        assert len(trie) == 1

    def test_replace_returns_old(self, trie):
        assert trie.insert(net("10.0.0.0/8"), "a") is None
        assert trie.insert(net("10.0.0.0/8"), "b") == "a"
        assert trie.exact(net("10.0.0.0/8")) == "b"
        assert len(trie) == 1

    def test_exact_does_not_match_cover(self, trie):
        trie.insert(net("10.0.0.0/8"), "a")
        assert trie.exact(net("10.0.0.0/16")) is None
        assert trie.exact(net("10.1.0.0/16")) is None

    def test_contains(self, trie):
        trie.insert(net("10.0.0.0/8"), "a")
        assert net("10.0.0.0/8") in trie
        assert net("10.0.0.0/9") not in trie

    def test_default_route(self, trie):
        trie.insert(net("0.0.0.0/0"), "default")
        assert trie.exact(net("0.0.0.0/0")) == "default"
        assert trie.best_match(IPv4("1.2.3.4")) == (net("0.0.0.0/0"), "default")

    def test_host_route(self, trie):
        trie.insert(net("1.2.3.4/32"), "host")
        assert trie.best_match(IPv4("1.2.3.4")) == (net("1.2.3.4/32"), "host")
        assert trie.best_match(IPv4("1.2.3.5")) is None

    def test_rejects_wrong_family(self, trie):
        with pytest.raises(ValueError):
            trie.insert(IPNet.parse("::/0"), "x")

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            RouteTrie(64)

    def test_ipv6_trie(self):
        t6 = RouteTrie(128)
        t6.insert(net("2001:db8::/32"), "v6")
        assert t6.best_match(IPv6("2001:db8::1")) == (net("2001:db8::/32"), "v6")


class TestBestMatch:
    def test_paper_figure8_topology(self, trie):
        """The exact route set from paper Figure 8."""
        for prefix in ("128.16.0.0/16", "128.16.0.0/18",
                       "128.16.128.0/17", "128.16.192.0/18"):
            trie.insert(net(prefix), prefix)
        assert trie.best_match(IPv4("128.16.32.1"))[0] == net("128.16.0.0/18")
        assert trie.best_match(IPv4("128.16.160.1"))[0] == net("128.16.128.0/17")
        assert trie.best_match(IPv4("128.16.192.1"))[0] == net("128.16.192.0/18")
        assert trie.best_match(IPv4("128.16.64.1"))[0] == net("128.16.0.0/16")

    def test_more_specific_wins(self, trie):
        trie.insert(net("10.0.0.0/8"), "short")
        trie.insert(net("10.1.0.0/16"), "long")
        assert trie.best_match(IPv4("10.1.2.3"))[1] == "long"
        assert trie.best_match(IPv4("10.2.2.3"))[1] == "short"

    def test_covering(self, trie):
        trie.insert(net("0.0.0.0/0"), "d")
        trie.insert(net("10.0.0.0/8"), "a")
        trie.insert(net("10.1.0.0/16"), "b")
        trie.insert(net("11.0.0.0/8"), "c")
        covers = [str(n) for n, __ in trie.covering(net("10.1.2.0/24"))]
        assert covers == ["0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16"]

    def test_find_less_specific_is_strict(self, trie):
        trie.insert(net("10.0.0.0/8"), "a")
        trie.insert(net("10.1.0.0/16"), "b")
        assert trie.find_less_specific(net("10.1.0.0/16"))[1] == "a"
        assert trie.find_less_specific(net("10.0.0.0/8")) is None

    def test_covered(self, trie):
        for prefix in ("10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "11.0.0.0/8"):
            trie.insert(net(prefix), prefix)
        inside = sorted(str(n) for n, __ in trie.covered(net("10.0.0.0/8")))
        assert inside == ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]

    def test_has_more_specific(self, trie):
        trie.insert(net("10.0.0.0/8"), "a")
        assert not trie.has_more_specific(net("10.0.0.0/8"))
        trie.insert(net("10.1.0.0/16"), "b")
        assert trie.has_more_specific(net("10.0.0.0/8"))
        assert not trie.has_more_specific(net("10.2.0.0/15"))


class TestRemoval:
    def test_remove(self, trie):
        trie.insert(net("10.0.0.0/8"), "a")
        assert trie.remove(net("10.0.0.0/8")) == "a"
        assert len(trie) == 0
        assert trie.exact(net("10.0.0.0/8")) is None

    def test_remove_missing_raises(self, trie):
        with pytest.raises(KeyError):
            trie.remove(net("10.0.0.0/8"))

    def test_discard_missing_ok(self, trie):
        assert trie.discard(net("10.0.0.0/8")) is None

    def test_remove_keeps_siblings(self, trie):
        trie.insert(net("10.0.0.0/16"), "a")
        trie.insert(net("10.1.0.0/16"), "b")
        trie.remove(net("10.0.0.0/16"))
        assert trie.exact(net("10.1.0.0/16")) == "b"
        assert trie.best_match(IPv4("10.1.0.1"))[1] == "b"

    def test_remove_intermediate_keeps_descendants(self, trie):
        trie.insert(net("10.0.0.0/8"), "a")
        trie.insert(net("10.1.0.0/16"), "b")
        trie.remove(net("10.0.0.0/8"))
        assert trie.best_match(IPv4("10.1.0.1"))[1] == "b"
        assert trie.best_match(IPv4("10.2.0.1")) is None

    def test_clear(self, trie):
        for i in range(10):
            trie.insert(net(f"10.{i}.0.0/16"), i)
        trie.clear()
        assert len(trie) == 0
        assert list(trie.items()) == []


class TestIterationOrder:
    def test_items_sorted(self, trie):
        prefixes = ["10.1.0.0/16", "10.0.0.0/8", "9.0.0.0/8",
                    "10.1.2.0/24", "128.0.0.0/1", "0.0.0.0/0"]
        for p in prefixes:
            trie.insert(net(p), p)
        got = [str(n) for n, __ in trie.items()]
        assert got == sorted(prefixes, key=lambda p: net(p).key())

    def test_scoped_iterator(self, trie):
        for p in ("10.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8", "10.1.2.0/24"):
            trie.insert(net(p), p)
        it = trie.iterator(start=net("10.0.0.0/8"))
        seen = []
        while it.valid:
            seen.append(str(it.net))
            it.advance()
        assert seen == ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]

    def test_scoped_iterator_empty_scope(self, trie):
        trie.insert(net("10.0.0.0/8"), "a")
        it = trie.iterator(start=net("11.0.0.0/8"))
        assert not it.valid


class TestSafeIterators:
    def test_delete_under_parked_iterator(self, trie):
        """Paper §5.3: the node is invalidated but the iterator survives."""
        for p in ("10.0.0.0/8", "11.0.0.0/8", "12.0.0.0/8"):
            trie.insert(net(p), p)
        it = trie.iterator()
        assert str(it.net) == "10.0.0.0/8"
        trie.remove(net("10.0.0.0/8"))
        assert not it.valid  # payload invalidated...
        assert it.advance()  # ...but advancing still works
        assert str(it.net) == "11.0.0.0/8"

    def test_last_iterator_performs_deletion(self, trie):
        trie.insert(net("10.0.0.0/8"), "a")
        trie.insert(net("11.0.0.0/8"), "b")
        it = trie.iterator()
        node = it._node
        trie.remove(net("10.0.0.0/8"))
        assert node.parent is not None  # still plumbed in
        it.advance()
        assert node.parent is None  # reclaimed by the departing iterator

    def test_two_iterators_same_node(self, trie):
        trie.insert(net("10.0.0.0/8"), "a")
        trie.insert(net("11.0.0.0/8"), "b")
        it1 = trie.iterator()
        it2 = trie.iterator()
        node = it1._node
        trie.remove(net("10.0.0.0/8"))
        it1.advance()
        assert node.parent is not None  # it2 still refs the node
        it2.advance()
        assert node.parent is None

    def test_insert_ahead_of_iterator_is_seen(self, trie):
        trie.insert(net("10.0.0.0/8"), "a")
        trie.insert(net("30.0.0.0/8"), "c")
        it = trie.iterator()
        trie.insert(net("20.0.0.0/8"), "b")
        seen = []
        while it.valid:
            seen.append(str(it.net))
            it.advance()
        assert seen == ["10.0.0.0/8", "20.0.0.0/8", "30.0.0.0/8"]

    def test_close_releases_refs(self, trie):
        trie.insert(net("10.0.0.0/8"), "a")
        with trie.iterator() as it:
            node = it._node
            assert node.iter_refs == 1
        assert node.iter_refs == 0
        it.close()  # idempotent

    def test_exhausted_iterator_raises_on_access(self, trie):
        it = trie.iterator()
        with pytest.raises(StopIteration):
            __ = it.net
        with pytest.raises(StopIteration):
            __ = it.payload

    def test_massive_churn_while_parked(self, trie):
        for i in range(64):
            trie.insert(net(f"10.{i}.0.0/16"), i)
        it = trie.iterator()
        # park after the first route, then churn everything behind and ahead
        it.advance()
        for i in range(64):
            trie.discard(net(f"10.{i}.0.0/16"))
        for i in range(64):
            trie.insert(net(f"172.{i}.0.0/16"), i)
        count = 0
        while not it.exhausted:
            if it.valid:
                count += 1
            it.advance()
        assert count == 64  # all the new routes, none of the deleted ones


# -- property tests against a dict oracle --------------------------------

prefix_strategy = st.builds(
    lambda v, p: IPNet(IPv4(v), p),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)

ops_strategy = st.lists(
    st.tuples(st.sampled_from(["insert", "remove"]), prefix_strategy,
              st.integers()),
    max_size=80,
)


class TestPropertyOracle:
    @settings(max_examples=60)
    @given(ops_strategy)
    def test_matches_dict_oracle(self, ops):
        trie = RouteTrie(32)
        oracle = {}
        for op, prefix, payload in ops:
            if op == "insert":
                trie.insert(prefix, payload)
                oracle[prefix] = payload
            else:
                trie.discard(prefix)
                oracle.pop(prefix, None)
        assert len(trie) == len(oracle)
        for prefix, payload in oracle.items():
            assert trie.exact(prefix) == payload
        got = list(trie.items())
        assert [n for n, __ in got] == sorted(oracle, key=lambda n: n.key())

    @settings(max_examples=60)
    @given(st.lists(prefix_strategy, min_size=1, max_size=40),
           st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_best_match_matches_linear_scan(self, prefixes, addr_value):
        trie = RouteTrie(32)
        for i, p in enumerate(prefixes):
            trie.insert(p, i)
        addr = IPv4(addr_value)
        expected = None
        for p in set(prefixes):
            if p.contains_addr(addr):
                if expected is None or p.prefix_len > expected.prefix_len:
                    expected = p
        got = trie.best_match(addr)
        if expected is None:
            assert got is None
        else:
            assert got[0] == expected

    @settings(max_examples=40)
    @given(st.lists(prefix_strategy, min_size=1, max_size=30), prefix_strategy)
    def test_covered_matches_linear_scan(self, prefixes, probe):
        trie = RouteTrie(32)
        for p in prefixes:
            trie.insert(p, str(p))
        got = sorted(str(n) for n, __ in trie.covered(probe))
        expected = sorted(str(p) for p in set(prefixes) if probe.contains(p))
        assert got == expected

    @settings(max_examples=40)
    @given(st.lists(prefix_strategy, min_size=2, max_size=30))
    def test_iterator_survives_interleaved_deletion(self, prefixes):
        trie = RouteTrie(32)
        for p in prefixes:
            trie.insert(p, str(p))
        it = trie.iterator()
        seen = []
        victims = list(set(prefixes))
        while it.valid:
            seen.append(it.net)
            if victims:
                trie.discard(victims.pop())
            it.advance()
        # Everything yielded must be unique and ordered.
        keys = [n.key() for n in seen]
        assert keys == sorted(set(keys))


# -- longest-prefix-match vs brute force, v4 and v6, with deletions ------

prefix6_strategy = st.builds(
    lambda v, p: IPNet(IPv6(v), p),
    st.integers(min_value=0, max_value=(1 << 128) - 1),
    st.integers(min_value=0, max_value=128),
)


def _brute_force_lpm(prefixes, addr):
    """The LPM oracle: longest prefix containing *addr*, or None."""
    best = None
    for p in prefixes:
        if p.contains_addr(addr):
            if best is None or p.prefix_len > best.prefix_len:
                best = p
    return best


class TestLpmVsBruteForce:
    """LPM equivalence against a linear-scan oracle over random prefix
    sets, both families, including cover fallback after deletions: when
    a more-specific route is removed, lookups must *uncover* the
    next-less-specific covering prefix (or none) exactly as the oracle
    does."""

    def _check(self, trie, live, probes):
        for addr in probes:
            expected = _brute_force_lpm(live, addr)
            got = trie.best_match(addr)
            if expected is None:
                assert got is None, (addr, got)
            else:
                assert got is not None and got[0] == expected, (
                    addr, got, expected)

    def _run(self, bits, addr_cls, prefixes, addr_values, delete_index):
        trie = RouteTrie(bits)
        # Dedupe: inserting the same net twice replaces, keeping one entry.
        live = {p.key(): p for p in prefixes}
        for p in prefixes:
            trie.insert(p, str(p))
        # Probe both arbitrary addresses and each prefix's first address
        # (the latter guarantee covered addresses actually get probed).
        probes = [addr_cls(v) for v in addr_values]
        probes += [p.first_addr() for p in live.values()]
        self._check(trie, live.values(), probes)
        # Delete roughly half the distinct prefixes, then re-check: the
        # trie must fall back to each address's remaining cover.
        victims = sorted(live.values(), key=lambda n: n.key())
        victims = victims[delete_index % max(1, len(victims))::2]
        for victim in victims:
            assert trie.remove(victim) == str(victim)
            del live[victim.key()]
        self._check(trie, live.values(), probes)
        assert len(trie) == len(live)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(prefix_strategy, min_size=1, max_size=40),
           st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                    min_size=1, max_size=10),
           st.integers(min_value=0, max_value=1))
    def test_lpm_v4(self, prefixes, addr_values, delete_index):
        self._run(32, IPv4, prefixes, addr_values, delete_index)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(prefix6_strategy, min_size=1, max_size=40),
           st.lists(st.integers(min_value=0, max_value=(1 << 128) - 1),
                    min_size=1, max_size=10),
           st.integers(min_value=0, max_value=1))
    def test_lpm_v6(self, prefixes, addr_values, delete_index):
        self._run(128, IPv6, prefixes, addr_values, delete_index)
