"""Property-based tests of the full RIB pipeline against an oracle.

Random interleavings of add/replace/delete from several protocols flow
through the origin tables, merge chain, ExtInt stage, redist and register
stages, and the FEA distributor.  The oracle recomputes, per prefix, the
winner by administrative preference (with external routes eligible only
when their nexthop resolves through an internal route), and the FEA's FIB
must match exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.process import Host
from repro.fea import FeaProcess
from repro.net import IPNet, IPv4
from repro.rib import RibProcess
from repro.rib.route import ADMIN_DISTANCES

PROTOCOLS = ["connected", "static", "rip", "ebgp"]
PREFIXES = [f"99.{i}.0.0/16" for i in range(5)]
NEXTHOPS = ["10.0.0.1", "10.0.0.2", "172.16.0.1"]  # last one: off-subnet

operations = st.lists(
    st.tuples(
        st.sampled_from(PROTOCOLS),
        st.sampled_from(["add", "delete"]),
        st.integers(0, len(PREFIXES) - 1),
        st.integers(0, len(NEXTHOPS) - 1),
        st.integers(1, 5),  # metric
    ),
    max_size=50,
)


@settings(max_examples=40, deadline=None)
@given(operations)
def test_fib_matches_admin_distance_oracle(ops):
    host = Host()
    fea = FeaProcess(host)
    rib = RibProcess(host)
    rib.xrl_add_igp_table4("rip")
    rib.xrl_add_egp_table4("ebgp")
    # A connected route that makes 10.0.0.x nexthops resolvable.
    rib.xrl_add_route4("connected", IPNet.parse("10.0.0.0/24"),
                       IPv4("0.0.0.0"), 0, [])

    oracle = {protocol: {} for protocol in PROTOCOLS}
    for protocol, op, prefix_index, nexthop_index, metric in ops:
        prefix = IPNet.parse(PREFIXES[prefix_index])
        nexthop = IPv4(NEXTHOPS[nexthop_index])
        if op == "add":
            rib.xrl_add_route4(protocol, prefix, nexthop, metric, [])
            oracle[protocol][prefix] = (nexthop, metric)
        else:
            try:
                rib.xrl_delete_route4(protocol, prefix)
            except Exception:
                pass  # deleting an absent route fails; oracle agrees
            oracle[protocol].pop(prefix, None)
        host.loop.run()  # drain the XRL stream to the FEA

    host.loop.run()

    def internal_covers(addr):
        if IPNet.parse("10.0.0.0/24").contains_addr(addr):
            return True
        for protocol in ("connected", "static", "rip"):
            for prefix, __ in oracle[protocol].items():
                if prefix.contains_addr(addr):
                    return True
        return False

    for prefix_text in PREFIXES:
        prefix = IPNet.parse(prefix_text)
        candidates = []
        for protocol in PROTOCOLS:
            entry = oracle[protocol].get(prefix)
            if entry is None:
                continue
            nexthop, metric = entry
            if protocol == "ebgp" and not internal_covers(nexthop):
                continue  # unresolvable external: held by ExtInt
            candidates.append(
                (ADMIN_DISTANCES[protocol], metric, protocol, nexthop))
        fib_entry = fea.fib4.exact(prefix)
        if not candidates:
            assert fib_entry is None, f"{prefix}: ghost FIB entry {fib_entry}"
            continue
        candidates.sort()
        __, __, best_protocol, best_nexthop = candidates[0]
        assert fib_entry is not None, f"{prefix}: missing FIB entry"
        assert fib_entry.nexthop == best_nexthop, (
            f"{prefix}: fib nexthop {fib_entry.nexthop}, oracle "
            f"{best_nexthop} ({best_protocol})")


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, len(PREFIXES) - 1),
                          st.booleans()), max_size=30))
def test_extint_resolvability_toggling(ops):
    """Toggling the covering internal route flips external route visibility."""
    host = Host()
    fea = FeaProcess(host)
    rib = RibProcess(host)
    rib.xrl_add_egp_table4("ebgp")
    covering = IPNet.parse("20.0.0.0/8")
    nexthop = IPv4("20.1.1.1")
    have_internal = False
    external = set()
    for prefix_index, toggle_internal in ops:
        if toggle_internal:
            if have_internal:
                rib.xrl_delete_route4("static", covering)
            else:
                rib.xrl_add_route4("static", covering, IPv4("0.0.0.0"), 1, [])
            have_internal = not have_internal
        else:
            prefix = IPNet.parse(PREFIXES[prefix_index])
            if prefix in external:
                rib.xrl_delete_route4("ebgp", prefix)
                external.discard(prefix)
            else:
                rib.xrl_add_route4("ebgp", prefix, nexthop, 0, [])
                external.add(prefix)
        host.loop.run()
    host.loop.run()
    for prefix_text in PREFIXES:
        prefix = IPNet.parse(prefix_text)
        visible = fea.fib4.exact(prefix) is not None
        expected = prefix in external and have_internal
        assert visible == expected, (
            f"{prefix}: visible={visible} expected={expected} "
            f"(internal={have_internal})")
