"""Tests for the policy framework: parser, compiler, VM, adapters, BGP hookup."""

import pytest

from repro.bgp.attributes import ASPath, Origin, PathAttributeList
from repro.bgp.route import BGPRoute
from repro.net import IPNet, IPv4
from repro.policy import (
    BgpVarRW,
    PolicyParseError,
    PolicyResult,
    PolicyVM,
    RibVarRW,
    VarRW,
    compile_source,
    parse_policy,
)
from repro.rib.route import RibRoute


def run(source, values):
    vm = PolicyVM()
    varrw = VarRW(values)
    result = vm.run(compile_source(source), varrw)
    return result, varrw


class TestParser:
    def test_basic_shape(self):
        statements = parse_policy("""
            policy-statement "example" {
                term a {
                    from { metric == 5; }
                    then { localpref: 200; accept; }
                }
            }
        """)
        assert len(statements) == 1
        assert statements[0].name == "example"
        term = statements[0].terms[0]
        assert term.conditions[0].variable == "metric"
        assert term.actions[0].variable == "localpref"
        assert term.actions[1].kind == "accept"

    def test_empty_from_then(self):
        statements = parse_policy(
            'policy-statement x { term t { then { reject; } } }')
        assert statements[0].terms[0].conditions == []

    def test_prefix_and_addr_values(self):
        statements = parse_policy("""
            policy-statement x { term t {
                from { network4 orlonger 10.0.0.0/8; nexthop4: 1.2.3.4; }
                then { accept; }
            } }
        """)
        conds = statements[0].terms[0].conditions
        assert conds[0].value == IPNet.parse("10.0.0.0/8")
        assert conds[1].value == IPv4("1.2.3.4")

    def test_add_sub_actions(self):
        statements = parse_policy(
            'policy-statement x { term t { then { metric add 5; metric sub 2; } } }')
        actions = statements[0].terms[0].actions
        assert actions[0].mode == "add" and actions[1].mode == "sub"

    def test_comments_ignored(self):
        parse_policy("# leading comment\npolicy-statement x { term t { } }")

    def test_errors(self):
        with pytest.raises(PolicyParseError):
            parse_policy("")
        with pytest.raises(PolicyParseError):
            parse_policy("policy-statement x {")
        with pytest.raises(PolicyParseError):
            parse_policy("nonsense { }")
        with pytest.raises(PolicyParseError):
            parse_policy("policy-statement x { term t { from { metric ~ 5; } } }")


class TestVM:
    def test_accept_on_match(self):
        result, __ = run("""
            policy-statement p { term t {
                from { metric: 5; }
                then { accept; }
            } }
        """, {"metric": 5})
        assert result == PolicyResult.ACCEPT

    def test_fallthrough_on_no_match(self):
        result, __ = run("""
            policy-statement p { term t {
                from { metric: 5; }
                then { reject; }
            } }
        """, {"metric": 7})
        assert result == PolicyResult.FALLTHROUGH

    def test_reject(self):
        result, __ = run(
            'policy-statement p { term t { then { reject; } } }', {})
        assert result == PolicyResult.REJECT

    def test_modification_applied(self):
        result, varrw = run("""
            policy-statement p { term t {
                from { metric < 10; }
                then { metric: 99; accept; }
            } }
        """, {"metric": 5})
        assert varrw.read("metric") == 99

    def test_add_mode(self):
        __, varrw = run(
            'policy-statement p { term t { then { metric add 5; accept; } } }',
            {"metric": 10})
        assert varrw.read("metric") == 15

    def test_multiple_terms_first_match_wins(self):
        result, varrw = run("""
            policy-statement p {
                term a { from { metric: 1; } then { tag: 100; accept; } }
                term b { from { metric: 2; } then { tag: 200; accept; } }
            }
        """, {"metric": 2, "tag": 0})
        assert result == PolicyResult.ACCEPT
        assert varrw.read("tag") == 200

    def test_comparison_operators(self):
        for op, metric, expected in [("<", 4, PolicyResult.ACCEPT),
                                     ("<", 6, PolicyResult.FALLTHROUGH),
                                     (">=", 5, PolicyResult.ACCEPT),
                                     ("!=", 5, PolicyResult.FALLTHROUGH)]:
            result, __ = run(f"""
                policy-statement p {{ term t {{
                    from {{ metric {op} 5; }} then {{ accept; }}
                }} }}
            """, {"metric": metric})
            assert result == expected, (op, metric)

    def test_contains_on_list(self):
        result, __ = run("""
            policy-statement p { term t {
                from { aspath contains 65001; } then { reject; }
            } }
        """, {"aspath": [65000, 65001]})
        assert result == PolicyResult.REJECT

    def test_orlonger(self):
        source = """
            policy-statement p { term t {
                from { network4 orlonger 10.0.0.0/8; } then { accept; }
            } }
        """
        inside, __ = run(source, {"network4": IPNet.parse("10.1.0.0/16")})
        outside, __ = run(source, {"network4": IPNet.parse("11.0.0.0/8")})
        assert inside == PolicyResult.ACCEPT
        assert outside == PolicyResult.FALLTHROUGH

    def test_string_protocol_match(self):
        result, __ = run("""
            policy-statement p { term t {
                from { protocol: "static"; } then { accept; }
            } }
        """, {"protocol": "static"})
        assert result == PolicyResult.ACCEPT


def bgp_route(net_text="10.0.0.0/8", **attr_kw):
    attr_kw.setdefault("nexthop", IPv4("1.1.1.1"))
    attr_kw.setdefault("as_path", ASPath.from_sequence(65001, 65002))
    return BGPRoute(IPNet.parse(net_text), PathAttributeList(**attr_kw),
                    peer_id="p")


class TestBgpVarRW:
    def test_reads(self):
        varrw = BgpVarRW(bgp_route(med=7, local_pref=150,
                                   communities=[100, 200]),
                         neighbor=IPv4("9.9.9.9"))
        assert varrw.read("network4") == IPNet.parse("10.0.0.0/8")
        assert varrw.read("nexthop4") == IPv4("1.1.1.1")
        assert varrw.read("aspath") == [65001, 65002]
        assert varrw.read("aspath-length") == 2
        assert varrw.read("med") == 7
        assert varrw.read("localpref") == 150
        assert varrw.read("community") == [100, 200]
        assert varrw.read("neighbor") == IPv4("9.9.9.9")

    def test_defaults(self):
        varrw = BgpVarRW(bgp_route())
        assert varrw.read("med") == 0
        assert varrw.read("localpref") == 100

    def test_write_produces_new_route(self):
        original = bgp_route()
        varrw = BgpVarRW(original)
        varrw.write("localpref", 300)
        varrw.write("med", 42)
        result = varrw.result()
        assert result is not original
        assert result.attributes.local_pref == 300
        assert result.attributes.med == 42
        assert original.attributes.local_pref is None  # untouched

    def test_no_write_returns_original(self):
        original = bgp_route()
        assert BgpVarRW(original).result() is original

    def test_tag_write(self):
        varrw = BgpVarRW(bgp_route())
        varrw.write("tag", 42)
        assert varrw.result().policytags == [42]

    def test_readonly_rejected(self):
        varrw = BgpVarRW(bgp_route())
        with pytest.raises(KeyError):
            varrw.write("aspath", [1])

    def test_full_policy_over_bgp_route(self):
        program = compile_source("""
            policy-statement prefer-customer {
                term customer {
                    from { aspath contains 65002; network4 orlonger 10.0.0.0/8; }
                    then { localpref: 200; community: 777; accept; }
                }
            }
        """)
        varrw = BgpVarRW(bgp_route())
        assert PolicyVM().run(program, varrw) == PolicyResult.ACCEPT
        result = varrw.result()
        assert result.attributes.local_pref == 200
        assert result.attributes.communities == (777,)


class TestRibVarRW:
    def _route(self):
        return RibRoute(IPNet.parse("10.0.0.0/8"), IPv4("1.1.1.1"), 5, "rip",
                        policytags=[7])

    def test_reads(self):
        varrw = RibVarRW(self._route())
        assert varrw.read("protocol") == "rip"
        assert varrw.read("metric") == 5
        assert varrw.read("admin-distance") == 120
        assert varrw.read("tag") == [7]

    def test_metric_rewrite(self):
        varrw = RibVarRW(self._route())
        varrw.write("metric", 11)
        assert varrw.result().metric == 11

    def test_redistribution_policy(self):
        program = compile_source("""
            policy-statement redist-rip {
                term only-rip {
                    from { protocol: "rip"; metric <= 8; }
                    then { metric add 1; accept; }
                }
                term rest { then { reject; } }
            }
        """)
        varrw = RibVarRW(self._route())
        assert PolicyVM().run(program, varrw) == PolicyResult.ACCEPT
        assert varrw.result().metric == 6


class TestBgpPolicyXrl:
    """configure_filter over XRLs, including background re-filtering."""

    def _setup(self):
        from repro.bgp import BgpProcess
        from repro.core.process import Host

        host = Host()
        bgp = BgpProcess(host, local_as=65000, rib_target=None)
        return host, bgp

    def test_import_policy_via_xrl(self):
        from repro.xrl import Xrl, XrlArgs

        host, bgp = self._setup()
        source = """
            policy-statement block-test {
                term t { from { network4 orlonger 10.0.0.0/8; }
                         then { reject; } }
            }
        """
        args = (XrlArgs().add_u32("filter_id", 1)
                .add_txt("policy_source", source))
        error, __ = bgp.xrl.send_sync(
            Xrl("bgp", "policy", "0.1", "configure_filter", args), deadline=5)
        assert error.is_okay, error
        assert bgp.import_policy is not None
        # The hook rejects matching routes.
        route = bgp_route("10.1.0.0/16")

        class FakePeer:
            class config:
                peer_addr = IPv4("9.9.9.9")

        assert bgp.import_policy(route, FakePeer()) is None
        assert bgp.import_policy(bgp_route("11.0.0.0/8"), FakePeer()) is not None

    def test_reset_filter(self):
        from repro.xrl import Xrl, XrlArgs

        host, bgp = self._setup()
        bgp.xrl_configure_filter(
            1, 'policy-statement x { term t { then { reject; } } }')
        bgp.xrl_reset_filter(1)
        assert bgp.import_policy is None

    def test_bad_filter_id(self):
        from repro.xrl import XrlError

        host, bgp = self._setup()
        with pytest.raises(XrlError):
            bgp.xrl_configure_filter(
                99, 'policy-statement x { term t { then { reject; } } }')
