"""Unit tests for repro.net.prefix (IPNet)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import AddressError, IPNet, IPv4, IPv6, IPv4Net, IPv6Net


def v4net(text):
    return IPNet.parse(text)


class TestParsing:
    def test_parse_v4(self):
        net = v4net("128.16.0.0/16")
        assert str(net) == "128.16.0.0/16"
        assert net.prefix_len == 16

    def test_parse_v6(self):
        net = IPNet.parse("2001:db8::/32")
        assert net.is_ipv6()
        assert net.prefix_len == 32

    def test_host_bits_are_masked(self):
        assert v4net("128.16.64.1/18") == v4net("128.16.64.0/18")

    def test_needs_slash(self):
        with pytest.raises(AddressError):
            IPNet.parse("10.0.0.0")

    def test_bad_length(self):
        with pytest.raises(AddressError):
            IPNet.parse("10.0.0.0/33")
        with pytest.raises(AddressError):
            IPNet.parse("10.0.0.0/x")

    def test_convenience_constructors(self):
        assert IPv4Net("10.0.0.0/8") == IPNet(IPv4("10.0.0.0"), 8)
        assert IPv6Net("::/0") == IPNet(IPv6(0), 0)
        with pytest.raises(AddressError):
            IPv4Net("::/0")


class TestContainment:
    def test_contains_addr(self):
        net = v4net("128.16.0.0/18")
        assert net.contains_addr(IPv4("128.16.32.1"))
        assert not net.contains_addr(IPv4("128.16.64.1"))

    def test_contains_net(self):
        assert v4net("128.16.0.0/16").contains(v4net("128.16.128.0/17"))
        assert v4net("128.16.0.0/16").contains(v4net("128.16.0.0/16"))
        assert not v4net("128.16.128.0/17").contains(v4net("128.16.0.0/16"))

    def test_cross_family_never_contains(self):
        assert not v4net("0.0.0.0/0").contains(IPNet.parse("::/0"))
        assert not v4net("0.0.0.0/0").contains_addr(IPv6("::1"))

    def test_overlaps(self):
        assert v4net("10.0.0.0/8").overlaps(v4net("10.1.0.0/16"))
        assert v4net("10.1.0.0/16").overlaps(v4net("10.0.0.0/8"))
        assert not v4net("10.0.0.0/8").overlaps(v4net("11.0.0.0/8"))

    def test_first_last_addr(self):
        net = v4net("10.0.0.0/30")
        assert net.first_addr() == IPv4("10.0.0.0")
        assert net.last_addr() == IPv4("10.0.0.3")


class TestDerivation:
    def test_supernet(self):
        assert v4net("128.16.128.0/17").supernet() == v4net("128.16.0.0/16")

    def test_default_has_no_supernet(self):
        with pytest.raises(AddressError):
            v4net("0.0.0.0/0").supernet()

    def test_halves(self):
        low, high = v4net("128.16.0.0/16").halves()
        assert low == v4net("128.16.0.0/17")
        assert high == v4net("128.16.128.0/17")

    def test_host_route_cannot_split(self):
        with pytest.raises(AddressError):
            v4net("1.2.3.4/32").halves()

    def test_half_containing(self):
        net = v4net("128.16.0.0/16")
        assert net.half_containing(IPv4("128.16.200.1")) == v4net("128.16.128.0/17")
        with pytest.raises(AddressError):
            net.half_containing(IPv4("129.0.0.1"))

    def test_hosts(self):
        hosts = list(v4net("10.0.0.0/30").hosts())
        assert [str(h) for h in hosts] == [
            "10.0.0.0", "10.0.0.1", "10.0.0.2", "10.0.0.3",
        ]

    def test_default_route(self):
        assert IPNet.default_route(IPv4).is_default()
        assert str(IPNet.default_route(IPv6)) == "::/0"


class TestOrderingAndHashing:
    def test_sort_order(self):
        nets = [v4net("10.1.0.0/16"), v4net("10.0.0.0/8"), v4net("10.0.0.0/16")]
        assert sorted(str(n) for n in [min(nets)]) == ["10.0.0.0/8"]

    def test_shorter_prefix_sorts_first_at_same_address(self):
        assert v4net("10.0.0.0/8") < v4net("10.0.0.0/16")

    def test_hash_equal_nets(self):
        assert len({v4net("10.0.0.0/8"), v4net("10.0.0.1/8")}) == 1

    def test_key(self):
        assert v4net("128.0.0.0/1").key() == (0x80000000, 1)


prefixes = st.builds(
    lambda value, plen: IPNet(IPv4(value), plen),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)


class TestProperties:
    @given(prefixes)
    def test_contains_self(self, net):
        assert net.contains(net)

    @given(prefixes)
    def test_first_addr_inside(self, net):
        assert net.contains_addr(net.first_addr())
        assert net.contains_addr(net.last_addr())

    @given(prefixes)
    def test_parse_round_trip(self, net):
        assert IPNet.parse(str(net)) == net

    @given(prefixes)
    def test_halves_partition(self, net):
        if net.prefix_len == 32:
            return
        low, high = net.halves()
        assert net.contains(low) and net.contains(high)
        assert not low.overlaps(high)
        assert low.last_addr().to_int() + 1 == high.first_addr().to_int()

    @given(prefixes, prefixes)
    def test_containment_antisymmetry(self, a, b):
        if a.contains(b) and b.contains(a):
            assert a == b

    @given(prefixes)
    def test_supernet_contains(self, net):
        if net.prefix_len == 0:
            return
        assert net.supernet().contains(net)
