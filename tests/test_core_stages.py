"""Tests for the generic staged routing-table framework (paper §5)."""

import pytest

from repro.core import (
    ConsistencyCheckStage,
    ConsistencyError,
    DeletionStage,
    FilterStage,
    OriginStage,
    RouteTableStage,
)
from repro.eventloop import EventLoop, SimulatedClock
from repro.net import IPNet


class Route:
    """Minimal route object for framework tests."""

    def __init__(self, net_text, tag="r", metric=0):
        self.net = IPNet.parse(net_text)
        self.tag = tag
        self.metric = metric

    def __repr__(self):
        return f"Route({self.net}, {self.tag!r}, {self.metric})"

    def __eq__(self, other):
        return (isinstance(other, Route) and self.net == other.net
                and self.tag == other.tag and self.metric == other.metric)


class SinkStage(RouteTableStage):
    """Records everything that reaches the end of a pipeline."""

    def __init__(self):
        super().__init__("sink")
        self.log = []

    def add_route(self, route, caller=None):
        self.log.append(("add", route))

    def delete_route(self, route, caller=None):
        self.log.append(("delete", route))

    def replace_route(self, old, new, caller=None):
        self.log.append(("replace", old, new))


@pytest.fixture
def loop():
    return EventLoop(SimulatedClock())


class TestPlumbing:
    def test_linear_plumb(self):
        a, b, c = (RouteTableStage(n) for n in "abc")
        RouteTableStage.plumb(a, b, c)
        assert a.next_table is b and b.next_table is c
        assert c.parent is b and b.parent is a

    def test_insert_downstream(self):
        a, c = RouteTableStage("a"), RouteTableStage("c")
        RouteTableStage.plumb(a, c)
        b = RouteTableStage("b")
        a.insert_downstream(b)
        assert a.next_table is b and b.next_table is c and c.parent is b

    def test_unplumb(self):
        a, b, c = (RouteTableStage(n) for n in "abc")
        RouteTableStage.plumb(a, b, c)
        b.unplumb()
        assert a.next_table is c and c.parent is a
        assert b.parent is None and b.next_table is None

    def test_messages_flow_through_chain(self):
        sink = SinkStage()
        a, b = RouteTableStage("a"), RouteTableStage("b")
        RouteTableStage.plumb(a, b, sink)
        route = Route("10.0.0.0/8")
        a.add_route(route)
        a.delete_route(route)
        assert sink.log == [("add", route), ("delete", route)]

    def test_lookup_flows_upstream(self):
        origin = OriginStage("origin")
        mid = RouteTableStage("mid")
        sink = SinkStage()
        RouteTableStage.plumb(origin, mid, sink)
        route = Route("10.0.0.0/8")
        origin.originate(route)
        assert sink.lookup_route(IPNet.parse("10.0.0.0/8")) is route
        assert sink.lookup_route(IPNet.parse("11.0.0.0/8")) is None


class TestOriginStage:
    def test_originate_and_withdraw(self):
        origin, sink = OriginStage("o"), SinkStage()
        RouteTableStage.plumb(origin, sink)
        route = Route("10.0.0.0/8")
        origin.originate(route)
        assert origin.route_count == 1
        origin.withdraw(route.net)
        assert origin.route_count == 0
        assert sink.log == [("add", route), ("delete", route)]

    def test_reoriginate_sends_replace(self):
        origin, sink = OriginStage("o"), SinkStage()
        RouteTableStage.plumb(origin, sink)
        first = Route("10.0.0.0/8", "v1")
        second = Route("10.0.0.0/8", "v2")
        origin.originate(first)
        origin.originate(second)
        assert sink.log[-1] == ("replace", first, second)

    def test_withdraw_missing_raises(self):
        origin = OriginStage("o")
        with pytest.raises(KeyError):
            origin.withdraw(IPNet.parse("10.0.0.0/8"))

    def test_withdraw_if_present(self):
        origin, sink = OriginStage("o"), SinkStage()
        RouteTableStage.plumb(origin, sink)
        assert origin.withdraw_if_present(IPNet.parse("10.0.0.0/8")) is None
        assert sink.log == []


class TestFilterStage:
    def test_drop(self):
        sink = SinkStage()
        fltr = FilterStage("f", lambda r: None if r.metric > 10 else r)
        RouteTableStage.plumb(fltr, sink)
        fltr.add_route(Route("10.0.0.0/8", metric=20))
        fltr.add_route(Route("11.0.0.0/8", metric=5))
        assert len(sink.log) == 1
        assert sink.log[0][1].net == IPNet.parse("11.0.0.0/8")

    def test_delete_filtered_consistently(self):
        sink = SinkStage()
        fltr = FilterStage("f", lambda r: Route(str(r.net), r.tag, r.metric + 1))
        RouteTableStage.plumb(fltr, sink)
        route = Route("10.0.0.0/8", metric=1)
        fltr.add_route(route)
        fltr.delete_route(route)
        (op1, added), (op2, deleted) = sink.log
        assert (op1, op2) == ("add", "delete")
        assert added == deleted  # deterministic rewrite keeps rule 1

    def test_replace_where_new_is_dropped_becomes_delete(self):
        sink = SinkStage()
        fltr = FilterStage("f", lambda r: None if r.metric > 10 else r)
        RouteTableStage.plumb(fltr, sink)
        old = Route("10.0.0.0/8", metric=1)
        new = Route("10.0.0.0/8", metric=99)
        fltr.replace_route(old, new)
        assert sink.log == [("delete", old)]

    def test_replace_where_old_was_dropped_becomes_add(self):
        sink = SinkStage()
        fltr = FilterStage("f", lambda r: None if r.metric > 10 else r)
        RouteTableStage.plumb(fltr, sink)
        old = Route("10.0.0.0/8", metric=99)
        new = Route("10.0.0.0/8", metric=1)
        fltr.replace_route(old, new)
        assert sink.log == [("add", new)]

    def test_lookup_applies_filter(self):
        origin = OriginStage("o")
        fltr = FilterStage("f", lambda r: None if r.metric > 10 else r)
        sink = SinkStage()
        RouteTableStage.plumb(origin, fltr, sink)
        origin.routes.insert(IPNet.parse("10.0.0.0/8"), Route("10.0.0.0/8", metric=99))
        assert sink.lookup_route(IPNet.parse("10.0.0.0/8")) is None


class TestConsistencyCheckStage:
    def test_passes_consistent_flow(self):
        check, sink = ConsistencyCheckStage("c"), SinkStage()
        RouteTableStage.plumb(check, sink)
        route = Route("10.0.0.0/8")
        check.add_route(route)
        check.delete_route(route)
        check.add_route(route)
        assert check.checks_failed == 0
        assert len(sink.log) == 3

    def test_detects_double_add(self):
        check = ConsistencyCheckStage("c")
        check.add_route(Route("10.0.0.0/8"))
        with pytest.raises(ConsistencyError):
            check.add_route(Route("10.0.0.0/8"))

    def test_detects_spurious_delete(self):
        check = ConsistencyCheckStage("c")
        with pytest.raises(ConsistencyError):
            check.delete_route(Route("10.0.0.0/8"))

    def test_detects_spurious_replace(self):
        check = ConsistencyCheckStage("c")
        with pytest.raises(ConsistencyError):
            check.replace_route(Route("10.0.0.0/8"), Route("10.0.0.0/8", "new"))

    def test_replace_tracked(self):
        check = ConsistencyCheckStage("c")
        old, new = Route("10.0.0.0/8", "a"), Route("10.0.0.0/8", "b")
        check.add_route(old)
        check.replace_route(old, new)
        check.delete_route(new)  # must not raise

    def test_lookup_from_cache(self):
        check = ConsistencyCheckStage("c")
        route = Route("10.0.0.0/8")
        check.add_route(route)
        assert check.lookup_route(route.net) is route

    def test_strict_lookup_flags_unannounced_upstream(self):
        origin = OriginStage("o")
        check = ConsistencyCheckStage("c", strict_lookup=True)
        RouteTableStage.plumb(origin, check)
        origin.routes.insert(IPNet.parse("10.0.0.0/8"), Route("10.0.0.0/8"))
        with pytest.raises(ConsistencyError):
            check.lookup_route(IPNet.parse("10.0.0.0/8"))


class TestDeletionStage:
    def _setup(self, loop, count=10, slice_size=3):
        origin = OriginStage("peer-in")
        sink = SinkStage()
        RouteTableStage.plumb(origin, sink)
        for i in range(count):
            origin.originate(Route(f"10.{i}.0.0/16", f"old{i}"))
        sink.log.clear()
        # Peering goes down: hand the table to a deletion stage (Figure 6).
        old_routes = origin.routes
        from repro.trie import RouteTrie

        origin.routes = RouteTrie(32)
        deletion = DeletionStage("del", loop, old_routes, slice_size=slice_size)
        origin.insert_downstream(deletion)
        deletion.start()
        return origin, deletion, sink

    def test_background_deletion_completes(self, loop):
        origin, deletion, sink = self._setup(loop)
        loop.run()
        deletes = [op for op, __ in sink.log if op == "delete"]
        assert len(deletes) == 10
        assert deletion.done
        # The stage unplumbed itself.
        assert origin.next_table is sink

    def test_deletion_is_sliced(self, loop):
        origin, deletion, sink = self._setup(loop, count=10, slice_size=3)
        # One background slice per idle loop turn: 3 deletions.
        loop.run_once()
        assert len(sink.log) == 3

    def test_readd_during_deletion_sends_delete_then_add(self, loop):
        origin, deletion, sink = self._setup(loop, count=5, slice_size=2)
        fresh = Route("10.4.0.0/16", "new4")
        origin.originate(fresh)  # peer came back before deletion finished
        ops = [entry for entry in sink.log if entry[1].net == fresh.net]
        assert [op for op, __ in ops] == ["delete", "add"]
        assert ops[0][1].tag == "old4"
        assert ops[1][1].tag == "new4"
        loop.run()
        deletes = [e for e in sink.log if e[0] == "delete"]
        assert len(deletes) == 5  # old4 deleted exactly once

    def test_lookup_during_deletion_sees_undeleted_routes(self, loop):
        origin, deletion, sink = self._setup(loop, count=5, slice_size=1)
        loop.run_once()  # deletes 10.0/16
        assert sink.lookup_route(IPNet.parse("10.0.0.0/16")) is None
        held = sink.lookup_route(IPNet.parse("10.3.0.0/16"))
        assert held is not None and held.tag == "old3"

    def test_flap_creates_multiple_deletion_stages(self, loop):
        """Each down/up cycle gets its own stage; each route held at most once."""
        origin, first_deletion, sink = self._setup(loop, count=4, slice_size=1)
        # Peer comes up, re-adds two routes, goes down again.
        for i in (0, 1):
            origin.originate(Route(f"10.{i}.0.0/16", f"gen2-{i}"))
        from repro.trie import RouteTrie

        old_routes = origin.routes
        origin.routes = RouteTrie(32)
        second = DeletionStage("del2", loop, old_routes, slice_size=1)
        origin.insert_downstream(second)
        second.start()
        loop.run()
        adds = sum(1 for op, *_ in sink.log if op == "add") + 4  # 4 initial adds
        deletes = sum(1 for op, *_ in sink.log if op == "delete")
        assert adds == deletes  # everything announced was withdrawn exactly once
        assert origin.next_table is sink

    def test_empty_table_finishes_immediately(self, loop):
        from repro.trie import RouteTrie

        origin, sink = OriginStage("o"), SinkStage()
        RouteTableStage.plumb(origin, sink)
        deletion = DeletionStage("del", loop, RouteTrie(32))
        origin.insert_downstream(deletion)
        deletion.start()
        loop.run()
        assert origin.next_table is sink
