"""Decoder fuzzing: arbitrary bytes must raise clean errors, never crash.

Routers parse attacker-controlled input; every codec in the stack must
fail closed.  Hypothesis feeds random and mutated-valid byte strings to
each decoder and asserts the only observable outcomes are (a) a valid
decode or (b) the codec's declared error type.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.messages import (
    MARKER,
    BGPDecodeError,
    ErrorCode,
    KeepaliveMessage,
    MessageReader,
    MessageType,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    decode_message,
)
from repro.bgp.attributes import BGPAttributeError, PathAttributeList
from repro.mld6igmp.igmp import IgmpPacket, IgmpPacketError
from repro.net import IPNet, IPv4
from repro.ospf.packets import OspfDecodeError, decode_packet
from repro.rip.packets import RipPacket, RipPacketError
from repro.xrl.args import XrlArgs
from repro.xrl.error import XrlError
from repro.xrl.transport.base import decode_request, decode_response
from repro.xrl.types import XrlAtom

raw_bytes = st.binary(max_size=200)


def _mutate(data: bytes, index: int, value: int) -> bytes:
    if not data:
        return data
    buffer = bytearray(data)
    buffer[index % len(buffer)] = value
    return bytes(buffer)


mutated_bgp = st.builds(
    _mutate,
    st.just(UpdateMessage(
        attributes=PathAttributeList(nexthop=IPv4("1.2.3.4")),
        nlri=[IPNet.parse("10.0.0.0/8")]).encode()),
    st.integers(0, 200), st.integers(0, 255),
)


class TestBgpFuzz:
    @settings(max_examples=200)
    @given(raw_bytes)
    def test_decode_random(self, data):
        try:
            decode_message(data)
        except BGPDecodeError:
            pass

    @settings(max_examples=200)
    @given(mutated_bgp)
    def test_decode_mutated_update(self, data):
        try:
            decode_message(data)
        except (BGPDecodeError, BGPAttributeError):
            pass

    @settings(max_examples=100)
    @given(st.lists(raw_bytes, max_size=5))
    def test_stream_reader_random_chunks(self, chunks):
        reader = MessageReader()
        try:
            for chunk in chunks:
                reader.feed(chunk)
        except BGPDecodeError:
            pass

    @settings(max_examples=200)
    @given(raw_bytes)
    def test_attribute_list_random(self, data):
        try:
            PathAttributeList.decode(data)
        except BGPAttributeError:
            pass


class TestBgpNotificationFuzz:
    """NOTIFICATION error-code/subcode edges: every defined code
    round-trips with arbitrary subcodes and data; reserved/unknown codes
    and truncated bodies raise the structured ``BGPDecodeError`` (which
    carries its own error code for the peer's CEASE) — never a bare
    ``ValueError`` leaking out of the ``ErrorCode`` enum lookup."""

    @settings(max_examples=200)
    @given(st.sampled_from(sorted(ErrorCode)),
           st.integers(0, 255), st.binary(max_size=64))
    def test_known_codes_round_trip(self, code, subcode, data):
        message = NotificationMessage(code, subcode, data)
        decoded = decode_message(message.encode())
        assert isinstance(decoded, NotificationMessage)
        assert decoded.code == code
        assert decoded.subcode == subcode
        assert decoded.data == data

    @settings(max_examples=200)
    @given(st.integers(0, 255), st.integers(0, 255), st.binary(max_size=64))
    def test_unknown_codes_raise_structured_error(self, code, subcode, data):
        """Code 0 and anything above CEASE are reserved/unassigned."""
        body = bytes([code, subcode]) + data
        frame = MARKER + struct.pack(
            "!HB", 19 + len(body), MessageType.NOTIFICATION) + body
        defined = {int(c) for c in ErrorCode}
        try:
            decoded = decode_message(frame)
        except BGPDecodeError as exc:
            # Reserved codes must fail closed, with the decode error
            # itself carrying a *valid* NOTIFICATION code.
            assert code not in defined
            assert isinstance(exc.code, ErrorCode)
        else:
            assert code in defined
            assert int(decoded.code) == code

    @settings(max_examples=100)
    @given(st.binary(max_size=1))
    def test_short_body_raises_structured_error(self, body):
        frame = MARKER + struct.pack(
            "!HB", 19 + len(body), MessageType.NOTIFICATION) + body
        with pytest.raises(BGPDecodeError):
            decode_message(frame)

    @settings(max_examples=200)
    @given(st.integers(0, 200), st.integers(0, 255))
    def test_mutated_notification(self, index, value):
        """Byte-level mutations of a valid NOTIFICATION: decode cleanly
        or raise the declared error type, never anything else."""
        pristine = NotificationMessage(
            ErrorCode.CEASE, 2, b"shutdown").encode()
        try:
            decode_message(_mutate(pristine, index, value))
        except BGPDecodeError:
            pass


class TestRipFuzz:
    @settings(max_examples=200)
    @given(raw_bytes)
    def test_decode_random(self, data):
        try:
            RipPacket.decode(data)
        except RipPacketError:
            pass

    @settings(max_examples=200)
    @given(st.integers(0, 200), st.integers(0, 255))
    def test_mutated_valid(self, index, value):
        from repro.rip.packets import RIP_COMMAND_RESPONSE, RipEntry

        packet = RipPacket(RIP_COMMAND_RESPONSE,
                           [RipEntry(IPNet.parse("10.0.0.0/8"), 3)],
                           auth_password="pw")
        try:
            RipPacket.decode(_mutate(packet.encode(), index, value))
        except RipPacketError:
            pass


class TestOspfFuzz:
    @settings(max_examples=200)
    @given(raw_bytes)
    def test_decode_random(self, data):
        try:
            decode_packet(data)
        except OspfDecodeError:
            pass

    @settings(max_examples=200)
    @given(st.integers(0, 200), st.integers(0, 255))
    def test_mutated_hello(self, index, value):
        from repro.ospf.packets import HelloPacket

        packet = HelloPacket(IPv4("1.1.1.1"), 10, 40, [IPv4("2.2.2.2")])
        try:
            decode_packet(_mutate(packet.encode(), index, value))
        except OspfDecodeError:
            pass


class TestIgmpFuzz:
    @settings(max_examples=200)
    @given(raw_bytes)
    def test_decode_random(self, data):
        try:
            IgmpPacket.decode(data)
        except IgmpPacketError:
            pass


class TestXrlFuzz:
    @settings(max_examples=200)
    @given(raw_bytes)
    def test_args_binary_random(self, data):
        try:
            XrlArgs.from_binary(data)
        except XrlError:
            pass

    @settings(max_examples=200)
    @given(raw_bytes)
    def test_request_frame_random(self, data):
        try:
            decode_request(data)
        except XrlError:
            pass

    @settings(max_examples=200)
    @given(raw_bytes)
    def test_response_frame_random(self, data):
        try:
            decode_response(data)
        except XrlError:
            pass

    @settings(max_examples=200)
    @given(st.text(max_size=120))
    def test_atom_text_random(self, text):
        try:
            XrlAtom.from_text(text)
        except XrlError:
            pass

    @settings(max_examples=200)
    @given(st.text(max_size=120))
    def test_xrl_text_random(self, text):
        from repro.xrl.xrl import Xrl

        try:
            Xrl.from_text(text)
        except XrlError:
            pass


class TestDispatchFuzz:
    def test_router_survives_random_frames(self):
        """A live XrlRouter fed garbage frames must answer errors only."""
        import random as stdlib_random

        from repro.core.process import Host, XorpProcess

        host = Host()
        process = XorpProcess(host, "p")
        router = process.create_router("victim")
        router.register_raw_method("v/1.0/m", lambda args: None)
        rng = stdlib_random.Random(7)
        for __ in range(300):
            frame = bytes(rng.randrange(256)
                          for __ in range(rng.randrange(0, 80)))
            response = router.dispatch_frame(frame)
            assert isinstance(response, bytes)  # always a clean response
