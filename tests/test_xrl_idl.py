"""Tests for the XRL IDL parser and signature checking."""

import pytest

from repro.xrl import IdlError, XrlArgs, XrlError, parse_idl

SAMPLE = """
/* The RIB interface. */
interface rib/1.0 {
    add_route    ? protocol:txt & net:ipv4net & nexthop:ipv4 & metric:u32;
    delete_route ? protocol:txt & net:ipv4net;
    lookup_route ? addr:ipv4 -> net:ipv4net & nexthop:ipv4 & metric:u32;
    get_version  -> version:txt;
    shutdown;
}

interface rib_client/0.1 {
    route_info_changed ? addr:ipv4 & metric:u32;
}
"""


class TestParsing:
    def test_parses_interfaces(self):
        interfaces = parse_idl(SAMPLE)
        assert set(interfaces) == {"rib/1.0", "rib_client/0.1"}

    def test_method_signatures(self):
        rib = parse_idl(SAMPLE)["rib/1.0"]
        add = rib.method("add_route")
        assert [n for n, __ in add.params] == ["protocol", "net", "nexthop", "metric"]
        assert add.returns == []
        lookup = rib.method("lookup_route")
        assert len(lookup.params) == 1
        assert len(lookup.returns) == 3

    def test_no_params_no_returns(self):
        rib = parse_idl(SAMPLE)["rib/1.0"]
        shutdown = rib.method("shutdown")
        assert shutdown.params == [] and shutdown.returns == []

    def test_returns_only(self):
        rib = parse_idl(SAMPLE)["rib/1.0"]
        assert rib.method("get_version").returns[0][0] == "version"

    def test_unknown_method_raises(self):
        rib = parse_idl(SAMPLE)["rib/1.0"]
        with pytest.raises(XrlError):
            rib.method("no_such")

    def test_comments_stripped(self):
        assert "rib/1.0" in parse_idl("/* hey */ interface rib/1.0 { m; }")

    def test_empty_raises(self):
        with pytest.raises(IdlError):
            parse_idl("nothing here")

    def test_unparsed_leftovers_raise(self):
        with pytest.raises(IdlError):
            parse_idl("interface a/1.0 { m; } garbage")

    def test_bad_type_raises(self):
        with pytest.raises(IdlError):
            parse_idl("interface a/1.0 { m ? x:float; }")

    def test_duplicate_param_raises(self):
        with pytest.raises(IdlError):
            parse_idl("interface a/1.0 { m ? x:u32 & x:u32; }")

    def test_duplicate_method_raises(self):
        with pytest.raises(IdlError):
            parse_idl("interface a/1.0 { m; m; }")


class TestSignatureChecks:
    def setup_method(self):
        self.method = parse_idl(SAMPLE)["rib/1.0"].method("add_route")

    def test_good_args_pass(self):
        args = (XrlArgs().add_txt("protocol", "rip")
                .add_ipv4net("net", "10.0.0.0/8")
                .add_ipv4("nexthop", "192.168.0.1").add_u32("metric", 2))
        self.method.check_args(args)  # should not raise

    def test_missing_arg_fails(self):
        args = XrlArgs().add_txt("protocol", "rip")
        with pytest.raises(XrlError):
            self.method.check_args(args)

    def test_wrong_type_fails(self):
        args = (XrlArgs().add_txt("protocol", "rip")
                .add_txt("net", "10.0.0.0/8")
                .add_ipv4("nexthop", "192.168.0.1").add_u32("metric", 2))
        with pytest.raises(XrlError):
            self.method.check_args(args)

    def test_extra_arg_fails(self):
        args = (XrlArgs().add_txt("protocol", "rip")
                .add_ipv4net("net", "10.0.0.0/8")
                .add_ipv4("nexthop", "192.168.0.1").add_u32("metric", 2)
                .add_u32("extra", 1))
        with pytest.raises(XrlError):
            self.method.check_args(args)

    def test_build_args_coerces(self):
        args = self.method.build_args({
            "protocol": "static", "net": "10.0.0.0/8",
            "nexthop": "1.2.3.4", "metric": 5,
        })
        assert args.get_u32("metric") == 5
        self.method.check_args(args)

    def test_build_args_rejects_extras(self):
        with pytest.raises(XrlError):
            self.method.build_args({"protocol": "x", "net": "10.0.0.0/8",
                                    "nexthop": "1.2.3.4", "metric": 1,
                                    "bogus": 9})

    def test_build_returns_requires_all(self):
        lookup = parse_idl(SAMPLE)["rib/1.0"].method("lookup_route")
        with pytest.raises(XrlError):
            lookup.build_returns({"net": "10.0.0.0/8"})
