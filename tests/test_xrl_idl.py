"""Tests for the XRL IDL parser and signature checking."""

import pytest

from repro.xrl import IdlError, IdlParseError, XrlArgs, XrlError, parse_idl

SAMPLE = """
/* The RIB interface. */
interface rib/1.0 {
    add_route    ? protocol:txt & net:ipv4net & nexthop:ipv4 & metric:u32;
    delete_route ? protocol:txt & net:ipv4net;
    lookup_route ? addr:ipv4 -> net:ipv4net & nexthop:ipv4 & metric:u32;
    get_version  -> version:txt;
    shutdown;
}

interface rib_client/0.1 {
    route_info_changed ? addr:ipv4 & metric:u32;
}
"""


class TestParsing:
    def test_parses_interfaces(self):
        interfaces = parse_idl(SAMPLE)
        assert set(interfaces) == {"rib/1.0", "rib_client/0.1"}

    def test_method_signatures(self):
        rib = parse_idl(SAMPLE)["rib/1.0"]
        add = rib.method("add_route")
        assert [n for n, __ in add.params] == ["protocol", "net", "nexthop", "metric"]
        assert add.returns == []
        lookup = rib.method("lookup_route")
        assert len(lookup.params) == 1
        assert len(lookup.returns) == 3

    def test_no_params_no_returns(self):
        rib = parse_idl(SAMPLE)["rib/1.0"]
        shutdown = rib.method("shutdown")
        assert shutdown.params == [] and shutdown.returns == []

    def test_returns_only(self):
        rib = parse_idl(SAMPLE)["rib/1.0"]
        assert rib.method("get_version").returns[0][0] == "version"

    def test_unknown_method_raises(self):
        rib = parse_idl(SAMPLE)["rib/1.0"]
        with pytest.raises(XrlError):
            rib.method("no_such")

    def test_comments_stripped(self):
        assert "rib/1.0" in parse_idl("/* hey */ interface rib/1.0 { m; }")

    def test_empty_raises(self):
        with pytest.raises(IdlError):
            parse_idl("nothing here")

    def test_unparsed_leftovers_raise(self):
        with pytest.raises(IdlError):
            parse_idl("interface a/1.0 { m; } garbage")

    def test_bad_type_raises(self):
        with pytest.raises(IdlError):
            parse_idl("interface a/1.0 { m ? x:float; }")

    def test_duplicate_param_raises(self):
        with pytest.raises(IdlError):
            parse_idl("interface a/1.0 { m ? x:u32 & x:u32; }")

    def test_duplicate_method_raises(self):
        with pytest.raises(IdlError):
            parse_idl("interface a/1.0 { m; m; }")


class TestParseErrors:
    """IdlParseError carries the offending line number and a clear message."""

    def test_parse_error_is_idl_error(self):
        with pytest.raises(IdlError):
            parse_idl("")

    def test_empty_text_line_one(self):
        with pytest.raises(IdlParseError) as exc:
            parse_idl("")
        assert exc.value.line == 1
        assert "no interface" in str(exc.value)

    def test_duplicate_method_line(self):
        text = "interface a/1.0 {\n    m;\n    m;\n}"
        with pytest.raises(IdlParseError) as exc:
            parse_idl(text)
        assert exc.value.line == 3
        assert "duplicate method" in str(exc.value)

    def test_bad_type_line(self):
        text = "interface a/1.0 {\n    m ? x:float;\n}"
        with pytest.raises(IdlParseError) as exc:
            parse_idl(text)
        assert exc.value.line == 2
        assert "float" in str(exc.value)

    def test_leftover_text_line(self):
        text = "interface a/1.0 {\n    m;\n}\ngarbage here"
        with pytest.raises(IdlParseError) as exc:
            parse_idl(text)
        assert exc.value.line == 4

    def test_bad_method_after_comment_keeps_line(self):
        text = ("interface a/1.0 {\n"
                "    /* a comment\n"
                "       spanning lines */\n"
                "    9bad;\n"
                "}")
        with pytest.raises(IdlParseError) as exc:
            parse_idl(text)
        assert exc.value.line == 4

    def test_message_prefixed_with_line(self):
        with pytest.raises(IdlParseError) as exc:
            parse_idl("interface a/1.0 {\n    m ? x:nope;\n}")
        assert str(exc.value).startswith("line 2:")

    def test_duplicate_interface_line(self):
        text = ("interface a/1.0 {\n    m;\n}\n"
                "interface a/1.0 {\n    n;\n}")
        with pytest.raises(IdlParseError) as exc:
            parse_idl(text)
        assert exc.value.line == 4
        assert "duplicate interface" in str(exc.value)


class TestSignatureChecks:
    def setup_method(self):
        self.method = parse_idl(SAMPLE)["rib/1.0"].method("add_route")

    def test_good_args_pass(self):
        args = (XrlArgs().add_txt("protocol", "rip")
                .add_ipv4net("net", "10.0.0.0/8")
                .add_ipv4("nexthop", "192.168.0.1").add_u32("metric", 2))
        self.method.check_args(args)  # should not raise

    def test_missing_arg_fails(self):
        args = XrlArgs().add_txt("protocol", "rip")
        with pytest.raises(XrlError):
            self.method.check_args(args)

    def test_wrong_type_fails(self):
        args = (XrlArgs().add_txt("protocol", "rip")
                .add_txt("net", "10.0.0.0/8")
                .add_ipv4("nexthop", "192.168.0.1").add_u32("metric", 2))
        with pytest.raises(XrlError):
            self.method.check_args(args)

    def test_extra_arg_fails(self):
        args = (XrlArgs().add_txt("protocol", "rip")
                .add_ipv4net("net", "10.0.0.0/8")
                .add_ipv4("nexthop", "192.168.0.1").add_u32("metric", 2)
                .add_u32("extra", 1))
        with pytest.raises(XrlError):
            self.method.check_args(args)

    def test_build_args_coerces(self):
        args = self.method.build_args({
            "protocol": "static", "net": "10.0.0.0/8",
            "nexthop": "1.2.3.4", "metric": 5,
        })
        assert args.get_u32("metric") == 5
        self.method.check_args(args)

    def test_build_args_rejects_extras(self):
        with pytest.raises(XrlError):
            self.method.build_args({"protocol": "x", "net": "10.0.0.0/8",
                                    "nexthop": "1.2.3.4", "metric": 1,
                                    "bogus": 9})

    def test_build_returns_requires_all(self):
        lookup = parse_idl(SAMPLE)["rib/1.0"].method("lookup_route")
        with pytest.raises(XrlError):
            lookup.build_returns({"net": "10.0.0.0/8"})
