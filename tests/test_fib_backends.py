"""Pluggable FIB backends: ack/nack, retries, backpressure, reconciliation.

Unit coverage for the tentpole of the dataplane-robustness work: the
:class:`FibBackend` implementations (trie, flowrule, netlink-like), the
:class:`BackendDriver` that converges a faulty backend to the FEA's
shadow tables, and the RIB-side :class:`FeaFlowController` pacing.  The
headline property: for *any* seeded fault schedule, after
reconciliation the backend's ``dump()`` equals the shadow table, both
families.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eventloop import EventLoop, SimulatedClock
from repro.fea.backends import (
    BACKENDS,
    BackendFaultPlan,
    FibOp,
    FlowRuleBackend,
    NetlinkFibBackend,
    TrieFibBackend,
    make_backend,
)
from repro.fea.backends.base import ADD, DELETE
from repro.fea.backends.flowrule import (
    TABLE_IPV4,
    TABLE_IPV6,
    entry_to_rule,
    rule_to_entry,
)
from repro.fea.driver import BackendDriver
from repro.fea.fib import Fib, FibEntry
from repro.net import IPNet, IPv4, IPv6
from repro.obs.metrics import MetricsRegistry
from repro.rib.flow import FeaFlowController


def v4_entry(i, nexthop=1, ifname="eth0"):
    return FibEntry(IPNet(IPv4(0x0A000000 + (i << 8)), 24),
                    IPv4(nexthop), ifname)


def v6_entry(i, nexthop=1, ifname="eth1"):
    return FibEntry(IPNet.parse(f"2001:db8:{i:x}::/48"),
                    IPv6(nexthop), ifname)


def collect_completions(backend, loop=None):
    """Open *backend* with a recording completion sink; return the log."""
    log = []
    backend.open(loop, lambda seq, ok, reason: log.append((seq, ok, reason)))
    return log


def make_driver(backend, **options):
    loop = EventLoop(SimulatedClock())
    fib4, fib6 = Fib(32), Fib(128)
    driver = BackendDriver(backend, loop, fib4=fib4, fib6=fib6, **options)
    metrics = MetricsRegistry("fea")
    driver.register_metrics(metrics)
    return loop, fib4, fib6, driver, metrics


def shadow_set(fib):
    return {entry for __, entry in fib.entries()}


# ---------------------------------------------------------------------------
# FibEntry identity (the reconciliation diff currency)


class TestFibEntryIdentity:
    def test_equal_entries_hash_equal(self):
        a, b = v4_entry(1), v4_entry(1)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_any_field_differs_entry_differs(self):
        base = v4_entry(1)
        assert base != v4_entry(2)
        assert base != v4_entry(1, nexthop=9)
        assert base != v4_entry(1, ifname="eth9")

    def test_set_diff_finds_divergence(self):
        want = {v4_entry(i) for i in range(4)}
        have = {v4_entry(i) for i in range(2, 6)}
        assert want - have == {v4_entry(0), v4_entry(1)}
        assert have - want == {v4_entry(4), v4_entry(5)}


# ---------------------------------------------------------------------------
# the backend registry


class TestRegistry:
    def test_all_three_backends_registered(self):
        assert set(BACKENDS) == {"trie", "flowrule", "netlink"}

    @pytest.mark.parametrize("name", ["trie", "flowrule", "netlink"])
    def test_make_backend_by_name(self, name):
        assert make_backend(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown FIB backend"):
            make_backend("kernel-of-theseus")


# ---------------------------------------------------------------------------
# trie backend: synchronous, always acks


class TestTrieBackend:
    def test_sync_ack_and_dump(self):
        backend = TrieFibBackend()
        log = collect_completions(backend)
        backend.apply([FibOp(ADD, v4_entry(1), seq=11),
                       FibOp(ADD, v6_entry(2), seq=12)])
        assert log == [(11, True, ""), (12, True, "")]
        assert backend.dump(32) == [v4_entry(1)]
        assert backend.dump(128) == [v6_entry(2)]

    def test_delete_and_lookup(self):
        backend = TrieFibBackend()
        collect_completions(backend)
        backend.apply([FibOp(ADD, v4_entry(1), seq=1),
                       FibOp(ADD, v4_entry(2), seq=2)])
        match = backend.lookup(IPv4(0x0A000101))  # inside 10.0.1.0/24
        assert match == v4_entry(1)
        backend.apply([FibOp(DELETE, v4_entry(1), seq=3)])
        assert backend.lookup(IPv4(0x0A000101)) is None
        assert len(backend) == 1


# ---------------------------------------------------------------------------
# flow-rule backend: routes <-> match/action rules


class TestFlowRuleBackend:
    def test_entry_to_rule_shape(self):
        rule = entry_to_rule(v4_entry(3, nexthop=7, ifname="sw0"))
        assert rule.table == TABLE_IPV4
        assert rule.priority == 24  # longest-prefix-match via priority
        assert rule.match == {"ipv4_dst": "10.0.3.0/24"}
        assert rule.actions == [("set_next_hop", "0.0.0.7"),
                                ("output", "sw0")]

    @pytest.mark.parametrize("entry", [
        v4_entry(1), v4_entry(2, nexthop=0, ifname="eth3"),
        v6_entry(4), v6_entry(5, nexthop=0, ifname=""),
    ])
    def test_rule_round_trip(self, entry):
        assert rule_to_entry(entry_to_rule(entry)) == entry

    def test_apply_and_dump_both_families(self):
        backend = FlowRuleBackend()
        log = collect_completions(backend)
        backend.apply([FibOp(ADD, v4_entry(1), seq=1),
                       FibOp(ADD, v6_entry(2), seq=2),
                       FibOp(ADD, v4_entry(3), seq=3)])
        assert all(ok for __, ok, __r in log)
        assert set(backend.dump(32)) == {v4_entry(1), v4_entry(3)}
        assert set(backend.dump(128)) == {v6_entry(2)}
        assert len(backend.rules(TABLE_IPV4)) == 2
        assert len(backend.rules(TABLE_IPV6)) == 1
        backend.apply([FibOp(DELETE, v4_entry(1), seq=4)])
        assert set(backend.dump(32)) == {v4_entry(3)}
        assert backend.rules_removed == 1

    def test_add_overwrites_rule_for_same_prefix(self):
        backend = FlowRuleBackend()
        collect_completions(backend)
        backend.apply([FibOp(ADD, v4_entry(1, nexthop=1), seq=1),
                       FibOp(ADD, v4_entry(1, nexthop=2), seq=2)])
        assert backend.dump(32) == [v4_entry(1, nexthop=2)]
        assert len(backend) == 1


# ---------------------------------------------------------------------------
# netlink-like backend: bounded async queue + seeded faults


class TestNetlinkBackend:
    def test_completions_are_asynchronous(self):
        loop = EventLoop(SimulatedClock())
        backend = NetlinkFibBackend()
        log = collect_completions(backend, loop)
        backend.apply([FibOp(ADD, v4_entry(1), seq=1)])
        assert log == []  # nothing acked within apply()
        assert loop.run_until(lambda: len(log) == 1, timeout=5)
        assert log == [(1, True, "")]
        assert backend.dump(32) == [v4_entry(1)]

    def test_queue_overflow_nacks_enobufs(self):
        loop = EventLoop(SimulatedClock())
        backend = NetlinkFibBackend(queue_capacity=2)
        log = collect_completions(backend, loop)
        backend.apply([FibOp(ADD, v4_entry(i), seq=i) for i in range(5)])
        rejected = [(seq, reason) for seq, ok, reason in log if not ok]
        assert rejected == [(2, "ENOBUFS"), (3, "ENOBUFS"), (4, "ENOBUFS")]
        assert backend.stats.rejected == 3
        assert loop.run_until(lambda: len(backend.dump(32)) == 2, timeout=5)

    def test_seeded_nack_and_drop_ack(self):
        loop = EventLoop(SimulatedClock())
        plan = BackendFaultPlan(seed=3, nack_probability=0.5,
                                drop_ack_probability=0.5)
        backend = NetlinkFibBackend(fault_plan=plan)
        log = collect_completions(backend, loop)
        ops = [FibOp(ADD, v4_entry(i), seq=i) for i in range(40)]
        backend.apply(ops)
        assert loop.run_until(lambda: backend.queue_depth == 0, timeout=30)
        stats = backend.stats
        assert stats.nacked > 0 and stats.dropped_acks > 0
        # Conservation: every queued op was nacked, applied+acked, or
        # applied with its ack dropped.
        assert stats.nacked + stats.applied == 40
        assert stats.acked + stats.dropped_acks == stats.applied
        assert len(log) == stats.acked + stats.nacked

    def test_crash_loses_queue_and_tables_and_signals_health(self):
        loop = EventLoop(SimulatedClock())
        backend = NetlinkFibBackend()
        health = []
        backend.set_health_listener(health.append)
        collect_completions(backend, loop)
        backend.apply([FibOp(ADD, v4_entry(1), seq=1)])
        assert loop.run_until(lambda: len(backend.dump(32)) == 1, timeout=5)
        backend.apply([FibOp(ADD, v4_entry(2), seq=2)])
        backend.crash()
        assert not backend.healthy
        assert health == [False]
        assert backend.dump(32) == [] and backend.queue_depth == 0
        assert backend.stats.lost == 1
        # Ops sent into the dead channel vanish silently.
        backend.apply([FibOp(ADD, v4_entry(3), seq=3)])
        assert backend.stats.lost == 2
        backend.restart()
        assert backend.healthy and health == [False, True]

    def test_channel_crash_can_preserve_tables(self):
        loop = EventLoop(SimulatedClock())
        backend = NetlinkFibBackend()
        collect_completions(backend, loop)
        backend.apply([FibOp(ADD, v4_entry(1), seq=1)])
        assert loop.run_until(lambda: len(backend.dump(32)) == 1, timeout=5)
        backend.crash(lose_tables=False)
        assert backend.dump(32) == [v4_entry(1)]


# ---------------------------------------------------------------------------
# the driver: retries, timeouts, degradation, reconciliation


class TestBackendDriver:
    def test_sync_backend_settles_immediately(self):
        __, fib4, __f6, driver, metrics = make_driver(TrieFibBackend())
        driver.add(v4_entry(1))
        driver.add(v6_entry(2))
        driver.delete(v4_entry(1).net)
        assert driver.settled and driver.queued == 0
        assert shadow_set(fib4) == set()
        assert driver.backend.dump(32) == []
        assert driver.backend.dump(128) == [v6_entry(2)]
        assert metrics.get("fea.backend.acks").value == 3
        assert driver.status() == "synced"

    def test_nack_retries_with_backoff_then_gives_up(self):
        plan = BackendFaultPlan(seed=1, nack_probability=1.0)
        backend = NetlinkFibBackend(fault_plan=plan)
        loop, fib4, __, driver, metrics = make_driver(
            backend, max_attempts=3, retry_base=0.01, ack_timeout=0.5)
        driver.add(v4_entry(1))
        assert loop.run_until(lambda: driver.settled, timeout=30)
        assert metrics.get("fea.backend.nacks").value == 3
        assert metrics.get("fea.backend.retries").value == 2
        assert metrics.get("fea.backend.failed").value == 1
        # The shadow still holds the intent; reconciliation repairs once
        # the fault clears.
        plan.nack_probability = 0.0
        driver.reconcile()
        assert loop.run_until(lambda: driver.settled, timeout=30)
        assert set(backend.dump(32)) == shadow_set(fib4)

    def test_lost_ack_resubmits_after_timeout(self):
        plan = BackendFaultPlan(seed=1, drop_ack_probability=1.0)
        backend = NetlinkFibBackend(fault_plan=plan)
        loop, fib4, __, driver, metrics = make_driver(
            backend, max_attempts=4, ack_timeout=0.1)
        driver.add(v4_entry(1))
        # Faults roll at drain time: wait for the ack to actually be
        # swallowed before clearing the fault so the retry succeeds.
        assert loop.run_until(lambda: backend.stats.dropped_acks >= 1,
                              timeout=30)
        plan.drop_ack_probability = 0.0
        assert loop.run_until(lambda: driver.settled, timeout=30)
        assert metrics.get("fea.backend.ack_timeouts").value >= 1
        assert metrics.get("fea.backend.acks").value == 1
        assert set(backend.dump(32)) == shadow_set(fib4)

    def test_congestion_latches_at_watermarks(self):
        backend = NetlinkFibBackend(queue_capacity=64)
        loop, __, __f6, driver, __m = make_driver(
            backend, high_watermark=8, low_watermark=2)
        for i in range(10):
            driver.add(v4_entry(i))
        assert driver.congested and driver.status() == "congested"
        # Completions drain; the latch releases only at the low mark.
        assert loop.run_until(lambda: not driver.congested, timeout=30)
        assert driver.queued <= 2
        assert loop.run_until(lambda: driver.settled, timeout=30)

    def test_crash_goes_stale_serves_shadow_reconciles_on_reattach(self):
        backend = NetlinkFibBackend()
        loop, fib4, fib6, driver, metrics = make_driver(backend)
        for i in range(6):
            driver.add(v4_entry(i))
        driver.add(v6_entry(1))
        assert loop.run_until(lambda: driver.settled, timeout=30)
        backend.crash()
        assert driver.stale and driver.status() == "stale"
        # Writes while stale reach only the shadow (graceful degradation:
        # lookups keep answering from it) and are counted deferred.
        driver.add(v4_entry(10))
        driver.delete(v4_entry(0).net)
        assert driver.settled  # nothing in flight toward a dead backend
        assert backend.dump(32) == []
        assert metrics.get("fea.backend.deferred").value >= 2
        backend.restart()  # health up-edge triggers reconciliation
        assert not driver.stale
        assert loop.run_until(lambda: driver.settled, timeout=30)
        assert set(backend.dump(32)) == shadow_set(fib4)
        assert set(backend.dump(128)) == shadow_set(fib6)
        assert metrics.get("fea.backend.reconcile.runs").value == 1
        # 5 surviving v4 adds + the stale-time add + the v6 entry.
        assert metrics.get("fea.backend.reconcile.adds").value == 7

    def test_reconcile_deletes_entries_the_shadow_dropped(self):
        backend = NetlinkFibBackend()
        loop, fib4, __, driver, metrics = make_driver(backend)
        for i in range(4):
            driver.add(v4_entry(i))
        assert loop.run_until(lambda: driver.settled, timeout=30)
        # The shadow loses two entries behind the driver's back (as a
        # divergence would after failed deletes); reconcile repairs.
        fib4.remove(v4_entry(0).net)
        fib4.remove(v4_entry(1).net)
        adds, deletes = driver.reconcile()
        assert (adds, deletes) == (0, 2)
        assert loop.run_until(lambda: driver.settled, timeout=30)
        assert set(backend.dump(32)) == shadow_set(fib4)


# ---------------------------------------------------------------------------
# the headline property: any seeded fault schedule reconciles to equality


FAULT_OPS = st.lists(
    st.tuples(st.booleans(),                      # v6?
              st.sampled_from(["add", "delete"]),
              st.integers(min_value=0, max_value=7),   # prefix index
              st.integers(min_value=1, max_value=3)),  # nexthop
    max_size=24,
)


class TestReconciliationProperty:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 16),
           nack=st.floats(min_value=0, max_value=0.4),
           drop=st.floats(min_value=0, max_value=0.4),
           ops=FAULT_OPS,
           crash_after=st.none() | st.integers(min_value=0, max_value=23))
    def test_dump_equals_shadow_after_reconciliation(self, seed, nack, drop,
                                                     ops, crash_after):
        plan = BackendFaultPlan(seed=seed, nack_probability=nack,
                                drop_ack_probability=drop, latency=0.002)
        backend = NetlinkFibBackend(queue_capacity=8, fault_plan=plan)
        loop, fib4, fib6, driver, __ = make_driver(
            backend, max_attempts=3, retry_base=0.005, ack_timeout=0.05,
            high_watermark=16, low_watermark=4)
        for index, (is_v6, op, prefix, nexthop) in enumerate(ops):
            if crash_after == index:
                backend.crash()
                backend.restart()
            entry = v6_entry(prefix, nexthop) if is_v6 \
                else v4_entry(prefix, nexthop)
            if op == "add":
                driver.add(entry)
            else:
                driver.delete(entry.net)
        assert loop.run_until(lambda: driver.settled, timeout=120)

        def converged():
            return (set(backend.dump(32)) == shadow_set(fib4)
                    and set(backend.dump(128)) == shadow_set(fib6))

        # Ops that exhausted their retries leave divergence; each
        # reconciliation pass repairs it (repairs themselves can be
        # faulted, hence the loop — the FEA reruns it per health edge).
        for __attempt in range(8):
            if converged():
                break
            driver.reconcile()
            assert loop.run_until(lambda: driver.settled, timeout=120)
        assert converged()


# ---------------------------------------------------------------------------
# RIB-side flow controller: pacing, polling, shedding


class _Route:
    def __init__(self, net):
        self.net = net


class _FakeFea:
    """Records segments; replies with a scripted congestion signal."""

    class _Error:
        is_okay = True

    class _Args:
        def __init__(self, congested):
            self._congested = congested

        def get_bool(self, name):
            return self._congested

    def __init__(self):
        self.segments = []
        self.polls = 0
        self.congested = False
        self.held = []

    def send_segment(self, family, op, routes, batching, on_reply):
        self.segments.append((family, op, [str(r.net) for r in routes]))
        self.held.append(on_reply)

    def flush(self):
        held, self.held = self.held, []
        for on_reply in held:
            on_reply(self._Error(), self._Args(self.congested))

    def poll_status(self, on_reply):
        self.polls += 1
        on_reply(self._Error(), self._Args(self.congested))


def v4_route(i):
    return _Route(IPNet(IPv4(0x0A000000 + (i << 8)), 24))


class TestFeaFlowController:
    def make(self, fea, **options):
        loop = EventLoop(SimulatedClock())
        options.setdefault("batch_limit", lambda: 8)
        flow = FeaFlowController(loop, send_segment=fea.send_segment,
                                 poll_status=fea.poll_status, **options)
        return loop, flow

    def test_single_event_pumps_singular_segment(self):
        fea = _FakeFea()
        __, flow = self.make(fea)
        flow.submit(32, "add", v4_route(1))
        assert fea.segments == [(32, "add", ["10.0.1.0/24"])]

    def test_batch_segments_at_limit(self):
        fea = _FakeFea()
        __, flow = self.make(fea)
        flow.submit_batch(32, "add", [v4_route(i) for i in range(20)])
        assert [len(nets) for __f, __o, nets in fea.segments] == [8, 8, 4]

    def test_runs_break_at_op_boundaries(self):
        fea = _FakeFea()
        fea.congested = True
        loop, flow = self.make(fea, poll_interval=0.01)
        flow.submit(32, "add", v4_route(1))
        fea.flush()  # congested reply pauses; the rest queue up mixed
        flow.submit(32, "add", v4_route(2))
        flow.submit(32, "add", v4_route(3))
        flow.submit(32, "delete", v4_route(1))
        flow.submit(32, "add", v4_route(4))
        assert len(fea.segments) == 1
        fea.congested = False
        assert loop.run_until(lambda: not flow.paused, timeout=5)
        # The backlog drains as maximal same-op runs, never across an
        # op boundary: the two adds coalesce, the delete goes alone.
        ops = [(family, op, len(nets)) for family, op, nets in fea.segments]
        assert ops == [(32, "add", 1), (32, "add", 2), (32, "delete", 1),
                       (32, "add", 1)]

    def test_congested_reply_pauses_until_poll_clears(self):
        fea = _FakeFea()
        fea.congested = True
        loop, flow = self.make(fea, poll_interval=0.01)
        flow.submit(32, "add", v4_route(1))
        fea.flush()  # reply says congested
        assert flow.paused
        flow.submit(32, "add", v4_route(2))
        assert len(fea.segments) == 1  # backlog held while paused
        fea.congested = False
        assert loop.run_until(lambda: not flow.paused, timeout=5)
        fea.flush()
        assert fea.polls >= 1
        assert len(fea.segments) == 2
        assert loop.run_until(lambda: flow.idle, timeout=5)

    def test_window_bounds_inflight_operations(self):
        fea = _FakeFea()
        loop, flow = self.make(fea, window=8)
        flow.submit_batch(32, "add", [v4_route(i) for i in range(30)])
        sent = sum(len(nets) for __f, __o, nets in fea.segments)
        assert sent == 8  # nothing beyond the window until replies
        fea.flush()
        loop.run(duration=0.1)
        assert sum(len(n) for __f, __o, n in fea.segments) == 16

    def test_shed_keeps_newest_event_per_prefix(self):
        fea = _FakeFea()
        __, flow = self.make(fea, window=1, high_watermark=6,
                             low_watermark=2)
        # window=1: the first op goes out, the rest accumulate.
        for round_ in range(5):
            for i in range(4):
                flow.submit(32, "add" if round_ % 2 == 0 else "delete",
                            v4_route(i))
        # 20 events over 4 prefixes: superseded ones were shed.
        assert flow.depth <= 6
        assert flow.shed_total > 0
        # Drain: the survivors end with each prefix's newest op.
        fea.congested = False
        while fea.held:
            fea.flush()
        final = {}
        for __f, op, nets in fea.segments:
            for net in nets:
                final[net] = op
        assert all(op == "add" for op in final.values())  # round 4 was adds
