"""Exit-code gates for the three analysis/verification CLIs.

Each CLI is a CI tripwire: exit 0 on a healthy tree, nonzero when the
tree is broken in a way its checks must catch.  These tests run the
real entry points (``python -m repro.analysis`` / ``repro.sanitizer`` /
``repro.obs``) via subprocess against (a) the pristine source tree and
(b) a copy with a seeded defect, asserting the exit codes — so a CLI
that starts swallowing findings, or crashing before it reports, fails
here rather than silently greenlighting CI.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"


def copy_tree(tmp_path: Path) -> Path:
    """Copy src/repro to a tmp dir (keeping the 'repro' path anchor)."""
    dest = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, dest,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return dest


def run_cli(module, *argv, pythonpath=None):
    return subprocess.run(
        [sys.executable, "-m", module, *argv],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(pythonpath if pythonpath is not None
                               else REPO_ROOT / "src"),
             "PATH": "/usr/bin"},
    )


class TestAnalysisCli:
    def test_clean_tree_exits_zero(self):
        result = run_cli("repro.analysis", str(SRC_REPRO))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_seeded_defect_exits_nonzero(self, tmp_path):
        tree = copy_tree(tmp_path)
        bad = tree / "core" / "napping.py"
        bad.write_text("import time\ntime.sleep(1.0)\n")
        result = run_cli("repro.analysis", str(tree))
        assert result.returncode == 1, result.stdout + result.stderr
        assert "DET002" in result.stdout


class TestSanitizerCli:
    ARGS = ("--scenario", "routeflow", "--seeds", "2", "--routes", "6")

    def test_clean_tree_exits_zero(self):
        result = run_cli("repro.sanitizer", *self.ARGS)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_seeded_defect_exits_nonzero(self, tmp_path):
        """A misspelled XRL method in the RIB's FEA transfer: the dispatch
        sanitizer must flag the nonconforming call at runtime."""
        tree = copy_tree(tmp_path)
        rib = tree / "rib" / "rib.py"
        text = rib.read_text()
        assert '"add_entry4"' in text
        rib.write_text(text.replace('"add_entry4"', '"add_entyr4"', 1))
        result = run_cli("repro.sanitizer", *self.ARGS,
                         pythonpath=tmp_path)
        assert result.returncode != 0, result.stdout + result.stderr
        assert "SAN" in result.stdout


class TestObsCli:
    def test_clean_tree_exits_zero(self):
        result = run_cli("repro.obs", "--routes", "2")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "route(s) traced" in result.stderr

    def test_json_is_byte_stable(self):
        first = run_cli("repro.obs", "--routes", "2", "--json")
        second = run_cli("repro.obs", "--routes", "2", "--json")
        assert first.returncode == second.returncode == 0
        assert first.stdout == second.stdout
        json.loads(first.stdout)  # and it is actual JSON

    def test_seeded_defect_exits_nonzero(self, tmp_path):
        """Sever the FEA's FIB insertion: traced routes then never produce
        a fib span (OBS001) and fea.fib4.routes stays zero (OBS002)."""
        tree = copy_tree(tmp_path)
        driver = tree / "fea" / "driver.py"
        text = driver.read_text()
        assert text.count("].insert(entry)") == 1
        text = text.replace("].insert(entry)", "].exact(entry.net)")
        driver.write_text(text)
        result = run_cli("repro.obs", "--routes", "2",
                         pythonpath=tmp_path)
        assert result.returncode != 0, result.stdout + result.stderr
        assert "OBS001" in result.stdout
        assert "OBS002" in result.stdout
