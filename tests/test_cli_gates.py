"""Exit-code gates for the three analysis/verification CLIs.

Each CLI is a CI tripwire: exit 0 on a healthy tree, nonzero when the
tree is broken in a way its checks must catch.  These tests run the
real entry points (``python -m repro.analysis`` / ``repro.sanitizer`` /
``repro.obs``) via subprocess against (a) the pristine source tree and
(b) a copy with a seeded defect, asserting the exit codes — so a CLI
that starts swallowing findings, or crashing before it reports, fails
here rather than silently greenlighting CI.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"


def copy_tree(tmp_path: Path) -> Path:
    """Copy src/repro to a tmp dir (keeping the 'repro' path anchor)."""
    dest = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, dest,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return dest


def run_cli(module, *argv, pythonpath=None):
    return subprocess.run(
        [sys.executable, "-m", module, *argv],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(pythonpath if pythonpath is not None
                               else REPO_ROOT / "src"),
             "PATH": "/usr/bin"},
    )


class TestAnalysisCli:
    def test_clean_tree_exits_zero(self):
        result = run_cli("repro.analysis", str(SRC_REPRO))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_seeded_defect_exits_nonzero(self, tmp_path):
        tree = copy_tree(tmp_path)
        bad = tree / "core" / "napping.py"
        bad.write_text("import time\ntime.sleep(1.0)\n")
        result = run_cli("repro.analysis", str(tree))
        assert result.returncode == 1, result.stdout + result.stderr
        assert "DET002" in result.stdout

    def test_warnings_do_not_gate(self):
        # The shipped tree carries PRO004/PRO006 warnings & info — they
        # must be reported without flipping the exit code.
        result = run_cli("repro.analysis", str(SRC_REPRO))
        assert result.returncode == 0
        assert "PRO004" in result.stdout
        assert "[warning]" in result.stdout
        assert "0 error(s)" in result.stderr

    def test_deleted_bind_exits_nonzero(self, tmp_path):
        tree = copy_tree(tmp_path)
        rib = tree / "rib" / "rib.py"
        text = rib.read_text()
        rib.write_text("\n".join(
            line for line in text.splitlines()
            if "self.xrl.bind(RIB_IDL, self)" not in line) + "\n")
        result = run_cli("repro.analysis", str(tree))
        assert result.returncode == 1, result.stdout + result.stderr
        assert "PRO001" in result.stdout

    def test_graph_out_is_byte_stable(self, tmp_path):
        first, second = tmp_path / "g1.json", tmp_path / "g2.json"
        dot = tmp_path / "g.dot"
        for out in (first, second):
            result = run_cli("repro.analysis", str(SRC_REPRO),
                             "--graph-out", str(out),
                             "--graph-dot", str(dot))
            assert result.returncode == 0, result.stdout + result.stderr
        assert first.read_bytes() == second.read_bytes()
        graph = json.loads(first.read_text())
        assert graph["schema"] == "repro.protograph/1"
        assert graph["edges"], "the shipped tree must have XRL edges"
        assert dot.read_text().startswith("digraph")

    def test_hot_report_is_byte_stable(self, tmp_path):
        first, second = tmp_path / "h1.json", tmp_path / "h2.json"
        dot = tmp_path / "h.dot"
        for out in (first, second):
            result = run_cli("repro.analysis", str(SRC_REPRO),
                             "--hot-report", str(out),
                             "--hot-dot", str(dot))
            assert result.returncode == 0, result.stdout + result.stderr
        assert first.read_bytes() == second.read_bytes()
        report = json.loads(first.read_text())
        assert report["schema"] == "repro.hotpath/1"
        assert report["stats"]["hot_functions"] > 0
        assert report["roots"], "hot roots must be exported"
        assert dot.read_text().startswith("digraph hotpath")

    def test_seeded_hot_defect_exits_nonzero(self, tmp_path):
        # De-batch the merge stage's segment flush: HOT001 must gate.
        tree = copy_tree(tmp_path)
        merge = tree / "rib" / "merge.py"
        text = merge.read_text()
        batched = ("        if plain:\n"
                   "            next_table.add_routes(plain, caller=self)\n")
        assert batched in text
        merge.write_text(text.replace(
            batched,
            "        for route in plain:\n"
            "            next_table.add_route(route, caller=self)\n"))
        result = run_cli("repro.analysis", str(tree))
        assert result.returncode == 1, result.stdout + result.stderr
        assert "HOT001" in result.stdout

    def test_hot_warnings_do_not_gate(self):
        # The shipped tree still carries warning-severity hot findings
        # (HOT003/HOT004 on config-time classes) — reported, exit 0.
        result = run_cli("repro.analysis", str(SRC_REPRO))
        assert result.returncode == 0
        assert "HOT004" in result.stdout

    def test_json_format_reports_timing(self):
        result = run_cli("repro.analysis", str(SRC_REPRO),
                         "--format", "json")
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        timing = payload["timing"]
        assert timing["files"] > 0
        assert timing["parsed"] + timing["parse_cached"] == timing["files"]
        assert timing["parse_seconds"] >= 0.0
        assert timing["check_seconds"] >= 0.0


class TestSanitizerCli:
    ARGS = ("--scenario", "routeflow", "--seeds", "2", "--routes", "6")

    def test_clean_tree_exits_zero(self):
        result = run_cli("repro.sanitizer", *self.ARGS)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_seeded_defect_exits_nonzero(self, tmp_path):
        """A misspelled XRL method in the RIB's FEA transfer: the dispatch
        sanitizer must flag the nonconforming call at runtime."""
        tree = copy_tree(tmp_path)
        rib = tree / "rib" / "rib.py"
        text = rib.read_text()
        assert '"add_entry4"' in text
        rib.write_text(text.replace('"add_entry4"', '"add_entyr4"', 1))
        result = run_cli("repro.sanitizer", *self.ARGS,
                         pythonpath=tmp_path)
        assert result.returncode != 0, result.stdout + result.stderr
        assert "SAN" in result.stdout


class TestObsCli:
    def test_clean_tree_exits_zero(self):
        result = run_cli("repro.obs", "--routes", "2")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "route(s) traced" in result.stderr

    def test_json_is_byte_stable(self):
        first = run_cli("repro.obs", "--routes", "2", "--json")
        second = run_cli("repro.obs", "--routes", "2", "--json")
        assert first.returncode == second.returncode == 0
        assert first.stdout == second.stdout
        json.loads(first.stdout)  # and it is actual JSON

    def test_seeded_defect_exits_nonzero(self, tmp_path):
        """Sever the FEA's FIB insertion: traced routes then never produce
        a fib span (OBS001) and fea.fib4.routes stays zero (OBS002)."""
        tree = copy_tree(tmp_path)
        driver = tree / "fea" / "driver.py"
        text = driver.read_text()
        assert text.count("].insert(entry)") == 1
        text = text.replace("].insert(entry)", "].exact(entry.net)")
        driver.write_text(text)
        result = run_cli("repro.obs", "--routes", "2",
                         pythonpath=tmp_path)
        assert result.returncode != 0, result.stdout + result.stderr
        assert "OBS001" in result.stdout
        assert "OBS002" in result.stdout
