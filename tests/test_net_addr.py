"""Unit tests for repro.net.addr."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import IPv4, IPv6, IPvX, AddressError


class TestIPv4:
    def test_parse_dotted_quad(self):
        assert IPv4("128.16.0.1").to_int() == 0x80100001

    def test_round_trip_string(self):
        assert str(IPv4("10.0.1.254")) == "10.0.1.254"

    def test_from_int(self):
        assert str(IPv4(0x0A000001)) == "10.0.0.1"

    def test_from_bytes(self):
        assert IPv4(b"\x0a\x00\x00\x01") == IPv4("10.0.0.1")

    def test_to_bytes(self):
        assert IPv4("1.2.3.4").to_bytes() == b"\x01\x02\x03\x04"

    def test_copy_constructor(self):
        a = IPv4("192.168.1.1")
        assert IPv4(a) == a

    def test_rejects_shorthand(self):
        with pytest.raises(AddressError):
            IPv4("10.1")

    def test_rejects_garbage(self):
        with pytest.raises(AddressError):
            IPv4("not-an-address")

    def test_rejects_out_of_range_int(self):
        with pytest.raises(AddressError):
            IPv4(1 << 32)

    def test_rejects_negative(self):
        with pytest.raises(AddressError):
            IPv4(-1)

    def test_rejects_wrong_byte_count(self):
        with pytest.raises(AddressError):
            IPv4(b"\x01\x02\x03")

    def test_ordering(self):
        assert IPv4("10.0.0.1") < IPv4("10.0.0.2") < IPv4("11.0.0.0")

    def test_hashable(self):
        assert len({IPv4("1.1.1.1"), IPv4("1.1.1.1"), IPv4("2.2.2.2")}) == 2

    def test_multicast(self):
        assert IPv4("224.0.0.5").is_multicast()
        assert IPv4("239.255.255.255").is_multicast()
        assert not IPv4("223.255.255.255").is_multicast()
        assert not IPv4("240.0.0.0").is_multicast()

    def test_loopback(self):
        assert IPv4("127.0.0.1").is_loopback()
        assert not IPv4("128.0.0.1").is_loopback()

    def test_link_local(self):
        assert IPv4("169.254.1.1").is_link_local()
        assert not IPv4("169.253.1.1").is_link_local()

    def test_unicast(self):
        assert IPv4("8.8.8.8").is_unicast()
        assert not IPv4("224.1.2.3").is_unicast()
        assert not IPv4("255.255.255.255").is_unicast()

    def test_mask_by_prefix_len(self):
        assert IPv4("128.16.191.7").mask_by_prefix_len(18) == IPv4("128.16.128.0")
        assert IPv4("1.2.3.4").mask_by_prefix_len(0) == IPv4("0.0.0.0")
        assert IPv4("1.2.3.4").mask_by_prefix_len(32) == IPv4("1.2.3.4")

    def test_mask_rejects_bad_len(self):
        with pytest.raises(AddressError):
            IPv4("1.2.3.4").mask_by_prefix_len(33)

    def test_bit_indexing_msb_first(self):
        addr = IPv4("128.0.0.1")
        assert addr.bit(0) == 1
        assert addr.bit(1) == 0
        assert addr.bit(31) == 1

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_int_round_trip(self, value):
        assert IPv4(IPv4(value).to_bytes()).to_int() == value

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_string_round_trip(self, value):
        assert IPv4(str(IPv4(value))).to_int() == value

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.integers(min_value=0, max_value=32))
    def test_masking_idempotent(self, value, plen):
        masked = IPv4(value).mask_by_prefix_len(plen)
        assert masked.mask_by_prefix_len(plen) == masked


class TestIPv6:
    def test_parse(self):
        assert IPv6("::1").to_int() == 1

    def test_round_trip(self):
        assert str(IPv6("2001:db8::42")) == "2001:db8::42"

    def test_from_bytes(self):
        assert IPv6(b"\x00" * 15 + b"\x01") == IPv6("::1")

    def test_multicast(self):
        assert IPv6("ff02::1").is_multicast()
        assert not IPv6("fe80::1").is_multicast()

    def test_loopback(self):
        assert IPv6("::1").is_loopback()

    def test_link_local(self):
        assert IPv6("fe80::1").is_link_local()
        assert not IPv6("2001:db8::1").is_link_local()

    def test_mask(self):
        assert IPv6("2001:db8:ffff::1").mask_by_prefix_len(32) == IPv6("2001:db8::")

    def test_ordering(self):
        assert IPv6("::1") < IPv6("::2")

    def test_rejects_v4_text(self):
        with pytest.raises(AddressError):
            IPv6("10.0.0.1")

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_int_round_trip(self, value):
        assert IPv6(IPv6(value).to_bytes()).to_int() == value

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_string_round_trip(self, value):
        assert IPv6(str(IPv6(value))).to_int() == value


class TestIPvX:
    def test_wraps_v4_text(self):
        x = IPvX("10.0.0.1")
        assert x.is_ipv4() and not x.is_ipv6()
        assert x.get_ipv4() == IPv4("10.0.0.1")

    def test_wraps_v6_text(self):
        x = IPvX("2001:db8::1")
        assert x.is_ipv6()
        assert x.get_ipv6() == IPv6("2001:db8::1")

    def test_family(self):
        assert IPvX("1.2.3.4").family == 1
        assert IPvX("::1").family == 2

    def test_wrong_family_raises(self):
        with pytest.raises(AddressError):
            IPvX("1.2.3.4").get_ipv6()

    def test_equality_with_concrete(self):
        assert IPvX("1.2.3.4") == IPv4("1.2.3.4")
        assert IPvX("1.2.3.4") != IPv6("::1")

    def test_unwrap(self):
        assert isinstance(IPvX("::1").unwrap(), IPv6)

    def test_hash_matches_concrete(self):
        assert hash(IPvX("1.2.3.4")) == hash(IPv4("1.2.3.4"))
