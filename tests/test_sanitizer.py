"""repro.sanitizer: stage consistency, XRL dispatch, schedule exploration.

Mirrors ``test_analysis.py``'s contract for the runtime half: seeded
mutations must each be caught by exactly the intended sanitizer piece,
the clean tree must report zero violations (the armed fixtures in
``test_rib_stages.py`` / ``test_full_router_integration.py`` plus the
explorer runs here), and exploration reports must be byte-identical
across repeated runs.
"""

import json
import random

import pytest

from repro.core.stages import (
    DeletionStage,
    FilterStage,
    OriginStage,
    RouteTableStage,
    stream_reset,
)
from repro.eventloop import EventLoop, SimulatedClock
from repro.net import IPNet, IPv4
from repro.rib import RibRoute
from repro.sanitizer import (
    RuntimeSanitizer,
    ScheduleShuffler,
    StageSanitizer,
    XrlDispatchSanitizer,
    explore,
)
from repro.xrl import Finder, Xrl, XrlArgs, XrlRouter
from repro.xrl.transport import IntraProcessFamily


def net(text):
    return IPNet.parse(text)


def route(net_text, protocol="static", nexthop="192.168.0.1", metric=1):
    return RibRoute(net(net_text), IPv4(nexthop), metric, protocol)


class SinkStage(RouteTableStage):
    def __init__(self, name="sink"):
        super().__init__(name)
        self.log = []

    def add_route(self, r, caller=None):
        self.log.append(("add", r.net))

    def delete_route(self, r, caller=None):
        self.log.append(("delete", r.net))


def pipeline():
    origin = OriginStage("origin")
    flt = FilterStage("filter", lambda r: r)
    sink = SinkStage()
    RouteTableStage.plumb(origin, flt, sink)
    return origin, flt, sink


def rules_of(violations):
    return [v.rule for v in violations]


class TestStageSanitizer:
    def test_clean_flow_no_violations(self):
        with StageSanitizer() as san:
            origin, flt, sink = pipeline()
            origin.originate(route("10.0.0.0/8"))
            origin.originate(route("10.0.0.0/8", metric=5))  # replace
            origin.withdraw(net("10.0.0.0/8"))
        assert san.violations == []
        assert sink.log == [("add", net("10.0.0.0/8")),
                            ("delete", net("10.0.0.0/8"))]

    def test_double_add_reports_san001_once(self):
        with StageSanitizer() as san:
            origin, flt, sink = pipeline()
            r = route("10.0.0.0/8")
            flt.add_route(r, caller=origin)
            flt.add_route(r, caller=origin)
        assert rules_of(san.violations) == ["SAN001"]
        assert "already live" in san.violations[0].message

    def test_delete_without_add_reports_san002(self):
        with StageSanitizer() as san:
            origin, flt, sink = pipeline()
            flt.delete_route(route("10.0.0.0/8"), caller=origin)
        assert rules_of(san.violations) == ["SAN002"]

    def test_replace_of_never_added_reports_san003(self):
        with StageSanitizer() as san:
            origin, flt, sink = pipeline()
            flt.replace_route(route("10.0.0.0/8"),
                              route("10.0.0.0/8", metric=9), caller=origin)
        assert rules_of(san.violations) == ["SAN003"]

    def test_edges_are_tracked_per_caller(self):
        """Multi-parent stages legitimately hold one prefix per parent."""
        with StageSanitizer() as san:
            a, b = OriginStage("a"), OriginStage("b")
            sink = SinkStage()
            r = route("10.0.0.0/8")
            sink.add_route(r, caller=a)
            sink.add_route(r, caller=b)  # different edge: not a violation
        assert san.violations == []

    def test_lookup_denying_live_route_reports_san004(self):
        class AmnesiacStage(RouteTableStage):
            def lookup_route(self, net_, caller=None):
                return None  # bug: denies what it announced

        with StageSanitizer() as san:
            upstream = AmnesiacStage("amnesiac")
            sink = SinkStage()
            upstream.set_next(sink)
            r = route("10.0.0.0/8")
            sink.add_route(r, caller=upstream)
            assert upstream.lookup_route(net("10.0.0.0/8"), caller=sink) is None
        assert rules_of(san.violations) == ["SAN004"]

    def test_consistent_lookup_is_clean(self):
        with StageSanitizer() as san:
            origin, flt, sink = pipeline()
            origin.originate(route("10.0.0.0/8"))
            found = flt.lookup_route(net("10.0.0.0/8"), caller=sink)
            assert found is not None
        assert san.violations == []

    def test_deletion_stage_splice_keeps_consistency(self):
        """The §5.1.2 dynamic splice: no false SAN002 from migrated edges."""
        loop = EventLoop(SimulatedClock())
        with StageSanitizer() as san:
            origin, flt, sink = pipeline()
            for prefix in ("10.0.0.0/8", "20.0.0.0/8", "30.0.0.0/8"):
                origin.originate(route(prefix))
            old_routes = origin.routes
            origin.routes = type(old_routes)(old_routes.bits)
            deletion = DeletionStage("del", loop, old_routes, slice_size=1)
            origin.insert_downstream(deletion)
            deletion.start()
            # New-generation add for a still-held prefix: the deletion
            # stage must emit the pending delete first, then the add.
            origin.originate(route("20.0.0.0/8", metric=7))
            loop.run()
            assert deletion.done
        assert san.violations == []
        table = {}
        for op, prefix in sink.log:
            if op == "add":
                assert prefix not in table
                table[prefix] = True
            else:
                del table[prefix]
        assert sorted(str(k) for k in table) == ["20.0.0.0/8"]

    def test_stream_reset_drops_edge_state(self):
        with StageSanitizer() as san:
            origin, flt, sink = pipeline()
            origin.originate(route("10.0.0.0/8"))
            stream_reset(flt, sink)
            # After the declared reset a fresh add is not a double add.
            flt.add_route(route("10.0.0.0/8"), caller=origin)
        assert san.violations == []

    def test_disarm_restores_pristine_methods(self):
        originals = {
            name: RouteTableStage.__dict__[name]
            for name in ("add_route", "delete_route", "replace_route",
                         "lookup_route", "insert_downstream", "unplumb")
        }
        san = StageSanitizer()
        san.arm()
        assert RouteTableStage.__dict__["add_route"] is not originals["add_route"]
        san.disarm()
        for name, fn in originals.items():
            assert RouteTableStage.__dict__[name] is fn

    def test_classes_defined_while_armed_are_instrumented(self):
        with StageSanitizer() as san:
            class LateStage(RouteTableStage):
                def add_route(self, r, caller=None):
                    pass

            late = LateStage("late")
            r = route("10.0.0.0/8")
            late.add_route(r, caller=None)
            late.add_route(r, caller=None)
        assert rules_of(san.violations) == ["SAN001"]


class TestSeededStageMutation:
    """Satellite: a deliberate double-add in a RIB stage is caught."""

    def test_buggy_origin_stage_caught_by_san001(self, monkeypatch):
        def buggy_originate(self, r):
            self.routes.insert(r.net, r)
            if self.next_table is not None:
                # Bug under test: ignores the previous route and re-adds.
                self.next_table.add_route(r, caller=self)

        monkeypatch.setattr(OriginStage, "originate", buggy_originate)
        with StageSanitizer() as san:
            origin, flt, sink = pipeline()
            origin.originate(route("10.0.0.0/8"))
            origin.originate(route("10.0.0.0/8", metric=5))
        assert rules_of(san.violations) == ["SAN001"]
        assert san.violations[0].origin == "origin->filter"

    def test_fixed_origin_stage_is_clean(self):
        with StageSanitizer() as san:
            origin, flt, sink = pipeline()
            origin.originate(route("10.0.0.0/8"))
            origin.originate(route("10.0.0.0/8", metric=5))
        assert san.violations == []


class TestXrlDispatchSanitizer:
    def _client(self):
        loop = EventLoop(SimulatedClock())
        finder = Finder(rng=random.Random(7))
        client = XrlRouter(loop, "client", finder,
                           families=[IntraProcessFamily()])
        return loop, client

    def test_clean_dispatch_passes(self):
        loop, client = self._client()
        with XrlDispatchSanitizer() as san:
            args = (XrlArgs().add_txt("protocol", "bgp")
                    .add_ipv4net("net", net("10.0.0.0/8"))
                    .add_ipv4("nexthop", IPv4("192.168.0.1"))
                    .add_u32("metric", 1)
                    .add_list("policytags", []))
            client.send(Xrl("rib", "rib", "1.0", "add_route4", args))
            loop.run()
        assert san.violations == []
        assert san.checked == 1

    def test_unknown_interface_reports_san101(self):
        loop, client = self._client()
        with XrlDispatchSanitizer() as san:
            client.send(Xrl("rib", "ribble", "9.9", "add_route4", XrlArgs()))
            loop.run()
        assert rules_of(san.violations) == ["SAN101"]

    def test_unknown_method_reports_san102(self):
        loop, client = self._client()
        with XrlDispatchSanitizer() as san:
            client.send(Xrl("rib", "rib", "1.0", "add_rote4", XrlArgs()))
            loop.run()
        assert rules_of(san.violations) == ["SAN102"]

    def test_dynamically_built_bad_args_report_san103(self):
        """The case XRL001-006 cannot resolve statically: args from data."""
        loop, client = self._client()
        with XrlDispatchSanitizer() as san:
            args = XrlArgs()
            for name, value in [("protocol", "bgp"), ("metric", "one")]:
                args.add_txt(name, value)  # metric should be u32
            client.send(Xrl("rib", "rib", "1.0", "delete_route4", args))
            loop.run()
        assert rules_of(san.violations) == ["SAN103"]
        assert "rib/1.0/delete_route4" in san.violations[0].origin

    def test_bench_interface_is_exempt(self):
        loop, client = self._client()
        with XrlDispatchSanitizer() as san:
            client.send(Xrl("bench", "bench", "1.0", "noargs",
                            XrlArgs().add_u32("weird", 1)))
            loop.run()
        assert san.violations == []
        assert san.checked == 0

    def test_disarm_restores_pristine_send(self):
        original = XrlRouter.__dict__["send"]
        san = XrlDispatchSanitizer()
        san.arm()
        assert XrlRouter.__dict__["send"] is not original
        san.disarm()
        assert XrlRouter.__dict__["send"] is original


def _racy_scenario():
    """Two same-deadline timers whose order changes the result: a bug."""
    loop = EventLoop(SimulatedClock())
    state = {"value": 0}

    def increment():
        state["value"] += 1

    def double():
        state["value"] *= 2

    loop.call_later(1.0, increment, name="increment")
    loop.call_later(1.0, double, name="double")
    loop.run()
    return {"value": state["value"]}


def _commuting_scenario():
    """Two same-deadline timers touching independent state: no bug."""
    loop = EventLoop(SimulatedClock())
    state = {}
    loop.call_later(1.0, lambda: state.setdefault("a", 1), name="set-a")
    loop.call_later(1.0, lambda: state.setdefault("b", 2), name="set-b")
    loop.run()
    return dict(sorted(state.items()))


class TestScheduleExplorer:
    SEEDS = list(range(1, 9))

    def test_swapped_timer_order_bug_caught_by_race001(self):
        """Satellite: the seeded ordering mutation yields exactly RACE001."""
        report = explore(_racy_scenario, name="racy", seeds=self.SEEDS)
        assert rules_of(report.violations) == ["RACE001"]
        violation = report.violations[0]
        assert violation.origin == "schedule:racy"
        context = violation.context
        assert context["baseline_fingerprint"] == {"value": 2}
        assert context["divergent_fingerprint"] == {"value": 1}
        # The two minimal divergent schedules end at the differing choice.
        base = context["baseline_schedule"]
        diverged = context["divergent_schedule"]
        assert base[-1]["ready"] == ["increment", "double"]
        assert base[-1]["order"] != diverged[-1]["order"]
        assert base[:-1] == diverged[:-1]

    def test_commuting_timers_are_clean(self):
        report = explore(_commuting_scenario, name="commuting",
                         seeds=self.SEEDS)
        assert report.violations == []
        assert all(run.fingerprint == {"a": 1, "b": 2}
                   for run in report.runs)

    def test_reports_are_byte_identical(self):
        first = explore(_racy_scenario, name="racy", seeds=self.SEEDS)
        second = explore(_racy_scenario, name="racy", seeds=self.SEEDS)
        assert first.to_json() == second.to_json()
        assert json.dumps([v.to_dict() for v in first.violations],
                          sort_keys=True) == \
            json.dumps([v.to_dict() for v in second.violations],
                       sort_keys=True)

    def test_identity_schedule_matches_unpatched_run(self):
        unpatched = _racy_scenario()
        with ScheduleShuffler(None) as shuffler:
            patched = _racy_scenario()
        assert patched == unpatched
        assert any(point.kind == "timer" for point in shuffler.trace)

    def test_deferred_callbacks_are_permuted(self):
        def scenario():
            loop = EventLoop(SimulatedClock())
            order = []
            loop.call_soon(lambda: order.append("first"))
            loop.call_soon(lambda: order.append("second"))
            loop.run()
            return {"order": order}

        report = explore(scenario, name="deferred", seeds=self.SEEDS)
        assert rules_of(report.violations) == ["RACE001"]

    def test_shuffled_timer_cancelled_by_sibling_stays_dead(self):
        """A timer cancelled by an earlier same-deadline sibling must not
        fire, whichever order the shuffler picks."""
        fired = []
        for seed in [None] + self.SEEDS:
            loop = EventLoop(SimulatedClock())
            timers = {}

            def cancel_other(myself="a", other="b"):
                fired.append(myself)
                timers[other].cancel()

            timers["a"] = loop.call_later(
                1.0, lambda: cancel_other("a", "b"), name="a")
            timers["b"] = loop.call_later(
                1.0, lambda: cancel_other("b", "a"), name="b")
            with ScheduleShuffler(seed):
                loop.run()
        # Exactly one of the pair fires per run.
        assert len(fired) == len(self.SEEDS) + 1


class TestRuntimeSanitizerComposite:
    def test_arms_both_and_shares_log(self):
        loop = EventLoop(SimulatedClock())
        finder = Finder(rng=random.Random(7))
        client = XrlRouter(loop, "client", finder,
                           families=[IntraProcessFamily()])
        with RuntimeSanitizer() as san:
            origin, flt, sink = pipeline()
            flt.delete_route(route("10.0.0.0/8"), caller=origin)
            client.send(Xrl("rib", "rib", "1.0", "add_rote4", XrlArgs()))
            loop.run()
        assert rules_of(san.violations) == ["SAN002", "SAN102"]
        assert [v.seq for v in san.violations] == [1, 2]

    def test_only_one_sanitizer_can_be_armed(self):
        with StageSanitizer():
            with pytest.raises(RuntimeError):
                StageSanitizer().arm()
