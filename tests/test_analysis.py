"""Tests for the architectural lint suite (:mod:`repro.analysis`).

Four layers:

* fixture snippets — one known-good and one known-bad case per checker,
  run through :func:`analyze_source` (per-module rules) or
  :func:`analyze_sources` (multi-module protocol-graph rules);
* mutation tests mirroring the acceptance criteria — a misspelled XRL
  method, an inserted ``time.sleep()``, a deleted ``bind()``, a
  synchronous back-call, and a renamed reply atom against copies of the
  *real* source tree must each be caught by exactly its intended rule;
* the protocol graph itself — byte-stable export, correct edges;
* the CI gate — the shipped ``src/repro`` tree has zero error-severity
  findings (PRO004/PRO005 warnings and PRO006 info are allowed).
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

from repro.analysis import (
    analyze_paths,
    analyze_source,
    analyze_sources,
    build_hotpath,
    build_protocol_graph,
    collect_modules,
)
from repro.analysis.core import RULES, scan_suppressions
from repro.analysis.runner import clear_module_cache

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"


def rules_of(findings):
    return [f.rule for f in findings]


def errors_of(findings):
    return [f.rule for f in findings if f.severity == "error"]


# ---------------------------------------------------------------------------
# XRL conformance
# ---------------------------------------------------------------------------

class TestXrlConformance:
    def test_good_send_site_clean(self):
        source = (
            "from repro.xrl import XrlArgs\n"
            "from repro.xrl.xrl import Xrl\n"
            "def go(router):\n"
            "    args = XrlArgs().add_txt('protocol', 'rip')\n"
            "    router.send(Xrl('rib', 'rib', '1.0', 'add_igp_table4',"
            " args))\n"
        )
        assert analyze_source(source, logical=("rip", "process.py")) == []

    def test_unknown_interface_xrl001(self):
        source = (
            "from repro.xrl.xrl import Xrl\n"
            "def go(router):\n"
            "    router.send(Xrl('rib', 'ribx', '1.0', 'add_igp_table4'))\n"
        )
        findings = analyze_source(source, logical=("rip", "process.py"))
        assert rules_of(findings) == ["XRL001"]
        assert findings[0].line == 3
        assert "ribx" in findings[0].message

    def test_unknown_method_xrl002(self):
        source = (
            "from repro.xrl.xrl import Xrl\n"
            "def go(router):\n"
            "    router.send(Xrl('rib', 'rib', '1.0', 'add_igp_table9'))\n"
        )
        findings = analyze_source(source, logical=("rip", "process.py"))
        assert rules_of(findings) == ["XRL002"]
        assert "add_igp_table9" in findings[0].message

    def test_conditional_method_names_resolved(self):
        source = (
            "from repro.xrl.xrl import Xrl\n"
            "def go(router, replace):\n"
            "    method = 'replace_route9' if replace else 'add_route4'\n"
            "    router.send(Xrl('rib', 'rib', '1.0', method))\n"
        )
        findings = analyze_source(source, logical=("rip", "process.py"))
        assert rules_of(findings) == ["XRL002"]
        assert "replace_route9" in findings[0].message

    def test_wrong_arg_name_xrl003(self):
        source = (
            "from repro.xrl import XrlArgs\n"
            "from repro.xrl.xrl import Xrl\n"
            "def go(router):\n"
            "    args = XrlArgs().add_txt('protokol', 'rip')\n"
            "    router.send(Xrl('rib', 'rib', '1.0', 'add_igp_table4',"
            " args))\n"
        )
        findings = analyze_source(source, logical=("rip", "process.py"))
        assert rules_of(findings) == ["XRL003"]

    def test_mutated_args_not_checked(self):
        # The chain resolver must bail out (no XRL003) when the args
        # variable is mutated after construction.
        source = (
            "from repro.xrl import XrlArgs\n"
            "from repro.xrl.xrl import Xrl\n"
            "def go(router, extra):\n"
            "    args = XrlArgs().add_txt('protokol', 'rip')\n"
            "    args.add_txt('protocol', extra)\n"
            "    router.send(Xrl('rib', 'rib', '1.0', 'add_igp_table4',"
            " args))\n"
        )
        assert analyze_source(source, logical=("rip", "process.py")) == []

    def test_bound_handlers_complete_clean(self):
        source = (
            "from repro.interfaces import COMMON_IDL\n"
            "class P:\n"
            "    def __init__(self, xrl):\n"
            "        xrl.bind(COMMON_IDL, self)\n"
            "    def xrl_get_target_name(self):\n"
            "        return 'p'\n"
            "    def xrl_get_version(self):\n"
            "        return '1'\n"
            "    def xrl_get_status(self):\n"
            "        return 'READY'\n"
            "    def xrl_shutdown(self):\n"
            "        pass\n"
        )
        assert analyze_source(source, logical=("rip", "process.py")) == []

    def test_missing_handler_xrl004(self):
        source = (
            "from repro.interfaces import COMMON_IDL\n"
            "class P:\n"
            "    def __init__(self, xrl):\n"
            "        xrl.bind(COMMON_IDL, self)\n"
            "    def xrl_get_target_name(self):\n"
            "        return 'p'\n"
            "    def xrl_get_version(self):\n"
            "        return '1'\n"
            "    def xrl_get_status(self):\n"
            "        return 'READY'\n"
        )
        findings = analyze_source(source, logical=("rip", "process.py"))
        assert rules_of(findings) == ["XRL004"]
        assert "shutdown" in findings[0].message

    def test_handler_signature_xrl005(self):
        source = (
            "from repro.interfaces import COMMON_IDL\n"
            "class P:\n"
            "    def __init__(self, xrl):\n"
            "        xrl.bind(COMMON_IDL, self)\n"
            "    def xrl_get_target_name(self, which):\n"
            "        return 'p'\n"
            "    def xrl_get_version(self):\n"
            "        return '1'\n"
            "    def xrl_get_status(self):\n"
            "        return 'READY'\n"
            "    def xrl_shutdown(self):\n"
            "        pass\n"
        )
        findings = analyze_source(source, logical=("rip", "process.py"))
        assert rules_of(findings) == ["XRL005"]
        assert "get_target_name" in findings[0].message

    def test_textual_xrl006(self):
        source = (
            "from repro.xrl.call_xrl import call_xrl\n"
            "def go(router):\n"
            "    call_xrl(router, 'not an xrl at all')\n"
        )
        findings = analyze_source(source, logical=("rtrmgr", "template.py"))
        assert rules_of(findings) == ["XRL006"]

    def test_textual_good_clean(self):
        source = (
            "from repro.xrl.call_xrl import call_xrl\n"
            "def go(router):\n"
            "    call_xrl(router, 'finder://rib/rib/1.0/add_igp_table4"
            "?protocol:txt=rip')\n"
        )
        assert analyze_source(source, logical=("rtrmgr", "template.py")) == []

    def test_aliased_bind_still_checked(self):
        # `register = xrl.bind; register(...)` is the same registration —
        # one level of local aliasing must not hide a missing handler.
        source = (
            "from repro.interfaces import COMMON_IDL\n"
            "class P:\n"
            "    def __init__(self, xrl):\n"
            "        register = xrl.bind\n"
            "        register(COMMON_IDL, self)\n"
            "    def xrl_get_target_name(self):\n"
            "        return 'p'\n"
            "    def xrl_get_version(self):\n"
            "        return '1'\n"
            "    def xrl_get_status(self):\n"
            "        return 'READY'\n"
        )
        findings = analyze_source(source, logical=("rip", "process.py"))
        assert rules_of(findings) == ["XRL004"]
        assert "shutdown" in findings[0].message


# ---------------------------------------------------------------------------
# Isolation
# ---------------------------------------------------------------------------

class TestIsolation:
    def test_process_importing_sibling_iso001(self):
        source = "from repro.rib.rib import RibProcess\n"
        findings = analyze_source(source, logical=("bgp", "process.py"))
        assert rules_of(findings) == ["ISO001"]
        assert findings[0].line == 1

    def test_own_package_and_shared_clean(self):
        source = (
            "from repro.bgp.route import BGPRoute\n"
            "from repro.core.process import XorpProcess\n"
            "from repro.interfaces import BGP_IDL\n"
            "from repro.xrl import XrlArgs\n"
        )
        assert analyze_source(source, logical=("bgp", "process.py")) == []

    def test_shared_importing_process_iso002(self):
        source = "from repro.bgp.route import BGPRoute\n"
        findings = analyze_source(source, logical=("policy", "varrw.py"))
        assert rules_of(findings) == ["ISO002"]

    def test_dynamic_import_module_caught(self):
        source = (
            "from importlib import import_module\n"
            "def load():\n"
            "    return import_module('repro.ospf.process')\n"
        )
        findings = analyze_source(source, logical=("bgp", "process.py"))
        assert rules_of(findings) == ["ISO001"]

    def test_harness_packages_exempt(self):
        source = (
            "from repro.bgp.process import BgpProcess\n"
            "from repro.rib.rib import RibProcess\n"
        )
        assert analyze_source(source, logical=("experiments", "x.py")) == []


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

class TestDeterminism:
    def test_wall_clock_det001(self):
        source = (
            "import time\n"
            "def now():\n"
            "    return time.time()\n"
        )
        findings = analyze_source(source, logical=("bgp", "process.py"))
        assert rules_of(findings) == ["DET001"]
        assert findings[0].line == 3

    def test_blocking_sleep_det002(self):
        source = (
            "import time\n"
            "def wait():\n"
            "    time.sleep(1.0)\n"
        )
        findings = analyze_source(source, logical=("bgp", "process.py"))
        assert rules_of(findings) == ["DET002"]

    def test_unseeded_random_det003(self):
        source = (
            "import random\n"
            "def jitter():\n"
            "    return random.random()\n"
        )
        findings = analyze_source(source, logical=("rip", "process.py"))
        assert rules_of(findings) == ["DET003"]

    def test_seeded_random_clean(self):
        source = (
            "import random\n"
            "def jitter(seed):\n"
            "    return random.Random(seed).random()\n"
        )
        assert analyze_source(source, logical=("rip", "process.py")) == []

    def test_blocking_socket_det004(self):
        source = (
            "import socket\n"
            "def connect():\n"
            "    return socket.create_connection(('h', 1))\n"
        )
        findings = analyze_source(source, logical=("fea", "fea.py"))
        assert rules_of(findings) == ["DET004"]

    def test_eventloop_package_exempt(self):
        source = (
            "import time\n"
            "def now():\n"
            "    return time.time()\n"
        )
        assert analyze_source(source, logical=("eventloop", "clock.py")) == []

    def test_zero_delay_timer_det005(self):
        source = (
            "def sequence(self):\n"
            "    self.loop.call_later(0, self.second_half)\n"
        )
        findings = analyze_source(source, logical=("bgp", "process.py"))
        assert rules_of(findings) == ["DET005"]

    def test_zero_delay_float_schedule_after_det005(self):
        source = (
            "def sequence(self):\n"
            "    self.timers.schedule_after(0.0, self.second_half)\n"
        )
        findings = analyze_source(source, logical=("rib", "rib.py"))
        assert rules_of(findings) == ["DET005"]

    def test_nonzero_delay_clean(self):
        source = (
            "def sequence(self):\n"
            "    self.loop.call_later(0.5, self.second_half)\n"
            "    self.loop.call_soon(self.other_half)\n"
        )
        assert analyze_source(source, logical=("bgp", "process.py")) == []

    def test_det005_suppressible(self):
        source = (
            "def kick(self):\n"
            "    # repro: allow[DET005] order among kicks is immaterial\n"
            "    self.loop.call_later(0, self.poll)\n"
        )
        assert analyze_source(source, logical=("bgp", "process.py")) == []

    def test_transport_package_exempt(self):
        source = (
            "import socket\n"
            "def make():\n"
            "    return socket.socket()\n"
        )
        assert analyze_source(
            source, logical=("xrl", "transport", "tcp.py")) == []


# ---------------------------------------------------------------------------
# Callback safety
# ---------------------------------------------------------------------------

class TestCallbackSafety:
    def test_unguarded_deferred_lambda_cb001(self):
        source = (
            "class P:\n"
            "    def start(self):\n"
            "        self.loop.call_soon(lambda: self.items.clear())\n"
        )
        findings = analyze_source(source, logical=("bgp", "process.py"))
        assert rules_of(findings) == ["CB001"]
        assert findings[0].line == 3

    def test_guarded_method_clean(self):
        source = (
            "class P:\n"
            "    def start(self):\n"
            "        self.loop.call_soon(self._tick)\n"
            "    def _tick(self):\n"
            "        if not self.running:\n"
            "            return\n"
            "        self.items.clear()\n"
        )
        assert analyze_source(source, logical=("bgp", "process.py")) == []

    def test_call_later_checked_too(self):
        source = (
            "class P:\n"
            "    def start(self):\n"
            "        self.loop.call_later(1.0, lambda: self.items.clear())\n"
        )
        findings = analyze_source(source, logical=("bgp", "process.py"))
        assert rules_of(findings) == ["CB001"]

    def test_stateless_callback_clean(self):
        source = (
            "class P:\n"
            "    def start(self, done):\n"
            "        self.loop.call_soon(lambda: done(1))\n"
        )
        assert analyze_source(source, logical=("bgp", "process.py")) == []


# ---------------------------------------------------------------------------
# Stage message API (keyword-only caller)
# ---------------------------------------------------------------------------

class TestStageMessageChecker:
    def test_positional_caller_call_stg001(self):
        source = (
            "def go(stage, route, origin):\n"
            "    stage.add_route(route, origin)\n"
        )
        findings = analyze_source(source, logical=("rib", "rib.py"))
        assert rules_of(findings) == ["STG001"]
        assert findings[0].line == 2
        assert "keyword" in findings[0].message

    def test_positional_caller_replace_stg001(self):
        source = (
            "def go(stage, old, new, origin):\n"
            "    stage.replace_route(old, new, origin)\n"
        )
        findings = analyze_source(source, logical=("rib", "rib.py"))
        assert rules_of(findings) == ["STG001"]

    def test_positional_caller_batch_call_stg001(self):
        source = (
            "def go(stage, routes, origin):\n"
            "    stage.add_routes(routes, origin)\n"
        )
        findings = analyze_source(source, logical=("rib", "rib.py"))
        assert rules_of(findings) == ["STG001"]

    def test_keyword_caller_clean(self):
        source = (
            "def go(stage, route, routes, origin):\n"
            "    stage.add_route(route, caller=origin)\n"
            "    stage.delete_routes(routes, caller=origin)\n"
            "    stage.replace_route(route, route, caller=origin)\n"
            "    stage.lookup_route(route, caller=origin)\n"
        )
        assert analyze_source(source, logical=("rib", "rib.py")) == []

    def test_positional_caller_def_stg001(self):
        source = (
            "class S:\n"
            "    def add_route(self, route, caller=None):\n"
            "        pass\n"
        )
        findings = analyze_source(source, logical=("rib", "rib.py"))
        assert rules_of(findings) == ["STG001"]
        assert findings[0].line == 2
        assert "keyword-only" in findings[0].message

    def test_keyword_only_caller_def_clean(self):
        source = (
            "class S:\n"
            "    def delete_routes(self, routes, *, caller=None):\n"
            "        pass\n"
        )
        assert analyze_source(source, logical=("rib", "rib.py")) == []


# ---------------------------------------------------------------------------
# Backend construction discipline
# ---------------------------------------------------------------------------

class TestBackendDiscipline:
    def test_direct_backend_construction_bkd001(self):
        source = (
            "from repro.fea.backends import NetlinkFibBackend\n"
            "def build():\n"
            "    return NetlinkFibBackend(queue_capacity=16)\n"
        )
        findings = analyze_source(source, logical=("fea", "fea.py"))
        assert rules_of(findings) == ["BKD001"]
        assert findings[0].line == 3
        assert "make_backend" in findings[0].message

    def test_make_backend_clean(self):
        source = (
            "from repro.fea.backends import make_backend\n"
            "def build(name, options):\n"
            "    return make_backend(name, **options)\n"
        )
        assert analyze_source(source, logical=("fea", "fea.py")) == []

    def test_local_fibbackend_subclass_caught(self):
        # A subclass defined outside backends/ is still a backend: its
        # construction must go through the registry too.
        source = (
            "from repro.fea.backends.base import FibBackend\n"
            "class SneakyBackend(FibBackend):\n"
            "    pass\n"
            "def build():\n"
            "    return SneakyBackend()\n"
        )
        findings = analyze_source(source, logical=("fea", "fea.py"))
        assert rules_of(findings) == ["BKD001"]
        assert findings[0].line == 5

    def test_backends_package_itself_exempt(self):
        source = (
            "class TrieFibBackend:\n"
            "    pass\n"
            "BACKENDS = {'trie': TrieFibBackend}\n"
            "def make_backend(name):\n"
            "    return BACKENDS[name]()\n"
            "probe = TrieFibBackend()\n"
        )
        assert analyze_source(
            source, logical=("fea", "backends", "__init__.py")) == []

    def test_other_packages_out_of_scope(self):
        # The rule scopes to the FEA: harnesses and tests build concrete
        # backends on purpose.
        source = (
            "from repro.fea.backends import TrieFibBackend\n"
            "probe = TrieFibBackend()\n"
        )
        assert analyze_source(
            source, logical=("experiments", "resilience.py")) == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

class TestSuppressions:
    def test_trailing_allow_silences(self):
        source = (
            "import time\n"
            "def wait():\n"
            "    time.sleep(1.0)  # repro: allow[DET002] test fixture\n"
        )
        assert analyze_source(source, logical=("bgp", "process.py")) == []

    def test_comment_line_covers_next_line(self):
        source = (
            "import time\n"
            "def wait():\n"
            "    # repro: allow[DET002] test fixture\n"
            "    time.sleep(1.0)\n"
        )
        assert analyze_source(source, logical=("bgp", "process.py")) == []

    def test_allow_is_rule_specific(self):
        # The wrong-rule allow[] leaves DET002 standing AND is itself
        # flagged as a rotted suppression (SUP002).
        source = (
            "import time\n"
            "def wait():\n"
            "    time.sleep(1.0)  # repro: allow[DET001] wrong rule\n"
        )
        findings = analyze_source(source, logical=("bgp", "process.py"))
        assert rules_of(findings) == ["DET002", "SUP002"]

    def test_unused_allow_sup002(self):
        source = (
            "def quiet():\n"
            "    return 1  # repro: allow[DET002] nothing sleeps here\n"
        )
        findings = analyze_source(source, logical=("bgp", "process.py"))
        assert rules_of(findings) == ["SUP002"]
        assert findings[0].line == 2
        assert "DET002" in findings[0].message

    def test_used_allow_is_not_sup002(self):
        source = (
            "import time\n"
            "def wait():\n"
            "    time.sleep(1.0)  # repro: allow[DET002] test fixture\n"
        )
        assert analyze_source(source, logical=("bgp", "process.py")) == []

    def test_sup002_silent_under_rule_filter(self):
        # Under --rule the discarded findings would make every other
        # allow[] look unused, so SUP002 only runs on full-rule passes.
        source = (
            "def quiet():\n"
            "    return 1  # repro: allow[DET002] nothing sleeps here\n"
        )
        findings = analyze_source(source, logical=("bgp", "process.py"),
                                  rules=["DET001"])
        assert findings == []

    def test_unknown_rule_sup001(self):
        source = "x = 1  # repro: allow[BOGUS9]\n"
        findings = analyze_source(source, logical=("core", "x.py"))
        assert rules_of(findings) == ["SUP001"]
        assert "BOGUS9" in findings[0].message

    def test_docstrings_do_not_suppress(self):
        source = '"""Docs mention # repro: allow[DET002] syntax."""\n'
        assert scan_suppressions(source) == {}

    def test_syntax_error_gen001(self, tmp_path):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def (:\n")
        findings = analyze_paths([bad.parent])
        assert rules_of(findings) == ["GEN001"]


# ---------------------------------------------------------------------------
# The CI gate and the acceptance-criteria mutations
# ---------------------------------------------------------------------------

def copy_tree(tmp_path: Path) -> Path:
    """Copy src/repro to a tmp dir (keeping the 'repro' path anchor)."""
    dest = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, dest,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return dest


class TestTreeGate:
    def test_shipped_tree_has_no_errors(self):
        findings = analyze_paths([SRC_REPRO])
        errors = [f for f in findings if f.severity == "error"]
        assert errors == [], "\n".join(f.render() for f in errors)
        # warnings/info are allowed on the shipped tree, but only the
        # dead-surface/unread-reply rules and the warning-severity
        # hot-path cost rules should produce any
        assert {f.rule for f in findings} <= {
            "PRO004", "PRO005", "PRO006", "HOT003", "HOT004", "HOT005",
        }

    def test_cli_exits_zero_on_clean_tree(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(SRC_REPRO)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_misspelled_xrl_method_one_finding(self, tmp_path):
        tree = copy_tree(tmp_path)
        rib = tree / "rib" / "rib.py"
        text = rib.read_text()
        assert '"add_entry4"' in text
        mutated_line = next(
            i for i, line in enumerate(text.splitlines(), start=1)
            if '"add_entry4"' in line)
        rib.write_text(text.replace('"add_entry4"', '"add_entyr4"', 1))
        findings = analyze_paths([tree])
        errors = [f for f in findings if f.severity == "error"]
        assert len(errors) == 1
        finding = errors[0]
        assert finding.rule == "XRL002"
        assert finding.path.endswith("rib/rib.py")
        assert finding.line == mutated_line
        assert "add_entyr4" in finding.message

    def test_inserted_sleep_one_finding(self, tmp_path):
        tree = copy_tree(tmp_path)
        bgp = tree / "bgp" / "process.py"
        lines = bgp.read_text().splitlines(keepends=True)
        anchor = next(i for i, l in enumerate(lines)
                      if "self.xrl.bind(BGP_IDL, self)" in l)
        lines.insert(anchor, "        import time; time.sleep(0.1)\n")
        bgp.write_text("".join(lines))
        findings = analyze_paths([tree])
        errors = [f for f in findings if f.severity == "error"]
        assert len(errors) == 1
        finding = errors[0]
        assert finding.rule == "DET002"
        assert finding.path.endswith("bgp/process.py")
        assert finding.line == anchor + 1

    def test_rule_registry_documented(self):
        for rule_id, rule in RULES.items():
            assert rule.summary, rule_id
            assert rule_id == rule.id


# ---------------------------------------------------------------------------
# The whole-system protocol graph (PRO001–PRO006)
# ---------------------------------------------------------------------------

class TestProtographMutations:
    """Each seeded mutation must be caught by exactly its intended rule."""

    def test_deleted_bind_pro001(self, tmp_path):
        tree = copy_tree(tmp_path)
        rib = tree / "rib" / "rib.py"
        text = rib.read_text()
        assert "self.xrl.bind(RIB_IDL, self)" in text
        rib.write_text("\n".join(
            line for line in text.splitlines()
            if "self.xrl.bind(RIB_IDL, self)" not in line) + "\n")
        findings = analyze_paths([tree])
        errors = [f for f in findings if f.severity == "error"]
        assert errors, "deleting the RIB bind must break resolution"
        assert {f.rule for f in errors} == {"PRO001"}
        assert any("rib/1.0" in f.message for f in errors)

    def test_sync_back_call_pro002(self, tmp_path):
        # rib -> fea is an existing async edge; a synchronous FEA -> rib
        # call closes an inter-process request cycle — the deadlock the
        # multi-process split (ROADMAP item 2) cannot tolerate.
        tree = copy_tree(tmp_path)
        fea = tree / "fea" / "fea.py"
        fea.write_text(fea.read_text() + (
            "\n\n"
            "class _RouteConfirmer:\n"
            "    def __init__(self, xrl):\n"
            "        self.xrl = xrl\n"
            "\n"
            "    def confirm(self, addr):\n"
            "        return self.xrl.send_sync(\n"
            '            Xrl("rib", "rib", "1.0", "lookup_route_by_dest4",\n'
            '                XrlArgs().add_ipv4("addr", addr)),\n'
            "            deadline=5)\n"
        ))
        findings = analyze_paths([tree])
        errors = [f for f in findings if f.severity == "error"]
        assert len(errors) == 1
        assert errors[0].rule == "PRO002"
        assert "fea -> rib" in errors[0].message
        assert "cycle" in errors[0].message

    def test_renamed_reply_atom_pro003(self, tmp_path):
        tree = copy_tree(tmp_path)
        supervisor = tree / "rtrmgr" / "supervisor.py"
        text = supervisor.read_text()
        assert 'get_txt("status")' in text
        supervisor.write_text(
            text.replace('get_txt("status")', 'get_txt("statuz")', 1))
        findings = analyze_paths([tree])
        errors = [f for f in findings if f.severity == "error"]
        assert len(errors) == 1
        assert errors[0].rule == "PRO003"
        assert "'statuz'" in errors[0].message
        assert errors[0].path.endswith("rtrmgr/supervisor.py")


class TestProtographFixtures:
    """Small closed-system fixtures through :func:`analyze_sources`."""

    BINDER = (
        "from repro.interfaces import COMMON_IDL\n"
        "class P:\n"
        "    def __init__(self, xrl):\n"
        "        xrl.bind(COMMON_IDL, self)\n"
        "    def xrl_get_target_name(self):\n"
        "        return 'p'\n"
        "    def xrl_get_version(self):\n"
        "        return '1'\n"
        "    def xrl_get_status(self):\n"
        "        return 'READY'\n"
        "    def xrl_shutdown(self):\n"
        "        pass\n"
    )

    def test_send_without_any_bind_pro001(self):
        sender = (
            "from repro.xrl import XrlArgs\n"
            "from repro.xrl.xrl import Xrl\n"
            "def go(router):\n"
            "    args = XrlArgs().add_txt('protocol', 'rip')\n"
            "    router.send(Xrl('rib', 'rib', '1.0', 'add_igp_table4',"
            " args))\n"
        )
        findings = analyze_sources({"bgp/feed.py": sender})
        assert errors_of(findings) == ["PRO001"]

    def test_send_with_bind_resolves(self):
        sender = (
            "from repro.xrl.xrl import Xrl\n"
            "def go(router):\n"
            "    router.send(Xrl('p', 'common', '0.1', 'get_status'))\n"
        )
        findings = analyze_sources({"bgp/probe.py": sender,
                                    "rib/p.py": self.BINDER})
        assert errors_of(findings) == []

    def test_dead_handlers_pro004_warning(self):
        findings = analyze_sources({"rib/p.py": self.BINDER})
        assert errors_of(findings) == []
        dead = [f for f in findings if f.rule == "PRO004"]
        assert len(dead) == 4          # all four common/0.1 methods
        assert all(f.severity == "warning" for f in dead)

    def test_mixed_versions_pro005_warning(self):
        sender = (
            "from repro.xrl.xrl import Xrl\n"
            "def go(router):\n"
            "    router.send(Xrl('rib', 'rib', '1.0', 'add_igp_table4'))\n"
            "    router.send(Xrl('rib', 'rib', '2.0', 'add_igp_table4'))\n"
        )
        findings = analyze_sources({"bgp/feed.py": sender},
                                   rules=["PRO005"])
        assert rules_of(findings) == ["PRO005"]
        assert "1.0" in findings[0].message
        assert "2.0" in findings[0].message


class TestProtographGraph:
    def test_graph_json_is_byte_stable(self):
        modules, errors = collect_modules([SRC_REPRO])
        assert errors == []
        first = build_protocol_graph(modules).to_json()
        second = build_protocol_graph(modules).to_json()
        assert first == second

    def test_graph_has_expected_edges(self):
        modules, _errors = collect_modules([SRC_REPRO])
        graph = build_protocol_graph(modules)
        pairs = {(e.src, e.dst) for e in graph.edges.values()}
        assert ("bgp", "rib") in pairs      # BGP feeds the RIB
        assert ("rib", "fea") in pairs      # RIB pushes the FIB
        assert ("rib", "bgp") in pairs      # redistribution back-channel
        sync_pairs = {(e.src, e.dst) for e in graph.edges.values() if e.sync}
        assert ("rtrmgr", "rib") in sync_pairs   # rtrmgr configures sync

    def test_dot_export_mentions_every_package_on_an_edge(self):
        modules, _errors = collect_modules([SRC_REPRO])
        graph = build_protocol_graph(modules)
        dot = graph.to_dot()
        for edge in graph.edges.values():
            assert f'"{edge.src}"' in dot
            assert f'"{edge.dst}"' in dot


# ---------------------------------------------------------------------------
# Hot-path cost analysis (HOT001–HOT006)
# ---------------------------------------------------------------------------

class TestHotPathFixtures:
    """Small closed fixtures: each cost rule, a good and a bad case.

    A method named ``add_routes`` on a class is a stage-entry hot root,
    so these fixtures become hot without needing the real stage tree.
    """

    def test_cold_function_not_linted(self):
        # The same singular-call loop OUTSIDE the hot set: no findings —
        # the analyzer lints the hot path, not the whole tree.
        source = (
            "class Sink:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        pass\n"
            "    def add_route(self, route, *, caller=None):\n"
            "        pass\n"
            "class Rebuilder:\n"
            "    def rebuild(self, routes, sink):\n"
            "        for route in routes:\n"
            "            sink.add_route(route)\n"
        )
        findings = analyze_sources({"rib/table.py": source})
        assert [f for f in findings if f.rule.startswith("HOT")] == []

    def test_singular_call_in_hot_loop_hot001(self):
        source = (
            "class MergeTable:\n"
            "    def __init__(self, next_table):\n"
            "        self.next_table = next_table\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        for route in routes:\n"
            "            self.next_table.add_route(route, caller=self)\n"
            "    def add_route(self, route, *, caller=None):\n"
            "        pass\n"
        )
        findings = analyze_sources({"rib/table.py": source})
        assert errors_of(findings) == ["HOT001"]
        finding = next(f for f in findings if f.rule == "HOT001")
        assert "add_routes" in finding.message
        assert finding.line == 6

    def test_batch_self_decomposition_clean(self):
        # add_routes looping over self.add_route IS the batch API
        # decomposing itself — the one legitimate singular loop.
        source = (
            "class Stage:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        for route in routes:\n"
            "            self.add_route(route, caller=caller)\n"
            "    def add_route(self, route, *, caller=None):\n"
            "        pass\n"
        )
        findings = analyze_sources({"rib/table.py": source})
        assert errors_of(findings) == []

    def test_per_route_dict_hot002(self):
        source = (
            "class Distributor:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        for route in routes:\n"
            "            message = {'net': route}\n"
            "            self.emit(message)\n"
            "    def emit(self, message):\n"
            "        pass\n"
        )
        findings = analyze_sources({"fea/push.py": source})
        assert errors_of(findings) == ["HOT002"]

    def test_per_route_xrlargs_hot002(self):
        source = (
            "from repro.xrl import XrlArgs\n"
            "class Sender:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        for route in routes:\n"
            "            self.push(XrlArgs().add_txt('net', route))\n"
            "    def push(self, args):\n"
            "        pass\n"
        )
        findings = analyze_sources({"rib/send.py": source})
        assert errors_of(findings) == ["HOT002"]

    def test_hoisted_batch_build_clean(self):
        source = (
            "class Sender:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        nets = []\n"
            "        for route in routes:\n"
            "            nets.append(route)\n"
            "        self.push(nets)\n"
            "    def push(self, nets):\n"
            "        pass\n"
        )
        findings = analyze_sources({"rib/send.py": source})
        assert [f for f in findings if f.rule.startswith("HOT")] == []

    def test_unslotted_hot_allocation_hot003(self):
        source = (
            "class Held:\n"
            "    def __init__(self, net):\n"
            "        self.net = net\n"
            "class Table:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        for route in routes:\n"
            "            self.store(Held(route))\n"
            "    def store(self, held):\n"
            "        pass\n"
        )
        findings = analyze_sources({"rib/table.py": source})
        assert errors_of(findings) == []          # HOT003 is a warning
        hot3 = [f for f in findings if f.rule == "HOT003"]
        assert len(hot3) == 1
        assert hot3[0].severity == "warning"
        assert "Held" in hot3[0].message

    def test_slotted_hot_allocation_clean(self):
        source = (
            "class Held:\n"
            "    __slots__ = ('net',)\n"
            "    def __init__(self, net):\n"
            "        self.net = net\n"
            "class Table:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        for route in routes:\n"
            "            self.store(Held(route))\n"
            "    def store(self, held):\n"
            "        pass\n"
        )
        findings = analyze_sources({"rib/table.py": source})
        assert [f for f in findings if f.rule == "HOT003"] == []

    def test_exception_class_in_raise_not_hot003(self):
        source = (
            "class TableError(Exception):\n"
            "    pass\n"
            "class Table:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        for route in routes:\n"
            "            if route is None:\n"
            "                raise TableError('nil route')\n"
        )
        findings = analyze_sources({"rib/table.py": source})
        assert [f for f in findings if f.rule == "HOT003"] == []

    def test_deep_attr_chain_in_loop_hot004(self):
        source = (
            "class Fanout:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        for route in routes:\n"
            "            self.peer.txq.append(route)\n"
        )
        findings = analyze_sources({"bgp/fan.py": source})
        hot4 = [f for f in findings if f.rule == "HOT004"]
        assert len(hot4) == 1
        assert hot4[0].severity == "warning"
        assert "self.peer.txq" in hot4[0].message

    def test_hoisted_attr_chain_clean(self):
        source = (
            "class Fanout:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        enqueue = self.peer.txq.append\n"
            "        for route in routes:\n"
            "            enqueue(route)\n"
        )
        findings = analyze_sources({"bgp/fan.py": source})
        assert [f for f in findings if f.rule == "HOT004"] == []

    def test_eager_log_format_hot005(self):
        source = (
            "class Stage:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        for route in routes:\n"
            "            self.log.debug(f'adding {route}')\n"
        )
        findings = analyze_sources({"rib/table.py": source})
        hot5 = [f for f in findings if f.rule == "HOT005"]
        assert len(hot5) == 1
        assert hot5[0].severity == "warning"

    def test_enabled_guarded_log_clean(self):
        source = (
            "class Stage:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        if self.log.enabled:\n"
            "            for route in routes:\n"
            "                self.log.debug(f'adding {route}')\n"
        )
        findings = analyze_sources({"rib/table.py": source})
        assert [f for f in findings if f.rule == "HOT005"] == []

    def test_nested_table_scan_hot006(self):
        source = (
            "class Merge:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        for route in routes:\n"
            "            for net, held in self.index.items():\n"
            "                pass\n"
        )
        findings = analyze_sources({"rib/merge2.py": source})
        assert errors_of(findings) == ["HOT006"]

    def test_per_item_subiteration_clean(self):
        # Iterating something carried BY the route is linear, not a
        # rescan of the whole table.
        source = (
            "class Merge:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        for route in routes:\n"
            "            for hop in route.hops:\n"
            "                pass\n"
        )
        findings = analyze_sources({"rib/merge2.py": source})
        assert [f for f in findings if f.rule == "HOT006"] == []

    def test_hot_rules_suppressible(self):
        source = (
            "class MergeTable:\n"
            "    def add_routes(self, routes, *, caller=None):\n"
            "        for route in routes:\n"
            "            self.nt.add_route(route)"
            "  # repro: allow[HOT001] ordering\n"
            "    def add_route(self, route, *, caller=None):\n"
            "        pass\n"
        )
        findings = analyze_sources({"rib/table.py": source})
        assert errors_of(findings) == []


class TestHotPathMutations:
    """Seeded hot-path regressions against copies of the real tree."""

    def test_singular_send_into_batched_stage_hot001(self, tmp_path):
        tree = copy_tree(tmp_path)
        merge = tree / "rib" / "merge.py"
        text = merge.read_text()
        batched = ("        if plain:\n"
                   "            next_table.add_routes(plain, caller=self)\n")
        assert batched in text
        text = text.replace(
            batched,
            "        for route in plain:\n"
            "            next_table.add_route(route, caller=self)\n")
        merge.write_text(text)
        findings = analyze_paths([tree])
        errors = [f for f in findings if f.severity == "error"]
        assert len(errors) == 1
        assert errors[0].rule == "HOT001"
        assert errors[0].path.endswith("rib/merge.py")
        assert "add_routes" in errors[0].message

    def test_per_route_dict_into_fea_distributor_hot002(self, tmp_path):
        tree = copy_tree(tmp_path)
        fea = tree / "fea" / "fea.py"
        text = fea.read_text()
        anchor = "                   in zip(nets, nexthops, ifnames)]\n"
        assert anchor in text
        text = text.replace(
            anchor,
            anchor + ("        for net in nets:\n"
                      "            _shadow = {'net': net.value}\n"))
        fea.write_text(text)
        findings = analyze_paths([tree])
        errors = [f for f in findings if f.severity == "error"]
        assert len(errors) == 1
        assert errors[0].rule == "HOT002"
        assert errors[0].path.endswith("fea/fea.py")

    def test_quadratic_rescan_in_merge_hot006(self, tmp_path):
        tree = copy_tree(tmp_path)
        merge = tree / "rib" / "merge.py"
        text = merge.read_text()
        anchor = "        for route in routes:\n"
        assert anchor in text
        text = text.replace(
            anchor,
            anchor + ("            for __net, __stale in "
                      "self.index.items():\n"
                      "                pass\n"),
            1)
        merge.write_text(text)
        findings = analyze_paths([tree])
        errors = [f for f in findings if f.severity == "error"]
        assert len(errors) == 1
        assert errors[0].rule == "HOT006"
        assert errors[0].path.endswith("rib/merge.py")


class TestHotPathGraph:
    def test_hot_report_json_is_byte_stable(self):
        modules, errors = collect_modules([SRC_REPRO])
        assert errors == []
        first = build_hotpath(modules).to_json()
        second = build_hotpath(modules).to_json()
        assert first == second
        payload = json.loads(first)
        assert payload["schema"] == "repro.hotpath/1"
        assert payload["stats"]["hot_functions"] > 0

    def test_hot_set_roots_and_members(self):
        modules, _errors = collect_modules([SRC_REPRO])
        graph = build_hotpath(modules)
        families = set(graph.roots.values())
        assert {"stage-entry", "xrl-dispatch", "fib-backend"} <= families
        hot_quals = {fn.qualname for fn in graph.hot.values()}
        assert "MergeStage.add_routes" in hot_quals
        assert "DecisionStage.add_routes" in hot_quals
        assert "NetlinkFibBackend.apply" in hot_quals
        # exempt harness packages never enter the hot set
        assert all(not key.startswith(("analysis/", "obs/", "sanitizer/"))
                   for key in graph.hot)

    def test_dot_export_mentions_every_root_family(self):
        modules, _errors = collect_modules([SRC_REPRO])
        graph = build_hotpath(modules)
        dot = graph.to_dot()
        for family in set(graph.roots.values()):
            assert family in dot


class TestFindingsCacheRuleset:
    """The findings cache must key on the selected rule set.

    Regression: the per-module findings cache ignored ``--rule``
    filters, so a filtered run poisoned the cache and a later full run
    replayed the filtered findings — silently dropping every other
    rule's output.
    """

    def _seeded_tree(self, tmp_path):
        tree = copy_tree(tmp_path)
        bgp = tree / "bgp" / "process.py"
        lines = bgp.read_text().splitlines(keepends=True)
        anchor = next(i for i, line in enumerate(lines)
                      if "self.xrl.bind(BGP_IDL, self)" in line)
        lines.insert(anchor, "        import time; time.sleep(0.1)\n")
        bgp.write_text("".join(lines))
        return tree

    def test_rule_filter_then_full_run_sees_everything(self, tmp_path):
        tree = self._seeded_tree(tmp_path)
        clear_module_cache()
        filtered = analyze_paths([tree], rules=["DET002"])
        assert rules_of(filtered) == ["DET002"]
        # Same modules, same process: the full run must NOT reuse the
        # DET002-only cached findings.
        full = analyze_paths([tree])
        assert "DET002" in rules_of(full)
        assert {f.rule for f in full} > {"DET002"}, (
            "full run replayed the rule-filtered cache")
        # and narrowing again still works after the full run
        narrowed = analyze_paths([tree], rules=["DET002"])
        assert rules_of(narrowed) == ["DET002"]

    def test_same_ruleset_rerun_is_check_cached(self, tmp_path):
        tree = self._seeded_tree(tmp_path)
        clear_module_cache()
        analyze_paths([tree], rules=["DET002"])
        warm: dict = {}
        analyze_paths([tree], rules=["DET002"], stats=warm)
        assert warm["check_cached"] == warm["files"] > 0
        # a different rule set is a cache miss, not a replay
        cold: dict = {}
        analyze_paths([tree], rules=["XRL002"], stats=cold)
        assert cold["check_cached"] == 0


class TestAstCache:
    def test_second_pass_is_fully_cached(self, tmp_path):
        tree = copy_tree(tmp_path)
        clear_module_cache()
        cold: dict = {}
        analyze_paths([tree], stats=cold)
        warm: dict = {}
        analyze_paths([tree], stats=warm)
        assert cold["parsed"] == cold["files"] > 0
        assert cold["parse_cached"] == 0
        assert warm["parse_cached"] == warm["files"]
        assert warm["parsed"] == 0

    def test_cache_invalidated_on_edit(self, tmp_path):
        tree = copy_tree(tmp_path)
        clear_module_cache()
        analyze_paths([tree])
        target = tree / "bgp" / "process.py"
        target.write_text(target.read_text() + "\n# touched\n")
        stats: dict = {}
        analyze_paths([tree], stats=stats)
        assert stats["parsed"] == 1
        assert stats["parse_cached"] == stats["files"] - 1


class TestReportFormats:
    """The shared text/json/github renderers used by both CLIs."""

    def _finding(self):
        from repro.analysis.core import Finding

        return Finding(path="src/repro/bgp/process.py", line=42,
                       rule="DET002", message="time.sleep() blocks, 100%")

    def test_github_annotation_shape_and_escaping(self):
        from repro.analysis.report import render_findings

        rendered = render_findings([self._finding()], "github")
        assert rendered.startswith("::error file=src/repro/bgp/process.py,"
                                   "line=42,title=DET002::")
        assert "100%25" in rendered  # '%' escaped per workflow-command rules
        assert "\n" not in rendered

    def test_json_rendering_is_stable(self):
        import json

        from repro.analysis.report import render_findings

        first = render_findings([self._finding()], "json")
        second = render_findings([self._finding()], "json")
        assert first == second
        assert json.loads(first)[0]["rule"] == "DET002"

    def test_cli_github_format(self, tmp_path):
        bad = tmp_path / "process.py"
        bad.write_text("import time\ntime.sleep(1.0)\n")
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--format", "github",
             str(bad)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
        )
        assert result.returncode == 1
        assert result.stdout.startswith("::error file=")
        assert "DET002" in result.stdout
