"""Unit tests for the event loop: clocks, timers, tasks, deferred calls."""

import socket

import pytest

from repro.eventloop import (
    Callback,
    EventLoop,
    SimulatedClock,
    SystemClock,
    TaskPriority,
    callback,
)


@pytest.fixture
def loop():
    return EventLoop(SimulatedClock())


class TestClock:
    def test_simulated_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)

    def test_advance_to_never_goes_back(self):
        clock = SimulatedClock(10.0)
        clock.advance_to(5.0)
        assert clock.now() == 10.0

    def test_system_clock_monotonic(self):
        clock = SystemClock()
        assert clock.now() <= clock.now()

    def test_simulated_flag(self):
        assert SimulatedClock().is_simulated
        assert not SystemClock().is_simulated


class TestCallback:
    def test_currying(self):
        seen = []
        cb = callback(lambda a, b: seen.append((a, b)), 1)
        cb(2)
        assert seen == [(1, 2)]

    def test_invalidate(self):
        seen = []
        cb = callback(seen.append)
        cb.invalidate()
        cb(1)
        assert seen == []
        assert not cb.is_valid

    def test_kwargs_merge(self):
        result = Callback(lambda a, b=0, c=0: (a, b, c), 1, b=2)(c=3)
        assert result == (1, 2, 3)

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            Callback(42)

    def test_repr_names_target(self):
        def my_handler():
            pass

        assert "my_handler" in repr(callback(my_handler))


class TestTimers:
    def test_one_shot_fires_at_deadline(self, loop):
        fired = []
        loop.call_later(5.0, lambda: fired.append(loop.now()))
        loop.run()
        assert fired == [5.0]

    def test_ordering(self, loop):
        order = []
        loop.call_later(2.0, lambda: order.append("b"))
        loop.call_later(1.0, lambda: order.append("a"))
        loop.call_later(3.0, lambda: order.append("c"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_cancel(self, loop):
        fired = []
        timer = loop.call_later(1.0, lambda: fired.append(1))
        timer.cancel()
        loop.run()
        assert fired == []
        assert not timer.scheduled

    def test_periodic(self, loop):
        times = []

        def tick():
            times.append(loop.now())
            if len(times) == 3:
                timer.cancel()

        timer = loop.call_periodic(10.0, tick)
        loop.run()
        assert times == [10.0, 20.0, 30.0]

    def test_periodic_rejects_nonpositive(self, loop):
        with pytest.raises(ValueError):
            loop.call_periodic(0, lambda: None)

    def test_reschedule(self, loop):
        fired = []
        timer = loop.call_later(1.0, lambda: fired.append(loop.now()))
        timer.reschedule_after(5.0)
        loop.run()
        assert fired == [5.0]

    def test_call_at(self, loop):
        fired = []
        loop.call_at(7.5, lambda: fired.append(loop.now()))
        loop.run()
        assert fired == [7.5]

    def test_timer_in_timer(self, loop):
        fired = []
        loop.call_later(1.0, lambda: loop.call_later(1.0, lambda: fired.append(loop.now())))
        loop.run()
        assert fired == [2.0]


class TestDeferred:
    def test_call_soon_runs_before_timers(self, loop):
        order = []
        loop.call_later(0.0, lambda: order.append("timer"))
        loop.call_soon(lambda: order.append("soon"))
        loop.run_once()
        assert order[0] == "soon"

    def test_call_soon_args(self, loop):
        seen = []
        loop.call_soon(seen.append, 42)
        loop.run_once()
        assert seen == [42]

    def test_nested_call_soon_defers_to_next_iteration(self, loop):
        order = []

        def outer():
            order.append("outer")
            loop.call_soon(lambda: order.append("inner"))

        loop.call_soon(outer)
        loop.run_once()
        assert order == ["outer"]
        loop.run_once()
        assert order == ["outer", "inner"]


class TestBackgroundTasks:
    def test_task_runs_to_completion(self, loop):
        work = []

        def step():
            work.append(len(work))
            return len(work) < 5

        loop.spawn_task(step)
        loop.run()
        assert work == [0, 1, 2, 3, 4]

    def test_completion_callback(self, loop):
        done = []
        loop.spawn_task(lambda: False, on_complete=lambda: done.append(True))
        loop.run()
        assert done == [True]

    def test_events_preempt_tasks(self, loop):
        """A background task must not run while events are pending."""
        order = []

        def step():
            order.append("task")
            return len([o for o in order if o == "task"]) < 3

        loop.spawn_task(step)
        loop.call_soon(lambda: order.append("event"))
        loop.run()
        assert order[0] == "event"

    def test_priorities(self, loop):
        order = []
        loop.spawn_task(lambda: order.append("bg") and False,
                        priority=TaskPriority.BACKGROUND)
        loop.spawn_task(lambda: order.append("hi") and False,
                        priority=TaskPriority.HIGH)
        loop.run()
        assert order[0] == "hi"

    def test_round_robin_same_priority(self, loop):
        order = []

        def make(tag):
            count = [0]

            def step():
                count[0] += 1
                order.append(tag)
                return count[0] < 2

            return step

        loop.spawn_task(make("a"))
        loop.spawn_task(make("b"))
        loop.run()
        assert order == ["a", "b", "a", "b"]

    def test_kill(self, loop):
        ran = []
        task = loop.spawn_task(lambda: ran.append(1) or True)
        task.kill()
        loop.run()
        assert ran == []
        assert not task.alive


class TestRunControl:
    def test_run_until_predicate(self, loop):
        state = []
        loop.call_later(3.0, lambda: state.append("x"))
        assert loop.run_until(lambda: bool(state), timeout=10.0)
        assert loop.now() == 3.0

    def test_run_until_timeout(self, loop):
        assert not loop.run_until(lambda: False, timeout=1.0)

    def test_run_duration(self, loop):
        loop.call_periodic(1.0, lambda: None)
        loop.run(duration=5.5)
        assert loop.now() >= 5.5

    def test_stop(self, loop):
        loop.call_later(1.0, loop.stop)
        loop.call_later(100.0, lambda: None)
        loop.run()
        assert loop.now() == 1.0

    def test_quiesces_when_nothing_to_do(self, loop):
        loop.run()  # must return, not hang
        assert loop.now() == 0.0


class TestRealSockets:
    def test_reader_dispatch(self):
        loop = EventLoop(SystemClock())
        a, b = socket.socketpair()
        try:
            a.setblocking(False)
            b.setblocking(False)
            received = []

            def on_readable():
                received.append(b.recv(100))
                loop.remove_reader(b)

            loop.add_reader(b, on_readable)
            a.send(b"hello")
            assert loop.run_until(lambda: bool(received), timeout=5.0)
            assert received == [b"hello"]
        finally:
            a.close()
            b.close()

    def test_writer_dispatch(self):
        loop = EventLoop(SystemClock())
        a, b = socket.socketpair()
        try:
            a.setblocking(False)
            wrote = []

            def on_writable():
                wrote.append(a.send(b"x"))
                loop.remove_writer(a)

            loop.add_writer(a, on_writable)
            assert loop.run_until(lambda: bool(wrote), timeout=5.0)
            assert b.recv(10) == b"x"
        finally:
            a.close()
            b.close()
