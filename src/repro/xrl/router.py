"""XrlRouter: the per-component XRL dispatch point.

Every component (a routing protocol, the RIB, the FEA...) owns one
:class:`XrlRouter`.  Outbound, it resolves generic XRLs through the Finder
(with caching), picks the best mutually-supported protocol family, and
dispatches asynchronously.  Inbound, it verifies the Finder-issued access
key, checks argument signatures against the IDL, and calls the registered
handler.
"""

from __future__ import annotations

import itertools
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.eventloop import EventLoop
from repro.xrl.args import XrlArgs
from repro.xrl.codec import TEXTUAL, FrameCodec
from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.finder import Finder
from repro.xrl.idl import XrlInterface, XrlMethod
from repro.xrl.retry import RetryPolicy
from repro.xrl.transport.base import ProtocolFamily, Sender

#: callback signature for XRL completion: (error, return_args)
ResponseCallback = Callable[[XrlError, XrlArgs], None]

# Tokens must stay distinct across real OS processes too (multi-process
# deployment): the high bits carry the pid, the low bits the counter.
_token_counter = itertools.count((os.getpid() & 0xFFFFFFFF) << 20 | 1)


class DeferredReply:
    """Returned by a handler that will answer later (async dispatch).

    The handler keeps the object and eventually calls :meth:`reply` or
    :meth:`fail`; the transport-level response is sent at that moment.
    This is what makes XRL *intermediaries* possible — paper §7: "This
    would require an XRL intermediary, but the flexibility of our XRL
    resolution mechanism makes installing such an XRL proxy rather
    simple."
    """

    __slots__ = ("_respond", "_method", "_seq", "_codec", "completed")

    def __init__(self) -> None:
        self._respond: Optional[Callable[[bytes], None]] = None
        self._method = None
        self._seq = 0
        self._codec: FrameCodec = TEXTUAL
        self.completed = False

    def _bind(self, respond: Callable[[bytes], None], seq: int,
              method, codec: FrameCodec = TEXTUAL) -> None:
        self._respond = respond
        self._method = method
        self._seq = seq
        self._codec = codec

    def reply(self, values=None) -> None:
        """Complete successfully with the method's return values."""
        if self.completed:
            return
        self.completed = True
        try:
            if self._method is not None:
                returns = (values if isinstance(values, XrlArgs)
                           else self._method.build_returns(values))
                self._method.check_returns(returns)
            else:
                returns = values if isinstance(values, XrlArgs) else XrlArgs()
        except XrlError as error:
            self._respond(self._codec.encode_response(self._seq, error,
                                                      XrlArgs()))
            return
        self._respond(self._codec.encode_response(self._seq, XrlError.okay(),
                                                  returns))

    def fail(self, error: XrlError) -> None:
        if self.completed:
            return
        self.completed = True
        self._respond(self._codec.encode_response(self._seq, error, XrlArgs()))


def new_process_token() -> int:
    """A fresh token identifying one conceptual OS process."""
    return next(_token_counter)


class _CacheEntry:
    __slots__ = ("resolved_method", "sender", "family_name", "address")

    def __init__(self, resolved_method: str, sender: Sender, family_name: str,
                 address: str):
        self.resolved_method = resolved_method
        self.sender = sender
        self.family_name = family_name
        self.address = address


class _PendingCall:
    """One in-flight :meth:`XrlRouter.send`, across all of its attempts.

    The *attempt_token* identifies the newest dispatch: a reply carrying
    a stale token (the attempt was abandoned by a per-attempt timeout, a
    retry, or the overall deadline) is counted in
    :attr:`XrlRouter.late_replies` and dropped rather than delivered to a
    completed call.
    """

    __slots__ = ("xrl", "callback", "retry", "attempt", "attempt_token",
                 "deadline_timer", "attempt_timer", "retry_timer", "done")

    def __init__(self, xrl, callback: ResponseCallback,
                 retry: Optional[RetryPolicy]):
        self.xrl = xrl
        self.callback = callback
        self.retry = retry
        self.attempt = 0
        self.attempt_token: Optional[object] = None
        self.deadline_timer = None
        self.attempt_timer = None
        self.retry_timer = None
        self.done = False

    def cancel_timers(self) -> None:
        for timer in (self.deadline_timer, self.attempt_timer,
                      self.retry_timer):
            if timer is not None:
                timer.cancel()
        self.deadline_timer = self.attempt_timer = self.retry_timer = None


class XrlRouter:
    """One component's sending and receiving endpoint."""

    def __init__(self, loop: EventLoop, class_name: str, finder: Finder, *,
                 instance_name: Optional[str] = None,
                 singleton: bool = False,
                 families: Optional[List[ProtocolFamily]] = None,
                 process_token: Optional[int] = None):
        self.loop = loop
        self.class_name = class_name
        self.finder = finder
        self.process_token = (
            process_token if process_token is not None else new_process_token()
        )
        self._families: Dict[str, ProtocolFamily] = {}
        self._addresses: Dict[str, str] = {}
        for family in families or []:
            if family.name in self._families:
                raise XrlError(
                    XrlErrorCode.INTERNAL_ERROR,
                    f"duplicate protocol family {family.name!r}",
                )
            self._families[family.name] = family
            self._addresses[family.name] = family.listen(self)
        self.instance_name, self._key, self._secret = finder.register_component(
            class_name,
            instance_name=instance_name,
            singleton=singleton,
            addresses=self._addresses,
        )
        self._handlers: Dict[str, Tuple[Optional[XrlMethod], Callable]] = {}
        self._cache: Dict[Tuple[str, str], _CacheEntry] = {}
        self._seq = itertools.count(1)
        self._alive = True
        self._pending: set = set()
        #: calls dispatched with ``batch=True``, awaiting the turn's flush
        self._batch_pending: List[_PendingCall] = []
        self._batch_scheduled = False
        #: coalesced wire transmissions performed (one per sender per flush)
        self.batches_sent = 0
        #: replies that arrived after their call was cancelled or completed
        self.late_replies = 0
        #: attempts re-dispatched under a :class:`RetryPolicy`
        self.retries_performed = 0

    # -- handler registration ---------------------------------------------
    def register_method(self, interface: XrlInterface, method: XrlMethod,
                        handler: Callable) -> None:
        """Register a typed handler for one IDL method."""
        path = f"{interface.name}/{interface.version}/{method.name}"
        self._handlers[path] = (method, handler)
        self.finder.add_methods(self.instance_name, self._secret, [path])

    def register_raw_method(self, method_path: str,
                            handler: Callable[[XrlArgs], Any]) -> None:
        """Register an unchecked handler taking raw :class:`XrlArgs`."""
        self._handlers[method_path] = (None, handler)
        self.finder.add_methods(self.instance_name, self._secret, [method_path])

    def bind(self, interface: XrlInterface, impl: Any) -> None:
        """Bind every method of *interface* to *impl* (see IDL docs)."""
        interface.bind(self, impl)

    # -- sending -------------------------------------------------------------
    def send(self, xrl, callback: Optional[ResponseCallback] = None, *,
             deadline: Optional[float] = None,
             retry: Optional[RetryPolicy] = None,
             batch: bool = False) -> None:
        """Dispatch *xrl* asynchronously.

        *callback(error, args)* runs from the event loop when the response
        arrives (or resolution/transport fails).  Errors never raise into
        the caller — event-driven code deals with them in the callback.

        *deadline* (seconds, event-loop clock) bounds the whole call: when
        it expires the callback fires once with ``REPLY_TIMED_OUT`` and any
        later reply is counted in :attr:`late_replies` and dropped.

        *retry*, for idempotent methods only, re-dispatches the call with
        jittered backoff on retryable failures (see
        :class:`repro.xrl.retry.RetryPolicy`).

        *batch* is a coalescing hint for bursty streams (route updates):
        all ``batch=True`` sends issued within one event-loop turn that
        resolve to the same sender go to the wire as a single coalesced
        transmission (:meth:`Sender.call_batch`).  Semantics are unchanged
        — each call still completes individually, in order — only the
        per-call transmission overhead is amortized.
        """
        self._dispatch(xrl, callback, deadline=deadline, retry=retry,
                       batch=batch)

    def _dispatch(self, xrl, callback: Optional[ResponseCallback], *,
                  deadline: Optional[float], retry: Optional[RetryPolicy],
                  batch: bool) -> None:
        """The single internal entry point behind :meth:`send` and
        :meth:`send_sync`."""
        if callback is None:
            callback = _ignore_response
        if not self._alive:
            self.loop.call_soon(
                callback, XrlError(XrlErrorCode.SEND_FAILED, "router shut down"),
                XrlArgs(),
            )
            return
        call = _PendingCall(xrl, callback, retry)
        self._pending.add(call)
        if deadline is not None:
            call.deadline_timer = self.loop.call_later(
                deadline, lambda: self._deadline_expired(call),
                name="xrl-deadline")
        if batch:
            self._batch_pending.append(call)
            if not self._batch_scheduled:
                self._batch_scheduled = True
                self.loop.call_soon(self._flush_batch)
            return
        self._attempt(call, defer_errors=True)

    def _flush_batch(self) -> None:
        """End-of-turn flush: group this turn's hinted calls by resolved
        sender and transmit each group as one coalesced wire operation."""
        self._batch_scheduled = False
        calls, self._batch_pending = self._batch_pending, []
        if not self._alive:
            return  # shutdown already failed every pending call
        groups: Dict[int, Tuple[Sender, List[Tuple]]] = {}
        for call in calls:
            if call.done:
                continue
            self._attempt(call, defer_errors=True, collect=groups)
        for sender, items in groups.values():
            if len(items) == 1:
                call, request, on_reply = items[0]
                try:
                    # repro: allow[HOT001] single-member group: nothing to coalesce
                    sender.call(request, on_reply)
                except XrlError:
                    self._retransmit_singular(call)
                    continue
                self._arm_attempt_timer(call)
            else:
                self.batches_sent += 1
                try:
                    sender.call_batch(
                        [(request, on_reply) for __, request, on_reply
                         in items])
                except XrlError:
                    # The shared sender broke mid-coalesce: every member
                    # falls back to the singular path, which carries
                    # per-endpoint failover.
                    for call, __, __cb in items:
                        self._retransmit_singular(call)
                    continue
                for call, __, __cb in items:
                    self._arm_attempt_timer(call)

    def _retransmit_singular(self, call: _PendingCall) -> None:
        """A coalesced transmit failed before leaving the process: drop the
        broken sender and re-dispatch the call through the singular path
        (the transmit never happened, so it does not count as an attempt).
        """
        if call.done:
            return
        cache_key = (call.xrl.target, call.xrl.method_path)
        entry = self._cache.pop(cache_key, None)
        if entry is not None:
            entry.sender.close()
        call.attempt -= 1
        self._attempt(call, defer_errors=True)

    def _arm_attempt_timer(self, call: _PendingCall) -> None:
        policy = call.retry
        if policy is not None and policy.attempt_timeout is not None:
            token = call.attempt_token
            call.attempt_timer = self.loop.call_later(
                policy.attempt_timeout,
                lambda: self._expire_attempt(call, token),
                name="xrl-attempt-timeout")

    def _attempt(self, call: _PendingCall, defer_errors: bool = False,
                 collect: Optional[Dict[int, Tuple]] = None) -> None:
        """Dispatch one attempt of *call* (resolve, connect, transmit).

        With *collect*, the encoded request is grouped by sender into the
        given dict instead of being transmitted — :meth:`_flush_batch`
        performs the actual (coalesced) transmission and arms the attempt
        timer afterwards.
        """
        call.attempt += 1
        token = object()
        call.attempt_token = token
        xrl = call.xrl
        method_path = xrl.method_path
        cache_key = (xrl.target, method_path)
        entry = self._cache.get(cache_key)
        if entry is not None and not entry.sender.alive:
            entry = None
        tried: set = set()
        transport_error: Optional[XrlError] = None
        # The sender that actually carried the transmitted frame — frames
        # are opaque between the router and that sender (per-connection
        # codecs), so its decode_response must interpret the reply.
        sender_cell: List[Sender] = []

        def on_reply(frame: Optional[bytes]) -> None:
            if call.done or call.attempt_token is not token:
                self.late_replies += 1
                return
            if call.attempt_timer is not None:
                call.attempt_timer.cancel()
                call.attempt_timer = None
            if frame is None:
                self._finish_attempt(
                    call, XrlError(XrlErrorCode.REPLY_TIMED_OUT, str(xrl)))
                return
            try:
                __, error, args = sender_cell[0].decode_response(frame)
            except XrlError as decode_error:
                self._complete(call, decode_error, XrlArgs())
                return
            self._complete(call, error, args)

        while True:
            if entry is None:
                try:
                    entry = self._resolve_and_connect(
                        xrl.target, method_path, exclude=tried)
                except XrlError as error:
                    # A transport failure is more informative than the
                    # resulting "no family left" resolution failure.
                    self._finish_attempt(call, transport_error or error,
                                         defer=defer_errors)
                    return
                self._cache[cache_key] = entry
            sender_cell[:] = (entry.sender,)
            request = entry.sender.encode_request(
                next(self._seq), entry.resolved_method, xrl.args)
            if collect is not None:
                group = collect.setdefault(id(entry.sender),
                                           (entry.sender, []))
                group[1].append((call, request, on_reply))
                return  # flusher transmits and arms the attempt timer
            try:
                # repro: allow[HOT001] failover retry for ONE call, not per-route
                entry.sender.call(request, on_reply)
            except XrlError as error:
                # The sender is broken: drop it from the cache and retry
                # the freshly-resolved candidates, skipping endpoints that
                # already failed within this attempt.
                self._cache.pop(cache_key, None)
                entry.sender.close()
                tried.add((entry.family_name, entry.address))
                entry = None
                transport_error = error
                continue
            break
        self._arm_attempt_timer(call)

    def _expire_attempt(self, call: _PendingCall, token: object) -> None:
        if call.done or call.attempt_token is not token:
            return
        call.attempt_timer = None
        self._finish_attempt(call, XrlError(
            XrlErrorCode.REPLY_TIMED_OUT,
            f"attempt {call.attempt}: {call.xrl}"))

    def _finish_attempt(self, call: _PendingCall, error: XrlError,
                        defer: bool = False) -> None:
        """An attempt failed: retry under the call's policy or complete."""
        policy = call.retry
        if (policy is not None and not call.done
                and policy.retryable(error.code)
                and call.attempt < policy.max_attempts):
            call.attempt_token = None  # late replies for this attempt drop
            self.retries_performed += 1
            call.retry_timer = self.loop.call_later(
                policy.delay(call.attempt),
                lambda: self._retry_fire(call), name="xrl-retry")
            return
        self._complete(call, error, XrlArgs(), defer=defer)

    def _retry_fire(self, call: _PendingCall) -> None:
        call.retry_timer = None
        if call.done or not self._alive:
            return
        self._attempt(call)

    def _deadline_expired(self, call: _PendingCall) -> None:
        if call.done:
            return
        call.deadline_timer = None
        call.attempt_token = None
        self._complete(call, XrlError(XrlErrorCode.REPLY_TIMED_OUT,
                                      str(call.xrl)), XrlArgs())

    def _complete(self, call: _PendingCall, error: XrlError, args: XrlArgs,
                  defer: bool = False) -> None:
        if call.done:
            return
        call.done = True
        call.cancel_timers()
        self._pending.discard(call)
        if defer:
            self.loop.call_soon(call.callback, error, args)
        else:
            call.callback(error, args)

    def _resolve_and_connect(self, target: str, method_path: str, *,
                             exclude: Optional[set] = None) -> _CacheEntry:
        resolved_method, candidates, __ = self.finder.resolve(
            self, target, method_path
        )
        usable: List[Tuple[int, str, str]] = []
        for family_name, address in candidates:
            family = self._families.get(family_name)
            if family is None:
                continue
            if exclude and (family_name, address) in exclude:
                continue
            reachable = getattr(family, "reachable", None)
            if reachable is not None and not reachable(address, self):
                continue
            usable.append((family.preference, family_name, address))
        if not usable:
            raise XrlError(
                XrlErrorCode.SEND_FAILED,
                f"no mutually supported protocol family for target {target!r}",
            )
        usable.sort(reverse=True)
        __, family_name, address = usable[0]
        sender = self._families[family_name].connect(address, self)
        return _CacheEntry(resolved_method, sender, family_name, address)

    def send_sync(self, xrl, *,
                  deadline: Optional[float] = None,
                  retry: Optional[RetryPolicy] = None,
                  batch: bool = False) -> Tuple[XrlError, XrlArgs]:
        """Convenience: dispatch and run the loop until the reply arrives.

        For scripts and tests; event-driven code uses :meth:`send`.  The
        keyword-only surface matches :meth:`send` exactly (*deadline*,
        *retry*, *batch*).  The deadline is a true cancellation deadline:
        on expiry the pending callback is retired, so a late reply is
        counted in :attr:`late_replies` and dropped instead of landing in
        a dead box.
        """
        if deadline is None:
            deadline = 30.0
        box: List[Tuple[XrlError, XrlArgs]] = []
        # Through self.send (not _dispatch) so instrumentation wrapping
        # send — the dispatch sanitizer — observes synchronous calls too.
        self.send(xrl, lambda error, args: box.append((error, args)),
                  deadline=deadline, retry=retry, batch=batch)
        self.loop.run_until(lambda: bool(box), timeout=deadline + 1.0)
        if not box:
            return XrlError(XrlErrorCode.REPLY_TIMED_OUT, str(xrl)), XrlArgs()
        return box[0]

    def finder_cache_invalidate(self, target: str) -> None:
        """Drop cached resolutions involving *target* (Finder callback).

        Fires on birth as well as death, so after a supervised restart the
        next call resolves the reborn instance fresh instead of riding a
        sender towards the dead one.
        """
        for cache_key in [k for k in self._cache if k[0] == target]:
            entry = self._cache.pop(cache_key)
            # retire, not close: requests already on the wire to a
            # still-live instance must drain — an invalidation triggered
            # by the target's own add_methods would otherwise abort them.
            entry.sender.retire()

    # -- receiving ------------------------------------------------------------
    def dispatch_frame_async(self, frame: bytes,
                             respond: Callable[[bytes], None], *,
                             codec: FrameCodec = TEXTUAL) -> None:
        """Handle one encoded request; deliver the response via *respond*.

        *codec* decodes the request body and encodes the response body —
        codec-negotiating transports pass their per-connection codec, so
        the reply always travels in the codec its request arrived in.

        Handlers normally answer synchronously; a handler may instead
        return a :class:`DeferredReply` and complete it later (the XRL
        proxy / intermediary pattern, paper §7).
        """
        try:
            seq, resolved_method, args = codec.decode_request(frame)
        except XrlError as error:
            respond(codec.encode_response(0, error, XrlArgs()))
            return
        self.dispatch_request(seq, resolved_method, args, respond,
                              codec=codec)

    def dispatch_request(self, seq: int, resolved_method: str, args: XrlArgs,
                         respond: Callable[[bytes], None], *,
                         codec: FrameCodec = TEXTUAL) -> None:
        """Decoded-request dispatch: key check, IDL check, handler call.

        Split from :meth:`dispatch_frame_async` so instrumentation (the
        causal tracer) can observe and rewrite the decoded arguments
        without re-encoding the frame through a stateful codec.
        """
        encode_response = codec.encode_response
        key, __, method_path = resolved_method.partition("/")
        if key != self._key:
            respond(encode_response(
                seq,
                XrlError(XrlErrorCode.BAD_KEY,
                         "method key does not match registration"),
                XrlArgs(),
            ))
            return
        handler_entry = self._handlers.get(method_path)
        if handler_entry is None:
            respond(encode_response(
                seq,
                XrlError(XrlErrorCode.NO_SUCH_METHOD, method_path),
                XrlArgs(),
            ))
            return
        method, handler = handler_entry
        try:
            if method is not None:
                method.check_args(args)
                kwargs = {name: args.atom(name).value for name, __ in method.params}
                result = handler(**kwargs)
                if isinstance(result, DeferredReply):
                    result._bind(respond, seq, method, codec)
                    return
                returns = (
                    result if isinstance(result, XrlArgs)
                    else method.build_returns(result)
                )
                method.check_returns(returns)
            else:
                result = handler(args)
                if isinstance(result, DeferredReply):
                    result._bind(respond, seq, None, codec)
                    return
                if isinstance(result, XrlArgs):
                    returns = result
                elif result is None:
                    returns = XrlArgs()
                else:
                    raise XrlError(
                        XrlErrorCode.INTERNAL_ERROR,
                        "raw handler must return XrlArgs or None",
                    )
        except XrlError as error:
            respond(encode_response(seq, error, XrlArgs()))
            return
        except Exception as exc:  # noqa: BLE001 - handler bugs become errors
            respond(encode_response(
                seq,
                XrlError(XrlErrorCode.COMMAND_FAILED,
                         f"{type(exc).__name__}: {exc}"),
                XrlArgs(),
            ))
            return
        respond(encode_response(seq, XrlError.okay(), returns))

    def dispatch_frame(self, frame: bytes) -> bytes:
        """Synchronous dispatch convenience (tests, sync-only callers).

        Raises if the handler deferred its reply — use
        :meth:`dispatch_frame_async` wherever deferral is possible.
        """
        box: List[bytes] = []
        self.dispatch_frame_async(frame, box.append)
        if not box:
            raise RuntimeError(
                "handler deferred its reply; use dispatch_frame_async"
            )
        return box[0]

    # -- lifecycle -------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    def shutdown(self) -> None:
        """Deregister from the Finder and release all transports."""
        if not self._alive:
            return
        self._alive = False
        # Outstanding calls can never complete now: fail them promptly so
        # callers (transmit queues, supervisors) observe the shutdown
        # instead of hanging until their deadlines.
        for call in list(self._pending):
            self._complete(call, XrlError(XrlErrorCode.SEND_FAILED,
                                          "router shut down"),
                           XrlArgs(), defer=True)
        self._batch_pending.clear()
        for entry in self._cache.values():
            entry.sender.close()
        self._cache.clear()
        for family_name, address in self._addresses.items():
            self._families[family_name].unlisten(address)
        self.finder.deregister_component(self.instance_name, self._secret)

    def __repr__(self) -> str:
        return f"<XrlRouter {self.instance_name}>"


def _ignore_response(error: XrlError, args: XrlArgs) -> None:
    """Default completion callback: drop the result."""
