"""XRL error codes and exceptions."""

from __future__ import annotations

from enum import IntEnum


class XrlErrorCode(IntEnum):
    """Dispatch outcome codes, mirroring XORP's ``XrlError``."""

    OKAY = 100
    RESOLVE_FAILED = 200        # the Finder knows no such target/method
    NO_FINDER = 201             # no route to any Finder
    ACCESS_DENIED = 202         # ACL rejected the call (paper §7)
    BAD_KEY = 203               # resolved-method key mismatch (paper §7)
    NO_SUCH_METHOD = 210        # target exists but lacks the method
    BAD_ARGS = 211              # argument names/types don't match
    COMMAND_FAILED = 212        # handler signalled failure
    SEND_FAILED = 220           # transport could not deliver
    REPLY_TIMED_OUT = 221
    INTERNAL_ERROR = 230


class XrlError(Exception):
    """An XRL-level failure, carrying a code and a human-readable note."""

    def __init__(self, code: XrlErrorCode, note: str = ""):
        super().__init__(f"{code.name}: {note}" if note else code.name)
        self.code = code
        self.note = note

    @classmethod
    def okay(cls) -> "XrlError":
        return cls(XrlErrorCode.OKAY)

    @property
    def is_okay(self) -> bool:
        return self.code == XrlErrorCode.OKAY

    def __eq__(self, other: object) -> bool:
        return isinstance(other, XrlError) and self.code == other.code

    def __hash__(self) -> int:
        return hash(self.code)
