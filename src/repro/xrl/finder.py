"""The Finder: XRL broker (paper §6.2) and security gatekeeper (paper §7).

    "When a component is created within a process, it instantiates a
    receiving point for the relevant XRL protocol families, and then
    registers this with the Finder.  The registration includes a component
    class, such as 'bgp'; a unique component instance name; and whether or
    not the caller expects to be the sole instance of a particular
    component class."

The Finder:

* resolves generic XRLs (``finder://bgp/...``) into concrete transports;
* embeds a 16-byte random key in every resolved method name, so processes
  cannot bypass resolution (and hence access control);
* invalidates client resolution caches when registrations change;
* provides component lifetime notification ("birth"/"death" watches);
* enforces per-caller ACLs: which targets and which XRLs a component may
  resolve (the Router Manager installs these, paper §7).
"""

from __future__ import annotations

import fnmatch
import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.xrl.error import XrlError, XrlErrorCode

#: lifetime notification events
BIRTH = "birth"
DEATH = "death"

WatchCallback = Callable[[str, str, str], None]  # (event, class, instance)


class _ComponentEntry:
    __slots__ = ("class_name", "instance_name", "singleton", "key",
                 "addresses", "methods", "secret", "enabled")

    def __init__(self, class_name: str, instance_name: str, singleton: bool,
                 key: str, addresses: Dict[str, str], secret: str):
        self.class_name = class_name
        self.instance_name = instance_name
        self.singleton = singleton
        self.key = key
        self.addresses = dict(addresses)
        self.methods: Set[str] = set()
        self.secret = secret
        self.enabled = True


class _Acl:
    __slots__ = ("allowed_targets", "allowed_xrls")

    def __init__(self, allowed_targets: Optional[Set[str]],
                 allowed_xrls: Optional[Set[str]]):
        self.allowed_targets = allowed_targets  # None = unrestricted
        self.allowed_xrls = allowed_xrls        # glob patterns over method paths

    def permits(self, target_class: str, method_path: str) -> bool:
        if self.allowed_targets is not None and target_class not in self.allowed_targets:
            return False
        if self.allowed_xrls is not None:
            return any(
                fnmatch.fnmatchcase(method_path, pattern)
                for pattern in self.allowed_xrls
            )
        return True


class Finder:
    """Broker for component registration, resolution, and lifetime events."""

    def __init__(self, rng: Optional[random.Random] = None):
        # Access keys need only be unguessable by *components*, which never
        # see the Finder's rng; a fixed default seed keeps every simulation
        # run replayable.  Real deployments pass an entropy-seeded Random.
        self._rng = rng if rng is not None else random.Random(0x5eed)
        self._instances: Dict[str, _ComponentEntry] = {}
        self._classes: Dict[str, List[str]] = {}
        self._watches: Dict[str, List[Tuple[str, WatchCallback]]] = {}
        self._acls: Dict[str, _Acl] = {}
        self._resolver_clients: Dict[str, Set] = {}  # class -> routers to invalidate
        self._instance_counter: Dict[str, int] = {}

    # -- registration ---------------------------------------------------
    def register_component(self, class_name: str, *,
                           instance_name: Optional[str] = None,
                           singleton: bool = False,
                           addresses: Dict[str, str]) -> Tuple[str, str, str]:
        """Register a component; return ``(instance_name, key, secret)``.

        *key* is the 16-byte random access key embedded in resolved method
        names; *secret* authenticates the component in later Finder calls.
        """
        existing = self._classes.get(class_name, [])
        if singleton and existing:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED,
                f"component class {class_name!r} already has an instance",
            )
        if existing and any(self._instances[i].singleton for i in existing):
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED,
                f"component class {class_name!r} is registered as singleton",
            )
        if instance_name is None:
            count = self._instance_counter.get(class_name, 0) + 1
            self._instance_counter[class_name] = count
            instance_name = f"{class_name}-{count}"
        if instance_name in self._instances:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED,
                f"instance name {instance_name!r} already registered",
            )
        key = "%032x" % self._rng.getrandbits(128)
        secret = "%032x" % self._rng.getrandbits(128)
        entry = _ComponentEntry(class_name, instance_name, singleton, key,
                                addresses, secret)
        self._instances[instance_name] = entry
        self._classes.setdefault(class_name, []).append(instance_name)
        self._invalidate(class_name)
        self._notify(class_name, instance_name, BIRTH)
        return instance_name, key, secret

    def add_methods(self, instance_name: str, secret: str,
                    method_paths: List[str]) -> None:
        """Declare methods (``interface/version/method``) for a component."""
        entry = self._auth(instance_name, secret)
        entry.methods.update(method_paths)
        self._invalidate(entry.class_name)

    def deregister_component(self, instance_name: str, secret: str) -> None:
        entry = self._auth(instance_name, secret)
        del self._instances[instance_name]
        siblings = self._classes.get(entry.class_name, [])
        if instance_name in siblings:
            siblings.remove(instance_name)
        if not siblings:
            self._classes.pop(entry.class_name, None)
        self._invalidate(entry.class_name)
        self._notify(entry.class_name, instance_name, DEATH)

    def _auth(self, instance_name: str, secret: str) -> _ComponentEntry:
        entry = self._instances.get(instance_name)
        if entry is None:
            raise XrlError(
                XrlErrorCode.RESOLVE_FAILED, f"no component {instance_name!r}"
            )
        if entry.secret != secret:
            raise XrlError(
                XrlErrorCode.ACCESS_DENIED,
                f"bad secret for component {instance_name!r}",
            )
        return entry

    # -- resolution -------------------------------------------------------
    def resolve(self, caller, target: str,
                method_path: str) -> Tuple[str, List[Tuple[str, str]], str]:
        """Resolve (*target*, *method_path*) for *caller* (an XrlRouter).

        Returns ``(resolved_method, [(family, address), ...], target_class)``
        where *resolved_method* is ``<key>/<method_path>``.  Raises
        RESOLVE_FAILED / ACCESS_DENIED.
        """
        entry = self._lookup_target(target)
        caller_name = getattr(caller, "instance_name", str(caller))
        acl = self._acls.get(caller_name)
        if acl is not None and not acl.permits(entry.class_name, method_path):
            raise XrlError(
                XrlErrorCode.ACCESS_DENIED,
                f"{caller_name} may not call {entry.class_name}/{method_path}",
            )
        if entry.methods and method_path not in entry.methods:
            raise XrlError(
                XrlErrorCode.RESOLVE_FAILED,
                f"{target!r} has no method {method_path!r}",
            )
        # Track the caller so a later (de)registration invalidates its cache.
        if hasattr(caller, "finder_cache_invalidate"):
            self._resolver_clients.setdefault(entry.class_name, set()).add(caller)
            if entry.class_name != target:
                self._resolver_clients.setdefault(target, set()).add(caller)
        resolved_method = f"{entry.key}/{method_path}"
        candidates = sorted(entry.addresses.items())
        return resolved_method, candidates, entry.class_name

    def _lookup_target(self, target: str) -> _ComponentEntry:
        entry = self._instances.get(target)
        if entry is not None and entry.enabled:
            return entry
        instances = self._classes.get(target, [])
        for instance_name in instances:
            candidate = self._instances[instance_name]
            if candidate.enabled:
                return candidate
        raise XrlError(
            XrlErrorCode.RESOLVE_FAILED, f"no such XRL target {target!r}"
        )

    def known_target(self, target: str) -> bool:
        try:
            self._lookup_target(target)
            return True
        except XrlError:
            return False

    def class_instances(self, class_name: str) -> List[str]:
        return list(self._classes.get(class_name, []))

    def _invalidate(self, class_name: str) -> None:
        for router in list(self._resolver_clients.get(class_name, ())):
            router.finder_cache_invalidate(class_name)

    def forget_resolver_client(self, client) -> None:
        """Drop *client* from every invalidation set (its process died)."""
        for clients in self._resolver_clients.values():
            clients.discard(client)

    # -- lifetime notification ---------------------------------------------
    def watch(self, watcher_name: str, class_name: str,
              callback: WatchCallback) -> None:
        """Call *callback(event, class, instance)* on birth/death of a class.

        If instances already exist, a birth event fires immediately for
        each, so watchers need no separate bootstrap query.
        """
        self._watches.setdefault(class_name, []).append((watcher_name, callback))
        for instance_name in self._classes.get(class_name, []):
            callback(BIRTH, class_name, instance_name)

    def unwatch(self, watcher_name: str, class_name: str) -> None:
        entries = self._watches.get(class_name, [])
        self._watches[class_name] = [
            (name, cb) for name, cb in entries if name != watcher_name
        ]

    def _notify(self, class_name: str, instance_name: str, event: str) -> None:
        for __, callback in list(self._watches.get(class_name, [])):
            callback(event, class_name, instance_name)

    # -- access control (paper §7) -----------------------------------------
    def set_acl(self, instance_name: str, *,
                allowed_targets: Optional[Set[str]] = None,
                allowed_xrls: Optional[Set[str]] = None) -> None:
        """Restrict what *instance_name* may resolve.

        ``allowed_targets`` is a set of component classes; ``allowed_xrls``
        a set of glob patterns over ``interface/version/method`` paths.
        None leaves that dimension unrestricted.  "Only these permitted
        XRLs will be resolved; the random XRL key prevents bypassing the
        Finder."
        """
        self._acls[instance_name] = _Acl(
            set(allowed_targets) if allowed_targets is not None else None,
            set(allowed_xrls) if allowed_xrls is not None else None,
        )

    def clear_acl(self, instance_name: str) -> None:
        self._acls.pop(instance_name, None)
