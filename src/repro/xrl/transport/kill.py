"""Kill protocol family.

    "Finally, there exists a kill protocol family, which is capable of
    sending just one message type — a UNIX signal — to components within a
    host."  (paper §6.3)

Here a "signal" is an integer delivered to the owning process object's
``on_signal`` handler.  The Router Manager uses it to stop modules.
"""

from __future__ import annotations

import itertools
from typing import Dict

from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.transport.base import ProtocolFamily, ReplyCallback, Sender
from repro.xrl.transport.base import encode_response
from repro.xrl.args import XrlArgs

SIGTERM = 15
SIGKILL = 9
SIGHUP = 1


class _KillSender(Sender):
    def __init__(self, family: "KillFamily", address: str, router):
        self._family = family
        self._address = address
        self._caller = router

    def call(self, request: bytes, reply_cb: ReplyCallback) -> None:
        """The request payload is a single byte: the signal number."""
        import struct

        target = self._family._listeners.get(self._address)
        if target is None:
            raise XrlError(
                XrlErrorCode.SEND_FAILED, f"kill target {self._address} is gone"
            )
        (seq,) = struct.unpack_from("!I", request, 0)
        signal_number = request[4] if len(request) > 4 else SIGTERM
        loop = self._caller.loop

        def deliver() -> None:
            # Liveness is re-checked at delivery time: an unlisten that
            # lands between call() and the loop running us must not
            # resurrect the handler of a process that is already gone.
            if self._family._listeners.get(self._address) is not target:
                reply_cb(encode_response(
                    seq,
                    XrlError(XrlErrorCode.SEND_FAILED,
                             f"kill target {self._address} died before "
                             "delivery"),
                    XrlArgs()))
                return
            handler = getattr(target, "on_signal", None)
            if handler is not None:
                handler(signal_number)
            reply_cb(encode_response(seq, XrlError.okay(), XrlArgs()))

        loop.call_soon(deliver)


class KillFamily(ProtocolFamily):
    name = "kill"
    preference = 0

    def __init__(self) -> None:
        self._listeners: Dict[str, object] = {}
        self._ids = itertools.count(1)

    def listen(self, router) -> str:
        """Register *router* (anything with ``on_signal``) as killable."""
        import os

        address = f"pid-{os.getpid():x}-{next(self._ids)}"
        self._listeners[address] = router
        return address

    def connect(self, address: str, router) -> Sender:
        return _KillSender(self, address, router)

    def unlisten(self, address: str) -> None:
        self._listeners.pop(address, None)

    def capabilities(self) -> dict:
        """Signals have one fixed wire form; no codec to negotiate."""
        return {"codecs": ("signal",)}

    @staticmethod
    def encode_signal(seq: int, signal_number: int) -> bytes:
        import struct

        return struct.pack("!IB", seq & 0xFFFFFFFF, signal_number)
