"""Host-local protocol family: IPC between processes on one machine.

XORP's processes talk over localhost TCP by default; this family models
that host-local channel without socket overhead.  Unlike the intra-process
family it crosses process boundaries — but it still marshals through the
shared codec and still delivers asynchronously via the event loop, so the
processes remain fully decoupled.
"""

from __future__ import annotations

import itertools
from typing import Dict

from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.transport.base import ProtocolFamily, ReplyCallback, Sender


class _HostLocalSender(Sender):
    def __init__(self, family: "HostLocalFamily", address: str, router):
        self._family = family
        self._address = address
        self._caller = router

    def call(self, request: bytes, reply_cb: ReplyCallback) -> None:
        target_router = self._family._listeners.get(self._address)
        if target_router is None:
            raise XrlError(
                XrlErrorCode.SEND_FAILED, f"local target {self._address} is gone"
            )
        loop = self._caller.loop

        def deliver() -> None:
            target_router.dispatch_frame_async(
                request, lambda response: loop.call_soon(reply_cb, response))

        loop.call_soon(deliver)


class HostLocalFamily(ProtocolFamily):
    """One instance per host; shared by all of that host's processes."""

    name = "unix"
    preference = 18

    def __init__(self) -> None:
        self._listeners: Dict[str, object] = {}
        self._ids = itertools.count(1)

    def listen(self, router) -> str:
        address = f"hostlocal-{next(self._ids)}"
        self._listeners[address] = router
        return address

    def connect(self, address: str, router) -> Sender:
        return _HostLocalSender(self, address, router)

    def unlisten(self, address: str) -> None:
        self._listeners.pop(address, None)
