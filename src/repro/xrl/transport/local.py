"""Host-local protocol family: IPC between processes on one machine.

XORP's processes talk over localhost TCP by default; this family models
that host-local channel without socket overhead.  Unlike the intra-process
family it crosses process boundaries — but it still marshals through the
shared codec and still delivers asynchronously via the event loop, so the
processes remain fully decoupled.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict

from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.transport.base import ProtocolFamily, ReplyCallback, Sender


class _HostLocalSender(Sender):
    def __init__(self, family: "HostLocalFamily", address: str, router):
        self._family = family
        self._address = address
        self._caller = router

    def call(self, request: bytes, reply_cb: ReplyCallback) -> None:
        target_router = self._family._listeners.get(self._address)
        if target_router is None:
            raise XrlError(
                XrlErrorCode.SEND_FAILED, f"local target {self._address} is gone"
            )
        loop = self._caller.loop

        def deliver() -> None:
            target_router.dispatch_frame_async(
                request, lambda response: loop.call_soon(reply_cb, response))

        loop.call_soon(deliver)

    def call_batch(self, requests) -> None:
        """Batch form: one delivery hop and one reply-flush hop per batch
        (see the intra-process family for the pattern)."""
        target_router = self._family._listeners.get(self._address)
        if target_router is None:
            raise XrlError(
                XrlErrorCode.SEND_FAILED, f"local target {self._address} is gone"
            )
        loop = self._caller.loop
        pairs = list(requests)

        def deliver() -> None:
            ready = []
            collecting = True

            def respond_for(reply_cb):
                def respond(response: bytes) -> None:
                    if collecting:
                        ready.append((reply_cb, response))
                    else:
                        loop.call_soon(reply_cb, response)
                return respond

            for request, reply_cb in pairs:
                target_router.dispatch_frame_async(request,
                                                   respond_for(reply_cb))
            collecting = False
            if ready:
                def flush() -> None:
                    for reply_cb, response in ready:
                        reply_cb(response)
                loop.call_soon(flush)

        loop.call_soon(deliver)


class HostLocalFamily(ProtocolFamily):
    """One instance per host; shared by all of that host's processes."""

    name = "unix"
    preference = 18

    def __init__(self) -> None:
        self._listeners: Dict[str, object] = {}
        self._ids = itertools.count(1)

    def listen(self, router) -> str:
        # pid-qualified for the same reason as the intra-process family:
        # with real OS subprocesses sharing one Finder, another
        # interpreter's "hostlocal-N" must never alias ours.
        address = f"hostlocal-{os.getpid():x}-{next(self._ids)}"
        self._listeners[address] = router
        return address

    def connect(self, address: str, router) -> Sender:
        return _HostLocalSender(self, address, router)

    def unlisten(self, address: str) -> None:
        self._listeners.pop(address, None)

    def reachable(self, address: str, router) -> bool:
        """True when the address lives in this interpreter's registry."""
        return address in self._listeners
