"""Protocol family base classes and the frame-codec surface.

The frame codecs themselves live in :mod:`repro.xrl.codec`; the four
canonical (textual) frame functions are re-exported here because they
are the historical public surface every transport and test imports.

Every transport exposes the same constructor surface (the uniform API
the codec negotiation relies on):

* ``listen(router) -> address``
* ``connect(address, router) -> Sender``
* ``capabilities() -> dict`` — at minimum ``{"codecs": (...)}``; the
  TCP hello/ack exchange advertises exactly this set, and wrapper
  families (fault, kill) delegate so they compose over a negotiated
  binary codec unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.xrl.args import XrlArgs
from repro.xrl.codec import (  # noqa: F401  (re-exported public surface)
    TEXTUAL,
    FrameCodec,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.xrl.error import XrlError

ReplyCallback = Callable[[bytes], None]


class Sender:
    """A connection to one remote listener address.

    :meth:`call` transmits one encoded request and arranges for the raw
    response frame to reach *reply_cb*.  Whether calls pipeline (multiple
    outstanding) is a per-family property — the crux of the paper's
    TCP-vs-UDP comparison in Figure 9.

    The frames a sender carries are opaque between the router and this
    sender: the router encodes requests with :meth:`encode_request` and
    decodes the reply frames with :meth:`decode_response`, so a
    codec-negotiating transport (TCP) can swap the wire form under an
    established connection without the router noticing.
    """

    def encode_request(self, seq: int, resolved_method: str,
                       args: XrlArgs) -> bytes:
        """Encode one request frame for this connection's current codec."""
        return TEXTUAL.encode_request(seq, resolved_method, args)

    def decode_response(self, frame: bytes) -> Tuple[int, XrlError, XrlArgs]:
        """Decode one reply frame previously passed to a reply callback."""
        return TEXTUAL.decode_response(frame)

    def call(self, request: bytes, reply_cb: ReplyCallback) -> None:
        raise NotImplementedError

    def call_batch(self, requests: "list") -> None:
        """Transmit several ``(request, reply_cb)`` pairs coalesced.

        Families with per-call transmission overhead (a syscall, an
        event-loop hop) override this to pay that overhead once per batch;
        responses still arrive individually, demuxed by sequence number.
        The default decomposes the batch into singular :meth:`call`\\ s, so
        the batch is always semantically identical to its decomposition —
        the same contract the staged tables follow.
        """
        for request, reply_cb in requests:
            self.call(request, reply_cb)

    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def retire(self) -> None:
        """Stop using this sender, but let in-flight replies drain first.

        The router calls this when a Finder invalidation drops a cached
        resolution: the resolution is stale, yet requests already on the
        wire may still complete — a re-registration (new methods, a
        sibling birth) must not shoot down its own connection's pending
        calls.  Stateful transports override to defer the close until the
        last pending reply arrives.
        """
        self.close()

    @property
    def alive(self) -> bool:
        return True


class ProtocolFamily:
    """Factory for listeners and senders of one transport kind."""

    #: family tag used in resolved XRLs (e.g. ``stcp``)
    name: str = "?"
    #: larger is preferred when several families can reach a target
    preference: int = 0

    def listen(self, router) -> str:
        """Start receiving for *router*; return the listener address."""
        raise NotImplementedError

    def connect(self, address: str, router) -> Sender:
        """Create (or reuse) a sender towards *address*."""
        raise NotImplementedError

    def unlisten(self, address: str) -> None:
        """Stop receiving on *address* (idempotent)."""

    def capabilities(self) -> dict:
        """What this transport speaks; read by the codec negotiation."""
        return {"codecs": ("textual",)}
