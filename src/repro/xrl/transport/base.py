"""Protocol family base classes and the request/response wire codec.

All families share one compact binary codec (the textual XRL form is for
humans and scripts; "internally XRLs are encoded more efficiently"):

* request:  ``!I seq  !H len(method)  method-utf8  args-binary``
* response: ``!I seq  !I errcode  !H len(note)  note-utf8  args-binary``

The *method* string on the wire is the **resolved** method name, i.e. the
Finder-issued 16-byte access key followed by ``interface/version/method``
(paper §7) — receivers reject requests whose key does not match.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional, Tuple

from repro.xrl.args import XrlArgs
from repro.xrl.error import XrlError, XrlErrorCode

ReplyCallback = Callable[[bytes], None]


def encode_request(seq: int, resolved_method: str, args: XrlArgs) -> bytes:
    method_bytes = resolved_method.encode("utf-8")
    return (
        struct.pack("!IH", seq & 0xFFFFFFFF, len(method_bytes))
        + method_bytes
        + args.to_binary()
    )


def decode_request(data: bytes) -> Tuple[int, str, XrlArgs]:
    try:
        seq, method_len = struct.unpack_from("!IH", data, 0)
        offset = 6
        method = data[offset : offset + method_len].decode("utf-8")
        offset += method_len
        args = XrlArgs.from_binary(data, offset)
    except (struct.error, UnicodeDecodeError) as exc:
        raise XrlError(XrlErrorCode.BAD_ARGS, f"corrupt request frame: {exc}") from exc
    return seq, method, args


def encode_response(seq: int, error: XrlError, args: Optional[XrlArgs]) -> bytes:
    note_bytes = error.note.encode("utf-8")
    body = (args if args is not None else XrlArgs()).to_binary()
    return (
        struct.pack("!IIH", seq & 0xFFFFFFFF, int(error.code), len(note_bytes))
        + note_bytes
        + body
    )


def decode_response(data: bytes) -> Tuple[int, XrlError, XrlArgs]:
    try:
        seq, code, note_len = struct.unpack_from("!IIH", data, 0)
        offset = 10
        note = data[offset : offset + note_len].decode("utf-8")
        offset += note_len
        args = XrlArgs.from_binary(data, offset)
        error = XrlError(XrlErrorCode(code), note)
    except (struct.error, ValueError, UnicodeDecodeError) as exc:
        raise XrlError(
            XrlErrorCode.BAD_ARGS, f"corrupt response frame: {exc}"
        ) from exc
    return seq, error, args


class Sender:
    """A connection to one remote listener address.

    :meth:`call` transmits one encoded request and arranges for the raw
    response frame to reach *reply_cb*.  Whether calls pipeline (multiple
    outstanding) is a per-family property — the crux of the paper's
    TCP-vs-UDP comparison in Figure 9.
    """

    def call(self, request: bytes, reply_cb: ReplyCallback) -> None:
        raise NotImplementedError

    def call_batch(self, requests: "list") -> None:
        """Transmit several ``(request, reply_cb)`` pairs coalesced.

        Families with per-call transmission overhead (a syscall, an
        event-loop hop) override this to pay that overhead once per batch;
        responses still arrive individually, demuxed by sequence number.
        The default decomposes the batch into singular :meth:`call`\\ s, so
        the batch is always semantically identical to its decomposition —
        the same contract the staged tables follow.
        """
        for request, reply_cb in requests:
            self.call(request, reply_cb)

    def close(self) -> None:
        """Release transport resources (idempotent)."""

    @property
    def alive(self) -> bool:
        return True


class ProtocolFamily:
    """Factory for listeners and senders of one transport kind."""

    #: family tag used in resolved XRLs (e.g. ``stcp``)
    name: str = "?"
    #: larger is preferred when several families can reach a target
    preference: int = 0

    def listen(self, router) -> str:
        """Start receiving for *router*; return the listener address."""
        raise NotImplementedError

    def connect(self, address: str, router) -> Sender:
        """Create (or reuse) a sender towards *address*."""
        raise NotImplementedError

    def unlisten(self, address: str) -> None:
        """Stop receiving on *address* (idempotent)."""
