"""XRL protocol families (paper §6.3).

    "Protocol families are the mechanisms by which XRLs are transported
    from one component to another.  Each protocol family is responsible
    for providing argument marshaling and unmarshaling facilities as well
    as the IPC mechanism itself."

Families implemented here:

* ``local``  — intra-process direct dispatch (paper "Intra-Process");
* ``stcp``   — real TCP with request pipelining (XORP's default);
* ``sudp``   — real UDP, deliberately *without* pipelining, mirroring the
  paper's first prototype ("UDP ... does not pipeline requests");
* ``sim``    — simulated-latency delivery on a virtual clock, used by the
  latency experiments to model IPC context-switch cost;
* ``kill``   — delivers a Unix-signal-like number to a process;
* ``fault``  — a wrapper family that deterministically drops, delays,
  duplicates, corrupts, or partitions frames of any inner family (the
  chaos harness behind the supervision tests).
"""

from repro.xrl.transport.base import (
    ProtocolFamily,
    Sender,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.xrl.transport.fault import FaultFamily, FaultStats
from repro.xrl.transport.intra import IntraProcessFamily
from repro.xrl.transport.kill import KillFamily
from repro.xrl.transport.sim import SimFamily
from repro.xrl.transport.tcp import TcpFamily
from repro.xrl.transport.udp import UdpFamily

__all__ = [
    "FaultFamily",
    "FaultStats",
    "IntraProcessFamily",
    "KillFamily",
    "ProtocolFamily",
    "Sender",
    "SimFamily",
    "TcpFamily",
    "UdpFamily",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
]
