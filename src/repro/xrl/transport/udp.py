"""UDP protocol family — deliberately unpipelined.

The paper keeps UDP around "primarily to illustrate the effect of request
pipelining, even when operating locally": XORP's first XRL prototype sent
one request and waited for its response before sending the next.  This
implementation preserves that behaviour — :meth:`call` queues requests and
keeps exactly one outstanding — which is what produces UDP's flat, low
curve in Figure 9.
"""

from __future__ import annotations

import socket
import struct
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.transport.base import ProtocolFamily, ReplyCallback, Sender

_MAX_DGRAM = 65000


class _UdpListener:
    def __init__(self, family: "UdpFamily", router):
        self._router = router
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.bind(("127.0.0.1", 0))
        sock.setblocking(False)
        self._sock = sock
        self.address = "{}:{}".format(*sock.getsockname())
        router.loop.add_reader(sock, self._on_readable)

    def _on_readable(self) -> None:
        while True:
            try:
                request, peer = self._sock.recvfrom(_MAX_DGRAM)
            except BlockingIOError:
                return
            except OSError:
                return
            def respond(response: bytes, peer=peer) -> None:
                try:
                    self._sock.sendto(response, peer)
                except OSError:
                    pass  # client vanished; it will time out

            self._router.dispatch_frame_async(request, respond)

    def close(self) -> None:
        if self._sock is None:
            return
        self._router.loop.remove_reader(self._sock)
        try:
            self._sock.close()
        finally:
            self._sock = None


class _UdpSender(Sender):
    """Stop-and-wait: one request in flight at any moment."""

    REPLY_TIMEOUT = 5.0

    def __init__(self, address: str, router):
        host, __, port_text = address.rpartition(":")
        self._peer = (host, int(port_text))
        self._loop = router.loop
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.connect(self._peer)
        self._sock: Optional[socket.socket] = sock
        self._queue: Deque[Tuple[bytes, ReplyCallback]] = deque()
        self._inflight: Optional[Tuple[int, ReplyCallback]] = None
        self._timeout_timer = None
        self._loop.add_reader(sock, self._on_readable)

    @property
    def alive(self) -> bool:
        return self._sock is not None

    def call(self, request: bytes, reply_cb: ReplyCallback) -> None:
        if self._sock is None:
            raise XrlError(XrlErrorCode.SEND_FAILED, "udp sender is closed")
        self._queue.append((request, reply_cb))
        self._pump()

    def _pump(self) -> None:
        if self._inflight is not None or not self._queue:
            return
        request, reply_cb = self._queue.popleft()
        (seq,) = struct.unpack_from("!I", request, 0)
        self._inflight = (seq, reply_cb)
        try:
            self._sock.send(request)
        except OSError as exc:
            self._inflight = None
            raise XrlError(XrlErrorCode.SEND_FAILED, f"udp send failed: {exc}") from exc
        self._timeout_timer = self._loop.call_later(
            self.REPLY_TIMEOUT, self._on_timeout, name="udp-xrl-timeout"
        )

    def _on_timeout(self) -> None:
        inflight = self._inflight
        self._inflight = None
        if inflight is not None:
            __, reply_cb = inflight
            reply_cb(None)  # router layer turns None into REPLY_TIMED_OUT
        self._pump()

    def _on_readable(self) -> None:
        while True:
            try:
                response = self._sock.recv(_MAX_DGRAM)
            except BlockingIOError:
                return
            except OSError:
                return
            if self._inflight is None:
                continue  # stale duplicate
            (seq,) = struct.unpack_from("!I", response, 0)
            want_seq, reply_cb = self._inflight
            if seq != want_seq:
                continue
            self._inflight = None
            if self._timeout_timer is not None:
                self._timeout_timer.cancel()
                self._timeout_timer = None
            reply_cb(response)
            self._pump()

    def close(self) -> None:
        if self._sock is None:
            return
        self._loop.remove_reader(self._sock)
        if self._timeout_timer is not None:
            self._timeout_timer.cancel()
        try:
            self._sock.close()
        finally:
            self._sock = None


class UdpFamily(ProtocolFamily):
    name = "sudp"
    preference = 10

    def __init__(self) -> None:
        self._listeners: Dict[str, _UdpListener] = {}

    def listen(self, router) -> str:
        listener = _UdpListener(self, router)
        self._listeners[listener.address] = listener
        return listener.address

    def connect(self, address: str, router) -> Sender:
        return _UdpSender(address, router)

    def unlisten(self, address: str) -> None:
        listener = self._listeners.pop(address, None)
        if listener is not None:
            listener.close()
