"""Simulated-latency protocol family.

Used by the latency experiments (paper Figures 10-12): on real hardware the
inter-process XRL hop costs a context switch, and "the latency is mostly
dominated by the delays inherent in the context switch that is necessitated
by inter-process communication".  This family models that hop on the
simulated clock with a pluggable latency model, so experiments exercise the
full marshal → deliver → dispatch → reply code path deterministically.

The default latency model is calibrated to the paper's testbed (FreeBSD
4.10 on a 1.1 GHz Athlon): ~0.25-0.45 ms per one-way hop, with rare
multi-millisecond "scheduler artifact" spikes matching the paper's
observation that "one or two routes took as much as 90 ms ... FreeBSD is
not a realtime operating system".
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, Optional

from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.transport.base import ProtocolFamily, ReplyCallback, Sender

LatencyModel = Callable[[int], float]


def context_switch_latency_model(seed: int = 42, *,
                                 base: float = 0.00025,
                                 jitter: float = 0.0002,
                                 spike_probability: float = 0.004,
                                 spike_scale: float = 0.015) -> LatencyModel:
    """The default one-way hop latency model (seconds).

    *base* + uniform jitter, plus occasional exponential scheduler spikes.
    Deterministic for a given *seed*.
    """
    rng = random.Random(seed)

    def model(payload_len: int) -> float:
        latency = base + rng.random() * jitter + payload_len * 2e-9
        if rng.random() < spike_probability:
            latency += rng.expovariate(1.0 / spike_scale)
        return latency

    return model


class _SimSender(Sender):
    def __init__(self, family: "SimFamily", address: str, router):
        self._family = family
        self._address = address
        self._caller = router

    def call(self, request: bytes, reply_cb: ReplyCallback) -> None:
        target_router = self._family._listeners.get(self._address)
        if target_router is None:
            raise XrlError(
                XrlErrorCode.SEND_FAILED, f"sim target {self._address} is gone"
            )
        loop = self._caller.loop
        model = self._family.latency_model

        def deliver() -> None:
            def respond(response: bytes) -> None:
                loop.call_later(model(len(response)),
                                lambda: reply_cb(response),
                                name="sim-xrl-reply")

            target_router.dispatch_frame_async(request, respond)

        loop.call_later(model(len(request)), deliver, name="sim-xrl-request")


class SimFamily(ProtocolFamily):
    """One instance per simulation; shared by every router in it."""

    name = "sim"
    preference = 15

    def __init__(self, latency_model: Optional[LatencyModel] = None):
        self.latency_model: LatencyModel = (
            latency_model if latency_model is not None
            else context_switch_latency_model()
        )
        self._listeners: Dict[str, object] = {}
        self._ids = itertools.count(1)

    def listen(self, router) -> str:
        address = f"simhost-{next(self._ids)}"
        self._listeners[address] = router
        return address

    def connect(self, address: str, router) -> Sender:
        return _SimSender(self, address, router)

    def unlisten(self, address: str) -> None:
        self._listeners.pop(address, None)
