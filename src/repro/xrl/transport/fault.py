"""Fault-injection protocol family: deterministic chaos for XRL transports.

The paper's robustness argument (§3, §6.5) is that a multi-process router
survives the failure of any one routing process.  Claims like that are
only worth anything if failure is *testable*, so this module wraps any
protocol family and injects faults into the frames crossing it:

* **drop** — the frame silently vanishes (a lost datagram, a dying peer);
* **delay** — delivery is deferred on the event loop (congestion,
  scheduling artifacts);
* **duplicate** — the frame is delivered twice (retransmit races);
* **corrupt** — a byte is flipped (the codec must reject, not crash);
* **partition** — all frames between two component classes are dropped
  until the partition heals.

Every decision comes from one seeded :class:`random.Random` and every
delay is scheduled on the caller's event loop, so under a
:class:`~repro.eventloop.clock.SimulatedClock` a chaos run is exactly
reproducible — the property the supervision test suite depends on.

Faults can be *scoped* to specific class pairs (e.g. only the bgp↔rib
route stream) so a test can keep its own control traffic clean while the
data path burns.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.xrl.transport.base import ProtocolFamily, ReplyCallback, Sender


def _pair(class_a: str, class_b: str) -> FrozenSet[str]:
    return frozenset((class_a, class_b))


class FaultStats:
    """Counters for every injected fault, by kind."""

    __slots__ = ("dropped", "delayed", "duplicated", "corrupted",
                 "partitioned", "passed")

    def __init__(self) -> None:
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0
        self.corrupted = 0
        self.partitioned = 0
        self.passed = 0

    def __repr__(self) -> str:
        return (f"<FaultStats passed={self.passed} dropped={self.dropped} "
                f"delayed={self.delayed} duplicated={self.duplicated} "
                f"corrupted={self.corrupted} partitioned={self.partitioned}>")


class _FaultSender(Sender):
    """Wraps one inner sender; injects faults on requests and replies."""

    __slots__ = ("_family", "_inner", "_address", "_caller")

    def __init__(self, family: "FaultFamily", inner: Sender, address: str,
                 caller) -> None:
        self._family = family
        self._inner = inner
        self._address = address
        self._caller = caller

    def call(self, request: bytes, reply_cb: ReplyCallback) -> None:
        family = self._family
        caller_class = getattr(self._caller, "class_name", "?")
        target_class = family.listener_class(self._address)
        loop = self._caller.loop

        if not family.in_scope(caller_class, target_class):
            self._inner.call(request, reply_cb)
            return

        def faulted_reply(frame: Optional[bytes]) -> None:
            if family.is_partitioned(caller_class, target_class):
                family.stats.partitioned += 1
                return
            frame = family.mangle(frame)
            if frame is _DROPPED:
                return
            family.deliver(loop, lambda: reply_cb(frame))

        if family.is_partitioned(caller_class, target_class):
            family.stats.partitioned += 1
            return
        request = family.mangle(request)
        if request is _DROPPED:
            return
        copies = 2 if family.roll(family.duplicate_probability) else 1
        if copies == 2:
            family.stats.duplicated += 1
        for __ in range(copies):
            family.deliver(
                loop, lambda: self._inner.call(request, faulted_reply))

    def encode_request(self, seq, resolved_method, args):
        # Frames are opaque between router and sender: the inner sender
        # owns the codec, so faults mangle exactly the negotiated wire
        # form (binary included) — the codec must reject, not crash.
        return self._inner.encode_request(seq, resolved_method, args)

    def decode_response(self, frame):
        return self._inner.decode_response(frame)

    def close(self) -> None:
        self._inner.close()

    def retire(self) -> None:
        self._inner.retire()

    @property
    def alive(self) -> bool:
        return self._inner.alive


#: sentinel returned by :meth:`FaultFamily.mangle` for a dropped frame
_DROPPED = object()


class FaultFamily(ProtocolFamily):
    """A protocol family that proxies *inner* and injects faults."""

    def __init__(self, inner: ProtocolFamily, *, seed: int = 0,
                 drop_probability: float = 0.0,
                 delay: float = 0.0,
                 delay_jitter: float = 0.0,
                 duplicate_probability: float = 0.0,
                 corrupt_probability: float = 0.0,
                 scope: Optional[Iterable[FrozenSet[str]]] = None):
        self.inner = inner
        self.name = inner.name
        self.preference = inner.preference
        self.drop_probability = drop_probability
        self.delay_base = delay
        self.delay_jitter = delay_jitter
        self.duplicate_probability = duplicate_probability
        self.corrupt_probability = corrupt_probability
        #: None = all traffic; otherwise the set of class pairs faulted
        self.scope: Optional[Set[FrozenSet[str]]] = (
            set(scope) if scope is not None else None)
        self.stats = FaultStats()
        self._rng = random.Random(seed)
        self._classes: Dict[str, str] = {}
        self._partitions: Set[FrozenSet[str]] = set()

    @classmethod
    def wrap_host(cls, host, **kwargs) -> "FaultFamily":
        """Wrap *host*'s host-local family in place.

        Must run before the host's processes are created — routers copy
        the family list at construction time.
        """
        fault = cls(host.local_family, **kwargs)
        host.families[host.families.index(host.local_family)] = fault
        host.local_family = fault
        return fault

    # -- partitioning -------------------------------------------------------
    def partition(self, class_a: str, class_b: str) -> None:
        """Silently drop all frames between two component classes."""
        self._partitions.add(_pair(class_a, class_b))

    def heal(self, class_a: str, class_b: str) -> None:
        self._partitions.discard(_pair(class_a, class_b))

    def heal_all(self) -> None:
        self._partitions.clear()

    def is_partitioned(self, class_a: str, class_b: str) -> bool:
        return _pair(class_a, class_b) in self._partitions

    # -- fault decisions -----------------------------------------------------
    def in_scope(self, caller_class: str, target_class: str) -> bool:
        return self.scope is None or _pair(caller_class,
                                           target_class) in self.scope

    def roll(self, probability: float) -> bool:
        return probability > 0 and self._rng.random() < probability

    def mangle(self, frame: Optional[bytes]):
        """Apply drop/corrupt decisions to one frame; count the outcome."""
        if frame is None:
            return frame
        if self.roll(self.drop_probability):
            self.stats.dropped += 1
            return _DROPPED
        if self.roll(self.corrupt_probability):
            self.stats.corrupted += 1
            position = self._rng.randrange(len(frame)) if frame else 0
            corrupted = bytearray(frame)
            if corrupted:
                corrupted[position] ^= 0xFF
            return bytes(corrupted)
        self.stats.passed += 1
        return frame

    def deliver(self, loop, action) -> None:
        """Run *action* now, or later if a delay fault applies."""
        delay = self.delay_base
        if self.delay_jitter > 0:
            delay += self._rng.random() * self.delay_jitter
        if delay > 0:
            self.stats.delayed += 1
            loop.call_later(delay, action, name="fault-delay")
        else:
            action()

    # -- ProtocolFamily ------------------------------------------------------
    def listen(self, router) -> str:
        address = self.inner.listen(router)
        self._classes[address] = getattr(router, "class_name", "?")
        return address

    def connect(self, address: str, router) -> Sender:
        return _FaultSender(self, self.inner.connect(address, router),
                            address, router)

    def unlisten(self, address: str) -> None:
        self._classes.pop(address, None)
        self.inner.unlisten(address)

    def listener_class(self, address: str) -> str:
        return self._classes.get(address, "?")

    def reachable(self, address: str, router) -> bool:
        inner_reachable = getattr(self.inner, "reachable", None)
        if inner_reachable is None:
            return True
        return inner_reachable(address, router)

    def capabilities(self) -> dict:
        """Faults never change what the wrapped transport speaks."""
        return self.inner.capabilities()
