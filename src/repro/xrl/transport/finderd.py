"""The Finder over a real socket: multi-process deployment bootstrap.

The paper's Finder is a standalone broker process every component
connects to at startup (§6.2).  In single-interpreter runs our
:class:`~repro.xrl.finder.Finder` is just an object; this module puts a
real TCP boundary around it:

* :class:`FinderServer` — runs in the rtrmgr (parent) process, wraps the
  real Finder, and serves a length-prefixed JSON RPC protocol.  A
  connection *is* a liveness lease: when a child's socket dies (crash,
  SIGKILL), every component it registered is deregistered, which fires
  the DEATH notifications the Supervisor's death watches and the
  resync contracts are built on.
* :class:`RemoteFinder` — runs in each child OS process and implements
  the same duck-typed surface :class:`~repro.xrl.router.XrlRouter` and
  the process classes use (``register_component`` / ``add_methods`` /
  ``resolve`` / ``watch`` / ...), forwarding each call as a blocking RPC
  and dispatching server-pushed lifetime/invalidation events through the
  child's event loop.

Wire protocol (all frames ``!I`` length-prefixed JSON objects):

* client → server: ``{"t": "req", "seq": N, "op": ..., ...}``
* server → client: ``{"t": "resp", "seq": N, "ok": ..., ...}`` and
  unsolicited ``{"t": "event", "kind": "lifetime" | "invalidate", ...}``

Watches: the server suppresses the Finder's synchronous birth replay and
returns the live instance list in the RPC response instead; the client
synthesizes those BIRTH callbacks locally, preserving the in-process
``watch()`` semantics exactly.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.finder import BIRTH, Finder, WatchCallback


def _frame(payload: bytes) -> bytes:
    return struct.pack("!I", len(payload)) + payload


def _encode(message: dict) -> bytes:
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _frame(payload)


class _JsonFrameBuffer:
    """Incremental length-prefixed JSON message reassembly."""

    def __init__(self) -> None:
        self._data = bytearray()

    def feed(self, chunk: bytes) -> List[dict]:
        self._data.extend(chunk)
        messages = []
        while True:
            if len(self._data) < 4:
                break
            (length,) = struct.unpack_from("!I", self._data, 0)
            if len(self._data) < 4 + length:
                break
            payload = bytes(self._data[4 : 4 + length])
            del self._data[: 4 + length]
            messages.append(json.loads(payload.decode("utf-8")))
        return messages


class _ResolverProxy:
    """Stands in for a remote XrlRouter in the Finder's invalidation sets."""

    __slots__ = ("instance_name", "_conn")

    def __init__(self, instance_name: str, conn: "_FinderConnection"):
        self.instance_name = instance_name
        self._conn = conn

    def finder_cache_invalidate(self, target: str) -> None:
        self._conn.push_event({"t": "event", "kind": "invalidate",
                               "target": target})


class _FinderConnection:
    """One child process's Finder session (server side)."""

    def __init__(self, server: "FinderServer", sock: socket.socket):
        self._server = server
        self._finder = server.finder
        self._loop = server.loop
        self._sock: Optional[socket.socket] = sock
        self._buffer = _JsonFrameBuffer()
        self._out = bytearray()
        self._writing = False
        #: components registered over this connection: instance -> secret
        self._registered: Dict[str, str] = {}
        #: watches installed over this connection: (watcher, class)
        self._watches: Set[Tuple[str, str]] = set()
        #: resolver proxies handed to the Finder, by caller instance name
        self._proxies: Dict[str, _ResolverProxy] = {}
        #: True while a watch RPC suppresses the synchronous birth replay
        self._suppress_watch_replay = False
        sock.setblocking(False)
        self._loop.add_reader(sock, self._on_readable)

    # -- socket plumbing --------------------------------------------------
    def _on_readable(self) -> None:
        try:
            chunk = self._sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self.close()
            return
        if not chunk:
            self.close()
            return
        try:
            messages = self._buffer.feed(chunk)
        except ValueError:
            self.close()
            return
        for message in messages:
            if self._sock is None:
                break
            self._on_message(message)

    def _send(self, message: dict) -> None:
        if self._sock is None:
            return
        self._out.extend(_encode(message))
        self._flush()

    push_event = _send

    def _flush(self) -> None:
        while self._out:
            try:
                sent = self._sock.send(self._out)
            except BlockingIOError:
                if not self._writing:
                    self._writing = True
                    self._loop.add_writer(self._sock, self._flush)
                return
            except OSError:
                self.close()
                return
            del self._out[:sent]
        if self._writing:
            self._writing = False
            self._loop.remove_writer(self._sock)

    def close(self) -> None:
        """Connection death == component death (the liveness lease)."""
        if self._sock is None:
            return
        self._loop.remove_reader(self._sock)
        if self._writing:
            self._loop.remove_writer(self._sock)
        try:
            self._sock.close()
        finally:
            self._sock = None
        self._server._connections.discard(self)
        for watcher, class_name in self._watches:
            self._finder.unwatch(watcher, class_name)
        self._watches.clear()
        for proxy in self._proxies.values():
            self._finder.forget_resolver_client(proxy)
        self._proxies.clear()
        # Deregister in reverse registration order (dependents first),
        # firing the DEATH notifications supervision relies on.
        for instance_name, secret in reversed(list(self._registered.items())):
            try:
                self._finder.deregister_component(instance_name, secret)
            except XrlError:
                pass  # already deregistered explicitly
        self._registered.clear()

    # -- RPC dispatch -----------------------------------------------------
    def _on_message(self, message: dict) -> None:
        if message.get("t") != "req":
            return
        seq = message.get("seq")
        op = message.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            self._send({"t": "resp", "seq": seq, "ok": False,
                        "code": int(XrlErrorCode.NO_SUCH_METHOD),
                        "note": f"unknown finder op {op!r}"})
            return
        try:
            result = handler(message)
        except XrlError as error:
            self._send({"t": "resp", "seq": seq, "ok": False,
                        "code": int(error.code), "note": error.note})
            return
        except Exception as exc:  # noqa: BLE001 - protocol errors, not crashes
            self._send({"t": "resp", "seq": seq, "ok": False,
                        "code": int(XrlErrorCode.INTERNAL_ERROR),
                        "note": f"{type(exc).__name__}: {exc}"})
            return
        response = {"t": "resp", "seq": seq, "ok": True}
        if result:
            response.update(result)
        self._send(response)

    # -- operations -------------------------------------------------------
    def _op_hello(self, message: dict) -> dict:
        return {"server": "repro-finderd/1.0"}

    def _op_register_component(self, message: dict) -> dict:
        instance_name, key, secret = self._finder.register_component(
            message["class_name"],
            instance_name=message.get("instance_name"),
            singleton=bool(message.get("singleton", False)),
            addresses=dict(message.get("addresses", {})),
        )
        self._registered[instance_name] = secret
        return {"instance_name": instance_name, "key": key, "secret": secret}

    def _op_add_methods(self, message: dict) -> dict:
        self._finder.add_methods(message["instance_name"], message["secret"],
                                 list(message["methods"]))
        return {}

    def _op_deregister_component(self, message: dict) -> dict:
        self._finder.deregister_component(message["instance_name"],
                                          message["secret"])
        self._registered.pop(message["instance_name"], None)
        return {}

    def _op_resolve(self, message: dict) -> dict:
        caller_name = str(message["caller"])
        proxy = self._proxies.get(caller_name)
        if proxy is None:
            proxy = _ResolverProxy(caller_name, self)
            self._proxies[caller_name] = proxy
        resolved_method, candidates, target_class = self._finder.resolve(
            proxy, message["target"], message["method_path"])
        return {"resolved_method": resolved_method,
                "candidates": [list(pair) for pair in candidates],
                "target_class": target_class}

    def _op_known_target(self, message: dict) -> dict:
        return {"known": self._finder.known_target(message["target"])}

    def _op_class_instances(self, message: dict) -> dict:
        return {"instances": self._finder.class_instances(
            message["class_name"])}

    def _op_watch(self, message: dict) -> dict:
        watcher = str(message["watcher"])
        class_name = str(message["class_name"])

        def forward(event: str, cls: str, instance: str) -> None:
            if self._suppress_watch_replay:
                return  # the RPC response carries the initial instances
            self.push_event({"t": "event", "kind": "lifetime",
                             "event": event, "class": cls,
                             "instance": instance})

        self._watches.add((watcher, class_name))
        self._suppress_watch_replay = True
        try:
            self._finder.watch(watcher, class_name, forward)
        finally:
            self._suppress_watch_replay = False
        return {"instances": self._finder.class_instances(class_name)}

    def _op_unwatch(self, message: dict) -> dict:
        watcher = str(message["watcher"])
        class_name = str(message["class_name"])
        self._finder.unwatch(watcher, class_name)
        self._watches.discard((watcher, class_name))
        return {}


class FinderServer:
    """Serves one host's Finder to child OS processes over TCP."""

    def __init__(self, finder: Finder, loop, *, host: str = "127.0.0.1",
                 port: int = 0):
        self.finder = finder
        self.loop = loop
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(64)
        sock.setblocking(False)
        self._sock: Optional[socket.socket] = sock
        self.address = "{}:{}".format(*sock.getsockname())
        self._connections: Set[_FinderConnection] = set()
        loop.add_reader(sock, self._on_accept)

    def _on_accept(self) -> None:
        while True:
            try:
                conn, __ = self._sock.accept()
            except (BlockingIOError, OSError):
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._connections.add(_FinderConnection(self, conn))

    def close(self) -> None:
        if self._sock is None:
            return
        self.loop.remove_reader(self._sock)
        try:
            self._sock.close()
        finally:
            self._sock = None
        for conn in list(self._connections):
            conn.close()


class RemoteFinder:
    """A child OS process's client-side view of the parent's Finder.

    Implements the duck-typed Finder surface the routers and process
    classes use.  RPCs block (the parent's loop is always pumping);
    server-pushed events received while blocked are queued and dispatched
    from the child's event loop afterwards.
    """

    def __init__(self, address: str, loop, *, timeout: float = 15.0):
        host, __, port_text = address.rpartition(":")
        self.loop = loop
        self._timeout = timeout
        self._seq = 0
        self._buffer = _JsonFrameBuffer()
        self._responses: Dict[int, dict] = {}
        self._pending_events: List[dict] = []
        self._drain_scheduled = False
        #: class -> [(watcher, callback)] for server-pushed lifetime events
        self._watch_callbacks: Dict[str, List[Tuple[str, WatchCallback]]] = {}
        #: class -> routers whose resolution caches we must invalidate
        self._resolver_clients: Dict[str, Set] = {}
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect((host, int(port_text)))
        except OSError as exc:
            sock.close()
            raise XrlError(
                XrlErrorCode.RESOLVE_FAILED,
                f"finder at {address} unreachable: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock: Optional[socket.socket] = sock
        # Idle-time events (deaths, invalidations) arrive through the loop.
        loop.add_reader(sock, self._on_readable)
        self._rpc("hello")

    # -- wire -------------------------------------------------------------
    def _rpc(self, op: str, **fields) -> dict:
        if self._sock is None:
            raise XrlError(XrlErrorCode.SEND_FAILED, "finder connection lost")
        self._seq += 1
        seq = self._seq
        message = {"t": "req", "seq": seq, "op": op}
        message.update(fields)
        try:
            self._sock.sendall(_encode(message))
            while seq not in self._responses:
                chunk = self._sock.recv(65536)
                if not chunk:
                    raise OSError("finder connection closed")
                self._feed(chunk)
        except OSError as exc:
            self._lost()
            raise XrlError(
                XrlErrorCode.SEND_FAILED, f"finder rpc failed: {exc}") from exc
        response = self._responses.pop(seq)
        if not response.get("ok"):
            code = XrlErrorCode(response.get(
                "code", int(XrlErrorCode.INTERNAL_ERROR)))
            raise XrlError(code, response.get("note", "finder error"))
        return response

    def _feed(self, chunk: bytes) -> None:
        for message in self._buffer.feed(chunk):
            kind = message.get("t")
            if kind == "resp":
                self._responses[message.get("seq")] = message
            elif kind == "event":
                self._pending_events.append(message)
                if not self._drain_scheduled:
                    self._drain_scheduled = True
                    self.loop.call_soon(self._drain_events)

    def _on_readable(self) -> None:
        # The loop polled this socket readable, so one recv cannot block.
        if self._sock is None:
            return
        try:
            chunk = self._sock.recv(65536)
        except OSError:
            self._lost()
            return
        if not chunk:
            self._lost()
            return
        self._feed(chunk)

    def _drain_events(self) -> None:
        self._drain_scheduled = False
        events, self._pending_events = self._pending_events, []
        for event in events:
            kind = event.get("kind")
            if kind == "lifetime":
                class_name = event.get("class", "")
                for __, callback in list(
                        self._watch_callbacks.get(class_name, [])):
                    callback(event.get("event", ""), class_name,
                             event.get("instance", ""))
            elif kind == "invalidate":
                target = event.get("target", "")
                for router in list(self._resolver_clients.get(target, ())):
                    router.finder_cache_invalidate(target)

    def _lost(self) -> None:
        """The parent is gone: a child without a Finder cannot run."""
        self.close()

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self.loop.remove_reader(self._sock)
        except Exception:  # noqa: BLE001 - loop may already be torn down
            pass
        try:
            self._sock.close()
        finally:
            self._sock = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # -- the Finder surface ----------------------------------------------
    def register_component(self, class_name: str, *,
                           instance_name: Optional[str] = None,
                           singleton: bool = False,
                           addresses: Dict[str, str]) -> Tuple[str, str, str]:
        response = self._rpc("register_component", class_name=class_name,
                             instance_name=instance_name, singleton=singleton,
                             addresses=dict(addresses))
        return (response["instance_name"], response["key"],
                response["secret"])

    def add_methods(self, instance_name: str, secret: str,
                    method_paths: List[str]) -> None:
        self._rpc("add_methods", instance_name=instance_name, secret=secret,
                  methods=list(method_paths))

    def deregister_component(self, instance_name: str, secret: str) -> None:
        if self._sock is None:
            return  # connection death already deregistered us server-side
        self._rpc("deregister_component", instance_name=instance_name,
                  secret=secret)

    def resolve(self, caller, target: str,
                method_path: str) -> Tuple[str, List[Tuple[str, str]], str]:
        caller_name = getattr(caller, "instance_name", str(caller))
        response = self._rpc("resolve", caller=caller_name, target=target,
                             method_path=method_path)
        target_class = response["target_class"]
        if hasattr(caller, "finder_cache_invalidate"):
            self._resolver_clients.setdefault(target_class, set()).add(caller)
            if target_class != target:
                self._resolver_clients.setdefault(target, set()).add(caller)
        candidates = [(family, address)
                      for family, address in response["candidates"]]
        return response["resolved_method"], candidates, target_class

    def known_target(self, target: str) -> bool:
        return bool(self._rpc("known_target", target=target)["known"])

    def class_instances(self, class_name: str) -> List[str]:
        return list(self._rpc("class_instances",
                              class_name=class_name)["instances"])

    def watch(self, watcher_name: str, class_name: str,
              callback: WatchCallback) -> None:
        self._watch_callbacks.setdefault(class_name, []).append(
            (watcher_name, callback))
        response = self._rpc("watch", watcher=watcher_name,
                             class_name=class_name)
        # Same contract as the in-process Finder: births for instances
        # alive at watch time fire synchronously, right here.
        for instance_name in response["instances"]:
            callback(BIRTH, class_name, instance_name)

    def unwatch(self, watcher_name: str, class_name: str) -> None:
        entries = self._watch_callbacks.get(class_name, [])
        self._watch_callbacks[class_name] = [
            (name, cb) for name, cb in entries if name != watcher_name
        ]
        if self._sock is not None:
            self._rpc("unwatch", watcher=watcher_name, class_name=class_name)

    def set_acl(self, instance_name: str, **kwargs) -> None:
        raise XrlError(
            XrlErrorCode.ACCESS_DENIED,
            "ACLs are installed by the router manager, not by children")

    clear_acl = set_acl
