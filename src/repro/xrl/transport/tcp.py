"""TCP protocol family — XORP's default transport, with pipelining.

Frames are length-prefixed (``!I`` byte count).  A sender may have many
requests outstanding; responses carry the request sequence number, so
replies are matched even if a future implementation reorders them.
"""

from __future__ import annotations

import socket
import struct
from typing import Callable, Dict, Optional

from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.transport.base import ProtocolFamily, ReplyCallback, Sender


class _FrameBuffer:
    """Incremental length-prefixed frame reassembly."""

    def __init__(self) -> None:
        self._data = bytearray()

    def feed(self, chunk: bytes) -> list:
        self._data.extend(chunk)
        frames = []
        while True:
            if len(self._data) < 4:
                break
            (length,) = struct.unpack_from("!I", self._data, 0)
            if len(self._data) < 4 + length:
                break
            frames.append(bytes(self._data[4 : 4 + length]))
            del self._data[: 4 + length]
        return frames


def _frame(payload: bytes) -> bytes:
    return struct.pack("!I", len(payload)) + payload


class _TcpConnection:
    """One accepted server-side connection."""

    def __init__(self, family: "TcpFamily", sock: socket.socket, router):
        self._family = family
        self._sock = sock
        self._router = router
        self._buffer = _FrameBuffer()
        self._out = bytearray()
        self._writing = False
        self._loop = router.loop
        sock.setblocking(False)
        self._loop.add_reader(sock, self._on_readable)

    def _on_readable(self) -> None:
        try:
            chunk = self._sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self.close()
            return
        if not chunk:
            self.close()
            return
        for request in self._buffer.feed(chunk):
            self._router.dispatch_frame_async(
                request, lambda response: self._send(_frame(response)))

    def _send(self, data: bytes) -> None:
        self._out.extend(data)
        self._flush()

    def _flush(self) -> None:
        while self._out:
            try:
                sent = self._sock.send(self._out)
            except BlockingIOError:
                if not self._writing:
                    self._writing = True
                    self._loop.add_writer(self._sock, self._on_writable)
                return
            except OSError:
                self.close()
                return
            del self._out[:sent]
        if self._writing:
            self._writing = False
            self._loop.remove_writer(self._sock)

    def _on_writable(self) -> None:
        self._flush()

    def close(self) -> None:
        if self._sock is None:
            return
        self._loop.remove_reader(self._sock)
        if self._writing:
            self._loop.remove_writer(self._sock)
        try:
            self._sock.close()
        finally:
            self._sock = None


class _TcpListener:
    def __init__(self, family: "TcpFamily", router):
        self._family = family
        self._router = router
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        sock.listen(64)
        sock.setblocking(False)
        self._sock = sock
        self.address = "{}:{}".format(*sock.getsockname())
        self._connections = []
        router.loop.add_reader(sock, self._on_accept)

    def _on_accept(self) -> None:
        while True:
            try:
                conn, __ = self._sock.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._connections.append(_TcpConnection(self._family, conn, self._router))

    def close(self) -> None:
        if self._sock is None:
            return
        self._router.loop.remove_reader(self._sock)
        for conn in self._connections:
            conn.close()
        try:
            self._sock.close()
        finally:
            self._sock = None


class _TcpSender(Sender):
    """Client side: pipelined requests over one connection."""

    def __init__(self, address: str, router):
        host, __, port_text = address.rpartition(":")
        self._loop = router.loop
        self._pending: Dict[int, ReplyCallback] = {}
        self._seq = 0
        self._buffer = _FrameBuffer()
        self._out = bytearray()
        self._writing = False
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.connect((host, int(port_text)))
        except OSError as exc:
            sock.close()
            raise XrlError(
                XrlErrorCode.SEND_FAILED, f"tcp connect to {address} failed: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.setblocking(False)
        self._sock: Optional[socket.socket] = sock
        self._loop.add_reader(sock, self._on_readable)

    @property
    def alive(self) -> bool:
        return self._sock is not None

    def call(self, request: bytes, reply_cb: ReplyCallback) -> None:
        if self._sock is None:
            raise XrlError(XrlErrorCode.SEND_FAILED, "tcp sender is closed")
        # The frame already carries a sequence number assigned by the
        # router; we track it for reply matching without re-parsing.
        (seq,) = struct.unpack_from("!I", request, 0)
        self._pending[seq] = reply_cb
        self._out.extend(_frame(request))
        self._flush()

    def call_batch(self, requests) -> None:
        """Pipelining's batch form: N frames, one buffered write.

        Concatenating frames is wire-compatible — the receiver's
        :class:`_FrameBuffer` splits on length prefixes and replies carry
        sequence numbers, so responses demux exactly as for singular calls.
        """
        if self._sock is None:
            raise XrlError(XrlErrorCode.SEND_FAILED, "tcp sender is closed")
        for request, reply_cb in requests:
            (seq,) = struct.unpack_from("!I", request, 0)
            self._pending[seq] = reply_cb
            self._out.extend(_frame(request))
        self._flush()

    def _flush(self) -> None:
        if self._sock is None:
            return
        while self._out:
            try:
                sent = self._sock.send(self._out)
            except BlockingIOError:
                if not self._writing:
                    self._writing = True
                    self._loop.add_writer(self._sock, self._flush_writable)
                return
            except OSError:
                self.close()
                return
            del self._out[:sent]
        if self._writing:
            self._writing = False
            self._loop.remove_writer(self._sock)

    def _flush_writable(self) -> None:
        self._flush()

    def _on_readable(self) -> None:
        try:
            chunk = self._sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self.close()
            return
        if not chunk:
            self.close()
            return
        for response in self._buffer.feed(chunk):
            (seq,) = struct.unpack_from("!I", response, 0)
            reply_cb = self._pending.pop(seq, None)
            if reply_cb is not None:
                reply_cb(response)

    def close(self) -> None:
        if self._sock is None:
            return
        self._loop.remove_reader(self._sock)
        if self._writing:
            self._loop.remove_writer(self._sock)
        try:
            self._sock.close()
        finally:
            self._sock = None


class TcpFamily(ProtocolFamily):
    name = "stcp"
    preference = 20

    def __init__(self) -> None:
        self._listeners: Dict[str, _TcpListener] = {}

    def listen(self, router) -> str:
        listener = _TcpListener(self, router)
        self._listeners[listener.address] = listener
        return listener.address

    def connect(self, address: str, router) -> Sender:
        return _TcpSender(address, router)

    def unlisten(self, address: str) -> None:
        listener = self._listeners.pop(address, None)
        if listener is not None:
            listener.close()
