"""TCP protocol family — XORP's default transport, with pipelining and a
negotiated binary frame codec.

Frames are length-prefixed (``!I`` byte count); the first payload byte is
the frame *kind* (see :mod:`repro.xrl.codec`): a codec tag for
request/response bodies, or a HELLO / HELLO-ACK control frame.  A sender
may have many requests outstanding; responses carry the request sequence
number (always the first four body bytes, in either codec), so replies
are matched even if a future implementation reorders them.

Codec negotiation: the client opens with HELLO listing its codecs; the
server picks the best common one, answers HELLO-ACK, and each side
switches its *transmit* codec only after the exchange completes.  Both
directions accept either codec per-frame throughout, so in-flight
textual frames are unaffected and an endpoint that never acks simply
stays textual — the transparent fallback.
"""

from __future__ import annotations

import os
import socket
import struct
from typing import Callable, Dict, Optional

from repro.xrl.args import XrlArgs
from repro.xrl.codec import (
    KIND_BINARY,
    KIND_HELLO,
    KIND_HELLO_ACK,
    KIND_TEXTUAL,
    TEXTUAL,
    BinaryCodec,
    choose_codec,
    decode_hello,
    encode_hello,
)
from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.transport.base import ProtocolFamily, ReplyCallback, Sender


class _FrameBuffer:
    """Incremental length-prefixed frame reassembly."""

    def __init__(self) -> None:
        self._data = bytearray()

    def feed(self, chunk: bytes) -> list:
        self._data.extend(chunk)
        frames = []
        while True:
            if len(self._data) < 4:
                break
            (length,) = struct.unpack_from("!I", self._data, 0)
            if len(self._data) < 4 + length:
                break
            frames.append(bytes(self._data[4 : 4 + length]))
            del self._data[: 4 + length]
        return frames


def _frame(payload: bytes) -> bytes:
    return struct.pack("!I", len(payload)) + payload


_TEXTUAL_PREFIX = bytes([KIND_TEXTUAL])
_BINARY_PREFIX = bytes([KIND_BINARY])


class _TcpConnection:
    """One accepted server-side connection."""

    def __init__(self, family: "TcpFamily", sock: socket.socket, router):
        self._family = family
        self._sock = sock
        self._router = router
        self._buffer = _FrameBuffer()
        self._out = bytearray()
        self._writing = False
        self._loop = router.loop
        #: per-connection binary state, created by the HELLO exchange
        self._codec: Optional[BinaryCodec] = None
        sock.setblocking(False)
        self._loop.add_reader(sock, self._on_readable)

    def _on_readable(self) -> None:
        try:
            chunk = self._sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self.close()
            return
        if not chunk:
            self.close()
            return
        for frame in self._buffer.feed(chunk):
            self._on_frame(frame)

    def _on_frame(self, frame: bytes) -> None:
        kind = frame[0] if frame else -1
        if kind == KIND_TEXTUAL:
            self._router.dispatch_frame_async(
                frame[1:],
                lambda response: self._send(_frame(_TEXTUAL_PREFIX + response)))
        elif kind == KIND_BINARY and self._codec is not None:
            self._router.dispatch_frame_async(
                frame[1:],
                lambda response: self._send(_frame(_BINARY_PREFIX + response)),
                codec=self._codec)
        elif kind == KIND_HELLO:
            try:
                remote = decode_hello(frame[1:])
            except XrlError:
                remote = []
            chosen = choose_codec(self._family.codecs, remote)
            if chosen == "binary":
                self._codec = BinaryCodec()
            self._send(_frame(bytes([KIND_HELLO_ACK]) + encode_hello([chosen])))
        else:
            # Unknown kind (or binary before negotiation): the frame is
            # undecodable, so the best we can do is a seq-0 error the
            # client counts as a late reply.
            error = XrlError(XrlErrorCode.BAD_ARGS,
                             f"unknown frame kind {kind:#x}")
            self._send(_frame(
                _TEXTUAL_PREFIX + TEXTUAL.encode_response(0, error, XrlArgs())))

    def _send(self, data: bytes) -> None:
        self._out.extend(data)
        self._flush()

    def _flush(self) -> None:
        while self._out:
            try:
                sent = self._sock.send(self._out)
            except BlockingIOError:
                if not self._writing:
                    self._writing = True
                    self._loop.add_writer(self._sock, self._on_writable)
                return
            except OSError:
                self.close()
                return
            del self._out[:sent]
        if self._writing:
            self._writing = False
            self._loop.remove_writer(self._sock)

    def _on_writable(self) -> None:
        self._flush()

    def close(self) -> None:
        if self._sock is None:
            return
        self._loop.remove_reader(self._sock)
        if self._writing:
            self._loop.remove_writer(self._sock)
        try:
            self._sock.close()
        finally:
            self._sock = None


class _TcpListener:
    def __init__(self, family: "TcpFamily", router):
        self._family = family
        self._router = router
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((family.bind_host, 0))
        sock.listen(64)
        sock.setblocking(False)
        self._sock = sock
        self.address = "{}:{}".format(*sock.getsockname())
        self._connections = []
        router.loop.add_reader(sock, self._on_accept)

    def _on_accept(self) -> None:
        while True:
            try:
                conn, __ = self._sock.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._connections.append(_TcpConnection(self._family, conn, self._router))

    def close(self) -> None:
        if self._sock is None:
            return
        self._router.loop.remove_reader(self._sock)
        for conn in self._connections:
            conn.close()
        try:
            self._sock.close()
        finally:
            self._sock = None


class _TcpSender(Sender):
    """Client side: pipelined requests over one connection.

    Requests transmit textual until the server's HELLO-ACK selects the
    binary codec; replies are decoded per-frame by their kind byte, so
    the transition is seamless for in-flight calls.
    """

    def __init__(self, family: "TcpFamily", address: str, router):
        host, __, port_text = address.rpartition(":")
        self._loop = router.loop
        self._pending: Dict[int, ReplyCallback] = {}
        self._buffer = _FrameBuffer()
        self._out = bytearray()
        self._writing = False
        self._retiring = False
        self._codec: Optional[BinaryCodec] = None
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.connect((host, int(port_text)))
        except OSError as exc:
            sock.close()
            raise XrlError(
                XrlErrorCode.SEND_FAILED, f"tcp connect to {address} failed: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.setblocking(False)
        self._sock: Optional[socket.socket] = sock
        self._loop.add_reader(sock, self._on_readable)
        codecs = family.codecs
        if "binary" in codecs:
            self._out.extend(_frame(bytes([KIND_HELLO]) + encode_hello(codecs)))
            self._flush()

    @property
    def alive(self) -> bool:
        return self._sock is not None

    # -- codec surface ----------------------------------------------------
    def encode_request(self, seq: int, resolved_method: str,
                       args: XrlArgs) -> bytes:
        codec = self._codec
        if codec is None:
            return _TEXTUAL_PREFIX + TEXTUAL.encode_request(
                seq, resolved_method, args)
        return _BINARY_PREFIX + codec.encode_request(seq, resolved_method, args)

    def decode_response(self, frame: bytes):
        if frame[0] == KIND_BINARY and self._codec is not None:
            return self._codec.decode_response(frame[1:])
        return TEXTUAL.decode_response(frame[1:])

    # -- transmission -----------------------------------------------------
    def call(self, request: bytes, reply_cb: ReplyCallback) -> None:
        if self._sock is None:
            raise XrlError(XrlErrorCode.SEND_FAILED, "tcp sender is closed")
        # The frame already carries a sequence number assigned by the
        # router (after the kind byte); we track it for reply matching
        # without re-parsing.
        (seq,) = struct.unpack_from("!I", request, 1)
        self._pending[seq] = reply_cb
        self._out.extend(_frame(request))
        self._flush()

    def call_batch(self, requests) -> None:
        """Pipelining's batch form: N frames, one buffered write.

        Concatenating frames is wire-compatible — the receiver's
        :class:`_FrameBuffer` splits on length prefixes and replies carry
        sequence numbers, so responses demux exactly as for singular calls.
        With the binary codec the whole segment is one contiguous buffer
        of compact frames sharing the connection's interned method table.
        """
        if self._sock is None:
            raise XrlError(XrlErrorCode.SEND_FAILED, "tcp sender is closed")
        for request, reply_cb in requests:
            (seq,) = struct.unpack_from("!I", request, 1)
            self._pending[seq] = reply_cb
            self._out.extend(_frame(request))
        self._flush()

    def _flush(self) -> None:
        if self._sock is None:
            return
        while self._out:
            try:
                sent = self._sock.send(self._out)
            except BlockingIOError:
                if not self._writing:
                    self._writing = True
                    self._loop.add_writer(self._sock, self._flush_writable)
                return
            except OSError:
                self.close()
                return
            del self._out[:sent]
        if self._writing:
            self._writing = False
            self._loop.remove_writer(self._sock)

    def _flush_writable(self) -> None:
        self._flush()

    def _on_readable(self) -> None:
        try:
            chunk = self._sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self.close()
            return
        if not chunk:
            self.close()
            return
        for response in self._buffer.feed(chunk):
            kind = response[0] if response else -1
            if kind == KIND_HELLO_ACK:
                try:
                    chosen = decode_hello(response[1:])
                except XrlError:
                    chosen = []
                if "binary" in chosen:
                    self._codec = BinaryCodec()
                continue
            (seq,) = struct.unpack_from("!I", response, 1)
            reply_cb = self._pending.pop(seq, None)
            if reply_cb is not None:
                reply_cb(response)
        if self._retiring and not self._pending:
            self.close()

    def retire(self) -> None:
        """Close once every in-flight reply has arrived (or on EOF).

        A Finder invalidation — a re-registration adding methods, a
        sibling instance appearing — retires this sender while requests
        may still be on the wire; dropping the connection under them
        would turn a benign cache refresh into spurious timeouts.
        """
        if self._pending:
            self._retiring = True
        else:
            self.close()

    def close(self) -> None:
        if self._sock is None:
            return
        self._loop.remove_reader(self._sock)
        if self._writing:
            self._loop.remove_writer(self._sock)
        try:
            self._sock.close()
        finally:
            self._sock = None


class TcpFamily(ProtocolFamily):
    name = "stcp"
    preference = 20

    def __init__(self, codec: Optional[str] = None,
                 bind_host: str = "127.0.0.1") -> None:
        self._listeners: Dict[str, _TcpListener] = {}
        self.bind_host = bind_host
        if codec is None:
            codec = os.environ.get("REPRO_XRL_CODEC", "binary")
        #: codecs this family negotiates, most preferred first
        self.codecs = (("binary", "textual") if codec == "binary"
                       else ("textual",))

    def listen(self, router) -> str:
        listener = _TcpListener(self, router)
        self._listeners[listener.address] = listener
        return listener.address

    def connect(self, address: str, router) -> Sender:
        return _TcpSender(self, address, router)

    def unlisten(self, address: str) -> None:
        listener = self._listeners.pop(address, None)
        if listener is not None:
            listener.close()

    def capabilities(self) -> dict:
        return {"codecs": self.codecs}
