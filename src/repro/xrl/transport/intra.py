"""Intra-process protocol family: direct dispatch, no sockets.

Matches the paper's "Intra-Process direct calling where the XRL library
invokes direct method calls between a sender and receiver inside the same
process".  Marshaling still happens (the library code path is shared with
the networked families); only the transport disappears.  Delivery is
deferred through the event loop so callers observe the same asynchronous
semantics on every family.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict

from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.transport.base import ProtocolFamily, ReplyCallback, Sender


class _IntraSender(Sender):
    def __init__(self, family: "IntraProcessFamily", address: str, router):
        self._family = family
        self._address = address
        self._caller = router

    def call(self, request: bytes, reply_cb: ReplyCallback) -> None:
        entry = self._family._listeners.get(self._address)
        if entry is None:
            raise XrlError(
                XrlErrorCode.SEND_FAILED, f"intra target {self._address} is gone"
            )
        target_router, process_token = entry
        if process_token != self._caller.process_token:
            raise XrlError(
                XrlErrorCode.SEND_FAILED,
                "intra-process family cannot cross process boundaries",
            )
        loop = self._caller.loop

        def deliver() -> None:
            target_router.dispatch_frame_async(
                request, lambda response: loop.call_soon(reply_cb, response))

        loop.call_soon(deliver)

    def call_batch(self, requests) -> None:
        """Deliver a whole batch in two event-loop hops instead of ``2N``.

        One deferred call dispatches every request; replies produced
        synchronously by the handlers are collected and flushed together
        in a second deferred call.  A handler that defers (an XRL
        intermediary) still answers through its own later hop.
        """
        entry = self._family._listeners.get(self._address)
        if entry is None:
            raise XrlError(
                XrlErrorCode.SEND_FAILED, f"intra target {self._address} is gone"
            )
        target_router, process_token = entry
        if process_token != self._caller.process_token:
            raise XrlError(
                XrlErrorCode.SEND_FAILED,
                "intra-process family cannot cross process boundaries",
            )
        loop = self._caller.loop
        pairs = list(requests)

        def deliver() -> None:
            ready = []
            collecting = True

            def respond_for(reply_cb):
                def respond(response: bytes) -> None:
                    if collecting:
                        ready.append((reply_cb, response))
                    else:
                        loop.call_soon(reply_cb, response)
                return respond

            for request, reply_cb in pairs:
                target_router.dispatch_frame_async(request,
                                                   respond_for(reply_cb))
            collecting = False
            if ready:
                def flush() -> None:
                    for reply_cb, response in ready:
                        reply_cb(response)
                loop.call_soon(flush)

        loop.call_soon(deliver)


class IntraProcessFamily(ProtocolFamily):
    """Shared in-interpreter registry of intra-process listeners."""

    name = "local"
    preference = 30

    def __init__(self) -> None:
        self._listeners: Dict[str, tuple] = {}
        self._ids = itertools.count(1)

    def listen(self, router) -> str:
        # The pid keeps addresses globally unique when several real OS
        # processes register with one Finder (multi-process deployment):
        # another interpreter's "intra-N" must never alias ours.
        address = f"intra-{os.getpid():x}-{next(self._ids)}"
        self._listeners[address] = (router, router.process_token)
        return address

    def connect(self, address: str, router) -> Sender:
        return _IntraSender(self, address, router)

    def unlisten(self, address: str) -> None:
        self._listeners.pop(address, None)

    def reachable(self, address: str, router) -> bool:
        """True if *router* may use this address (same process only)."""
        entry = self._listeners.get(address)
        return entry is not None and entry[1] == router.process_token
