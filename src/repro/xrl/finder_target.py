"""The Finder as an XRL target.

    "There is also a special Finder protocol family permitting the Finder
    to be addressable through XRLs, just as any other XORP component."
    (paper §6.3)

:class:`FinderTarget` wraps a :class:`~repro.xrl.finder.Finder` in an
``finder/1.0`` XRL interface, so management tools can resolve XRLs, list
targets, and inspect instances over ordinary IPC — including from
scripts, via the textual form (the paper's resolution example:
``finder://bgp/...`` → ``stcp://192.1.2.3:16878/...``).
"""

from __future__ import annotations

from typing import Optional

from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.finder import Finder
from repro.xrl.router import XrlRouter
from repro.xrl.xrl import Xrl

# The finder/1.0 IDL is declared in the central catalogue
# (repro.interfaces) alongside every other inter-process API.
from repro.interfaces import FINDER_IDL


class FinderTarget:
    """Binds the finder/1.0 interface onto a router for *finder*."""

    def __init__(self, finder: Finder, router: XrlRouter):
        self.finder = finder
        self.router = router
        router.bind(FINDER_IDL, self)

    # -- finder/1.0 ---------------------------------------------------------
    def xrl_resolve_xrl(self, xrl: str) -> dict:
        """Resolve textual XRL to its concrete transport form(s)."""
        generic = Xrl.from_text(xrl)
        resolved_method, candidates, __ = self.finder.resolve(
            self.router, generic.target, generic.method_path)
        forms = []
        for family, address in candidates:
            arg_text = generic.args.to_text()
            base = f"{family}://{address}/{resolved_method}"
            forms.append(f"{base}?{arg_text}" if arg_text else base)
        if not forms:
            raise XrlError(
                XrlErrorCode.RESOLVE_FAILED,
                f"no transport addresses registered for {generic.target!r}",
            )
        return {"resolved": "\n".join(forms)}

    def xrl_get_target_list(self) -> dict:
        classes = sorted(self.finder._classes)
        return {"targets": ",".join(classes)}

    def xrl_get_class_instances(self, class_name: str) -> dict:
        instances = self.finder.class_instances(class_name)
        return {"instances": ",".join(instances)}

    def xrl_target_exists(self, target: str) -> dict:
        return {"exists": self.finder.known_target(target)}


def bind_finder_target(host) -> FinderTarget:
    """Expose *host*'s Finder as the XRL target class ``finder``.

    Creates a dedicated process-less router owned by the host.
    """
    router = XrlRouter(host.loop, "finder", host.finder,
                       families=list(host.families))
    return FinderTarget(host.finder, router)
