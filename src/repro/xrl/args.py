"""XrlArgs — an ordered collection of XRL atoms.

Used both for the arguments of an outgoing XRL and for the values returned
by a dispatched method.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Iterator, List, Optional

from repro.net import IPNet, IPv4, IPv6, Mac
from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.types import XrlAtom, XrlAtomType


class XrlArgs:
    """Ordered, name-addressable argument list.

    Construction is chainable, mirroring XORP's ``XrlArgs``::

        args = XrlArgs().add_u32("as", 1777).add_ipv4("peer", "10.0.0.1")
    """

    __slots__ = ("_atoms", "_index")

    def __init__(self, atoms: Optional[List[XrlAtom]] = None):
        self._atoms: List[XrlAtom] = []
        self._index: Dict[str, XrlAtom] = {}
        if atoms:
            for atom in atoms:
                self.add(atom)

    # -- building ----------------------------------------------------------
    def add(self, atom: XrlAtom) -> "XrlArgs":
        if atom.name in self._index:
            raise XrlError(XrlErrorCode.BAD_ARGS, f"duplicate atom {atom.name!r}")
        self._atoms.append(atom)
        self._index[atom.name] = atom
        return self

    def add_i32(self, name: str, value: int) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.I32, value))

    def add_u32(self, name: str, value: int) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.U32, value))

    def add_i64(self, name: str, value: int) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.I64, value))

    def add_u64(self, name: str, value: int) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.U64, value))

    def add_txt(self, name: str, value: str) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.TXT, value))

    def add_bool(self, name: str, value: bool) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.BOOL, value))

    def add_ipv4(self, name: str, value) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.IPV4, value))

    def add_ipv6(self, name: str, value) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.IPV6, value))

    def add_ipv4net(self, name: str, value) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.IPV4NET, value))

    def add_ipv6net(self, name: str, value) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.IPV6NET, value))

    def add_mac(self, name: str, value) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.MAC, value))

    def add_binary(self, name: str, value: bytes) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.BINARY, value))

    def add_list(self, name: str, value: List[XrlAtom]) -> "XrlArgs":
        return self.add(XrlAtom(name, XrlAtomType.LIST, value))

    # -- reading ------------------------------------------------------------
    def _get(self, name: str, atom_type: XrlAtomType) -> Any:
        atom = self._index.get(name)
        if atom is None:
            raise XrlError(XrlErrorCode.BAD_ARGS, f"missing atom {name!r}")
        if atom.type != atom_type:
            raise XrlError(
                XrlErrorCode.BAD_ARGS,
                f"atom {name!r} has type {atom.type.value}, wanted {atom_type.value}",
            )
        return atom.value

    def get_i32(self, name: str) -> int:
        return self._get(name, XrlAtomType.I32)

    def get_u32(self, name: str) -> int:
        return self._get(name, XrlAtomType.U32)

    def get_i64(self, name: str) -> int:
        return self._get(name, XrlAtomType.I64)

    def get_u64(self, name: str) -> int:
        return self._get(name, XrlAtomType.U64)

    def get_txt(self, name: str) -> str:
        return self._get(name, XrlAtomType.TXT)

    def get_bool(self, name: str) -> bool:
        return self._get(name, XrlAtomType.BOOL)

    def get_ipv4(self, name: str) -> IPv4:
        return self._get(name, XrlAtomType.IPV4)

    def get_ipv6(self, name: str) -> IPv6:
        return self._get(name, XrlAtomType.IPV6)

    def get_ipv4net(self, name: str) -> IPNet:
        return self._get(name, XrlAtomType.IPV4NET)

    def get_ipv6net(self, name: str) -> IPNet:
        return self._get(name, XrlAtomType.IPV6NET)

    def get_mac(self, name: str) -> Mac:
        return self._get(name, XrlAtomType.MAC)

    def get_binary(self, name: str) -> bytes:
        return self._get(name, XrlAtomType.BINARY)

    def get_list(self, name: str) -> List[XrlAtom]:
        return self._get(name, XrlAtomType.LIST)

    def has(self, name: str) -> bool:
        return name in self._index

    def atom(self, name: str) -> XrlAtom:
        atom = self._index.get(name)
        if atom is None:
            raise XrlError(XrlErrorCode.BAD_ARGS, f"missing atom {name!r}")
        return atom

    # -- marshaling ----------------------------------------------------------
    def to_text(self) -> str:
        """Canonical ``a:t=v&b:t=v`` query-string form."""
        return "&".join(atom.to_text() for atom in self._atoms)

    @classmethod
    def from_text(cls, text: str) -> "XrlArgs":
        args = cls()
        if not text:
            return args
        for chunk in text.split("&"):
            args.add(XrlAtom.from_text(chunk))
        return args

    def to_binary(self) -> bytes:
        parts = [struct.pack("!I", len(self._atoms))]
        parts.extend(atom.to_binary() for atom in self._atoms)
        return b"".join(parts)

    @classmethod
    def from_binary(cls, data: bytes, offset: int = 0) -> "XrlArgs":
        try:
            (count,) = struct.unpack_from("!I", data, offset)
        except struct.error as exc:
            raise XrlError(XrlErrorCode.BAD_ARGS, "truncated args") from exc
        offset += 4
        args = cls()
        for __ in range(count):
            atom, offset = XrlAtom.from_binary(data, offset)
            args.add(atom)
        return args

    # -- dunder -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[XrlAtom]:
        return iter(self._atoms)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, XrlArgs) and self._atoms == other._atoms

    def __repr__(self) -> str:
        return f"XrlArgs({self.to_text()!r})"
