"""XRL interface definition language (IDL).

    "As with many other IPC mechanisms, we have an interface definition
    language (IDL) that supports interface specification, automatic stub
    code generation, and basic error checking."  (paper §6.1)

The concrete syntax follows XORP's ``.xif`` files::

    /* Routing Information Base interface. */
    interface rib/1.0 {
        add_route    ? protocol:txt & net:ipv4net & nexthop:ipv4 & metric:u32;
        delete_route ? protocol:txt & net:ipv4net;
        lookup_route ? addr:ipv4 -> net:ipv4net & nexthop:ipv4 & metric:u32;
    }

:func:`parse_idl` turns that into :class:`XrlInterface` objects.  Stubs are
generated at runtime: ``iface.client(router, "rib")`` yields a proxy whose
methods compose and dispatch XRLs; ``iface.bind(router, impl)`` registers a
Python object's methods as XRL handlers with signature checking on both
sides.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.xrl.args import XrlArgs
from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.types import XrlAtom, XrlAtomType
from repro.xrl.xrl import Xrl


class IdlError(ValueError):
    """Raised for malformed IDL text or signature violations."""


class IdlParseError(IdlError):
    """Malformed IDL text, located: :attr:`line` is 1-based in the source.

    Subclasses :class:`IdlError` so callers that only care about "the IDL
    is bad" keep working; tooling (``repro.analysis``, error reporting)
    reads :attr:`line` to point at the offending declaration.
    """

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
_IFACE_RE = re.compile(
    r"interface\s+([A-Za-z0-9_\-]+)/([0-9.]+)\s*\{([^}]*)\}", re.DOTALL
)
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_\-]*$")


def _blank_preserving_lines(text: str, start: int, end: int) -> str:
    """Replace ``text[start:end]`` with spaces, keeping every newline."""
    blanked = re.sub(r"[^\n]", " ", text[start:end])
    return text[:start] + blanked + text[end:]


def _parse_params(text: str, where: str, line: int) -> List[Tuple[str, XrlAtomType]]:
    params: List[Tuple[str, XrlAtomType]] = []
    text = text.strip()
    if not text:
        return params
    seen = set()
    for chunk in text.split("&"):
        chunk = chunk.strip()
        name, colon, type_tag = chunk.partition(":")
        name = name.strip()
        type_tag = type_tag.strip()
        if not colon or not _NAME_RE.match(name):
            raise IdlParseError(f"bad parameter {chunk!r} in {where}", line)
        try:
            atom_type = XrlAtomType(type_tag)
        except ValueError as exc:
            raise IdlParseError(
                f"unknown type {type_tag!r} in {where}", line) from exc
        if name in seen:
            raise IdlParseError(f"duplicate parameter {name!r} in {where}", line)
        seen.add(name)
        params.append((name, atom_type))
    return params


class XrlMethod:
    """One method signature: input parameters and return values."""

    __slots__ = ("name", "params", "returns")

    def __init__(self, name: str, params: List[Tuple[str, XrlAtomType]],
                 returns: List[Tuple[str, XrlAtomType]]):
        self.name = name
        self.params = params
        self.returns = returns

    @property
    def signature(self) -> Tuple[Tuple[Tuple[str, str], ...],
                                 Tuple[Tuple[str, str], ...]]:
        """Machine-readable ``((param, type), ...), ((ret, type), ...)``.

        Types are the IDL spellings (``u32``, ``ipv4net``, ...) so external
        tooling (the ``repro.analysis`` conformance checker) can compare
        signatures without importing :class:`XrlAtomType`.
        """
        return (tuple((n, t.value) for n, t in self.params),
                tuple((n, t.value) for n, t in self.returns))

    def check_args(self, args: XrlArgs) -> None:
        """Validate *args* against the declared parameters (BAD_ARGS on fail)."""
        self._check(args, self.params, "argument")

    def check_returns(self, args: XrlArgs) -> None:
        self._check(args, self.returns, "return value")

    def _check(self, args: XrlArgs, spec: List[Tuple[str, XrlAtomType]],
               what: str) -> None:
        if len(args) != len(spec):
            raise XrlError(
                XrlErrorCode.BAD_ARGS,
                f"{self.name}: expected {len(spec)} {what}s, got {len(args)}",
            )
        for name, atom_type in spec:
            if not args.has(name):
                raise XrlError(
                    XrlErrorCode.BAD_ARGS, f"{self.name}: missing {what} {name!r}"
                )
            atom = args.atom(name)
            if atom.type != atom_type:
                raise XrlError(
                    XrlErrorCode.BAD_ARGS,
                    f"{self.name}: {what} {name!r} is {atom.type.value}, "
                    f"wanted {atom_type.value}",
                )

    def build_args(self, values: Dict[str, Any]) -> XrlArgs:
        """Build an XrlArgs from keyword values, coercing to declared types."""
        args = XrlArgs()
        for name, atom_type in self.params:
            if name not in values:
                raise XrlError(
                    XrlErrorCode.BAD_ARGS, f"{self.name}: missing argument {name!r}"
                )
            args.add(XrlAtom(name, atom_type, values[name]))
        extras = set(values) - {n for n, __ in self.params}
        if extras:
            raise XrlError(
                XrlErrorCode.BAD_ARGS,
                f"{self.name}: unexpected arguments {sorted(extras)}",
            )
        return args

    def build_returns(self, values: Optional[Dict[str, Any]]) -> XrlArgs:
        values = values or {}
        args = XrlArgs()
        for name, atom_type in self.returns:
            if name not in values:
                raise XrlError(
                    XrlErrorCode.COMMAND_FAILED,
                    f"{self.name}: handler omitted return value {name!r}",
                )
            args.add(XrlAtom(name, atom_type, values[name]))
        return args


class XrlInterface:
    """A named, versioned group of related methods (paper §6.1)."""

    def __init__(self, name: str, version: str):
        self.name = name
        self.version = version
        self.methods: Dict[str, XrlMethod] = {}

    @property
    def fullname(self) -> str:
        return f"{self.name}/{self.version}"

    def describe(self) -> Dict[str, Dict[str, Tuple[Tuple[str, str], ...]]]:
        """Machine-readable catalogue entry: method -> params/returns."""
        return {
            method.name: {
                "params": method.signature[0],
                "returns": method.signature[1],
            }
            for method in self.methods.values()
        }

    def add_method(self, method: XrlMethod) -> None:
        if method.name in self.methods:
            raise IdlError(f"duplicate method {method.name!r} in {self.fullname}")
        self.methods[method.name] = method

    def method(self, name: str) -> XrlMethod:
        try:
            return self.methods[name]
        except KeyError as exc:
            raise XrlError(
                XrlErrorCode.NO_SUCH_METHOD, f"{self.fullname} has no {name!r}"
            ) from exc

    # -- stub generation -----------------------------------------------------
    def client(self, router, target: str) -> "XrlClientStub":
        """A client proxy sending this interface's XRLs to *target*."""
        return XrlClientStub(self, router, target)

    def bind(self, router, impl: Any, *, prefix: str = "xrl_") -> None:
        """Register *impl*'s methods as handlers on *router*.

        For each IDL method ``m``, the implementation object must provide
        ``xrl_m`` (preferred) or ``m``.  Handlers receive the declared
        parameters as keyword arguments and return a dict of return values
        (or None when the method returns nothing).
        """
        for method in self.methods.values():
            handler = getattr(impl, prefix + method.name, None)
            if handler is None:
                handler = getattr(impl, method.name, None)
            if handler is None or not callable(handler):
                raise IdlError(
                    f"{type(impl).__name__} does not implement "
                    f"{self.fullname}/{method.name}"
                )
            router.register_method(self, method, handler)


class XrlClientStub:
    """Dynamically generated client stub for one interface and target."""

    def __init__(self, interface: XrlInterface, router, target: str):
        self._interface = interface
        self._router = router
        self._target = target

    def __getattr__(self, method_name: str) -> Callable:
        method = self._interface.method(method_name)

        def invoke(callback: Optional[Callable] = None, **values: Any):
            args = method.build_args(values)
            xrl = Xrl(self._target, self._interface.name,
                      self._interface.version, method.name, args)
            return self._router.send(xrl, callback)

        invoke.__name__ = method_name
        return invoke

    def __repr__(self) -> str:
        return (
            f"<XrlClientStub {self._interface.fullname} -> {self._target!r}>"
        )


def parse_idl(text: str) -> Dict[str, XrlInterface]:
    """Parse IDL text; return interfaces keyed by ``name/version``.

    Malformed text raises :class:`IdlParseError` carrying the 1-based
    source line of the offending declaration.  Comments and interface
    bodies are blanked rather than excised while parsing, so character
    offsets — and therefore reported line numbers — always refer to the
    original *text*.
    """
    stripped = _COMMENT_RE.sub(
        lambda m: re.sub(r"[^\n]", " ", m.group(0)), text)

    def line_of(offset: int) -> int:
        return stripped.count("\n", 0, offset) + 1

    interfaces: Dict[str, XrlInterface] = {}
    leftovers = stripped
    for match in _IFACE_RE.finditer(stripped):
        leftovers = _blank_preserving_lines(leftovers, *match.span())
        name, version, body = match.groups()
        iface = XrlInterface(name, version)
        iface_line = line_of(match.start())
        body_start = match.start(3)
        pos = 0
        for raw_line in body.split(";"):
            chunk_offset = pos
            pos += len(raw_line) + 1  # account for the ';' separator
            line = raw_line.strip()
            if not line:
                continue
            decl_line = line_of(
                body_start + chunk_offset + len(raw_line) - len(raw_line.lstrip()))
            head, arrow, ret_text = line.partition("->")
            method_text = head.strip()
            method_name, qmark, param_text = method_text.partition("?")
            method_name = method_name.strip()
            if not _NAME_RE.match(method_name):
                raise IdlParseError(
                    f"bad method name {method_name!r} in {iface.fullname}",
                    decl_line)
            params = _parse_params(param_text if qmark else "", method_name,
                                   decl_line)
            returns = _parse_params(ret_text if arrow else "", method_name,
                                    decl_line)
            if method_name in iface.methods:
                raise IdlParseError(
                    f"duplicate method {method_name!r} in {iface.fullname}",
                    decl_line)
            iface.add_method(XrlMethod(method_name, params, returns))
        if iface.fullname in interfaces:
            raise IdlParseError(f"duplicate interface {iface.fullname}",
                                iface_line)
        interfaces[iface.fullname] = iface
    residue = leftovers.strip()
    if residue:
        first_bad = len(leftovers) - len(leftovers.lstrip())
        raise IdlParseError(
            f"unparsed IDL text: {' '.join(residue.split())[:80]!r}",
            line_of(first_bad))
    if not interfaces:
        raise IdlParseError("no interfaces found in IDL text", 1)
    return interfaces
