"""XRL atom types and their marshaling.

    "XRL arguments ... are restricted to a set of core types used
    throughout XORP, including network addresses, numbers, strings,
    booleans, binary arrays, and lists of these primitives."  (paper §6.1)

Each argument is an :class:`XrlAtom` — a ``name:type=value`` triple.  Two
encodings are implemented:

* **textual** — the canonical, human-readable, scriptable form used in XRL
  strings and by ``call_xrl``;
* **binary** — the compact form the TCP/UDP protocol families put on the
  wire ("Internally XRLs are encoded more efficiently").
"""

from __future__ import annotations

import struct
from enum import Enum
from typing import Any, List, Tuple

from repro.net import IPNet, IPv4, IPv6, Mac
from repro.xrl.error import XrlError, XrlErrorCode


class XrlAtomType(str, Enum):
    """Core XRL atom types and their textual tags."""

    I32 = "i32"
    U32 = "u32"
    I64 = "i64"
    U64 = "u64"
    TXT = "txt"
    BOOL = "bool"
    IPV4 = "ipv4"
    IPV6 = "ipv6"
    IPV4NET = "ipv4net"
    IPV6NET = "ipv6net"
    MAC = "mac"
    BINARY = "binary"
    LIST = "list"


_INT_RANGES = {
    XrlAtomType.I32: (-(1 << 31), (1 << 31) - 1),
    XrlAtomType.U32: (0, (1 << 32) - 1),
    XrlAtomType.I64: (-(1 << 63), (1 << 63) - 1),
    XrlAtomType.U64: (0, (1 << 64) - 1),
}

# Characters with structural meaning in XRL text; %-escaped in values.
_ESCAPE_CHARS = "%&=?/:,\n "


def escape_text(value: str) -> str:
    """Percent-escape XRL-structural characters in *value*."""
    out: List[str] = []
    for ch in value:
        if ch in _ESCAPE_CHARS or ord(ch) < 0x20:
            for byte in ch.encode("utf-8"):
                out.append(f"%{byte:02X}")
        else:
            out.append(ch)
    return "".join(out)


def unescape_text(value: str) -> str:
    """Inverse of :func:`escape_text`."""
    out = bytearray()
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "%":
            if i + 3 > len(value):
                raise XrlError(XrlErrorCode.BAD_ARGS, f"truncated escape in {value!r}")
            try:
                out.append(int(value[i + 1 : i + 3], 16))
            except ValueError as exc:
                raise XrlError(
                    XrlErrorCode.BAD_ARGS, f"bad escape in {value!r}"
                ) from exc
            i += 3
        else:
            out.extend(ch.encode("utf-8"))
            i += 1
    return out.decode("utf-8")


def _validate(atom_type: XrlAtomType, value: Any) -> Any:
    """Coerce and range-check *value* for *atom_type*; raise BAD_ARGS."""
    try:
        if atom_type in _INT_RANGES:
            value = int(value)
            lo, hi = _INT_RANGES[atom_type]
            if not lo <= value <= hi:
                raise ValueError(f"{value} outside [{lo}, {hi}]")
            return value
        if atom_type == XrlAtomType.TXT:
            if not isinstance(value, str):
                raise ValueError(f"txt atom needs str, got {type(value).__name__}")
            return value
        if atom_type == XrlAtomType.BOOL:
            if isinstance(value, str):
                lowered = value.lower()
                if lowered in ("true", "1"):
                    return True
                if lowered in ("false", "0"):
                    return False
                raise ValueError(f"bad bool text {value!r}")
            return bool(value)
        if atom_type == XrlAtomType.IPV4:
            return value if isinstance(value, IPv4) else IPv4(value)
        if atom_type == XrlAtomType.IPV6:
            return value if isinstance(value, IPv6) else IPv6(value)
        if atom_type in (XrlAtomType.IPV4NET, XrlAtomType.IPV6NET):
            net = value if isinstance(value, IPNet) else IPNet.parse(value)
            want_v4 = atom_type == XrlAtomType.IPV4NET
            if net.is_ipv4() != want_v4:
                raise ValueError(f"{net} is the wrong family for {atom_type.value}")
            return net
        if atom_type == XrlAtomType.MAC:
            return value if isinstance(value, Mac) else Mac(value)
        if atom_type == XrlAtomType.BINARY:
            if isinstance(value, str):
                return bytes.fromhex(value)
            return bytes(value)
        if atom_type == XrlAtomType.LIST:
            if not isinstance(value, (list, tuple)):
                raise ValueError("list atom needs a list of XrlAtom")
            items = list(value)
            for item in items:
                if not isinstance(item, XrlAtom):
                    raise ValueError("list elements must be XrlAtom")
            return items
    except XrlError:
        raise
    except Exception as exc:
        raise XrlError(
            XrlErrorCode.BAD_ARGS,
            f"bad value {value!r} for type {atom_type.value}: {exc}",
        ) from exc
    raise XrlError(XrlErrorCode.BAD_ARGS, f"unknown atom type {atom_type!r}")


class XrlAtom:
    """One named, typed XRL argument."""

    __slots__ = ("name", "type", "value")

    def __init__(self, name: str, atom_type: XrlAtomType, value: Any):
        if not name or any(c in _ESCAPE_CHARS for c in name):
            raise XrlError(XrlErrorCode.BAD_ARGS, f"bad atom name {name!r}")
        self.name = name
        self.type = XrlAtomType(atom_type)
        self.value = _validate(self.type, value)

    # -- textual form -----------------------------------------------------
    def to_text(self) -> str:
        """Render as ``name:type=value`` (canonical XRL text)."""
        return f"{self.name}:{self.type.value}={self._value_text()}"

    def _value_text(self) -> str:
        if self.type == XrlAtomType.BOOL:
            return "true" if self.value else "false"
        if self.type == XrlAtomType.BINARY:
            return self.value.hex()
        if self.type == XrlAtomType.LIST:
            return ",".join(escape_text(a.to_text()) for a in self.value)
        return escape_text(str(self.value))

    @classmethod
    def from_text(cls, text: str) -> "XrlAtom":
        """Parse ``name:type=value`` text."""
        head, eq, raw_value = text.partition("=")
        if not eq:
            raise XrlError(XrlErrorCode.BAD_ARGS, f"atom missing '=': {text!r}")
        name, colon, type_tag = head.partition(":")
        if not colon:
            raise XrlError(XrlErrorCode.BAD_ARGS, f"atom missing ':type': {text!r}")
        try:
            atom_type = XrlAtomType(type_tag)
        except ValueError as exc:
            raise XrlError(
                XrlErrorCode.BAD_ARGS, f"unknown atom type {type_tag!r}"
            ) from exc
        if atom_type == XrlAtomType.LIST:
            items = []
            if raw_value:
                for chunk in raw_value.split(","):
                    items.append(cls.from_text(unescape_text(chunk)))
            return cls(name, atom_type, items)
        return cls(name, atom_type, unescape_text(raw_value))

    # -- binary form --------------------------------------------------------
    def to_binary(self) -> bytes:
        """Compact wire encoding (type tag + name + payload)."""
        name_bytes = self.name.encode("utf-8")
        header = struct.pack("!BB", _TYPE_CODES[self.type], len(name_bytes))
        return header + name_bytes + self._payload_binary()

    def _payload_binary(self) -> bytes:
        t = self.type
        if t == XrlAtomType.I32:
            return struct.pack("!i", self.value)
        if t == XrlAtomType.U32:
            return struct.pack("!I", self.value)
        if t == XrlAtomType.I64:
            return struct.pack("!q", self.value)
        if t == XrlAtomType.U64:
            return struct.pack("!Q", self.value)
        if t == XrlAtomType.BOOL:
            return b"\x01" if self.value else b"\x00"
        if t == XrlAtomType.TXT:
            data = self.value.encode("utf-8")
            return struct.pack("!I", len(data)) + data
        if t == XrlAtomType.IPV4:
            return self.value.to_bytes()
        if t == XrlAtomType.IPV6:
            return self.value.to_bytes()
        if t == XrlAtomType.IPV4NET:
            return self.value.network.to_bytes() + bytes([self.value.prefix_len])
        if t == XrlAtomType.IPV6NET:
            return self.value.network.to_bytes() + bytes([self.value.prefix_len])
        if t == XrlAtomType.MAC:
            return self.value.to_bytes()
        if t == XrlAtomType.BINARY:
            return struct.pack("!I", len(self.value)) + self.value
        if t == XrlAtomType.LIST:
            parts = [struct.pack("!I", len(self.value))]
            parts.extend(a.to_binary() for a in self.value)
            return b"".join(parts)
        raise XrlError(XrlErrorCode.INTERNAL_ERROR, f"unencodable type {t}")

    @classmethod
    def from_binary(cls, data: bytes, offset: int = 0) -> Tuple["XrlAtom", int]:
        """Decode one atom at *offset*; return ``(atom, next_offset)``."""
        from repro.net import AddressError

        try:
            type_code, name_len = struct.unpack_from("!BB", data, offset)
            offset += 2
            name = data[offset : offset + name_len].decode("utf-8")
            offset += name_len
            atom_type = _CODE_TYPES[type_code]
            value, offset = cls._payload_from_binary(atom_type, data, offset)
        except (struct.error, KeyError, IndexError, UnicodeDecodeError,
                AddressError) as exc:
            raise XrlError(
                XrlErrorCode.BAD_ARGS, f"truncated or corrupt atom: {exc}"
            ) from exc
        return cls(name, atom_type, value), offset

    @staticmethod
    def _payload_from_binary(atom_type: XrlAtomType, data: bytes,
                             offset: int) -> Tuple[Any, int]:
        t = atom_type
        if t == XrlAtomType.I32:
            return struct.unpack_from("!i", data, offset)[0], offset + 4
        if t == XrlAtomType.U32:
            return struct.unpack_from("!I", data, offset)[0], offset + 4
        if t == XrlAtomType.I64:
            return struct.unpack_from("!q", data, offset)[0], offset + 8
        if t == XrlAtomType.U64:
            return struct.unpack_from("!Q", data, offset)[0], offset + 8
        if t == XrlAtomType.BOOL:
            return data[offset] != 0, offset + 1
        if t == XrlAtomType.TXT:
            (length,) = struct.unpack_from("!I", data, offset)
            offset += 4
            return data[offset : offset + length].decode("utf-8"), offset + length
        if t == XrlAtomType.IPV4:
            return IPv4(data[offset : offset + 4]), offset + 4
        if t == XrlAtomType.IPV6:
            return IPv6(data[offset : offset + 16]), offset + 16
        if t == XrlAtomType.IPV4NET:
            addr = IPv4(data[offset : offset + 4])
            return IPNet(addr, data[offset + 4]), offset + 5
        if t == XrlAtomType.IPV6NET:
            addr = IPv6(data[offset : offset + 16])
            return IPNet(addr, data[offset + 16]), offset + 17
        if t == XrlAtomType.MAC:
            return Mac(data[offset : offset + 6]), offset + 6
        if t == XrlAtomType.BINARY:
            (length,) = struct.unpack_from("!I", data, offset)
            offset += 4
            return bytes(data[offset : offset + length]), offset + length
        if t == XrlAtomType.LIST:
            (count,) = struct.unpack_from("!I", data, offset)
            offset += 4
            items = []
            for __ in range(count):
                atom, offset = XrlAtom.from_binary(data, offset)
                items.append(atom)
            return items, offset
        raise XrlError(XrlErrorCode.BAD_ARGS, f"undecodable type {t}")

    # -- dunder -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, XrlAtom)
            and self.name == other.name
            and self.type == other.type
            and self.value == other.value
        )

    def __repr__(self) -> str:
        return f"XrlAtom({self.to_text()!r})"


_TYPE_CODES = {t: i for i, t in enumerate(XrlAtomType, start=1)}
_CODE_TYPES = {i: t for t, i in _TYPE_CODES.items()}
