"""Scriptable XRL invocation — the ``call_xrl`` facility.

    "the textual form permits XRLs to be called from any scripting
    language via a simple call_xrl program.  This is put to frequent use
    in all our scripts for automated testing."  (paper §6.1)

:func:`call_xrl` takes the canonical textual XRL form, dispatches it
synchronously, and renders the response in text, so test scripts can treat
the whole router as a command-line-drivable black box.
"""

from __future__ import annotations

from typing import Tuple

from repro.xrl.error import XrlError
from repro.xrl.router import XrlRouter
from repro.xrl.xrl import Xrl


def call_xrl(router: XrlRouter, xrl_text: str,
             timeout: float = 30.0) -> Tuple[XrlError, str]:
    """Dispatch the textual XRL via *router*; return (error, response-text).

    The response text is the canonical ``name:type=value&...`` rendering of
    the return values — the exact format scripts parse.
    """
    xrl = Xrl.from_text(xrl_text)
    error, args = router.send_sync(xrl, deadline=timeout)
    return error, args.to_text()


def call_xrl_checked(router: XrlRouter, xrl_text: str,
                     timeout: float = 30.0) -> str:
    """Like :func:`call_xrl` but raises :class:`XrlError` on failure."""
    error, text = call_xrl(router, xrl_text, timeout=timeout)
    if not error.is_okay:
        raise error
    return text
