"""XRL intermediaries — the paper's §7 future-work item, implemented.

    "We can envisage taking this approach even further, and restricting
    the range of arguments that a process can use for a particular XRL
    method.  This would require an XRL intermediary, but the flexibility
    of our XRL resolution mechanism makes installing such an XRL proxy
    rather simple."

:class:`XrlProxy` registers an interface under its own target name,
validates each call's arguments against per-method constraints, and
forwards acceptable calls to the real backend target.  Because the Finder
ACLs can restrict a sandboxed process to resolving only the proxy's
target (not the backend's), the proxy becomes the *only* path to the
backend — argument-level sandboxing on top of §7's method-level ACLs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.xrl.args import XrlArgs
from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.idl import XrlInterface
from repro.xrl.router import DeferredReply, XrlRouter
from repro.xrl.xrl import Xrl

#: returns None to accept, or a human-readable refusal note
Constraint = Callable[[Dict[str, Any]], Optional[str]]


class XrlProxy:
    """Forwarding intermediary with per-method argument constraints."""

    def __init__(self, router: XrlRouter, interface: XrlInterface,
                 backend_target: str,
                 constraints: Optional[Dict[str, Constraint]] = None):
        self.router = router
        self.interface = interface
        self.backend_target = backend_target
        self.constraints: Dict[str, Constraint] = dict(constraints or {})
        self.forwarded = 0
        self.refused = 0
        for method in interface.methods.values():
            router.register_method(interface, method,
                                   self._make_handler(method.name))

    def set_constraint(self, method_name: str, constraint: Constraint) -> None:
        if method_name not in self.interface.methods:
            raise XrlError(
                XrlErrorCode.NO_SUCH_METHOD,
                f"{self.interface.fullname} has no {method_name!r}",
            )
        self.constraints[method_name] = constraint

    def _make_handler(self, method_name: str) -> Callable:
        method = self.interface.method(method_name)

        def handler(**kwargs: Any):
            constraint = self.constraints.get(method_name)
            if constraint is not None:
                refusal = constraint(kwargs)
                if refusal is not None:
                    self.refused += 1
                    raise XrlError(
                        XrlErrorCode.ACCESS_DENIED,
                        f"proxy refused {method_name}: {refusal}",
                    )
            self.forwarded += 1
            deferred = DeferredReply()
            xrl = Xrl(self.backend_target, self.interface.name,
                      self.interface.version, method_name,
                      method.build_args(kwargs))

            def completion(error: XrlError, result: XrlArgs) -> None:
                if error.is_okay:
                    deferred.reply(result)
                else:
                    deferred.fail(error)

            self.router.send(xrl, completion)
            return deferred

        return handler
