"""XRL frame codecs: the textual baseline and the negotiated binary form.

Two frame codecs share the request/response surface:

* **textual** — the original frame layout every transport speaks by
  default (the paper's "canonical" form; still self-describing and
  stateless):

  - request:  ``!I seq  !H len(method)  method-utf8  args-binary``
  - response: ``!I seq  !I errcode  !H len(note)  note-utf8  args-binary``

* **binary** — a per-connection stateful codec negotiated over TCP via a
  hello/capability exchange ("internally XRLs are encoded more
  efficiently", paper §3.1).  Msgpack-style self-describing atoms with
  varint lengths and one-byte small-integer packing, plus per-connection
  **method interning**: the resolved method string (a 16-byte access key
  + interface/version/method, ~55 bytes) is transmitted once and then
  referenced by a 1–2 byte id.  Decode bypasses per-atom validation —
  the producer validated on encode and TCP preserves bytes.

The *method* string on the wire is the **resolved** method name, i.e. the
Finder-issued 16-byte access key followed by ``interface/version/method``
(paper §7) — receivers reject requests whose key does not match.

Both codecs keep the sequence number as the first four bytes (``!I``) of
the body so transports can demux replies without knowing the codec.

Frame *kind* bytes (prefixed by codec-aware transports, i.e. TCP):

========  =====================================================
``0x00``  textual body follows
``0x01``  binary body follows
``0x7E``  HELLO — JSON capabilities, opens negotiation
``0x7F``  HELLO-ACK — JSON ``{"codec": ...}``, closes negotiation
========  =====================================================

A connection starts textual in both directions; each side switches to
binary only after the HELLO/HELLO-ACK round-trip, so an endpoint that
never answers (or answers with an empty codec set) silently leaves the
connection on the textual frames — the transparent fallback.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Tuple

from repro.net import AddressError, IPNet, IPv4, IPv6, Mac
from repro.xrl.args import XrlArgs
from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.types import XrlAtom, XrlAtomType

# -- frame kinds (transport prefix, one byte) ---------------------------------

KIND_TEXTUAL = 0x00
KIND_BINARY = 0x01
KIND_HELLO = 0x7E
KIND_HELLO_ACK = 0x7F


# -- the textual codec (module functions: the historical public surface) ------

def encode_request(seq: int, resolved_method: str, args: XrlArgs) -> bytes:
    method_bytes = resolved_method.encode("utf-8")
    return (
        struct.pack("!IH", seq & 0xFFFFFFFF, len(method_bytes))
        + method_bytes
        + args.to_binary()
    )


def decode_request(data: bytes) -> Tuple[int, str, XrlArgs]:
    try:
        seq, method_len = struct.unpack_from("!IH", data, 0)
        offset = 6
        method = data[offset : offset + method_len].decode("utf-8")
        offset += method_len
        args = XrlArgs.from_binary(data, offset)
    except (struct.error, UnicodeDecodeError) as exc:
        raise XrlError(XrlErrorCode.BAD_ARGS, f"corrupt request frame: {exc}") from exc
    return seq, method, args


def encode_response(seq: int, error: XrlError, args: Optional[XrlArgs]) -> bytes:
    note_bytes = error.note.encode("utf-8")
    body = (args if args is not None else XrlArgs()).to_binary()
    return (
        struct.pack("!IIH", seq & 0xFFFFFFFF, int(error.code), len(note_bytes))
        + note_bytes
        + body
    )


def decode_response(data: bytes) -> Tuple[int, XrlError, XrlArgs]:
    try:
        seq, code, note_len = struct.unpack_from("!IIH", data, 0)
        offset = 10
        note = data[offset : offset + note_len].decode("utf-8")
        offset += note_len
        args = XrlArgs.from_binary(data, offset)
        error = XrlError(XrlErrorCode(code), note)
    except (struct.error, ValueError, UnicodeDecodeError) as exc:
        raise XrlError(
            XrlErrorCode.BAD_ARGS, f"corrupt response frame: {exc}"
        ) from exc
    return seq, error, args


class FrameCodec:
    """Encode/decode one direction-pair of XRL frames for one connection."""

    name: str = "?"
    #: the frame-kind byte codec-aware transports prefix bodies with
    kind: int = KIND_TEXTUAL

    def encode_request(self, seq: int, resolved_method: str,
                       args: XrlArgs) -> bytes:
        raise NotImplementedError

    def decode_request(self, data: bytes) -> Tuple[int, str, XrlArgs]:
        raise NotImplementedError

    def encode_response(self, seq: int, error: XrlError,
                        args: Optional[XrlArgs]) -> bytes:
        raise NotImplementedError

    def decode_response(self, data: bytes) -> Tuple[int, XrlError, XrlArgs]:
        raise NotImplementedError


class TextualCodec(FrameCodec):
    """Stateless delegate to the canonical frame functions above."""

    name = "textual"
    kind = KIND_TEXTUAL

    encode_request = staticmethod(encode_request)
    decode_request = staticmethod(decode_request)
    encode_response = staticmethod(encode_response)
    decode_response = staticmethod(decode_response)


#: the shared stateless instance every non-negotiating transport uses
TEXTUAL = TextualCodec()


# -- varints ------------------------------------------------------------------

def write_uvarint(buf: bytearray, value: int) -> None:
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def read_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise ValueError("uvarint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63)


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# -- binary atom tags ---------------------------------------------------------

_TAG_I32 = 0x01
_TAG_U32 = 0x02
_TAG_I64 = 0x03
_TAG_U64 = 0x04
_TAG_TXT = 0x05
_TAG_BOOL_FALSE = 0x06
_TAG_BOOL_TRUE = 0x07
_TAG_IPV4 = 0x08
_TAG_IPV6 = 0x09
_TAG_IPV4NET = 0x0A
_TAG_IPV6NET = 0x0B
_TAG_MAC = 0x0C
_TAG_BINARY = 0x0D
_TAG_LIST = 0x0E
#: ``0x80 | v`` packs a u32 in [0, 0x7F] into the tag byte itself
_TAG_FIXU32 = 0x80

_PLAIN_TAGS: Dict[XrlAtomType, int] = {
    XrlAtomType.I32: _TAG_I32,
    XrlAtomType.U32: _TAG_U32,
    XrlAtomType.I64: _TAG_I64,
    XrlAtomType.U64: _TAG_U64,
    XrlAtomType.TXT: _TAG_TXT,
    XrlAtomType.IPV4: _TAG_IPV4,
    XrlAtomType.IPV6: _TAG_IPV6,
    XrlAtomType.IPV4NET: _TAG_IPV4NET,
    XrlAtomType.IPV6NET: _TAG_IPV6NET,
    XrlAtomType.MAC: _TAG_MAC,
    XrlAtomType.BINARY: _TAG_BINARY,
    XrlAtomType.LIST: _TAG_LIST,
}


def _encode_atoms(buf: bytearray, atoms: List[XrlAtom]) -> None:
    write_uvarint(buf, len(atoms))
    for atom in atoms:
        name_bytes = atom.name.encode("utf-8")
        write_uvarint(buf, len(name_bytes))
        buf += name_bytes
        t = atom.type
        value = atom.value
        if t is XrlAtomType.U32:
            if value < 0x80:
                buf.append(_TAG_FIXU32 | value)
            else:
                buf.append(_TAG_U32)
                write_uvarint(buf, value)
        elif t is XrlAtomType.TXT:
            data = value.encode("utf-8")
            buf.append(_TAG_TXT)
            write_uvarint(buf, len(data))
            buf += data
        elif t is XrlAtomType.BOOL:
            buf.append(_TAG_BOOL_TRUE if value else _TAG_BOOL_FALSE)
        elif t is XrlAtomType.I32:
            buf.append(_TAG_I32)
            write_uvarint(buf, _zigzag(value))
        elif t is XrlAtomType.I64:
            buf.append(_TAG_I64)
            write_uvarint(buf, _zigzag(value))
        elif t is XrlAtomType.U64:
            buf.append(_TAG_U64)
            write_uvarint(buf, value)
        elif t is XrlAtomType.IPV4:
            buf.append(_TAG_IPV4)
            buf += value.to_bytes()
        elif t is XrlAtomType.IPV6:
            buf.append(_TAG_IPV6)
            buf += value.to_bytes()
        elif t is XrlAtomType.IPV4NET:
            buf.append(_TAG_IPV4NET)
            buf += value.network.to_bytes()
            buf.append(value.prefix_len)
        elif t is XrlAtomType.IPV6NET:
            buf.append(_TAG_IPV6NET)
            buf += value.network.to_bytes()
            buf.append(value.prefix_len)
        elif t is XrlAtomType.MAC:
            buf.append(_TAG_MAC)
            buf += value.to_bytes()
        elif t is XrlAtomType.BINARY:
            buf.append(_TAG_BINARY)
            write_uvarint(buf, len(value))
            buf += value
        elif t is XrlAtomType.LIST:
            buf.append(_TAG_LIST)
            _encode_atoms(buf, value)
        else:  # pragma: no cover - the tag table covers every atom type
            raise XrlError(XrlErrorCode.INTERNAL_ERROR, f"unencodable type {t}")


def _new_atom(name: str, atom_type: XrlAtomType, value) -> XrlAtom:
    # Trusted fast path: the producing side ran full validation in
    # XrlAtom.__init__ and TCP preserves bytes, so decode skips it.
    atom = XrlAtom.__new__(XrlAtom)
    atom.name = name
    atom.type = atom_type
    atom.value = value
    return atom


def _decode_atoms(data: bytes, offset: int) -> Tuple[List[XrlAtom], int]:
    count, offset = read_uvarint(data, offset)
    atoms: List[XrlAtom] = []
    append = atoms.append
    for __ in range(count):
        name_len, offset = read_uvarint(data, offset)
        end = offset + name_len
        name = data[offset:end].decode("utf-8")
        tag = data[end]
        offset = end + 1
        if tag >= _TAG_FIXU32:
            append(_new_atom(name, XrlAtomType.U32, tag & 0x7F))
        elif tag == _TAG_U32:
            value, offset = read_uvarint(data, offset)
            append(_new_atom(name, XrlAtomType.U32, value))
        elif tag == _TAG_TXT:
            length, offset = read_uvarint(data, offset)
            end = offset + length
            if end > len(data):
                raise ValueError("truncated txt payload")
            append(_new_atom(name, XrlAtomType.TXT,
                             data[offset:end].decode("utf-8")))
            offset = end
        elif tag == _TAG_BOOL_TRUE:
            append(_new_atom(name, XrlAtomType.BOOL, True))
        elif tag == _TAG_BOOL_FALSE:
            append(_new_atom(name, XrlAtomType.BOOL, False))
        elif tag == _TAG_I32:
            value, offset = read_uvarint(data, offset)
            append(_new_atom(name, XrlAtomType.I32, _unzigzag(value)))
        elif tag == _TAG_I64:
            value, offset = read_uvarint(data, offset)
            append(_new_atom(name, XrlAtomType.I64, _unzigzag(value)))
        elif tag == _TAG_U64:
            value, offset = read_uvarint(data, offset)
            append(_new_atom(name, XrlAtomType.U64, value))
        elif tag == _TAG_IPV4:
            end = offset + 4
            append(_new_atom(name, XrlAtomType.IPV4, IPv4(data[offset:end])))
            offset = end
        elif tag == _TAG_IPV6:
            end = offset + 16
            append(_new_atom(name, XrlAtomType.IPV6, IPv6(data[offset:end])))
            offset = end
        elif tag == _TAG_IPV4NET:
            end = offset + 4
            append(_new_atom(name, XrlAtomType.IPV4NET,
                             IPNet(IPv4(data[offset:end]), data[end])))
            offset = end + 1
        elif tag == _TAG_IPV6NET:
            end = offset + 16
            append(_new_atom(name, XrlAtomType.IPV6NET,
                             IPNet(IPv6(data[offset:end]), data[end])))
            offset = end + 1
        elif tag == _TAG_MAC:
            end = offset + 6
            append(_new_atom(name, XrlAtomType.MAC, Mac(data[offset:end])))
            offset = end
        elif tag == _TAG_BINARY:
            length, offset = read_uvarint(data, offset)
            end = offset + length
            if end > len(data):
                raise ValueError("truncated binary payload")
            append(_new_atom(name, XrlAtomType.BINARY, bytes(data[offset:end])))
            offset = end
        elif tag == _TAG_LIST:
            value, offset = _decode_atoms(data, offset)
            append(_new_atom(name, XrlAtomType.LIST, value))
        else:
            raise ValueError(f"unknown atom tag {tag:#x}")
    return atoms, offset


def _args_from_atoms(atoms: List[XrlAtom]) -> XrlArgs:
    args = XrlArgs.__new__(XrlArgs)
    args._atoms = atoms
    args._index = {atom.name: atom for atom in atoms}
    return args


class BinaryCodec(FrameCodec):
    """One connection endpoint's binary frame state.

    Request encoding and request decoding each carry a method-intern
    table.  The tables stay consistent because frames travel over an
    ordered byte stream: the encoder assigns ids in emission order and
    the decoder assigns the same ids in arrival order.  Responses carry
    no interned state, so they survive connection-codec transitions.
    """

    name = "binary"
    kind = KIND_BINARY

    __slots__ = ("_methods_out", "_methods_in")

    def __init__(self) -> None:
        #: method -> pre-rendered token bytes (encoder side)
        self._methods_out: Dict[str, bytes] = {}
        #: id (1-based, list index + 1) -> method (decoder side)
        self._methods_in: List[str] = []

    # -- requests ---------------------------------------------------------
    def encode_request(self, seq: int, resolved_method: str,
                       args: XrlArgs) -> bytes:
        buf = bytearray(struct.pack("!I", seq & 0xFFFFFFFF))
        token = self._methods_out.get(resolved_method)
        if token is None:
            # First use on this connection: emit the definition (token 0
            # + string); later frames reference it by implicit id.
            method_bytes = resolved_method.encode("utf-8")
            buf.append(0)
            write_uvarint(buf, len(method_bytes))
            buf += method_bytes
            ref = bytearray()
            write_uvarint(ref, len(self._methods_out) + 1)
            self._methods_out[resolved_method] = bytes(ref)
        else:
            buf += token
        _encode_atoms(buf, args._atoms)
        return bytes(buf)

    def decode_request(self, data: bytes) -> Tuple[int, str, XrlArgs]:
        try:
            (seq,) = struct.unpack_from("!I", data, 0)
            token, offset = read_uvarint(data, 4)
            if token == 0:
                length, offset = read_uvarint(data, offset)
                end = offset + length
                if end > len(data):
                    raise ValueError("truncated method definition")
                method = data[offset:end].decode("utf-8")
                self._methods_in.append(method)
                offset = end
            else:
                method = self._methods_in[token - 1]
            atoms, offset = _decode_atoms(data, offset)
            if offset != len(data):
                raise ValueError(f"{len(data) - offset} trailing bytes")
        except (struct.error, ValueError, IndexError, UnicodeDecodeError,
                AddressError) as exc:
            raise XrlError(
                XrlErrorCode.BAD_ARGS, f"corrupt binary request frame: {exc}"
            ) from exc
        return seq, method, _args_from_atoms(atoms)

    # -- responses --------------------------------------------------------
    def encode_response(self, seq: int, error: XrlError,
                        args: Optional[XrlArgs]) -> bytes:
        buf = bytearray(struct.pack("!I", seq & 0xFFFFFFFF))
        write_uvarint(buf, int(error.code))
        note_bytes = error.note.encode("utf-8")
        write_uvarint(buf, len(note_bytes))
        buf += note_bytes
        _encode_atoms(buf, args._atoms if args is not None else [])
        return bytes(buf)

    def decode_response(self, data: bytes) -> Tuple[int, XrlError, XrlArgs]:
        try:
            (seq,) = struct.unpack_from("!I", data, 0)
            code, offset = read_uvarint(data, 4)
            note_len, offset = read_uvarint(data, offset)
            end = offset + note_len
            if end > len(data):
                raise ValueError("truncated error note")
            note = data[offset:end].decode("utf-8")
            atoms, offset = _decode_atoms(data, end)
            if offset != len(data):
                raise ValueError(f"{len(data) - offset} trailing bytes")
            error = XrlError(XrlErrorCode(code), note)
        except (struct.error, ValueError, IndexError, UnicodeDecodeError,
                AddressError) as exc:
            raise XrlError(
                XrlErrorCode.BAD_ARGS, f"corrupt binary response frame: {exc}"
            ) from exc
        return seq, error, _args_from_atoms(atoms)


# -- negotiation --------------------------------------------------------------

#: codecs in preference order (first common entry wins)
CODEC_PREFERENCE = ("binary", "textual")


def encode_hello(codecs) -> bytes:
    """The HELLO / HELLO-ACK payload: JSON capability dict."""
    return json.dumps({"codecs": list(codecs)}).encode("utf-8")


def decode_hello(payload: bytes) -> List[str]:
    try:
        message = json.loads(payload.decode("utf-8"))
        if not isinstance(message, dict):
            raise ValueError("hello payload must be a JSON object")
        codecs = message.get("codecs", [])
        if not isinstance(codecs, list):
            raise ValueError("codecs must be a list")
        return [str(codec) for codec in codecs]
    except (ValueError, UnicodeDecodeError) as exc:
        raise XrlError(
            XrlErrorCode.BAD_ARGS, f"corrupt hello frame: {exc}"
        ) from exc


def choose_codec(local, remote) -> str:
    """Pick the preferred codec both ends speak (textual as floor)."""
    remote_set = set(remote)
    for codec in CODEC_PREFERENCE:
        if codec in local and codec in remote_set:
            return codec
    return "textual"


def make_codec(name: str) -> FrameCodec:
    if name == "binary":
        return BinaryCodec()
    return TEXTUAL
