"""Retry policy for XRL dispatch (paper §3, §6.5).

The paper's robustness story depends on transient IPC failure being
recoverable: a routing process may die and be restarted by the Router
Manager, and its peers must ride out the gap rather than wedge.  A
:class:`RetryPolicy` makes that an explicit, opt-in property of a call:
idempotent methods may be retried with jittered exponential backoff when
the transport fails (``SEND_FAILED``), the target is momentarily
unresolvable (``RESOLVE_FAILED``, e.g. between death and restart), or an
attempt times out (``REPLY_TIMED_OUT``, e.g. a dropped frame).

Retries are never the default — a non-idempotent call (``add_peer``)
retried after a lost *response* would execute twice.  Callers opt in per
call or per transmit queue, exactly where they know idempotence holds.

The jitter source is a seeded :class:`random.Random`, so retry schedules
are deterministic under the simulated clock — the property the chaos
tests rely on.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional

from repro.xrl.error import XrlErrorCode

#: codes that indicate the call may not have reached the target at all
RETRYABLE_CODES: FrozenSet[XrlErrorCode] = frozenset({
    XrlErrorCode.SEND_FAILED,
    XrlErrorCode.RESOLVE_FAILED,
    XrlErrorCode.REPLY_TIMED_OUT,
})


class RetryPolicy:
    """How (and whether) one XRL call is retried.

    *max_attempts* bounds total tries (first attempt included).  Between
    tries the delay grows exponentially from *backoff* by *multiplier*,
    capped at *max_backoff*, with +/- *jitter* (a fraction) of random
    spread so restarted fleets do not retry in lockstep.

    *attempt_timeout*, when set, arms a per-attempt timer: an attempt
    whose reply has not arrived within it is abandoned (a late reply is
    counted and dropped) and the call re-dispatched.  This is what turns
    a silently dropped frame into a retry instead of a hang.
    """

    __slots__ = ("max_attempts", "backoff", "multiplier", "max_backoff",
                 "jitter", "codes", "attempt_timeout", "_rng")

    def __init__(self, max_attempts: int = 4, *,
                 backoff: float = 0.05,
                 multiplier: float = 2.0,
                 max_backoff: float = 2.0,
                 jitter: float = 0.1,
                 attempt_timeout: Optional[float] = 1.0,
                 codes: Optional[FrozenSet[XrlErrorCode]] = None,
                 seed: int = 0):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.multiplier = multiplier
        self.max_backoff = max_backoff
        self.jitter = jitter
        self.attempt_timeout = attempt_timeout
        self.codes = codes if codes is not None else RETRYABLE_CODES
        self._rng = random.Random(seed)

    def retryable(self, code: XrlErrorCode) -> bool:
        return code in self.codes

    def delay(self, attempt: int) -> float:
        """Backoff before retry number *attempt* (1 = first retry)."""
        base = min(self.max_backoff,
                   self.backoff * self.multiplier ** max(0, attempt - 1))
        if self.jitter <= 0:
            return base
        return base * (1.0 + self.jitter * (2.0 * self._rng.random() - 1.0))

    def __repr__(self) -> str:
        return (f"<RetryPolicy attempts={self.max_attempts} "
                f"backoff={self.backoff}x{self.multiplier}"
                f"<={self.max_backoff}>")
