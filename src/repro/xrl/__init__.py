"""XORP Resource Locators — the IPC mechanism (paper §6).

An XRL names a method on a *component* (not a process: "the unit of IPC
addressing is the component instance rather than the process").  Its
canonical form is textual and URL-like::

    finder://bgp/bgp/1.0/set_local_as?as:u32=1777

and after Finder resolution::

    stcp://192.1.2.3:16878/bgp/1.0/set_local_as?as:u32=1777

The pieces:

* :mod:`repro.xrl.types` / :mod:`repro.xrl.args` — the core argument atom
  types and their textual + binary marshaling;
* :mod:`repro.xrl.xrl` — the :class:`Xrl` object itself;
* :mod:`repro.xrl.idl` — the interface definition language, stub
  generation and signature checking;
* :mod:`repro.xrl.finder` — the Finder broker: registration, resolution
  with 16-byte per-method access keys, caching + invalidation, component
  lifetime notification, and XRL access control (paper §7);
* :mod:`repro.xrl.router` — the per-component dispatch point
  (:class:`XrlRouter`), one per component;
* :mod:`repro.xrl.transport` — pluggable protocol families: intra-process,
  TCP, UDP, simulated-latency, and "kill".
"""

from repro.xrl.args import XrlArgs
from repro.xrl.error import XrlError, XrlErrorCode
from repro.xrl.finder import Finder
from repro.xrl.idl import IdlError, IdlParseError, XrlInterface, parse_idl
from repro.xrl.router import XrlRouter
from repro.xrl.types import XrlAtom, XrlAtomType
from repro.xrl.xrl import Xrl

__all__ = [
    "Finder",
    "IdlError",
    "IdlParseError",
    "Xrl",
    "XrlArgs",
    "XrlAtom",
    "XrlAtomType",
    "XrlError",
    "XrlErrorCode",
    "XrlInterface",
    "XrlRouter",
    "parse_idl",
]
