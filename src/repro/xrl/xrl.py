"""The Xrl object: a method call naming a component, interface and method.

Canonical textual form (paper §6.1)::

    finder://bgp/bgp/1.0/set_local_as?as:u32=1777

``finder`` is the protocol slot before resolution; after Finder resolution
the slot holds a concrete protocol family and address, e.g.::

    stcp://192.1.2.3:16878/bgp/1.0/set_local_as?as:u32=1777
"""

from __future__ import annotations

from typing import Optional

from repro.xrl.args import XrlArgs
from repro.xrl.error import XrlError, XrlErrorCode

FINDER_PROTOCOL = "finder"


class Xrl:
    """One XRL: protocol, target (component), interface, version, method, args."""

    __slots__ = ("protocol", "target", "interface", "version", "method", "args")

    def __init__(self, target: str, interface: str, version: str, method: str,
                 args: Optional[XrlArgs] = None, *,
                 protocol: str = FINDER_PROTOCOL):
        for field, value in (("target", target), ("interface", interface),
                             ("version", version), ("method", method)):
            if not value or "/" in value or "?" in value:
                raise XrlError(
                    XrlErrorCode.BAD_ARGS, f"bad XRL {field}: {value!r}"
                )
        self.protocol = protocol
        self.target = target
        self.interface = interface
        self.version = version
        self.method = method
        self.args = args if args is not None else XrlArgs()

    @property
    def method_path(self) -> str:
        """``interface/version/method`` — the Finder's registration key."""
        return f"{self.interface}/{self.version}/{self.method}"

    @property
    def is_resolved(self) -> bool:
        return self.protocol != FINDER_PROTOCOL

    def to_text(self) -> str:
        base = (
            f"{self.protocol}://{self.target}/"
            f"{self.interface}/{self.version}/{self.method}"
        )
        arg_text = self.args.to_text()
        return f"{base}?{arg_text}" if arg_text else base

    @classmethod
    def from_text(cls, text: str) -> "Xrl":
        """Parse canonical XRL text (used by ``call_xrl`` scripting)."""
        protocol, sep, rest = text.partition("://")
        if not sep:
            raise XrlError(XrlErrorCode.BAD_ARGS, f"XRL missing '://': {text!r}")
        path, __, arg_text = rest.partition("?")
        pieces = path.split("/")
        if len(pieces) != 4:
            raise XrlError(
                XrlErrorCode.BAD_ARGS,
                f"XRL path needs target/interface/version/method: {text!r}",
            )
        target, interface, version, method = pieces
        return cls(target, interface, version, method,
                   XrlArgs.from_text(arg_text), protocol=protocol)

    def with_args(self, args: XrlArgs) -> "Xrl":
        return Xrl(self.target, self.interface, self.version, self.method,
                   args, protocol=self.protocol)

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"Xrl({self.to_text()!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Xrl) and self.to_text() == other.to_text()
