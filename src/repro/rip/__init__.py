"""RIP (RFC 2453 style) as a XORP process.

RIP demonstrates the paper's security architecture: it never opens a
socket itself — all packet I/O is relayed through the FEA over XRLs
(paper §7), so the RIP process can run fully sandboxed.  Its routes feed
the RIB like any other protocol's, and routes redistributed from other
protocols arrive over the ``redist4/0.1`` XRL feed.
"""

from repro.rip.packets import RipEntry, RipPacket, RipPacketError
from repro.rip.process import RipProcess

__all__ = ["RipEntry", "RipPacket", "RipPacketError", "RipProcess"]
