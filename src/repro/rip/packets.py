"""RIPv2 packet wire format (RFC 2453), with simple-password authentication."""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.net import IPNet, IPv4

RIP_COMMAND_REQUEST = 1
RIP_COMMAND_RESPONSE = 2
RIP_VERSION_2 = 2
RIP_PORT = 520
RIP_INFINITY = 16
RIP_MAX_ENTRIES = 25
RIP_AF_INET = 2
RIP_AF_AUTH = 0xFFFF
RIP_AUTH_SIMPLE = 2
#: AFI 0 in a request asks for the whole table
RIP_AF_UNSPEC = 0
#: all-RIP-routers multicast group
RIP_MCAST_GROUP = IPv4("224.0.0.9")


class RipPacketError(ValueError):
    """Malformed RIP packet."""


def _mask_from_len(prefix_len: int) -> int:
    if prefix_len == 0:
        return 0
    return (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF


def _len_from_mask(mask: int) -> int:
    # Reject non-contiguous masks.
    prefix_len = bin(mask).count("1")
    if _mask_from_len(prefix_len) != mask:
        raise RipPacketError(f"non-contiguous netmask {mask:#010x}")
    return prefix_len


class RipEntry:
    """One route entry (RTE)."""

    __slots__ = ("afi", "tag", "net", "nexthop", "metric")

    def __init__(self, net: IPNet, metric: int, *, tag: int = 0,
                 nexthop: Optional[IPv4] = None, afi: int = RIP_AF_INET):
        if not 0 <= metric <= RIP_INFINITY:
            raise RipPacketError(f"metric {metric} out of range")
        self.afi = afi
        self.tag = tag
        self.net = net
        self.nexthop = nexthop if nexthop is not None else IPv4(0)
        self.metric = metric

    def encode(self) -> bytes:
        return struct.pack(
            "!HHIIII", self.afi, self.tag, self.net.network.to_int(),
            _mask_from_len(self.net.prefix_len), self.nexthop.to_int(),
            self.metric,
        )

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "RipEntry":
        afi, tag, addr, mask, nexthop, metric = struct.unpack_from(
            "!HHIIII", data, offset)
        if metric > RIP_INFINITY:
            raise RipPacketError(f"metric {metric} above infinity")
        net = IPNet(IPv4(addr), _len_from_mask(mask))
        return cls(net, metric, tag=tag, nexthop=IPv4(nexthop), afi=afi)

    def is_whole_table_request(self) -> bool:
        return self.afi == RIP_AF_UNSPEC and self.metric == RIP_INFINITY

    def __repr__(self) -> str:
        return f"RipEntry({self.net} metric={self.metric} tag={self.tag})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RipEntry) and self.net == other.net
                and self.metric == other.metric and self.tag == other.tag
                and self.nexthop == other.nexthop and self.afi == other.afi)


class RipPacket:
    """A RIP REQUEST or RESPONSE with up to 25 entries."""

    __slots__ = ("command", "version", "entries", "auth_password")

    def __init__(self, command: int, entries: Optional[List[RipEntry]] = None,
                 *, version: int = RIP_VERSION_2,
                 auth_password: Optional[str] = None):
        if command not in (RIP_COMMAND_REQUEST, RIP_COMMAND_RESPONSE):
            raise RipPacketError(f"bad RIP command {command}")
        self.command = command
        self.version = version
        self.entries = list(entries) if entries else []
        self.auth_password = auth_password
        max_entries = RIP_MAX_ENTRIES - (1 if auth_password is not None else 0)
        if len(self.entries) > max_entries:
            raise RipPacketError(
                f"too many entries ({len(self.entries)} > {max_entries})")

    @classmethod
    def whole_table_request(cls) -> "RipPacket":
        entry = RipEntry(IPNet(IPv4(0), 0), RIP_INFINITY, afi=RIP_AF_UNSPEC)
        return cls(RIP_COMMAND_REQUEST, [entry])

    def encode(self) -> bytes:
        parts = [struct.pack("!BBH", self.command, self.version, 0)]
        if self.auth_password is not None:
            password = self.auth_password.encode("utf-8")[:16]
            parts.append(struct.pack("!HH", RIP_AF_AUTH, RIP_AUTH_SIMPLE)
                         + password.ljust(16, b"\x00"))
        parts.extend(entry.encode() for entry in self.entries)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "RipPacket":
        if len(data) < 4 or (len(data) - 4) % 20 != 0:
            raise RipPacketError(f"bad RIP packet length {len(data)}")
        command, version, zero = struct.unpack_from("!BBH", data, 0)
        if command not in (RIP_COMMAND_REQUEST, RIP_COMMAND_RESPONSE):
            raise RipPacketError(f"bad RIP command {command}")
        if zero != 0:
            raise RipPacketError("non-zero pad field")
        entries = []
        auth_password = None
        offset = 4
        first = True
        while offset < len(data):
            (afi,) = struct.unpack_from("!H", data, offset)
            if afi == RIP_AF_AUTH:
                if not first:
                    raise RipPacketError("auth entry not first")
                (auth_type,) = struct.unpack_from("!H", data, offset + 2)
                if auth_type != RIP_AUTH_SIMPLE:
                    raise RipPacketError(f"unsupported auth type {auth_type}")
                raw = data[offset + 4 : offset + 20]
                try:
                    auth_password = raw.rstrip(b"\x00").decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise RipPacketError("undecodable password") from exc
            else:
                entries.append(RipEntry.decode(data, offset))
            offset += 20
            first = False
        return cls(command, entries, version=version,
                   auth_password=auth_password)

    def __repr__(self) -> str:
        kind = "REQUEST" if self.command == RIP_COMMAND_REQUEST else "RESPONSE"
        return f"RipPacket({kind}, {len(self.entries)} entries)"
