"""The RIP process: route database, timers, and FEA-relayed packet I/O."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.process import Host, XorpProcess
from repro.interfaces import (
    COMMON_IDL,
    FEA_RAWPKT_CLIENT4_IDL,
    REDIST4_IDL,
    RIP_IDL,
)
from repro.net import IPNet, IPv4
from repro.rip.packets import (
    RIP_COMMAND_REQUEST,
    RIP_COMMAND_RESPONSE,
    RIP_INFINITY,
    RIP_MAX_ENTRIES,
    RIP_MCAST_GROUP,
    RIP_PORT,
    RipEntry,
    RipPacket,
    RipPacketError,
)
from repro.trie import RouteTrie
from repro.xrl import XrlArgs, XrlError
from repro.xrl.error import XrlErrorCode
from repro.xrl.xrl import Xrl


class RipPort:
    """One RIP-enabled interface."""

    __slots__ = ("ifname", "addr", "cost", "enabled", "update_timer",
                 "packets_in", "packets_out", "bad_packets", "password")

    def __init__(self, ifname: str, addr: IPv4, cost: int = 1):
        self.ifname = ifname
        self.addr = addr
        self.cost = cost
        self.enabled = True
        self.update_timer = None
        self.packets_in = 0
        self.packets_out = 0
        self.bad_packets = 0
        self.password: Optional[str] = None  # simple-password auth


class RipRouteEntry:
    __slots__ = ("net", "nexthop", "metric", "tag", "ifname", "origin",
                 "timeout_timer", "gc_timer", "changed", "is_local")

    def __init__(self, net: IPNet, nexthop: IPv4, metric: int, *,
                 tag: int = 0, ifname: str = "",
                 origin: Optional[IPv4] = None, is_local: bool = False):
        self.net = net
        self.nexthop = nexthop
        self.metric = metric
        self.tag = tag
        self.ifname = ifname
        self.origin = origin  # the advertising neighbour (None for local)
        self.timeout_timer = None
        self.gc_timer = None
        self.changed = False
        self.is_local = is_local

    def __repr__(self) -> str:
        return (f"RipRouteEntry({self.net} via {self.nexthop} "
                f"metric={self.metric})")


class RipProcess(XorpProcess):
    """RIP as a XORP process, sandboxed behind the FEA relay."""

    process_name = "rip"

    def __init__(self, host: Host, *, fea_target: str = "fea",
                 rib_target: Optional[str] = "rib",
                 update_interval: float = 30.0,
                 route_timeout: float = 180.0,
                 gc_timeout: float = 120.0,
                 triggered_delay: float = 2.0,
                 poisoned_reverse: bool = True):
        super().__init__(host)
        self.fea_target = fea_target
        self.rib_target = rib_target
        self.update_interval = update_interval
        self.route_timeout = route_timeout
        self.gc_timeout = gc_timeout
        self.triggered_delay = triggered_delay
        self.poisoned_reverse = poisoned_reverse
        self.xrl = self.create_router("rip", singleton=True)
        self.ports: Dict[str, RipPort] = {}
        self.routes = RouteTrie(32)
        self._triggered_pending = False
        self.metrics.gauge("routes", lambda: len(self.routes))
        self.metrics.gauge("ports", lambda: len(self.ports))
        self.xrl.bind(RIP_IDL, self)
        self.xrl.bind(FEA_RAWPKT_CLIENT4_IDL, self)
        self.xrl.bind(REDIST4_IDL, self)
        self.xrl.bind(COMMON_IDL, self)
        if rib_target is not None:
            self.xrl.send(Xrl(rib_target, "rib", "1.0", "add_igp_table4",
                              XrlArgs().add_txt("protocol", "rip")))

    # -- rip/1.0 -----------------------------------------------------------
    def xrl_add_rip_address(self, ifname: str, addr) -> None:
        if ifname in self.ports:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED, f"RIP already on {ifname!r}"
            )
        port = RipPort(ifname, addr)
        self.ports[ifname] = port
        # Open UDP 520 through the FEA relay (paper §7) and solicit the
        # neighbours' tables.
        args = (XrlArgs().add_txt("creator", self.xrl.class_name)
                .add_txt("ifname", ifname).add_u32("port", RIP_PORT))
        self.xrl.send(Xrl(self.fea_target, "fea_rawpkt4", "1.0",
                          "open_udp", args))
        self._send_packet(port, RipPacket.whole_table_request(),
                          RIP_MCAST_GROUP)
        port.update_timer = self.loop.call_periodic(
            self.update_interval, lambda: self._periodic_update(port),
            name=f"rip-update-{ifname}")

    def xrl_remove_rip_address(self, ifname: str, addr) -> None:
        port = self.ports.pop(ifname, None)
        if port is None:
            return
        if port.update_timer is not None:
            port.update_timer.cancel()
        args = (XrlArgs().add_txt("creator", self.xrl.class_name)
                .add_txt("ifname", ifname).add_u32("port", RIP_PORT))
        self.xrl.send(Xrl(self.fea_target, "fea_rawpkt4", "1.0",
                          "close_udp", args))

    def xrl_set_cost(self, ifname: str, cost: int) -> None:
        port = self.ports.get(ifname)
        if port is None:
            raise XrlError(XrlErrorCode.COMMAND_FAILED, f"no RIP on {ifname!r}")
        if not 1 <= cost < RIP_INFINITY:
            raise XrlError(XrlErrorCode.COMMAND_FAILED, f"bad cost {cost}")
        port.cost = cost

    def xrl_set_authentication(self, ifname: str, password: str) -> None:
        """Enable RFC 2453 simple-password authentication on a port."""
        port = self.ports.get(ifname)
        if port is None:
            raise XrlError(XrlErrorCode.COMMAND_FAILED, f"no RIP on {ifname!r}")
        port.password = password or None

    def xrl_get_counters(self, ifname: str) -> dict:
        port = self.ports.get(ifname)
        if port is None:
            raise XrlError(XrlErrorCode.COMMAND_FAILED, f"no RIP on {ifname!r}")
        return {"packets_in": port.packets_in, "packets_out": port.packets_out,
                "bad_packets": port.bad_packets}

    def xrl_add_static_route(self, net, nexthop, cost) -> None:
        entry = RipRouteEntry(net, nexthop, min(cost, RIP_INFINITY),
                              is_local=True)
        self._install(entry)

    # -- redist4/0.1: routes redistributed from the RIB ----------------------
    def xrl_redist_add_route4(self, net, nexthop, metric, admin_distance,
                              protocol, policytags) -> None:
        tag = policytags[0].value if policytags else 0
        entry = RipRouteEntry(net, nexthop, min(max(int(metric), 1),
                                                RIP_INFINITY),
                              tag=tag, is_local=True)
        self._install(entry)

    def xrl_redist_delete_route4(self, net, protocol) -> None:
        entry = self.routes.exact(net)
        if entry is not None and entry.is_local:
            self._start_deletion(entry)

    # -- fea_rawpkt_client4/1.0: inbound packets -----------------------------
    def xrl_recv_udp(self, ifname: str, src, port: int, payload: bytes) -> None:
        rip_port = self.ports.get(ifname)
        if rip_port is None or not rip_port.enabled:
            return
        if src == rip_port.addr:
            return  # our own multicast echoed back
        rip_port.packets_in += 1
        try:
            packet = RipPacket.decode(payload)
        except RipPacketError:
            rip_port.bad_packets += 1
            return
        if rip_port.password is not None and \
                packet.auth_password != rip_port.password:
            rip_port.bad_packets += 1
            return  # authentication failure: drop silently (RFC 2453)
        if packet.command == RIP_COMMAND_REQUEST:
            self._handle_request(rip_port, src, packet)
        else:
            self._handle_response(rip_port, src, packet)

    # -- request/response processing -------------------------------------------
    def _handle_request(self, port: RipPort, src: IPv4,
                        packet: RipPacket) -> None:
        if len(packet.entries) == 1 and packet.entries[0].is_whole_table_request():
            self._send_full_table(port, dst=src)
            return
        # Specific-prefix request: answer each entry from the table.
        entries = []
        for asked in packet.entries:
            entry = self.routes.exact(asked.net)
            metric = entry.metric if entry is not None else RIP_INFINITY
            entries.append(RipEntry(asked.net, metric, tag=asked.tag))
        self._send_packet(port, RipPacket(RIP_COMMAND_RESPONSE, entries), src)

    def _handle_response(self, port: RipPort, src: IPv4,
                         packet: RipPacket) -> None:
        for rte in packet.entries:
            metric = min(rte.metric + port.cost, RIP_INFINITY)
            nexthop = rte.nexthop if not rte.nexthop.is_zero() else src
            self._process_rte(port, src, rte.net, nexthop, metric, rte.tag)

    def _process_rte(self, port: RipPort, src: IPv4, net: IPNet,
                     nexthop: IPv4, metric: int, tag: int) -> None:
        entry: Optional[RipRouteEntry] = self.routes.exact(net)
        if entry is None:
            if metric >= RIP_INFINITY:
                return  # poison for a route we never had
            entry = RipRouteEntry(net, nexthop, metric, tag=tag,
                                  ifname=port.ifname, origin=src)
            self._install(entry)
            return
        if entry.is_local:
            return  # our own routes always win
        same_origin = entry.origin == src
        if same_origin:
            self._refresh_timeout(entry)
            if metric != entry.metric or nexthop != entry.nexthop:
                self._update_entry(entry, nexthop, metric, port, src, tag)
        elif metric < entry.metric:
            self._update_entry(entry, nexthop, metric, port, src, tag)

    def _update_entry(self, entry: RipRouteEntry, nexthop: IPv4, metric: int,
                      port: RipPort, src: IPv4, tag: int) -> None:
        if metric >= RIP_INFINITY:
            if entry.metric < RIP_INFINITY:
                self._start_deletion(entry)
            return
        was_deleted = entry.metric >= RIP_INFINITY
        entry.nexthop = nexthop
        entry.metric = metric
        entry.tag = tag
        entry.ifname = port.ifname
        entry.origin = src
        entry.changed = True
        if entry.gc_timer is not None:
            entry.gc_timer.cancel()
            entry.gc_timer = None
        self._refresh_timeout(entry)
        self._rib_update(entry, "add" if was_deleted else "replace")
        self._schedule_triggered()

    # -- route table maintenance ---------------------------------------------
    def _install(self, entry: RipRouteEntry) -> None:
        previous = self.routes.insert(entry.net, entry)
        if previous is not None and previous.timeout_timer is not None:
            previous.timeout_timer.cancel()
        if previous is not None and previous.gc_timer is not None:
            previous.gc_timer.cancel()
        entry.changed = True
        if not entry.is_local:
            self._refresh_timeout(entry)
        self._rib_update(entry, "add" if previous is None else "replace")
        self._schedule_triggered()

    def _refresh_timeout(self, entry: RipRouteEntry) -> None:
        if entry.timeout_timer is not None:
            entry.timeout_timer.reschedule_after(self.route_timeout)
        else:
            entry.timeout_timer = self.loop.call_later(
                self.route_timeout, lambda: self._on_timeout(entry),
                name=f"rip-timeout")

    def _on_timeout(self, entry: RipRouteEntry) -> None:
        if self.routes.exact(entry.net) is entry:
            self._start_deletion(entry)

    def _start_deletion(self, entry: RipRouteEntry) -> None:
        """RFC 2453 deletion process: poison, hold for GC, then remove."""
        entry.metric = RIP_INFINITY
        entry.changed = True
        if entry.timeout_timer is not None:
            entry.timeout_timer.cancel()
            entry.timeout_timer = None
        entry.gc_timer = self.loop.call_later(
            self.gc_timeout, lambda: self._on_gc(entry), name="rip-gc")
        self._rib_update(entry, "delete")
        self._schedule_triggered()

    def _on_gc(self, entry: RipRouteEntry) -> None:
        if self.routes.exact(entry.net) is entry:
            self.routes.discard(entry.net)

    # -- RIB interaction ---------------------------------------------------
    def _rib_update(self, entry: RipRouteEntry, op: str) -> None:
        if self.rib_target is None:
            return
        if op == "delete":
            args = (XrlArgs().add_txt("protocol", "rip")
                    .add_ipv4net("net", entry.net))
            method = "delete_route4"
        else:
            args = (XrlArgs().add_txt("protocol", "rip")
                    .add_ipv4net("net", entry.net)
                    .add_ipv4("nexthop", entry.nexthop)
                    .add_u32("metric", entry.metric)
                    .add_list("policytags", []))
            method = "add_route4" if op == "add" else "replace_route4"
        # Triggered updates and full-table processing arrive in bursts
        # within one turn; let the wire coalesce them.
        self.xrl.send(Xrl(self.rib_target, "rib", "1.0", method, args),
                      batch=True)

    # -- update generation --------------------------------------------------
    def _advertised_entries(self, port: RipPort,
                            changed_only: bool) -> List[RipEntry]:
        entries = []
        for net, entry in self.routes.items():
            if changed_only and not entry.changed:
                continue
            metric = entry.metric
            if entry.ifname == port.ifname and not entry.is_local:
                if not self.poisoned_reverse:
                    continue  # simple split horizon
                metric = RIP_INFINITY  # poisoned reverse
            entries.append(RipEntry(net, metric, tag=entry.tag))
        return entries

    def _send_entries(self, port: RipPort, entries: List[RipEntry],
                      dst: IPv4) -> None:
        room = RIP_MAX_ENTRIES - (1 if port.password is not None else 0)
        for start in range(0, len(entries), room):
            chunk = entries[start : start + room]
            self._send_packet(
                port,
                RipPacket(RIP_COMMAND_RESPONSE, chunk,
                          auth_password=port.password),
                dst)

    def _send_full_table(self, port: RipPort, dst: IPv4) -> None:
        entries = self._advertised_entries(port, changed_only=False)
        if entries:
            self._send_entries(port, entries, dst)

    def _periodic_update(self, port: RipPort) -> None:
        if port.enabled:
            self._send_full_table(port, RIP_MCAST_GROUP)
            if port.ifname == sorted(self.ports)[0]:
                # Changed flags reset once per cycle, after all ports sent.
                self.loop.call_soon(self._clear_changed)

    def _schedule_triggered(self) -> None:
        """Triggered updates with suppression (RFC 2453 §3.10.1)."""
        if self._triggered_pending:
            return
        self._triggered_pending = True
        self.loop.call_later(self.triggered_delay, self._send_triggered,
                             name="rip-triggered")

    def _send_triggered(self) -> None:
        self._triggered_pending = False
        for port in self.ports.values():
            if not port.enabled:
                continue
            entries = self._advertised_entries(port, changed_only=True)
            if entries:
                self._send_entries(port, entries, RIP_MCAST_GROUP)
        self._clear_changed()

    def _clear_changed(self) -> None:
        if not self.running:  # deferred past shutdown: nothing to clear
            return
        for __, entry in self.routes.items():
            entry.changed = False

    def _send_packet(self, port: RipPort, packet: RipPacket,
                     dst: IPv4) -> None:
        port.packets_out += 1
        args = (XrlArgs().add_txt("ifname", port.ifname)
                .add_ipv4("dst", dst).add_u32("port", RIP_PORT)
                .add_binary("payload", packet.encode()))
        self.xrl.send(Xrl(self.fea_target, "fea_rawpkt4", "1.0",
                          "send_udp", args))

    # -- common/0.1 -----------------------------------------------------------
    def xrl_get_target_name(self) -> dict:
        return {"name": self.xrl.instance_name}

    def xrl_get_version(self) -> dict:
        return {"version": "repro-rip/1.0"}

    def xrl_get_status(self) -> dict:
        return {"status": "running" if self.running else "shutdown"}

    def xrl_shutdown(self) -> None:
        self.loop.call_soon(self.shutdown)

    def shutdown(self) -> None:
        for port in self.ports.values():
            if port.update_timer is not None:
                port.update_timer.cancel()
        super().shutdown()
