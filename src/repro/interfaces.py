"""The XRL interface catalogue — this stack's equivalent of XORP's ``xrl/interfaces/*.xif``.

Every inter-process API in the system is declared here in IDL form and
parsed once at import.  Keeping the catalogue central does two things the
paper cares about: the APIs used by our own protocols are *exactly* the
APIs available to third-party extensions ("Protocols such as BGP and RIP
are not special in the XORP design — they use APIs equally available to
all"), and every boundary is visible in one place for review.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.xrl.idl import XrlInterface, parse_idl

IDL_TEXT = """
/* ---- Routing Information Base ------------------------------------- */

interface rib/1.0 {
    add_igp_table4 ? protocol:txt;
    add_egp_table4 ? protocol:txt;
    add_igp_table6 ? protocol:txt;
    add_egp_table6 ? protocol:txt;

    flush_table4   ? protocol:txt;

    add_route4     ? protocol:txt & net:ipv4net & nexthop:ipv4 & metric:u32 & policytags:list;
    replace_route4 ? protocol:txt & net:ipv4net & nexthop:ipv4 & metric:u32 & policytags:list;
    delete_route4  ? protocol:txt & net:ipv4net;
    add_route6     ? protocol:txt & net:ipv6net & nexthop:ipv6 & metric:u32 & policytags:list;
    replace_route6 ? protocol:txt & net:ipv6net & nexthop:ipv6 & metric:u32 & policytags:list;
    delete_route6  ? protocol:txt & net:ipv6net;

    lookup_route_by_dest4 ? addr:ipv4
        -> resolves:bool & net:ipv4net & nexthop:ipv4 & metric:u32 & admin_distance:u32 & protocol:txt;

    register_interest4 ? target:txt & addr:ipv4
        -> resolves:bool & net:ipv4net & subnet:ipv4net & nexthop:ipv4 & metric:u32 & admin_distance:u32;
    deregister_interest4 ? target:txt & subnet:ipv4net;

    redist_enable4  ? target:txt & from_protocol:txt;
    redist_disable4 ? target:txt & from_protocol:txt;

    get_protocol_admin_distance ? protocol:txt -> admin_distance:u32;
}

/* Notifications the RIB sends to components that registered interest
   (paper 5.2.1: "the RIB will send a 'cache invalidated' message for the
   relevant subnet, and BGP can re-query the RIB"). */
interface rib_client/0.1 {
    route_info_invalid4 ? subnet:ipv4net;
}

/* Route redistribution feed (RIB -> routing protocol). */
interface redist4/0.1 {
    redist_add_route4    ? net:ipv4net & nexthop:ipv4 & metric:u32 & admin_distance:u32 & protocol:txt & policytags:list;
    redist_delete_route4 ? net:ipv4net & protocol:txt;
}

/* ---- Forwarding Engine Abstraction --------------------------------- */

interface fea_fib/1.0 {
    /* Every mutating call replies with the dataplane pressure signal:
       queued = operations submitted to the backend but not yet acked,
       congested = the driver's watermark latch.  The RIB's flow
       controller reads these to pace its redistribution stream. */
    add_entry4    ? net:ipv4net & nexthop:ipv4 & ifname:txt -> queued:u32 & congested:bool;
    delete_entry4 ? net:ipv4net -> queued:u32 & congested:bool;
    lookup_entry4 ? addr:ipv4 -> resolves:bool & net:ipv4net & nexthop:ipv4 & ifname:txt;
    add_entry6    ? net:ipv6net & nexthop:ipv6 & ifname:txt -> queued:u32 & congested:bool;
    delete_entry6 ? net:ipv6net -> queued:u32 & congested:bool;
    /* Vectorized entry points: one XRL per route segment.  The lists
       are parallel (nets[i] goes via nexthops[i] on ifnames[i]);
       semantically identical to N singular calls, in order. */
    add_entries4    ? nets:list & nexthops:list & ifnames:list -> queued:u32 & congested:bool;
    delete_entries4 ? nets:list -> queued:u32 & congested:bool;
    add_entries6    ? nets:list & nexthops:list & ifnames:list -> queued:u32 & congested:bool;
    delete_entries6 ? nets:list -> queued:u32 & congested:bool;
    /* Dataplane management: which backend is attached, how it feels,
       and an operator-triggered shadow-vs-dump reconciliation pass. */
    get_backend_status -> backend:txt & healthy:bool & state:txt;
    get_queue_status   -> queued:u32 & congested:bool;
    reconcile          -> adds:u32 & deletes:u32;
}

interface fea_ifmgr/1.0 {
    get_interfaces -> ifnames:txt;
    get_interface_addr4 ? ifname:txt -> addr:ipv4 & prefix_len:u32;
    set_interface_enabled ? ifname:txt & enabled:bool;
    get_interface_enabled ? ifname:txt -> enabled:bool;
}

/* Privileged network access relayed through the FEA (paper 7: "rather
   than sending UDP packets directly, RIP sends and receives packets
   using XRL calls to the FEA"). */
interface fea_rawpkt4/1.0 {
    open_udp    ? creator:txt & ifname:txt & port:u32;
    close_udp   ? creator:txt & ifname:txt & port:u32;
    send_udp    ? ifname:txt & dst:ipv4 & port:u32 & payload:binary;
}

/* Packets delivered back to the protocol that opened the socket. */
interface fea_rawpkt_client4/1.0 {
    recv_udp ? ifname:txt & src:ipv4 & port:u32 & payload:binary;
}

/* ---- Multicast FEA additions ---------------------------------------- */

interface fea_mfib/1.0 {
    add_mfc4    ? source:ipv4 & group:ipv4 & iif:txt & oifs:txt;
    delete_mfc4 ? source:ipv4 & group:ipv4;
}

/* ---- BGP ------------------------------------------------------------- */

interface bgp/1.0 {
    set_local_as   ? as:u32;
    get_local_as   -> as:u32;
    set_bgp_id     ? id:ipv4;
    add_peer       ? peer:ipv4 & as:u32 & next_hop:ipv4 & holdtime:u32;
    delete_peer    ? peer:ipv4;
    enable_peer    ? peer:ipv4;
    disable_peer   ? peer:ipv4;
    originate_route4 ? net:ipv4net & next_hop:ipv4 & unicast:bool;
    withdraw_route4  ? net:ipv4net;
    get_peer_list  -> peers:txt;
    get_route_count -> count:u32;
}

/* ---- RIP -------------------------------------------------------------- */

interface rip/1.0 {
    add_rip_address    ? ifname:txt & addr:ipv4;
    remove_rip_address ? ifname:txt & addr:ipv4;
    set_cost           ? ifname:txt & cost:u32;
    set_authentication ? ifname:txt & password:txt;
    get_counters       ? ifname:txt -> packets_in:u32 & packets_out:u32 & bad_packets:u32;
    add_static_route   ? net:ipv4net & nexthop:ipv4 & cost:u32;
}

/* ---- OSPF -------------------------------------------------------------- */

interface ospf/0.1 {
    add_ospf_interface ? ifname:txt & addr:ipv4 & prefix_len:u32 & cost:u32;
    get_neighbors  -> neighbors:txt;
    get_lsdb       -> lsdb:txt;
    get_router_id  -> id:ipv4;
}

/* ---- Static routes ---------------------------------------------------- */

interface static_routes/0.1 {
    add_route4    ? net:ipv4net & nexthop:ipv4 & metric:u32;
    delete_route4 ? net:ipv4net;
}

/* ---- Policy ------------------------------------------------------------ */

interface policy/0.1 {
    configure_filter ? filter_id:u32 & policy_source:txt;
    reset_filter     ? filter_id:u32;
}

/* ---- PIM-SM / IGMP ------------------------------------------------------ */

interface mld6igmp/0.1 {
    add_membership4    ? ifname:txt & group:ipv4;
    delete_membership4 ? ifname:txt & group:ipv4;
    list_memberships4  ? ifname:txt -> groups:txt;
}

interface mld6igmp_client/0.1 {
    membership_change4 ? ifname:txt & group:ipv4 & joined:bool;
}

interface pim/0.1 {
    set_rp ? group_prefix:ipv4net & rp:ipv4;
    join_group4  ? ifname:txt & group:ipv4;
    leave_group4 ? ifname:txt & group:ipv4;
}

/* ---- Router manager ------------------------------------------------------ */

interface rtrmgr/1.0 {
    get_config    -> config:txt;
    get_modules   -> modules:txt;
}

/* Common target housekeeping, implemented by every process. */
interface common/0.1 {
    get_target_name -> name:txt;
    get_version     -> version:txt;
    get_status      -> status:txt;
    shutdown;
}

/* ---- Profiling (paper 8.1: "XORP provides a profiling facility") ------- */

interface profile/1.0 {
    enable      ? pname:txt;
    disable     ? pname:txt;
    clear       ? pname:txt;
    list        -> pnames:txt;
    get_entries ? pname:txt -> entries:txt;
}

/* ---- Finder (resolution exposed over XRL, paper 6.2) ------------------- */

interface finder/1.0 {
    resolve_xrl ? xrl:txt -> resolved:txt;
    get_target_list -> targets:txt;
    get_class_instances ? class_name:txt -> instances:txt;
    target_exists ? target:txt -> exists:bool;
}

/* ---- Observability (the repro.obs scrape surface) ---------------------
   Every process binds metrics/1.0, so an external collector can scrape
   counters/gauges/histograms over XRLs the same way the paper makes
   profiling externally scriptable (8.1).  trace/1.0 exposes the causal
   route tracer's reconstructed span trees wherever a harness binds it. */

interface metrics/1.0 {
    list_metrics -> names:txt;
    get_metric   ? name:txt -> kind:txt & value:txt;
    get_metrics  -> report:txt;
}

interface trace/1.0 {
    list_traces -> trace_ids:txt;
    get_spans   ? trace_id:u32 -> spans:txt;
}

/* ---- Benchmark scaffolding (paper 8.2 XRL performance runs).  The
   ``noargs`` endpoint is served raw (unchecked) so scaling runs can vary
   the atom count without redeclaring a method per payload size. */

interface bench/1.0 {
    noargs;
}
"""

_CATALOGUE = parse_idl(IDL_TEXT)


def interface(fullname: str) -> XrlInterface:
    """Fetch an interface from the catalogue by ``name/version``."""
    return _CATALOGUE[fullname]


def catalogue() -> Dict[str, XrlInterface]:
    """The full interface catalogue, keyed by ``name/version``.

    This is the machine-readable view tooling builds on: the
    ``repro.analysis`` conformance checker cross-checks every XRL call
    site and handler registration in the tree against exactly this
    mapping, the way XORP's ``xrlc`` checked stubs against the ``.xif``
    files at build time.
    """
    return dict(_CATALOGUE)


def describe_catalogue() -> Dict[str, Dict[str, Dict[str, Tuple[Tuple[str, str], ...]]]]:
    """Plain-data rendering of the catalogue (no repro.xrl objects)."""
    return {name: iface.describe() for name, iface in _CATALOGUE.items()}


def request_spec(fullname: str, method: str) -> Tuple[Tuple[str, str], ...]:
    """``((atom, idl-type), ...)`` a caller must send for *method*.

    Raises ``KeyError`` for unknown interfaces or methods — tooling that
    wants a soft miss should pre-check with :func:`catalogue`.
    """
    return tuple(_CATALOGUE[fullname].methods[method].signature[0])


def reply_spec(fullname: str, method: str) -> Tuple[Tuple[str, str], ...]:
    """``((atom, idl-type), ...)`` the handler's reply carries for *method*.

    This is what the protocol-graph conformance pass (PRO003/PRO006 in
    ``repro.analysis.protograph``) checks caller-side reads against.
    """
    return tuple(_CATALOGUE[fullname].methods[method].signature[1])


def reply_atom_types(fullname: str, method: str) -> Dict[str, str]:
    """Reply atoms of *method* as ``{atom-name: idl-type}``."""
    return dict(reply_spec(fullname, method))


def versions_by_name() -> Dict[str, Tuple[str, ...]]:
    """Interface name -> every version the catalogue declares, sorted."""
    grouped: Dict[str, list] = {}
    for iface in _CATALOGUE.values():
        grouped.setdefault(iface.name, []).append(iface.version)
    return {name: tuple(sorted(versions))
            for name, versions in grouped.items()}


RIB_IDL = interface("rib/1.0")
RIB_CLIENT_IDL = interface("rib_client/0.1")
REDIST4_IDL = interface("redist4/0.1")
FEA_FIB_IDL = interface("fea_fib/1.0")
FEA_IFMGR_IDL = interface("fea_ifmgr/1.0")
FEA_RAWPKT4_IDL = interface("fea_rawpkt4/1.0")
FEA_RAWPKT_CLIENT4_IDL = interface("fea_rawpkt_client4/1.0")
FEA_MFIB_IDL = interface("fea_mfib/1.0")
BGP_IDL = interface("bgp/1.0")
RIP_IDL = interface("rip/1.0")
OSPF_IDL = interface("ospf/0.1")
STATIC_ROUTES_IDL = interface("static_routes/0.1")
POLICY_IDL = interface("policy/0.1")
MLD6IGMP_IDL = interface("mld6igmp/0.1")
MLD6IGMP_CLIENT_IDL = interface("mld6igmp_client/0.1")
PIM_IDL = interface("pim/0.1")
RTRMGR_IDL = interface("rtrmgr/1.0")
COMMON_IDL = interface("common/0.1")
PROFILER_IDL = interface("profile/1.0")
FINDER_IDL = interface("finder/1.0")
METRICS_IDL = interface("metrics/1.0")
TRACE_IDL = interface("trace/1.0")
BENCH_IDL = interface("bench/1.0")
