"""IP prefixes (subnets).

:class:`IPNet` is the key type of the whole stack: routes are keyed by
prefix, the Patricia trie stores prefixes, and the RIB's interest
registration (paper §5.2.1) is pure prefix arithmetic.
"""

from __future__ import annotations

from typing import Generic, Iterator, Tuple, Type, TypeVar, Union

from repro.net.addr import AddressError, IPv4, IPv6

A = TypeVar("A", IPv4, IPv6)


class IPNet(Generic[A]):
    """An address prefix: a masked network address plus a prefix length.

    The network address is always stored masked, so two ``IPNet`` objects
    describing the same subnet always compare equal::

        >>> IPNet.parse("128.16.64.1/18") == IPNet.parse("128.16.64.0/18")
        True
    """

    __slots__ = ("_masked", "_prefix_len", "_hash")

    def __init__(self, addr: A, prefix_len: int):
        if not 0 <= prefix_len <= addr.BITS:
            raise AddressError(
                f"prefix length {prefix_len} out of range for {addr!r}"
            )
        self._masked: A = addr.mask_by_prefix_len(prefix_len)
        self._prefix_len = prefix_len
        self._hash = hash((self._masked, prefix_len))

    # -- construction -----------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "IPNet":
        """Parse ``"a.b.c.d/len"`` or ``"x::y/len"`` text."""
        addr_text, sep, len_text = text.partition("/")
        if not sep:
            raise AddressError(f"prefix needs a '/length': {text!r}")
        try:
            prefix_len = int(len_text)
        except ValueError as exc:
            raise AddressError(f"bad prefix length in {text!r}") from exc
        addr: Union[IPv4, IPv6]
        if ":" in addr_text:
            addr = IPv6(addr_text)
        else:
            addr = IPv4(addr_text)
        return cls(addr, prefix_len)

    @classmethod
    def default_route(cls, addr_cls: Type[A]) -> "IPNet[A]":
        return cls(addr_cls.zero(), 0)

    # -- accessors ---------------------------------------------------------
    @property
    def network(self) -> A:
        """The (masked) network address."""
        return self._masked

    @property
    def prefix_len(self) -> int:
        return self._prefix_len

    @property
    def bits(self) -> int:
        """Width of the address family in bits (32 or 128)."""
        return self._masked.BITS

    def key(self) -> Tuple[int, int]:
        """A cheap canonical key ``(network-int, prefix-len)``."""
        return (self._masked.to_int(), self._prefix_len)

    def first_addr(self) -> A:
        return self._masked

    def last_addr(self) -> A:
        host_bits = self.bits - self._prefix_len
        value = self._masked.to_int() | ((1 << host_bits) - 1)
        return type(self._masked).from_int(value)

    def is_default(self) -> bool:
        return self._prefix_len == 0

    def is_ipv4(self) -> bool:
        return isinstance(self._masked, IPv4)

    def is_ipv6(self) -> bool:
        return isinstance(self._masked, IPv6)

    # -- containment -------------------------------------------------------
    def contains_addr(self, addr: A) -> bool:
        """True if *addr* falls inside this prefix."""
        if addr.BITS != self.bits:
            return False
        return addr.mask_by_prefix_len(self._prefix_len) == self._masked

    def contains(self, other: "IPNet[A]") -> bool:
        """True if *other* is equal to or more specific than this prefix."""
        if other.bits != self.bits:
            return False
        if other._prefix_len < self._prefix_len:
            return False
        return other._masked.mask_by_prefix_len(self._prefix_len) == self._masked

    def overlaps(self, other: "IPNet[A]") -> bool:
        return self.contains(other) or other.contains(self)

    # -- derivation ----------------------------------------------------------
    def supernet(self) -> "IPNet[A]":
        """The prefix one bit shorter that contains this one."""
        if self._prefix_len == 0:
            raise AddressError("default route has no supernet")
        return IPNet(self._masked, self._prefix_len - 1)

    def halves(self) -> Tuple["IPNet[A]", "IPNet[A]"]:
        """Split into the two one-bit-longer subnets (low, high)."""
        if self._prefix_len >= self.bits:
            raise AddressError("host route cannot be split")
        new_len = self._prefix_len + 1
        low = IPNet(self._masked, new_len)
        hi_value = self._masked.to_int() | (1 << (self.bits - new_len))
        high = IPNet(type(self._masked).from_int(hi_value), new_len)
        return low, high

    def half_containing(self, addr: A) -> "IPNet[A]":
        """The one-bit-longer subnet of this prefix that contains *addr*."""
        low, high = self.halves()
        if low.contains_addr(addr):
            return low
        if high.contains_addr(addr):
            return high
        raise AddressError(f"{addr!r} is not inside {self!r}")

    def hosts(self) -> Iterator[A]:
        """Iterate every address in the prefix (tests / small nets only)."""
        start = self._masked.to_int()
        end = self.last_addr().to_int()
        addr_cls = type(self._masked)
        for value in range(start, end + 1):
            yield addr_cls.from_int(value)

    # -- dunder --------------------------------------------------------------
    def __str__(self) -> str:
        return f"{self._masked}/{self._prefix_len}"

    def __repr__(self) -> str:
        return f"IPNet({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IPNet)
            and self._prefix_len == other._prefix_len
            and self._masked == other._masked
        )

    def __lt__(self, other: "IPNet[A]") -> bool:
        """Order by network address then by prefix length (shorter first)."""
        if self._masked != other._masked:
            return self._masked < other._masked
        return self._prefix_len < other._prefix_len

    def __le__(self, other: "IPNet[A]") -> bool:
        return self == other or self < other

    def __hash__(self) -> int:
        return self._hash


def IPv4Net(text_or_addr: Union[str, IPv4], prefix_len: int = None) -> IPNet[IPv4]:
    """Convenience constructor for IPv4 prefixes."""
    if isinstance(text_or_addr, str) and prefix_len is None:
        net = IPNet.parse(text_or_addr)
        if not net.is_ipv4():
            raise AddressError(f"not an IPv4 prefix: {text_or_addr!r}")
        return net
    if isinstance(text_or_addr, str):
        return IPNet(IPv4(text_or_addr), prefix_len)
    return IPNet(text_or_addr, prefix_len if prefix_len is not None else 32)


def IPv6Net(text_or_addr: Union[str, IPv6], prefix_len: int = None) -> IPNet[IPv6]:
    """Convenience constructor for IPv6 prefixes."""
    if isinstance(text_or_addr, str) and prefix_len is None:
        net = IPNet.parse(text_or_addr)
        if not net.is_ipv6():
            raise AddressError(f"not an IPv6 prefix: {text_or_addr!r}")
        return net
    if isinstance(text_or_addr, str):
        return IPNet(IPv6(text_or_addr), prefix_len)
    return IPNet(text_or_addr, prefix_len if prefix_len is not None else 128)
