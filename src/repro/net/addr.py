"""IP address types.

Addresses are immutable, hashable, and backed by plain integers so that the
hot paths (trie walks, decision comparisons, marshaling) stay cheap.  The
classes deliberately do not subclass anything from :mod:`ipaddress`; the
router code relies on a handful of operations (bit access, masking,
ordering) that are simpler to guarantee on a purpose-built type.
"""

from __future__ import annotations

import socket
import struct
from typing import Union


class AddressError(ValueError):
    """Raised when an address or prefix cannot be parsed or is malformed."""


def _parse_ipv4(text: str) -> int:
    try:
        packed = socket.inet_aton(text)
    except (OSError, TypeError) as exc:
        raise AddressError(f"malformed IPv4 address {text!r}") from exc
    # inet_aton accepts shorthand like "10.1"; the router wants dotted quads.
    if text.count(".") != 3:
        raise AddressError(f"IPv4 address must be a dotted quad: {text!r}")
    return struct.unpack("!I", packed)[0]


def _parse_ipv6(text: str) -> int:
    try:
        packed = socket.inet_pton(socket.AF_INET6, text)
    except (OSError, TypeError) as exc:
        raise AddressError(f"malformed IPv6 address {text!r}") from exc
    hi, lo = struct.unpack("!QQ", packed)
    return (hi << 64) | lo


class IPv4:
    """An IPv4 address.

    Construct from a dotted-quad string, another :class:`IPv4`, an integer,
    or 4 packed bytes::

        >>> IPv4("128.16.0.1").to_int() == IPv4(0x80100001).to_int()
        True
    """

    __slots__ = ("_value",)

    BITS = 32
    AFI = 1  # address family identifier, as used in routing protocols
    MAX = (1 << 32) - 1

    def __init__(self, value: Union[str, int, bytes, "IPv4"] = 0):
        if isinstance(value, IPv4):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= self.MAX:
                raise AddressError(f"IPv4 value out of range: {value:#x}")
            self._value = value
        elif isinstance(value, str):
            self._value = _parse_ipv4(value)
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 4:
                raise AddressError(f"IPv4 needs 4 packed bytes, got {len(value)}")
            self._value = struct.unpack("!I", bytes(value))[0]
        else:
            raise AddressError(f"cannot build IPv4 from {type(value).__name__}")

    # -- conversions ----------------------------------------------------
    def to_int(self) -> int:
        """Return the address as a host-order integer."""
        return self._value

    def to_bytes(self) -> bytes:
        """Return the 4-byte network-order representation."""
        return struct.pack("!I", self._value)

    @classmethod
    def from_int(cls, value: int) -> "IPv4":
        return cls(value)

    @classmethod
    def zero(cls) -> "IPv4":
        return cls(0)

    @classmethod
    def all_ones(cls) -> "IPv4":
        return cls(cls.MAX)

    # -- predicates ------------------------------------------------------
    def is_zero(self) -> bool:
        return self._value == 0

    def is_unicast(self) -> bool:
        """True for addresses usable as unicast destinations."""
        return not (self.is_multicast() or self._value == self.MAX)

    def is_multicast(self) -> bool:
        return 0xE0000000 <= self._value <= 0xEFFFFFFF

    def is_loopback(self) -> bool:
        return (self._value >> 24) == 127

    def is_link_local(self) -> bool:
        return (self._value >> 16) == 0xA9FE  # 169.254/16

    # -- arithmetic used by prefix math ----------------------------------
    def mask_by_prefix_len(self, prefix_len: int) -> "IPv4":
        """Return the address with all bits below *prefix_len* cleared."""
        if not 0 <= prefix_len <= self.BITS:
            raise AddressError(f"bad IPv4 prefix length {prefix_len}")
        if prefix_len == 0:
            return IPv4(0)
        mask = (self.MAX << (self.BITS - prefix_len)) & self.MAX
        return IPv4(self._value & mask)

    def bit(self, index: int) -> int:
        """Return bit *index*, counting 0 as the most significant bit."""
        return (self._value >> (self.BITS - 1 - index)) & 1

    # -- dunder ----------------------------------------------------------
    def __str__(self) -> str:
        return socket.inet_ntoa(self.to_bytes())

    def __repr__(self) -> str:
        return f"IPv4({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv4) and self._value == other._value

    def __lt__(self, other: "IPv4") -> bool:
        return self._value < other._value

    def __le__(self, other: "IPv4") -> bool:
        return self._value <= other._value

    def __gt__(self, other: "IPv4") -> bool:
        return self._value > other._value

    def __ge__(self, other: "IPv4") -> bool:
        return self._value >= other._value

    def __hash__(self) -> int:
        return hash((1, self._value))

    def __int__(self) -> int:
        return self._value


class IPv6:
    """An IPv6 address, same shape as :class:`IPv4` but 128 bits wide."""

    __slots__ = ("_value",)

    BITS = 128
    AFI = 2
    MAX = (1 << 128) - 1

    def __init__(self, value: Union[str, int, bytes, "IPv6"] = 0):
        if isinstance(value, IPv6):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= self.MAX:
                raise AddressError(f"IPv6 value out of range: {value:#x}")
            self._value = value
        elif isinstance(value, str):
            self._value = _parse_ipv6(value)
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 16:
                raise AddressError(f"IPv6 needs 16 packed bytes, got {len(value)}")
            hi, lo = struct.unpack("!QQ", bytes(value))
            self._value = (hi << 64) | lo
        else:
            raise AddressError(f"cannot build IPv6 from {type(value).__name__}")

    def to_int(self) -> int:
        return self._value

    def to_bytes(self) -> bytes:
        return struct.pack("!QQ", self._value >> 64, self._value & ((1 << 64) - 1))

    @classmethod
    def from_int(cls, value: int) -> "IPv6":
        return cls(value)

    @classmethod
    def zero(cls) -> "IPv6":
        return cls(0)

    @classmethod
    def all_ones(cls) -> "IPv6":
        return cls(cls.MAX)

    def is_zero(self) -> bool:
        return self._value == 0

    def is_unicast(self) -> bool:
        return not self.is_multicast()

    def is_multicast(self) -> bool:
        return (self._value >> 120) == 0xFF

    def is_loopback(self) -> bool:
        return self._value == 1

    def is_link_local(self) -> bool:
        return (self._value >> 118) == 0x3FA  # fe80::/10

    def mask_by_prefix_len(self, prefix_len: int) -> "IPv6":
        if not 0 <= prefix_len <= self.BITS:
            raise AddressError(f"bad IPv6 prefix length {prefix_len}")
        if prefix_len == 0:
            return IPv6(0)
        mask = (self.MAX << (self.BITS - prefix_len)) & self.MAX
        return IPv6(self._value & mask)

    def bit(self, index: int) -> int:
        return (self._value >> (self.BITS - 1 - index)) & 1

    def __str__(self) -> str:
        return socket.inet_ntop(socket.AF_INET6, self.to_bytes())

    def __repr__(self) -> str:
        return f"IPv6({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv6) and self._value == other._value

    def __lt__(self, other: "IPv6") -> bool:
        return self._value < other._value

    def __le__(self, other: "IPv6") -> bool:
        return self._value <= other._value

    def __gt__(self, other: "IPv6") -> bool:
        return self._value > other._value

    def __ge__(self, other: "IPv6") -> bool:
        return self._value >= other._value

    def __hash__(self) -> int:
        return hash((2, self._value))

    def __int__(self) -> int:
        return self._value


AnyAddr = Union[IPv4, IPv6]


class IPvX:
    """A family-agnostic address wrapper.

    XORP's ``IPvX`` lets family-independent code (the RIB, the FEA, XRL
    marshaling) carry either an IPv4 or an IPv6 address in one slot.
    """

    __slots__ = ("_addr",)

    def __init__(self, value: Union[str, AnyAddr, "IPvX"]):
        if isinstance(value, IPvX):
            self._addr: AnyAddr = value._addr
        elif isinstance(value, (IPv4, IPv6)):
            self._addr = value
        elif isinstance(value, str):
            if ":" in value:
                self._addr = IPv6(value)
            else:
                self._addr = IPv4(value)
        else:
            raise AddressError(f"cannot build IPvX from {type(value).__name__}")

    @property
    def family(self) -> int:
        return self._addr.AFI

    def is_ipv4(self) -> bool:
        return isinstance(self._addr, IPv4)

    def is_ipv6(self) -> bool:
        return isinstance(self._addr, IPv6)

    def get_ipv4(self) -> IPv4:
        if not isinstance(self._addr, IPv4):
            raise AddressError("IPvX does not hold an IPv4 address")
        return self._addr

    def get_ipv6(self) -> IPv6:
        if not isinstance(self._addr, IPv6):
            raise AddressError("IPvX does not hold an IPv6 address")
        return self._addr

    def unwrap(self) -> AnyAddr:
        """Return the concrete family-specific address."""
        return self._addr

    def __str__(self) -> str:
        return str(self._addr)

    def __repr__(self) -> str:
        return f"IPvX({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPvX):
            return self._addr == other._addr
        if isinstance(other, (IPv4, IPv6)):
            return self._addr == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._addr)
