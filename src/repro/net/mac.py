"""Ethernet MAC addresses (one of the XRL core atom types)."""

from __future__ import annotations

import re
from typing import Union

from repro.net.addr import AddressError

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}$")


class Mac:
    """A 48-bit Ethernet address, printed as ``aa:bb:cc:dd:ee:ff``."""

    __slots__ = ("_value",)

    BITS = 48
    MAX = (1 << 48) - 1

    def __init__(self, value: Union[str, int, bytes, "Mac"] = 0):
        if isinstance(value, Mac):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= self.MAX:
                raise AddressError(f"MAC value out of range: {value:#x}")
            self._value = value
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise AddressError(f"malformed MAC address {value!r}")
            self._value = int(value.replace(":", ""), 16)
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise AddressError(f"MAC needs 6 packed bytes, got {len(value)}")
            self._value = int.from_bytes(bytes(value), "big")
        else:
            raise AddressError(f"cannot build Mac from {type(value).__name__}")

    def to_int(self) -> int:
        return self._value

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(6, "big")

    def is_multicast(self) -> bool:
        return bool((self._value >> 40) & 1)

    def is_broadcast(self) -> bool:
        return self._value == self.MAX

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"Mac({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Mac) and self._value == other._value

    def __lt__(self, other: "Mac") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(("mac", self._value))
