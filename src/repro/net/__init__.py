"""Network addressing primitives used throughout the stack.

XORP uses C++ template classes (``IPv4``, ``IPv6``, ``IPvX``, ``IPNet<A>``)
so that a single protocol implementation can serve both address families.
This package mirrors that arrangement: :class:`IPv4`, :class:`IPv6`, the
family-agnostic :class:`IPvX`, and the prefix type :class:`IPNet`.
"""

from repro.net.addr import IPv4, IPv6, IPvX, AddressError
from repro.net.mac import Mac
from repro.net.prefix import IPNet, IPv4Net, IPv6Net

__all__ = [
    "AddressError",
    "IPNet",
    "IPv4",
    "IPv4Net",
    "IPv6",
    "IPv6Net",
    "IPvX",
    "Mac",
]
