"""Path-compressed binary trie keyed by IP prefix, plus safe iterators.

The trie is the storage behind every origin table (BGP PeerIn, RIB origin
stages) and behind the RIB's interest-registration arithmetic.  Nodes are
ordered so that a preorder walk yields prefixes in ``(network, prefix-len)``
order — the order :class:`repro.net.IPNet` sorts in — which the fanout
dump logic relies on.

Iterator safety follows the paper exactly: each node carries a reference
count of iterators currently pointing at it; deleting a route whose node is
referenced only *invalidates* the payload, and the last iterator to leave
the node performs the structural removal.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.net import IPNet


def _contains(bits: int, value_a: int, plen_a: int, value_b: int, plen_b: int) -> bool:
    """True if prefix A (value_a/plen_a) contains prefix B."""
    if plen_b < plen_a:
        return False
    shift = bits - plen_a
    return (value_a >> shift) == (value_b >> shift)


def _common_prefix(bits: int, value_a: int, plen_a: int,
                   value_b: int, plen_b: int) -> Tuple[int, int]:
    """The longest prefix containing both A and B, as ``(value, plen)``."""
    max_plen = min(plen_a, plen_b)
    diff = value_a ^ value_b
    if diff:
        first_diff_bit = bits - diff.bit_length()
        plen = min(max_plen, first_diff_bit)
    else:
        plen = max_plen
    if plen == 0:
        return 0, 0
    mask = ~((1 << (bits - plen)) - 1)
    return value_a & mask, plen


class TrieNode:
    """One trie node: a prefix, an optional payload, and two children."""

    __slots__ = ("value", "plen", "net", "payload", "has_payload",
                 "parent", "left", "right", "iter_refs")

    def __init__(self, value: int, plen: int, net: Optional[IPNet]):
        self.value = value
        self.plen = plen
        self.net = net  # lazily built for join nodes
        self.payload: Any = None
        self.has_payload = False
        self.parent: Optional["TrieNode"] = None
        self.left: Optional["TrieNode"] = None
        self.right: Optional["TrieNode"] = None
        self.iter_refs = 0

    def __repr__(self) -> str:
        tag = "route" if self.has_payload else "join"
        return f"<TrieNode {self.net or (self.value, self.plen)} {tag} refs={self.iter_refs}>"


class RouteTrie:
    """A Patricia trie mapping :class:`IPNet` prefixes to payloads."""

    def __init__(self, bits: int = 32):
        if bits not in (32, 128):
            raise ValueError(f"trie width must be 32 or 128 bits, got {bits}")
        self.bits = bits
        self._root = TrieNode(0, 0, None)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def route_count(self) -> int:
        return self._count

    # -- insertion --------------------------------------------------------
    def insert(self, net: IPNet, payload: Any) -> Any:
        """Insert or replace the payload at *net*.

        Returns the previous payload, or None if the prefix was new.
        """
        if net.bits != self.bits:
            raise ValueError(f"prefix {net} does not fit a {self.bits}-bit trie")
        value, plen = net.key()
        node = self._root
        while True:
            if node.value == value and node.plen == plen:
                previous = node.payload if node.has_payload else None
                if not node.has_payload:
                    self._count += 1
                node.payload = payload
                node.has_payload = True
                if node.net is None:
                    node.net = net
                return previous
            # node.net contains the target here, by construction
            child_bit = (value >> (self.bits - 1 - node.plen)) & 1
            child = node.right if child_bit else node.left
            if child is None:
                fresh = TrieNode(value, plen, net)
                fresh.payload = payload
                fresh.has_payload = True
                self._attach(node, fresh, child_bit)
                self._count += 1
                return None
            if _contains(self.bits, child.value, child.plen, value, plen):
                node = child
                continue
            if _contains(self.bits, value, plen, child.value, child.plen):
                # New prefix sits between node and child.
                fresh = TrieNode(value, plen, net)
                fresh.payload = payload
                fresh.has_payload = True
                self._splice_between(node, child, fresh, child_bit)
                self._count += 1
                return None
            # Diverging prefixes: manufacture a join node above both.
            join_value, join_plen = _common_prefix(
                self.bits, value, plen, child.value, child.plen
            )
            join = TrieNode(join_value, join_plen, None)
            self._splice_between(node, child, join, child_bit)
            fresh = TrieNode(value, plen, net)
            fresh.payload = payload
            fresh.has_payload = True
            fresh_bit = (value >> (self.bits - 1 - join_plen)) & 1
            self._attach(join, fresh, fresh_bit)
            self._count += 1
            return None

    def _attach(self, parent: TrieNode, child: TrieNode, bit: int) -> None:
        child.parent = parent
        if bit:
            parent.right = child
        else:
            parent.left = child

    def _splice_between(self, parent: TrieNode, child: TrieNode,
                        middle: TrieNode, bit: int) -> None:
        self._attach(parent, middle, bit)
        child_bit = (child.value >> (self.bits - 1 - middle.plen)) & 1
        self._attach(middle, child, child_bit)

    # -- lookup -------------------------------------------------------------
    def _find_node(self, value: int, plen: int) -> Optional[TrieNode]:
        node = self._root
        while node is not None:
            if node.plen == plen and node.value == value:
                return node
            if node.plen >= plen:
                return None
            child_bit = (value >> (self.bits - 1 - node.plen)) & 1
            node = node.right if child_bit else node.left
            if node is not None and not _contains(
                self.bits, node.value, node.plen, value, plen
            ) and not _contains(self.bits, value, plen, node.value, node.plen):
                return None
        return None

    def exact(self, net: IPNet) -> Any:
        """Payload stored exactly at *net*, or None."""
        value, plen = net.key()
        node = self._find_node(value, plen)
        if node is not None and node.has_payload:
            return node.payload
        return None

    def __contains__(self, net: IPNet) -> bool:
        return self.exact(net) is not None

    def best_match(self, addr) -> Optional[Tuple[IPNet, Any]]:
        """Longest-prefix match for address *addr*: ``(net, payload)``."""
        value = addr.to_int()
        node = self._root
        best: Optional[TrieNode] = None
        while node is not None:
            if not _contains(self.bits, node.value, node.plen, value, self.bits):
                break
            if node.has_payload:
                best = node
            if node.plen == self.bits:
                break
            child_bit = (value >> (self.bits - 1 - node.plen)) & 1
            node = node.right if child_bit else node.left
        if best is None:
            return None
        return best.net, best.payload

    def find_less_specific(self, net: IPNet) -> Optional[Tuple[IPNet, Any]]:
        """Most specific route *strictly containing* *net*."""
        value, plen = net.key()
        node = self._root
        best: Optional[TrieNode] = None
        while node is not None and node.plen < plen:
            if not _contains(self.bits, node.value, node.plen, value, plen):
                break
            if node.has_payload:
                best = node
            child_bit = (value >> (self.bits - 1 - node.plen)) & 1
            node = node.right if child_bit else node.left
        if best is None:
            return None
        return best.net, best.payload

    def covering(self, net: IPNet) -> Iterator[Tuple[IPNet, Any]]:
        """All routes containing *net*, shortest prefix first (incl. equal)."""
        value, plen = net.key()
        node = self._root
        while node is not None and node.plen <= plen:
            if not _contains(self.bits, node.value, node.plen, value, plen):
                break
            if node.has_payload:
                yield node.net, node.payload
            if node.plen == plen:
                break
            child_bit = (value >> (self.bits - 1 - node.plen)) & 1
            node = node.right if child_bit else node.left

    def _covered_root(self, value: int, plen: int) -> Optional[TrieNode]:
        node = self._root
        while node is not None:
            if _contains(self.bits, value, plen, node.value, node.plen):
                return node
            if not _contains(self.bits, node.value, node.plen, value, plen):
                return None
            child_bit = (value >> (self.bits - 1 - node.plen)) & 1
            node = node.right if child_bit else node.left
        return None

    def covered(self, net: IPNet) -> Iterator[Tuple[IPNet, Any]]:
        """All routes equal to or more specific than *net*, in prefix order."""
        value, plen = net.key()
        top = self._covered_root(value, plen)
        if top is None:
            return
        stack: List[TrieNode] = [top]
        while stack:
            node = stack.pop()
            if node.has_payload:
                yield node.net, node.payload
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def has_more_specific(self, net: IPNet) -> bool:
        """True if any route is *strictly* more specific than *net*."""
        value, plen = net.key()
        for covered_net, __ in self.covered(net):
            if covered_net.prefix_len > plen:
                return True
        return False

    # -- deletion --------------------------------------------------------
    def remove(self, net: IPNet) -> Any:
        """Remove the route at *net*, returning its payload.

        Raises KeyError if absent.  If iterators reference the node, only
        the payload is invalidated now; the node is reclaimed when the last
        iterator leaves (paper §5.3).
        """
        value, plen = net.key()
        node = self._find_node(value, plen)
        if node is None or not node.has_payload:
            raise KeyError(str(net))
        payload = node.payload
        node.payload = None
        node.has_payload = False
        self._count -= 1
        self._reclaim(node)
        return payload

    def discard(self, net: IPNet) -> Any:
        """Like :meth:`remove` but returns None when the route is absent."""
        try:
            return self.remove(net)
        except KeyError:
            return None

    def clear(self) -> None:
        """Drop every route.  Iterators become exhausted, not invalid."""
        for net, __ in list(self.items()):
            self.discard(net)

    def _reclaim(self, node: TrieNode) -> None:
        """Splice out *node* and prunable ancestors where safe."""
        while (
            node.parent is not None
            and not node.has_payload
            and node.iter_refs == 0
        ):
            if node.left is not None and node.right is not None:
                return  # structurally necessary join node
            child = node.left if node.left is not None else node.right
            parent = node.parent
            if parent.left is node:
                parent.left = child
            else:
                parent.right = child
            if child is not None:
                child.parent = parent
            node.parent = None
            node = parent

    # -- iteration -------------------------------------------------------
    def iterator(self, start: Optional[IPNet] = None) -> "TrieIterator":
        """A safe iterator over routes in prefix order.

        With *start*, iteration covers only routes inside that prefix.
        """
        return TrieIterator(self, start)

    def items(self) -> Iterator[Tuple[IPNet, Any]]:
        """Iterate ``(net, payload)`` safely (mutation during iteration ok)."""
        it = self.iterator()
        while it.valid:
            yield it.net, it.payload
            it.advance()

    def __iter__(self) -> Iterator[Tuple[IPNet, Any]]:
        return self.items()

    def keys(self) -> Iterator[IPNet]:
        for net, __ in self.items():
            yield net

    # Internal helpers used by TrieIterator ------------------------------
    def _first_node(self, scope: Optional[TrieNode]) -> Optional[TrieNode]:
        node = scope if scope is not None else self._root
        if node.has_payload:
            return node
        return self._next_payload_node(node, scope)

    def _next_payload_node(self, node: TrieNode,
                           scope: Optional[TrieNode]) -> Optional[TrieNode]:
        """Successor of *node* in preorder, restricted to *scope*'s subtree."""
        current = node
        while True:
            current = self._preorder_successor(current, scope)
            if current is None:
                return None
            if current.has_payload:
                return current

    def _preorder_successor(self, node: TrieNode,
                            scope: Optional[TrieNode]) -> Optional[TrieNode]:
        if node.left is not None:
            return node.left
        if node.right is not None:
            return node.right
        limit = scope if scope is not None else self._root
        current = node
        while current is not limit and current.parent is not None:
            parent = current.parent
            if parent.left is current and parent.right is not None:
                return parent.right
            current = parent
        return None


class TrieIterator:
    """Safe iterator: survives arbitrary route churn while parked.

    Typical background-task usage::

        it = table.iterator()
        def slice():
            for _ in range(64):
                if not it.valid:
                    return False       # done
                process(it.net, it.payload)
                it.advance()
            return True                # more work
    """

    __slots__ = ("_trie", "_node", "_scope")

    def __init__(self, trie: RouteTrie, start: Optional[IPNet] = None):
        self._trie = trie
        self._scope: Optional[TrieNode] = None
        if start is not None:
            value, plen = start.key()
            self._scope = trie._covered_root(value, plen)
            if self._scope is not None:
                self._scope.iter_refs += 1
        node = trie._first_node(self._scope) if (
            start is None or self._scope is not None
        ) else None
        self._node = node
        if node is not None:
            node.iter_refs += 1

    @property
    def valid(self) -> bool:
        """True while the iterator points at a live route.

        False either because iteration finished (see :attr:`exhausted`) or
        because the route under the iterator was deleted while a background
        task was parked here — in which case :meth:`advance` resumes at the
        next live route.
        """
        return self._node is not None and self._node.has_payload

    @property
    def exhausted(self) -> bool:
        """True once iteration has run off the end of the table."""
        return self._node is None

    @property
    def net(self) -> IPNet:
        if self._node is None:
            raise StopIteration("iterator exhausted")
        return self._node.net

    @property
    def payload(self) -> Any:
        if self._node is None:
            raise StopIteration("iterator exhausted")
        return self._node.payload

    def advance(self) -> bool:
        """Move to the next live route; return False when exhausted.

        If the current route was deleted while we were parked on it, we
        simply move on — and, as the last iterator leaving the node, we
        perform the deferred structural deletion.
        """
        old = self._node
        if old is None:
            return False
        nxt = self._trie._next_payload_node(old, self._scope)
        self._node = nxt
        if nxt is not None:
            nxt.iter_refs += 1
        self._release(old)
        return nxt is not None

    def close(self) -> None:
        """Release references early (also safe to call repeatedly)."""
        if self._node is not None:
            self._release(self._node)
            self._node = None
        if self._scope is not None:
            scope = self._scope
            self._scope = None
            self._release(scope)

    def _release(self, node: TrieNode) -> None:
        node.iter_refs -= 1
        if node.iter_refs == 0 and not node.has_payload:
            self._trie._reclaim(node)

    def __enter__(self) -> "TrieIterator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
