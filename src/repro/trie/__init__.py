"""Patricia trie for routing tables, with safe iterators (paper §5.3).

    "The XORP library includes route table iterator data structures ...
    (as well as a Patricia Tree implementation for the routing tables
    themselves). ... we use some spare bits in each route tree node to hold
    a reference count of the number of iterators currently pointing at this
    tree node.  If the route tree receives a request to delete a node, the
    node's data is invalidated, but the node itself is not removed
    immediately unless the reference count is zero.  It is the
    responsibility of the last iterator leaving a previously-deleted node
    to actually perform the deletion."

Background tasks (deletion stages, dump stages, policy re-filter tasks)
park a :class:`TrieIterator` in the table between slices; route churn while
the task is paused can never invalidate it.
"""

from repro.trie.trie import RouteTrie, TrieIterator, TrieNode

__all__ = ["RouteTrie", "TrieIterator", "TrieNode"]
