"""The static-routes process.

Deliberately tiny: it exists because in the XORP architecture even static
routes are just another routing protocol feeding the RIB through the same
public XRL interface — nothing is special-cased inside the RIB for them.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.process import Host, XorpProcess
from repro.interfaces import COMMON_IDL, STATIC_ROUTES_IDL
from repro.net import IPNet
from repro.xrl import XrlArgs, XrlError
from repro.xrl.error import XrlErrorCode
from repro.xrl.xrl import Xrl


class StaticRoutesProcess(XorpProcess):
    process_name = "static_routes"

    def __init__(self, host: Host, *, rib_target: str = "rib"):
        super().__init__(host)
        self.rib_target = rib_target
        self.xrl = self.create_router("static_routes", singleton=True)
        self.routes: Dict[IPNet, tuple] = {}
        self.metrics.gauge("routes", lambda: len(self.routes))
        self.xrl.bind(STATIC_ROUTES_IDL, self)
        self.xrl.bind(COMMON_IDL, self)

    def xrl_add_route4(self, net, nexthop, metric) -> None:
        is_replace = net in self.routes
        self.routes[net] = (nexthop, metric)
        args = (XrlArgs().add_txt("protocol", "static")
                .add_ipv4net("net", net).add_ipv4("nexthop", nexthop)
                .add_u32("metric", metric).add_list("policytags", []))
        method = "replace_route4" if is_replace else "add_route4"
        self.xrl.send(Xrl(self.rib_target, "rib", "1.0", method, args))

    def xrl_delete_route4(self, net) -> None:
        if net not in self.routes:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED, f"no static route for {net}"
            )
        del self.routes[net]
        args = (XrlArgs().add_txt("protocol", "static")
                .add_ipv4net("net", net))
        self.xrl.send(Xrl(self.rib_target, "rib", "1.0", "delete_route4", args))

    # -- common/0.1 -----------------------------------------------------------
    def xrl_get_target_name(self) -> dict:
        return {"name": self.xrl.instance_name}

    def xrl_get_version(self) -> dict:
        return {"version": "repro-static/1.0"}

    def xrl_get_status(self) -> dict:
        return {"status": "running" if self.running else "shutdown"}

    def xrl_shutdown(self) -> None:
        self.loop.call_soon(self.shutdown)
