"""Static routes as a XORP process (paper Figure 7's "Static Routes" origin)."""

from repro.staticroutes.process import StaticRoutesProcess

__all__ = ["StaticRoutesProcess"]
