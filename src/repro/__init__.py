"""repro — a Python reproduction of XORP, the extensible open router platform.

Implements the system described in "Designing Extensible IP Router
Software" (Handley, Kohler, Ghosh, Hodson, Radoslavov — NSDI 2005): an
event-driven, multi-process router control plane built around two ideas:

* **staged routing tables** (:mod:`repro.core.stages`) — routing tables
  as networks of pluggable stages through which routes flow;
* **XRLs** (:mod:`repro.xrl`) — scriptable, transport-transparent IPC
  brokered by a Finder.

Entry points by task:

* build a router:          :class:`repro.simnet.SimNetwork`,
                           :class:`repro.rtrmgr.RouterManager`
* run a routing protocol:  :class:`repro.bgp.BgpProcess`,
                           :class:`repro.rip.RipProcess`,
                           :class:`repro.ospf.OspfProcess`
* reproduce the paper:     :mod:`repro.experiments`

See DESIGN.md for the full system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"
__paper__ = ("Designing Extensible IP Router Software, "
             "Handley et al., NSDI 2005")
