"""IGMP group membership (paper §3).

    "PIM-SM ... and IGMP provide multicast routing functionality, with PIM
    performing the actual routing and IGMP informing PIM of the existence
    of local receivers."
"""

from repro.mld6igmp.igmp import IgmpPacket, IgmpPacketError, Mld6igmpProcess

__all__ = ["IgmpPacket", "IgmpPacketError", "Mld6igmpProcess"]
