"""IGMPv2 message codec and the membership-tracking process.

Real IGMP runs directly over IP protocol 2; our FEA relay carries UDP
datagrams only, so host membership reports are injected through the
``mld6igmp/0.1`` XRL interface instead (the DESIGN.md substitution table
covers this).  The wire codec is still implemented and tested — the state
machine consumes decoded reports exactly as it would from the wire.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Set

from repro.core.process import Host, XorpProcess
from repro.interfaces import COMMON_IDL, MLD6IGMP_IDL
from repro.net import IPv4
from repro.xrl import XrlArgs, XrlError
from repro.xrl.error import XrlErrorCode
from repro.xrl.xrl import Xrl

IGMP_MEMBERSHIP_QUERY = 0x11
IGMP_V2_MEMBERSHIP_REPORT = 0x16
IGMP_LEAVE_GROUP = 0x17


class IgmpPacketError(ValueError):
    """Malformed IGMP message."""


def _checksum(data: bytes) -> int:
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


class IgmpPacket:
    """An IGMPv2 message: type, max-response-time, group."""

    __slots__ = ("type", "max_resp", "group")

    def __init__(self, igmp_type: int, group: IPv4, max_resp: int = 0):
        if igmp_type not in (IGMP_MEMBERSHIP_QUERY, IGMP_V2_MEMBERSHIP_REPORT,
                             IGMP_LEAVE_GROUP):
            raise IgmpPacketError(f"bad IGMP type {igmp_type:#x}")
        self.type = igmp_type
        self.max_resp = max_resp
        self.group = group

    def encode(self) -> bytes:
        body = struct.pack("!BBH", self.type, self.max_resp, 0)
        body += self.group.to_bytes()
        checksum = _checksum(body)
        return body[:2] + struct.pack("!H", checksum) + body[4:]

    @classmethod
    def decode(cls, data: bytes) -> "IgmpPacket":
        if len(data) != 8:
            raise IgmpPacketError(f"bad IGMP length {len(data)}")
        igmp_type, max_resp, checksum = struct.unpack_from("!BBH", data, 0)
        verify = _checksum(data[:2] + b"\x00\x00" + data[4:])
        if verify != checksum:
            raise IgmpPacketError("bad IGMP checksum")
        return cls(igmp_type, IPv4(data[4:8]), max_resp)

    def __repr__(self) -> str:
        return f"IgmpPacket(type={self.type:#x} group={self.group})"


class Mld6igmpProcess(XorpProcess):
    """Tracks (interface, group) memberships; notifies routing clients."""

    process_name = "mld6igmp"

    def __init__(self, host: Host, *,
                 notify_targets: Optional[List[str]] = None):
        super().__init__(host)
        self.xrl = self.create_router("mld6igmp", singleton=True)
        self.memberships: Dict[str, Set[int]] = {}
        self.notify_targets = list(notify_targets) if notify_targets else ["pim"]
        self.xrl.bind(MLD6IGMP_IDL, self)
        self.xrl.bind(COMMON_IDL, self)

    # -- membership updates (from XRL-injected or decoded reports) -----------
    def process_report(self, ifname: str, packet: IgmpPacket) -> None:
        """Apply one decoded IGMP message to the membership database."""
        if packet.type == IGMP_V2_MEMBERSHIP_REPORT:
            self._join(ifname, packet.group)
        elif packet.type == IGMP_LEAVE_GROUP:
            self._leave(ifname, packet.group)

    def _join(self, ifname: str, group: IPv4) -> None:
        if not group.is_multicast():
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED, f"{group} is not multicast"
            )
        groups = self.memberships.setdefault(ifname, set())
        if group.to_int() in groups:
            return
        groups.add(group.to_int())
        self._notify(ifname, group, joined=True)

    def _leave(self, ifname: str, group: IPv4) -> None:
        groups = self.memberships.get(ifname, set())
        if group.to_int() not in groups:
            return
        groups.discard(group.to_int())
        self._notify(ifname, group, joined=False)

    def _notify(self, ifname: str, group: IPv4, joined: bool) -> None:
        for target in self.notify_targets:
            args = (XrlArgs().add_txt("ifname", ifname)
                    .add_ipv4("group", group).add_bool("joined", joined))
            self.xrl.send(Xrl(target, "mld6igmp_client", "0.1",
                              "membership_change4", args))

    # -- mld6igmp/0.1 -----------------------------------------------------
    def xrl_add_membership4(self, ifname: str, group) -> None:
        self._join(ifname, group)

    def xrl_delete_membership4(self, ifname: str, group) -> None:
        self._leave(ifname, group)

    def xrl_list_memberships4(self, ifname: str) -> dict:
        groups = sorted(self.memberships.get(ifname, set()))
        return {"groups": ",".join(str(IPv4(g)) for g in groups)}

    # -- common/0.1 ------------------------------------------------------------
    def xrl_get_target_name(self) -> dict:
        return {"name": self.xrl.instance_name}

    def xrl_get_version(self) -> dict:
        return {"version": "repro-mld6igmp/1.0"}

    def xrl_get_status(self) -> dict:
        return {"status": "running" if self.running else "shutdown"}

    def xrl_shutdown(self) -> None:
        self.loop.call_soon(self.shutdown)
