"""Variable read/write adapters: the bridge between policies and routes.

A :class:`VarRW` exposes a route's fields as named policy variables.  The
compiled program is protocol-agnostic; each protocol supplies an adapter
(XORP's ``VarRW`` class, one subclass per protocol).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.net import IPNet


class PolicyVariableError(KeyError):
    """Unknown policy variable for this adapter."""


class VarRW:
    """Base adapter: dict-backed, mainly for tests."""

    def __init__(self, values: Optional[Dict[str, Any]] = None):
        self._values = dict(values or {})
        self.modified = False

    def read(self, variable: str) -> Any:
        try:
            return self._values[variable]
        except KeyError as exc:
            raise PolicyVariableError(variable) from exc

    def write(self, variable: str, value: Any) -> None:
        self._values[variable] = value
        self.modified = True


class BgpVarRW(VarRW):
    """Adapter over a :class:`repro.bgp.route.BGPRoute`.

    Reads expose attributes; writes are buffered and produce a *new* route
    from :meth:`result` (attribute lists are immutable).
    """

    READABLE = ("network4", "nexthop4", "aspath", "aspath-length", "origin",
                "med", "localpref", "community", "neighbor", "tag")

    def __init__(self, route, neighbor=None):
        super().__init__()
        self._route = route
        self._neighbor = neighbor
        self._changes: Dict[str, Any] = {}
        self._rejected = False

    def read(self, variable: str) -> Any:
        if variable in self._changes:
            return self._changes[variable]
        attrs = self._route.attributes
        if variable == "network4":
            return self._route.net
        if variable == "nexthop4":
            return attrs.nexthop
        if variable == "aspath":
            return attrs.as_path.as_list()
        if variable == "aspath-length":
            return attrs.as_path.path_length()
        if variable == "origin":
            return int(attrs.origin)
        if variable == "med":
            return attrs.med if attrs.med is not None else 0
        if variable == "localpref":
            return attrs.local_pref if attrs.local_pref is not None else 100
        if variable == "community":
            return list(attrs.communities)
        if variable == "neighbor":
            return self._neighbor
        if variable == "tag":
            return list(self._route.policytags)
        raise PolicyVariableError(variable)

    def write(self, variable: str, value: Any) -> None:
        if variable not in ("localpref", "med", "nexthop4", "community",
                            "community-add", "tag", "origin"):
            raise PolicyVariableError(f"read-only or unknown: {variable}")
        self._changes[variable] = value
        self.modified = True

    def result(self):
        """The route with buffered modifications applied (or original)."""
        if not self._changes:
            return self._route
        attrs = self._route.attributes
        replacements = {}
        if "localpref" in self._changes:
            replacements["local_pref"] = int(self._changes["localpref"])
        if "med" in self._changes:
            replacements["med"] = int(self._changes["med"])
        if "nexthop4" in self._changes:
            from repro.net import IPv4

            replacements["nexthop"] = IPv4(self._changes["nexthop4"])
        if "origin" in self._changes:
            replacements["origin"] = int(self._changes["origin"])
        if "community" in self._changes:
            value = self._changes["community"]
            replacements["communities"] = (
                value if isinstance(value, (list, tuple)) else [value])
        if "community-add" in self._changes:
            extra = self._changes["community-add"]
            communities = list(attrs.communities)
            communities.append(int(extra))
            replacements["communities"] = communities
        route = self._route.with_attributes(attrs.replace(**replacements))
        if "tag" in self._changes:
            value = self._changes["tag"]
            route.policytags = (list(value) if isinstance(value, (list, tuple))
                                else [int(value)])
        else:
            route.policytags = list(self._route.policytags)
        return route


class RibVarRW(VarRW):
    """Adapter over a :class:`repro.rib.route.RibRoute` (redistribution)."""

    def __init__(self, route):
        super().__init__()
        self._route = route
        self._changes: Dict[str, Any] = {}

    def read(self, variable: str) -> Any:
        if variable in self._changes:
            return self._changes[variable]
        if variable == "network4":
            return self._route.net
        if variable == "nexthop4":
            return self._route.nexthop
        if variable == "metric":
            return self._route.metric
        if variable == "protocol":
            return self._route.protocol
        if variable == "admin-distance":
            return self._route.admin_distance
        if variable == "tag":
            return list(self._route.policytags)
        raise PolicyVariableError(variable)

    def write(self, variable: str, value: Any) -> None:
        if variable not in ("metric", "tag"):
            raise PolicyVariableError(f"read-only or unknown: {variable}")
        self._changes[variable] = value
        self.modified = True

    def result(self):
        if not self._changes:
            return self._route
        tags = self._changes.get("tag", self._route.policytags)
        if not isinstance(tags, (list, tuple)):
            tags = [int(tags)]
        # The route rebuilds itself (RibRoute.replaced): policy is shared
        # library code and must not import RIB internals.
        return self._route.replaced(
            metric=int(self._changes.get("metric", self._route.metric)),
            policytags=list(tags),
        )
