"""The policy stack machine.

A compiled policy is a list of terms; each term is a list of instructions
operating on an operand stack and a :class:`~repro.policy.varrw.VarRW`
route adapter.  Execution semantics:

* ``onfalse_exit`` aborts the current term (falls through to the next);
* ``accept`` / ``reject`` terminate the whole policy;
* if no term accepts or rejects, the route passes with any modifications
  that matched terms applied (fall-through accept).
"""

from __future__ import annotations

from enum import Enum
from typing import Any, List, Sequence, Tuple

from repro.net import IPNet

Instruction = Tuple  # (opcode, *operands)


class PolicyResult(Enum):
    ACCEPT = "accept"
    REJECT = "reject"
    FALLTHROUGH = "fallthrough"


class PolicyExecutionError(RuntimeError):
    """A program fault (bad opcode, stack underflow, type error)."""


class _TermExit(Exception):
    """Internal: leave the current term (condition not met)."""


class _PolicyExit(Exception):
    def __init__(self, result: PolicyResult):
        self.result = result


class PolicyVM:
    """Executes compiled policy programs against VarRW adapters."""

    def __init__(self) -> None:
        self.executions = 0

    def run(self, program: Sequence[Sequence[Instruction]], varrw) -> PolicyResult:
        """Run *program* (a list of terms) against *varrw*."""
        self.executions += 1
        try:
            for term in program:
                try:
                    self._run_term(term, varrw)
                except _TermExit:
                    continue
        except _PolicyExit as exit_:
            return exit_.result
        return PolicyResult.FALLTHROUGH

    def _run_term(self, term: Sequence[Instruction], varrw) -> None:
        stack: List[Any] = []
        for instruction in term:
            opcode = instruction[0]
            if opcode == "push":
                stack.append(instruction[1])
            elif opcode == "load":
                stack.append(varrw.read(instruction[1]))
            elif opcode == "store":
                self._store(varrw, instruction[1], "set", stack.pop())
            elif opcode == "store_add":
                self._store(varrw, instruction[1], "add", stack.pop())
            elif opcode == "store_sub":
                self._store(varrw, instruction[1], "sub", stack.pop())
            elif opcode in _COMPARATORS:
                right = stack.pop()
                left = stack.pop()
                stack.append(_COMPARATORS[opcode](left, right))
            elif opcode == "not":
                stack.append(not stack.pop())
            elif opcode == "and":
                right, left = stack.pop(), stack.pop()
                stack.append(bool(left) and bool(right))
            elif opcode == "or":
                right, left = stack.pop(), stack.pop()
                stack.append(bool(left) or bool(right))
            elif opcode == "onfalse_exit":
                if not stack.pop():
                    raise _TermExit()
            elif opcode == "accept":
                raise _PolicyExit(PolicyResult.ACCEPT)
            elif opcode == "reject":
                raise _PolicyExit(PolicyResult.REJECT)
            else:
                raise PolicyExecutionError(f"unknown opcode {opcode!r}")

    @staticmethod
    def _store(varrw, variable: str, mode: str, value: Any) -> None:
        if mode == "set":
            varrw.write(variable, value)
        else:
            current = varrw.read(variable)
            base = current if isinstance(current, int) else 0
            delta = value if mode == "add" else -value
            varrw.write(variable, base + delta)


def _cmp_eq(left: Any, right: Any) -> bool:
    return _normalize(left) == _normalize(right)


def _cmp_ne(left: Any, right: Any) -> bool:
    return not _cmp_eq(left, right)


def _normalize(value: Any):
    # Let "10.0.0.0/8" (str) compare equal to an IPNet and numbers to
    # numeric strings: policy authors write text.
    if isinstance(value, IPNet):
        return str(value)
    from repro.net import IPv4

    if isinstance(value, IPv4):
        return str(value)
    return value


def _cmp_contains(left: Any, right: Any) -> bool:
    """Membership: AS in path list, community in tuple, substring."""
    if isinstance(left, (list, tuple, set)):
        return right in left
    if isinstance(left, str):
        return str(right) in left
    raise PolicyExecutionError(
        f"'contains' needs a collection on the left, got {type(left).__name__}"
    )


def _cmp_orlonger(left: Any, right: Any) -> bool:
    """Route prefix (left) equal to or more specific than right."""
    if not isinstance(left, IPNet) or not isinstance(right, IPNet):
        raise PolicyExecutionError("'orlonger' needs two prefixes")
    return right.contains(left)


def _cmp_exact(left: Any, right: Any) -> bool:
    if not isinstance(left, IPNet) or not isinstance(right, IPNet):
        raise PolicyExecutionError("'exact' needs two prefixes")
    return left == right


_COMPARATORS = {
    "eq": _cmp_eq,
    "ne": _cmp_ne,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "contains": _cmp_contains,
    "orlonger": _cmp_orlonger,
    "exact": _cmp_exact,
}
