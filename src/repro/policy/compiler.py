"""Compile parsed policy statements into stack-machine programs."""

from __future__ import annotations

from typing import List, Sequence

from repro.policy.parser import (
    Action,
    Condition,
    PolicyParseError,
    PolicyStatement,
    Term,
    parse_policy,
)
from repro.policy.vm import Instruction

_OP_CODES = {
    ":": "eq",
    "==": "eq",
    "!=": "ne",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
    "contains": "contains",
    "orlonger": "orlonger",
    "exact": "exact",
}


def _compile_condition(condition: Condition) -> List[Instruction]:
    opcode = _OP_CODES.get(condition.op)
    if opcode is None:
        raise PolicyParseError(f"unknown operator {condition.op!r}")
    return [
        ("load", condition.variable),
        ("push", condition.value),
        (opcode,),
        ("onfalse_exit",),
    ]


def _compile_action(action: Action) -> List[Instruction]:
    if action.kind == "accept":
        return [("accept",)]
    if action.kind == "reject":
        return [("reject",)]
    store = {"set": "store", "add": "store_add", "sub": "store_sub"}[action.mode]
    return [("push", action.value), (store, action.variable)]


def compile_term(term: Term) -> List[Instruction]:
    instructions: List[Instruction] = []
    for condition in term.conditions:
        instructions.extend(_compile_condition(condition))
    for action in term.actions:
        instructions.extend(_compile_action(action))
    return instructions


def compile_policy(statement: PolicyStatement) -> List[List[Instruction]]:
    """One statement -> a program: a list of compiled terms."""
    return [compile_term(term) for term in statement.terms]


def compile_source(source: str) -> List[List[Instruction]]:
    """Parse and compile policy source; statements' terms concatenate."""
    program: List[List[Instruction]] = []
    for statement in parse_policy(source):
        program.extend(compile_policy(statement))
    return program
