"""The routing policy framework (paper §8.3).

    "Our policy framework consists of three new BGP stages and two new RIB
    stages, each of which supports a common simple stack language for
    operating on routes. ... we believe this framework allows us to
    implement almost the full range of policies available on commercial
    routers."

Pipeline: policy *source* text (a Juniper-ish ``policy-statement`` syntax)
is parsed (:mod:`repro.policy.parser`), compiled
(:mod:`repro.policy.compiler`) to a simple stack-machine program, and
executed (:mod:`repro.policy.vm`) against a route through a variable
read/write adapter (:mod:`repro.policy.varrw`).  Protocols receive
compiled programs over the ``policy/0.1`` XRL interface and run them in
their filter-bank stages.

The only change policy needed in pre-existing code was the *tag list*
carried on routes between BGP and the RIB — exactly the paper's
experience.
"""

from repro.policy.compiler import compile_policy, compile_source
from repro.policy.parser import PolicyParseError, parse_policy
from repro.policy.vm import PolicyResult, PolicyVM
from repro.policy.varrw import BgpVarRW, RibVarRW, VarRW

__all__ = [
    "BgpVarRW",
    "PolicyParseError",
    "PolicyResult",
    "PolicyVM",
    "RibVarRW",
    "VarRW",
    "compile_policy",
    "compile_source",
    "parse_policy",
]
