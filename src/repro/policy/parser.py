"""Policy source language: tokenizer and parser.

Grammar (simplified XORP/JunOS style)::

    policy    := statement*
    statement := "policy-statement" NAME "{" term* "}"
    term      := "term" NAME "{" [from-block] [then-block] "}"
    from      := "from" "{" condition* "}"
    then      := "then" "{" action* "}"
    condition := VAR OP value ";"
    action    := VAR ":" value ";" | "accept" ";" | "reject" ";"
    OP        := ":" | "==" | "!=" | "<" | "<=" | ">" | ">=" |
                 "contains" | "orlonger" | "exact"

Values are numbers, quoted strings, bare identifiers, IPv4 addresses, or
prefixes.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple


class PolicyParseError(ValueError):
    """Malformed policy source."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<prefix>\d+\.\d+\.\d+\.\d+/\d+)
  | (?P<addr>\d+\.\d+\.\d+\.\d+)
  | (?P<number>\d+)
  | (?P<string>"[^"]*")
  | (?P<op><=|>=|==|!=|<|>|:)
  | (?P<punct>[{};])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_\-]*)
    """,
    re.VERBOSE,
)


class Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> List[Token]:
    tokens = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise PolicyParseError(
                f"unexpected character {source[position]!r} at offset {position}"
            )
        kind = match.lastgroup
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, match.group(), position))
        position = match.end()
    return tokens


# -- AST ---------------------------------------------------------------------

class Condition:
    __slots__ = ("variable", "op", "value")

    def __init__(self, variable: str, op: str, value: Any):
        self.variable = variable
        self.op = op
        self.value = value

    def __repr__(self) -> str:
        return f"Condition({self.variable} {self.op} {self.value!r})"


class Action:
    """Either a modification (variable, mode, value) or accept/reject."""

    __slots__ = ("kind", "variable", "mode", "value")

    def __init__(self, kind: str, variable: str = "", mode: str = "set",
                 value: Any = None):
        self.kind = kind  # "set" | "accept" | "reject"
        self.variable = variable
        self.mode = mode  # "set" | "add" | "sub"
        self.value = value

    def __repr__(self) -> str:
        if self.kind != "set":
            return f"Action({self.kind})"
        return f"Action({self.variable} {self.mode} {self.value!r})"


class Term:
    __slots__ = ("name", "conditions", "actions")

    def __init__(self, name: str, conditions: List[Condition],
                 actions: List[Action]):
        self.name = name
        self.conditions = conditions
        self.actions = actions


class PolicyStatement:
    __slots__ = ("name", "terms")

    def __init__(self, name: str, terms: List[Term]):
        self.name = name
        self.terms = terms


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> Optional[Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise PolicyParseError("unexpected end of policy source")
        self._index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise PolicyParseError(
                f"expected {wanted!r}, got {token.text!r} at offset "
                f"{token.position}"
            )
        return token

    def _name(self) -> str:
        token = self._next()
        if token.kind == "string":
            return token.text[1:-1]
        if token.kind == "ident":
            return token.text
        raise PolicyParseError(
            f"expected a name, got {token.text!r} at offset {token.position}"
        )

    def _value(self) -> Any:
        token = self._next()
        if token.kind == "number":
            return int(token.text)
        if token.kind == "string":
            return token.text[1:-1]
        if token.kind == "prefix":
            from repro.net import IPNet

            return IPNet.parse(token.text)
        if token.kind == "addr":
            from repro.net import IPv4

            return IPv4(token.text)
        if token.kind == "ident":
            return token.text
        raise PolicyParseError(
            f"expected a value, got {token.text!r} at offset {token.position}"
        )

    def parse(self) -> List[PolicyStatement]:
        statements = []
        while self._peek() is not None:
            statements.append(self._statement())
        if not statements:
            raise PolicyParseError("no policy statements found")
        return statements

    def _statement(self) -> PolicyStatement:
        self._expect("ident", "policy-statement")
        name = self._name()
        self._expect("punct", "{")
        terms = []
        while self._peek() is not None and self._peek().text != "}":
            terms.append(self._term())
        self._expect("punct", "}")
        return PolicyStatement(name, terms)

    def _term(self) -> Term:
        self._expect("ident", "term")
        name = self._name()
        self._expect("punct", "{")
        conditions: List[Condition] = []
        actions: List[Action] = []
        while self._peek() is not None and self._peek().text != "}":
            token = self._next()
            if token.text == "from":
                conditions.extend(self._from_block())
            elif token.text == "then":
                actions.extend(self._then_block())
            else:
                raise PolicyParseError(
                    f"expected 'from' or 'then', got {token.text!r} at "
                    f"offset {token.position}"
                )
        self._expect("punct", "}")
        return Term(name, conditions, actions)

    def _from_block(self) -> List[Condition]:
        self._expect("punct", "{")
        conditions = []
        while self._peek() is not None and self._peek().text != "}":
            variable = self._expect("ident").text
            op_token = self._next()
            if op_token.kind == "op":
                op = op_token.text
            elif op_token.kind == "ident" and op_token.text in (
                    "contains", "orlonger", "exact"):
                op = op_token.text
            else:
                raise PolicyParseError(
                    f"expected an operator, got {op_token.text!r} at offset "
                    f"{op_token.position}"
                )
            value = self._value()
            self._expect("punct", ";")
            conditions.append(Condition(variable, op, value))
        self._expect("punct", "}")
        return conditions

    def _then_block(self) -> List[Action]:
        self._expect("punct", "{")
        actions = []
        while self._peek() is not None and self._peek().text != "}":
            token = self._next()
            if token.kind == "ident" and token.text in ("accept", "reject"):
                self._expect("punct", ";")
                actions.append(Action(token.text))
                continue
            if token.kind != "ident":
                raise PolicyParseError(
                    f"expected an action, got {token.text!r} at offset "
                    f"{token.position}"
                )
            variable = token.text
            mode = "set"
            next_token = self._next()
            if next_token.kind == "ident" and next_token.text in ("add", "sub"):
                mode = next_token.text
            elif not (next_token.kind == "op" and next_token.text == ":"):
                raise PolicyParseError(
                    f"expected ':' or add/sub after {variable!r} at offset "
                    f"{next_token.position}"
                )
            value = self._value()
            self._expect("punct", ";")
            actions.append(Action("set", variable, mode, value))
        self._expect("punct", "}")
        return actions


def parse_policy(source: str) -> List[PolicyStatement]:
    """Parse policy source text into statements."""
    return _Parser(tokenize(source)).parse()
