"""Causal per-route tracing across stages, XRLs and the FIB.

A traced prefix owns a :class:`TraceContext` (trace id + hop counter).
While the :class:`Tracer` is armed, every hop the route takes is recorded
as a :class:`Span`:

* ``origin`` — an :class:`~repro.core.stages.OriginStage` injected or
  withdrew the route (``originate``/``withdraw``/batch variants);
* ``stage`` — the route flowed through a stage message method
  (``add_route``/``delete_route``/``replace_route``/batch variants);
* ``xrl-send`` / ``xrl-recv`` — the route crossed a process boundary.
  The sending side appends a reserved ``txt`` atom (:data:`TRACE_ARG`,
  value ``trace_id:parent_span_id[;...]``) to the XRL's arguments; the
  receiving side strips it before IDL checking and parents its spans to
  the carried ids, which is what stitches one causal tree across
  processes — the frame *is* the causal edge, so retries and coalesced
  batches need no special handling (the atom rides the re-encoded
  request either way);
* ``fib`` — the route reached the simulated kernel table
  (:class:`repro.fea.fib.Fib`), the end of the paper's latency runs.

Parenting uses a per-context stack: nested synchronous hops (a stage
forwarding downstream inside its own ``add_route``) become children,
while hops separated by a queue or a wire chain through the context's
``last_span_id``.  Timestamps come from an injected clock callable
(tests pass the event-loop clock — determinism rule DET001 keeps wall
clocks out of shared code); the default is a logical counter, so span
order is always meaningful even unclocked.

Arming rebinds methods on the stage classes (via the hook registry in
:mod:`repro.core.stages`), on :class:`~repro.xrl.router.XrlRouter`, on
:class:`~repro.eventloop.eventloop.EventLoop` and — only if the FEA is
loaded — on :class:`repro.fea.fib.Fib`; disarming restores the saved
originals, so the disarmed hot paths are the pristine functions (the
zero-overhead contract the fig13 benchmark gates).
"""

from __future__ import annotations

import functools
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.core import stages as _stages
from repro.eventloop.eventloop import EventLoop
from repro.net import IPNet
from repro.obs.metrics import MetricsRegistry
from repro.xrl import XrlArgs, XrlError, XrlRouter
from repro.xrl.codec import TEXTUAL as TEXTUAL_CODEC

#: the reserved XRL argument carrying trace contexts across frames.
#: The dispatch sanitizer treats it like ``bench/1.0`` traffic: stripped
#: before SAN103 argument checking, never part of any IDL signature.
TRACE_ARG = "trace_ctx"

#: stage message methods that are hops (lookup_route is a query, not a hop)
_STAGE_METHODS = ("add_route", "delete_route", "replace_route",
                  "add_routes", "delete_routes")
#: origin-stage injection surface (only present on OriginStage)
_ORIGIN_METHODS = ("originate", "originate_batch", "withdraw",
                   "withdraw_if_present", "withdraw_batch")

_armed_tracer: Optional["Tracer"] = None


class Span:
    """One recorded hop of one traced route."""

    __slots__ = ("trace_id", "span_id", "parent_id", "kind", "site", "op",
                 "ts")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int],
                 kind: str, site: str, op: str, ts: float):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.site = site
        self.op = op
        self.ts = ts

    def to_text(self) -> str:
        parent = "-" if self.parent_id is None else str(self.parent_id)
        return (f"{self.span_id} {parent} {_fmt_ts(self.ts)} "
                f"{self.kind} {self.site} {self.op}")

    def __repr__(self) -> str:
        return f"<Span {self.to_text()}>"


def _fmt_ts(ts: float) -> str:
    if ts == int(ts):
        return str(int(ts))
    return format(ts, ".9g")


class TraceContext:
    """One traced prefix: its id, hop counter and recorded spans."""

    __slots__ = ("trace_id", "net", "hops", "spans", "stack", "last_span_id")

    def __init__(self, trace_id: int, net: IPNet):
        self.trace_id = trace_id
        self.net = net
        #: hop counter — allocates span ids within this trace
        self.hops = 0
        self.spans: List[Span] = []
        #: ids of spans currently open (nested synchronous hops)
        self.stack: List[int] = []
        #: the most recent span, parent for queue/wire-separated hops
        self.last_span_id: Optional[int] = None

    def next_parent(self) -> Optional[int]:
        return self.stack[-1] if self.stack else self.last_span_id


def _net_key(net: IPNet) -> Tuple:
    return (net.bits,) + tuple(net.key())


class Tracer:
    """Records causal spans for registered prefixes while armed.

    *clock* is a zero-argument callable returning the current time; pass
    the event-loop clock's ``now`` for simulated-time traces.  *metrics*
    receives the tracer's own instruments (XRL sends observed, event-loop
    dispatch latency); by default a private ``obs`` registry is used.

    Also the ``trace/1.0`` implementation, so a harness can bind the
    tracer to a component and let an external process pull span trees.
    """

    def __init__(self, clock=None, metrics: Optional[MetricsRegistry] = None):
        self._logical = 0
        self.clock = clock if clock is not None else self._tick
        self.metrics = metrics if metrics is not None else MetricsRegistry("obs")
        self._traces: Dict[int, TraceContext] = {}
        self._by_key: Dict[Tuple, TraceContext] = {}
        self._next_trace_id = 1
        self._wrapped: List[Tuple[type, str, Any]] = []
        self._armed = False
        self._sends = self.metrics.counter("xrl.sends")
        self._traced_frames = self.metrics.counter("xrl.traced_frames")
        self._dispatch_latency = self.metrics.histogram(
            "eventloop.dispatch_latency")

    def _tick(self) -> float:
        self._logical += 1
        return float(self._logical)

    # -- trace registration ------------------------------------------------
    def trace(self, net: IPNet) -> TraceContext:
        """Start tracing *net*; returns its (possibly existing) context."""
        key = _net_key(net)
        ctx = self._by_key.get(key)
        if ctx is None:
            ctx = TraceContext(self._next_trace_id, net)
            self._next_trace_id += 1
            self._traces[ctx.trace_id] = ctx
            self._by_key[key] = ctx
        return ctx

    def context_for(self, net: IPNet) -> Optional[TraceContext]:
        return self._by_key.get(_net_key(net))

    def by_id(self, trace_id: int) -> Optional[TraceContext]:
        return self._traces.get(trace_id)

    def contexts(self) -> List[TraceContext]:
        """Every trace context, ordered by trace id (stable)."""
        return [self._traces[tid] for tid in sorted(self._traces)]

    # -- span recording ----------------------------------------------------
    def _record(self, ctx: TraceContext, kind: str, site: str, op: str,
                parent: Optional[int]) -> Span:
        ctx.hops += 1
        span = Span(ctx.trace_id, ctx.hops, parent, kind, site, op,
                    self.clock())
        ctx.spans.append(span)
        ctx.last_span_id = span.span_id
        return span

    def _enter(self, ctx: TraceContext, kind: str, site: str, op: str) -> None:
        span = self._record(ctx, kind, site, op, ctx.next_parent())
        ctx.stack.append(span.span_id)

    def _exit(self, ctx: TraceContext) -> None:
        if ctx.stack:
            ctx.stack.pop()

    # -- reconstruction ----------------------------------------------------
    def span_tree(self, trace_id: int) -> List[Tuple[int, Span]]:
        """The trace as ``(depth, span)`` pairs in recording order."""
        ctx = self._traces.get(trace_id)
        if ctx is None:
            return []
        depth: Dict[int, int] = {}
        out: List[Tuple[int, Span]] = []
        for span in ctx.spans:
            d = 0 if span.parent_id is None else depth.get(span.parent_id, 0) + 1
            depth[span.span_id] = d
            out.append((d, span))
        return out

    def hop_sequence(self, trace_id: int) -> List[str]:
        """Ordered route-visible hop sites (origin/stage/fib spans only),
        consecutive duplicates collapsed.

        This is the batched-vs-unbatched invariant: a route delivered in
        a batch takes exactly the same hop sequence as the same route
        delivered singularly (the batch contract), while xrl-kind spans —
        whose count legitimately differs under coalescing — are excluded.
        """
        ctx = self._traces.get(trace_id)
        if ctx is None:
            return []
        hops: List[str] = []
        for span in ctx.spans:
            if span.kind not in ("origin", "stage", "fib"):
                continue
            if hops and hops[-1] == span.site:
                continue
            hops.append(span.site)
        return hops

    # -- trace/1.0 handlers ------------------------------------------------
    def xrl_list_traces(self) -> Dict[str, str]:
        ids = sorted(self._traces)
        return {"trace_ids": ",".join(str(i) for i in ids)}

    def xrl_get_spans(self, trace_id: int) -> Dict[str, str]:
        ctx = self._traces.get(trace_id)
        if ctx is None:
            from repro.xrl.error import XrlErrorCode
            raise XrlError(XrlErrorCode.COMMAND_FAILED,
                           f"no trace {trace_id}")
        return {"spans": "\n".join(s.to_text() for s in ctx.spans)}

    # -- lifecycle ---------------------------------------------------------
    def arm(self) -> None:
        global _armed_tracer
        if self._armed:
            return
        if _armed_tracer is not None:
            raise RuntimeError("another Tracer is already armed")
        _armed_tracer = self
        self._armed = True
        _stages.install_stage_instrumentation(self._instrument_stage_class)
        self._instrument_xrl_router()
        self._instrument_eventloop()
        self._instrument_fib()

    def disarm(self) -> None:
        global _armed_tracer
        if not self._armed:
            return
        _stages.uninstall_stage_instrumentation(self._instrument_stage_class)
        for cls, name, original in reversed(self._wrapped):
            setattr(cls, name, original)
        self._wrapped.clear()
        for ctx in self._traces.values():
            ctx.stack.clear()
        self._armed = False
        _armed_tracer = None

    def __enter__(self) -> "Tracer":
        self.arm()
        return self

    def __exit__(self, *exc_info) -> None:
        self.disarm()

    def _rebind(self, cls: type, name: str, original, wrapper) -> None:
        wrapper._repro_obs_original = original  # type: ignore[attr-defined]
        setattr(cls, name, wrapper)
        self._wrapped.append((cls, name, original))

    # -- stage instrumentation ---------------------------------------------
    def _instrument_stage_class(self, cls: type) -> None:
        for name in _STAGE_METHODS + _ORIGIN_METHODS:
            fn = cls.__dict__.get(name)
            if fn is None or hasattr(fn, "_repro_obs_original"):
                continue
            self._rebind(cls, name, fn, self._make_stage_wrapper(name, fn))

    def _make_stage_wrapper(self, name: str, original):
        tracer = self

        def run_traced(stage, ctxs, kind, op, call):
            for ctx in ctxs:
                tracer._enter(ctx, kind, getattr(stage, "name", "") or
                              type(stage).__name__, op)
            try:
                return call()
            finally:
                for ctx in reversed(ctxs):
                    tracer._exit(ctx)

        if name in ("add_route", "delete_route"):
            op = "add" if name == "add_route" else "delete"

            @functools.wraps(original)
            def wrapper(stage, route, *, caller=None):
                ctx = tracer._by_key.get(_net_key(route.net))
                if ctx is None:
                    return original(stage, route, caller=caller)
                return run_traced(stage, [ctx], "stage", op,
                                  lambda: original(stage, route,
                                                   caller=caller))

        elif name == "replace_route":
            @functools.wraps(original)
            def wrapper(stage, old_route, new_route, *, caller=None):
                ctx = tracer._by_key.get(_net_key(new_route.net))
                if ctx is None:
                    return original(stage, old_route, new_route,
                                    caller=caller)
                return run_traced(stage, [ctx], "stage", "replace",
                                  lambda: original(stage, old_route,
                                                   new_route, caller=caller))

        elif name in ("add_routes", "delete_routes"):
            op = "add" if name == "add_routes" else "delete"

            @functools.wraps(original)
            def wrapper(stage, routes, *, caller=None):
                routes = list(routes)
                ctxs = tracer._contexts_for_nets(r.net for r in routes)
                if not ctxs:
                    return original(stage, routes, caller=caller)
                return run_traced(stage, ctxs, "stage", op,
                                  lambda: original(stage, routes,
                                                   caller=caller))

        elif name in ("originate", "withdraw", "withdraw_if_present"):
            op = "originate" if name == "originate" else "withdraw"

            @functools.wraps(original)
            def wrapper(stage, arg):
                net = arg if isinstance(arg, IPNet) else arg.net
                ctx = tracer._by_key.get(_net_key(net))
                if ctx is None:
                    return original(stage, arg)
                return run_traced(stage, [ctx], "origin", op,
                                  lambda: original(stage, arg))

        else:  # originate_batch / withdraw_batch
            op = "originate" if name == "originate_batch" else "withdraw"

            @functools.wraps(original)
            def wrapper(stage, items):
                items = list(items)
                nets = (i if isinstance(i, IPNet) else i.net for i in items)
                ctxs = tracer._contexts_for_nets(nets)
                if not ctxs:
                    return original(stage, items)
                return run_traced(stage, ctxs, "origin", op,
                                  lambda: original(stage, items))

        return wrapper

    def _contexts_for_nets(self, nets) -> List[TraceContext]:
        ctxs: List[TraceContext] = []
        seen: set = set()
        for net in nets:
            key = _net_key(net)
            if key in seen:
                continue
            seen.add(key)
            ctx = self._by_key.get(key)
            if ctx is not None:
                ctxs.append(ctx)
        return ctxs

    # -- XRL instrumentation -----------------------------------------------
    def _contexts_in_args(self, args: XrlArgs) -> List[TraceContext]:
        ctxs: List[TraceContext] = []
        for atom in args:
            value = atom.value
            if isinstance(value, IPNet):
                ctx = self._by_key.get(_net_key(value))
                if ctx is not None and ctx not in ctxs:
                    ctxs.append(ctx)
            elif isinstance(value, list):
                for inner in value:
                    inner_value = getattr(inner, "value", inner)
                    if isinstance(inner_value, IPNet):
                        ctx = self._by_key.get(_net_key(inner_value))
                        if ctx is not None and ctx not in ctxs:
                            ctxs.append(ctx)
        return ctxs

    def _instrument_xrl_router(self) -> None:
        tracer = self
        original_send = XrlRouter.__dict__["send"]

        @functools.wraps(original_send)
        def send(router, xrl, callback=None, *, deadline=None, retry=None,
                 batch=False):
            tracer._sends.inc()
            ctxs = tracer._contexts_in_args(xrl.args)
            if ctxs and not xrl.args.has(TRACE_ARG):
                entries = []
                for ctx in ctxs:
                    span = tracer._record(
                        ctx, "xrl-send", router.class_name, xrl.method,
                        ctx.next_parent())
                    entries.append(f"{ctx.trace_id}:{span.span_id}")
                augmented = XrlArgs(list(xrl.args))
                augmented.add_txt(TRACE_ARG, ";".join(entries))
                xrl = xrl.with_args(augmented)
                tracer._traced_frames.inc()
            return original_send(router, xrl, callback, deadline=deadline,
                                 retry=retry, batch=batch)

        self._rebind(XrlRouter, "send", original_send, send)

        # Wrap the post-decode dispatch hook, not dispatch_frame_async:
        # the frame may have travelled in a stateful per-connection codec,
        # so the span is recorded (and the trace atom stripped) on the
        # decoded arguments instead of re-encoding the frame.
        original_dispatch = XrlRouter.__dict__["dispatch_request"]

        @functools.wraps(original_dispatch)
        def dispatch_request(router, seq, resolved_method, args, respond, *,
                             codec=TEXTUAL_CODEC):
            if not args.has(TRACE_ARG):
                return original_dispatch(router, seq, resolved_method, args,
                                         respond, codec=codec)
            entries = args.get_txt(TRACE_ARG)
            clean = XrlArgs([a for a in args if a.name != TRACE_ARG])
            op = resolved_method.rsplit("/", 1)[-1]
            for entry in entries.split(";"):
                trace_part, __, parent_part = entry.partition(":")
                try:
                    trace_id = int(trace_part)
                    parent_id = int(parent_part)
                except ValueError:
                    continue
                ctx = tracer._traces.get(trace_id)
                if ctx is None:
                    continue
                tracer._record(ctx, "xrl-recv", router.class_name, op,
                               parent_id)
            return original_dispatch(router, seq, resolved_method, clean,
                                     respond, codec=codec)

        self._rebind(XrlRouter, "dispatch_request", original_dispatch,
                     dispatch_request)

    # -- event-loop instrumentation ----------------------------------------
    def _instrument_eventloop(self) -> None:
        tracer = self
        original = EventLoop.__dict__["call_soon"]

        @functools.wraps(original)
        def call_soon(loop, cb, *args):
            enqueued = loop.clock.now()

            def timed(*cb_args):
                tracer._dispatch_latency.observe(loop.clock.now() - enqueued)
                return cb(*cb_args)

            return original(loop, timed, *args)

        self._rebind(EventLoop, "call_soon", original, call_soon)

    # -- FIB instrumentation -----------------------------------------------
    def _instrument_fib(self) -> None:
        # The FEA is a process package, so shared code must not import it
        # (isolation rule ISO002).  If it is loaded in this interpreter we
        # instrument its Fib class; if not, there is no FIB to trace.
        fib_module = sys.modules.get("repro.fea.fib")
        if fib_module is None:
            return
        fib_cls = fib_module.Fib
        tracer = self

        original_insert = fib_cls.__dict__["insert"]

        @functools.wraps(original_insert)
        def insert(fib, entry):
            ctx = tracer._by_key.get(_net_key(entry.net))
            if ctx is not None:
                site = "fib4" if entry.net.bits == 32 else "fib6"
                tracer._record(ctx, "fib", site, "insert", ctx.next_parent())
            return original_insert(fib, entry)

        self._rebind(fib_cls, "insert", original_insert, insert)

        original_remove = fib_cls.__dict__["remove"]

        @functools.wraps(original_remove)
        def remove(fib, net):
            ctx = tracer._by_key.get(_net_key(net))
            if ctx is not None:
                site = "fib4" if net.bits == 32 else "fib6"
                tracer._record(ctx, "fib", site, "remove", ctx.next_parent())
            return original_remove(fib, net)

        self._rebind(fib_cls, "remove", original_remove, remove)
