"""Observability: the tracer and the obs-level metrics behind one switch.

Mirrors :class:`repro.sanitizer.runtime.RuntimeSanitizer`: one object the
tests, the CLI and harnesses arm/disarm (or use as a context manager).

Arming order matters when sanitizers are also armed: arm sanitizers
first, then observability, and disarm in LIFO order (observability
first).  Both instruments rebind ``XrlRouter.send``; LIFO disarm makes
each restore exactly what it saved.
"""

from __future__ import annotations

from repro.net import IPNet
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceContext, Tracer


class Observability:
    """Arms/disarms causal tracing plus the obs metric instruments."""

    def __init__(self, *, clock=None):
        self.metrics = MetricsRegistry("obs")
        self.tracer = Tracer(clock=clock, metrics=self.metrics)

    def trace(self, net: IPNet) -> TraceContext:
        return self.tracer.trace(net)

    def arm(self) -> None:
        self.tracer.arm()

    def disarm(self) -> None:
        self.tracer.disarm()

    def __enter__(self) -> "Observability":
        self.arm()
        return self

    def __exit__(self, *exc_info) -> None:
        self.disarm()
