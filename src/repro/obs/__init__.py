"""repro.obs — causal route tracing and a metrics registry (fleet-grade
observability for the multi-process router).

The paper's profiling facility (§8.1) records timestamped events at
hand-placed points inside one process.  This package answers the question
profiling cannot: *which stages, XRLs and queues did this route traverse,
and where did the time go* — across process boundaries.

Two pieces:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms every process registers and serves over the ``metrics/1.0``
  XRL interface, so an external collector can scrape any router process
  the way the paper makes profiling externally scriptable.
* :class:`~repro.obs.trace.Tracer` — per-route causal tracing.  A traced
  prefix gets a :class:`~repro.obs.trace.TraceContext`; hops are recorded
  as the route flows through the stage message surface, and a reserved
  XRL argument (:data:`~repro.obs.trace.TRACE_ARG`) carries the context
  across process boundaries, so one route's journey BGP peer-in →
  decision → RIB merge → FEA FIB reconstructs as a span tree.

Both arm by method rebinding (the sanitizer's pattern): when disarmed the
pristine functions are back on the classes and the hot paths carry zero
residual overhead — no branches, no indirection (see the fig13 benchmark
gate).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import Observability
from repro.obs.trace import TRACE_ARG, Span, TraceContext, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "TraceContext",
    "Tracer",
    "TRACE_ARG",
]
