"""The metrics registry: counters, gauges, histograms, scraped over XRLs.

Every :class:`~repro.core.process.XorpProcess` owns one
:class:`MetricsRegistry` (namespace = the process name) and binds it to
``metrics/1.0`` on each of its components, so *any* router process can be
scraped by an external process with three XRLs — the same externally
scriptable shape as the paper's profiling interface (§8.1).

Naming scheme: ``<namespace>.<instrument>``, dotted, lowercase — e.g.
``bgp.xrl.retries``, ``rib.txq.depth``, ``fea.fib4.routes``.  The
namespace is the process name, so a collector scraping several processes
can merge reports without collisions.

Gauges are *pull* instruments: they hold a callable evaluated only at
scrape time, so registering a gauge costs the hot path nothing at all.
Counters and histograms are push instruments owned by code that is
already instrumented (the obs tracer, armed explicitly); nothing here
touches a hot path while disarmed.

Rendering is deterministic (sorted names, fixed float formatting):
under a simulated clock two identical runs scrape byte-identical
reports, which is what the CLI's ``--json`` byte-stability contract
rests on.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple


def _fmt(value: Any) -> str:
    """Deterministic value rendering (no float repr jitter across runs)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return format(value, ".9g")
    return str(value)


class Counter:
    """Monotonic count of events."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def sample(self) -> str:
        return _fmt(self.value)


class Gauge:
    """A point-in-time reading, evaluated lazily at scrape time."""

    __slots__ = ("name", "fn")

    kind = "gauge"

    def __init__(self, name: str, fn: Callable[[], Any]):
        self.name = name
        self.fn = fn

    def read(self) -> Any:
        return self.fn()

    def sample(self) -> str:
        return _fmt(self.read())


class Histogram:
    """A distribution summary: count, sum, min, max.

    Deliberately bucket-free: the consumers here (dispatch latency,
    per-stage throughput) need magnitudes, and a fixed summary renders
    deterministically without choosing bucket bounds per deployment.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def sample(self) -> str:
        if self.count == 0:
            return "count=0"
        return (f"count={self.count} sum={_fmt(self.total)} "
                f"min={_fmt(self.min)} max={_fmt(self.max)}")


class MetricsRegistry:
    """One process's instruments, keyed ``<namespace>.<instrument>``.

    Also the ``metrics/1.0`` implementation: binding a registry to a
    component (``router.bind(METRICS_IDL, registry)``) exposes the whole
    namespace to external scrapers.
    """

    def __init__(self, namespace: str):
        self.namespace = namespace
        self._instruments: Dict[str, Any] = {}

    # -- registration ------------------------------------------------------
    def _full(self, name: str) -> str:
        return f"{self.namespace}.{name}"

    def _register(self, instrument: Any) -> Any:
        existing = self._instruments.get(instrument.name)
        if existing is not None:
            if type(existing) is not type(instrument):
                raise ValueError(
                    f"metric {instrument.name!r} already registered as "
                    f"{existing.kind}")
            return existing
        self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """Register (or fetch) the counter ``<namespace>.<name>``."""
        return self._register(Counter(self._full(name)))

    def gauge(self, name: str, fn: Callable[[], Any]) -> Gauge:
        """Register the gauge ``<namespace>.<name>`` reading *fn()*.

        Re-registering an existing gauge rebinds its callable — a
        supervised restart replaces the dead object's reading with the
        reborn one's instead of raising.
        """
        full = self._full(name)
        existing = self._instruments.get(full)
        if isinstance(existing, Gauge):
            existing.fn = fn
            return existing
        return self._register(Gauge(full, fn))

    def histogram(self, name: str) -> Histogram:
        """Register (or fetch) the histogram ``<namespace>.<name>``."""
        return self._register(Histogram(self._full(name)))

    # -- reading -----------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Any]:
        return self._instruments.get(name)

    def sample(self, name: str) -> Tuple[str, str]:
        """``(kind, rendered value)`` for one instrument (KeyError if absent)."""
        instrument = self._instruments[name]
        return instrument.kind, instrument.sample()

    def report(self) -> str:
        """The full scrape: one ``name kind value`` line per instrument,
        sorted by name, trailing newline."""
        lines = []
        for name in self.names():
            kind, value = self.sample(name)
            lines.append(f"{name} {kind} {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- metrics/1.0 handlers ----------------------------------------------
    def xrl_list_metrics(self) -> Dict[str, str]:
        return {"names": ",".join(self.names())}

    def xrl_get_metric(self, name: str) -> Dict[str, str]:
        instrument = self._instruments.get(name)
        if instrument is None:
            from repro.xrl import XrlError
            from repro.xrl.error import XrlErrorCode
            raise XrlError(XrlErrorCode.COMMAND_FAILED,
                           f"no metric {name!r} in namespace "
                           f"{self.namespace!r}")
        return {"kind": instrument.kind, "value": instrument.sample()}

    def xrl_get_metrics(self) -> Dict[str, str]:
        return {"report": self.report()}
