"""CLI: ``python -m repro.obs [--routes N] [--json]``.

Runs the observability scenario (:mod:`repro.experiments.obsflow`): a
full simulated BGP + RIB + FEA stack with causal tracing armed, a burst
of traced route originations followed to the FEA FIB, and an external
metrics/trace scrape over the ``metrics/1.0``/``trace/1.0`` XRL
interfaces.  Exit status 0 when every traced route reached the FIB, the
expected metrics moved and causality held; 1 otherwise (OBS001–003).

Output is deterministic: the simulated clock makes two identical
invocations print byte-identical reports (``--json`` included).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.report import FORMATS, render_findings
from repro.experiments.obsflow import run_obs_flow


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Causal route tracing + metrics scrape over a "
                    "simulated BGP/RIB/FEA stack.",
    )
    parser.add_argument("--routes", type=int, default=6, metavar="N",
                        help="routes to originate and trace (default: 6)")
    parser.add_argument("--json", action="store_true",
                        help="print the full report (spans, hop sequences, "
                             "scrapes, findings) as byte-stable JSON")
    parser.add_argument("--format", choices=FORMATS, default="text",
                        help="findings format for non-JSON output "
                             "(default: text)")
    args = parser.parse_args(argv)

    report = run_obs_flow(args.routes)

    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for target, text in sorted(report.scrapes.items()):
            print(f"== metrics scrape: {target} ==")
            print(text, end="")
        for trace_id in sorted(report.spans):
            hops = " -> ".join(report.hop_sequences[trace_id])
            print(f"== trace {trace_id} ==")
            print(f"hops: {hops}")
            for line in report.spans[trace_id]:
                print(f"  {line}")
        rendered = render_findings(report.findings, args.format)
        if rendered:
            print(rendered)
        print(f"{report.route_count} route(s) traced, "
              f"{len(report.findings)} finding(s)", file=sys.stderr)
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
