"""Callback objects with creation-time currying (paper §4).

XORP's callbacks are "type-safe C++ functors [that] allow for the currying
of additional arguments at creation time".  Python gives us most of this for
free, but a dedicated :class:`Callback` object adds two things the router
code relies on:

* **invalidation** — a callback can be disabled after its owner goes away,
  so a late-firing timer cannot touch a dead object;
* **introspection** — a printable name for debugging dispatch problems.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class Callback:
    """A callable with curried arguments and an invalidation switch."""

    __slots__ = ("_fn", "_args", "_kwargs", "_valid", "name")

    def __init__(self, fn: Callable, *args: Any, name: Optional[str] = None, **kwargs: Any):
        if not callable(fn):
            raise TypeError(f"Callback target {fn!r} is not callable")
        self._fn = fn
        self._args = args
        self._kwargs = kwargs
        self._valid = True
        self.name = name or getattr(fn, "__qualname__", repr(fn))

    def __call__(self, *late_args: Any, **late_kwargs: Any) -> Any:
        """Dispatch: curried arguments first, then dispatch-time arguments."""
        if not self._valid:
            return None
        if late_kwargs:
            merged = dict(self._kwargs)
            merged.update(late_kwargs)
        else:
            merged = self._kwargs
        return self._fn(*self._args, *late_args, **merged)

    def invalidate(self) -> None:
        """Disable the callback; subsequent dispatches become no-ops."""
        self._valid = False

    @property
    def is_valid(self) -> bool:
        return self._valid

    def __repr__(self) -> str:
        state = "" if self._valid else " (invalidated)"
        return f"<Callback {self.name}{state}>"


def callback(fn: Callable, *args: Any, **kwargs: Any) -> Callback:
    """Create a :class:`Callback`, currying *args*/*kwargs* now."""
    return Callback(fn, *args, **kwargs)
