"""Cooperative background tasks (paper §4).

    "XORP supports background tasks, implemented using our timer handler,
    which run only when no events are being processed.  These background
    tasks are essentially cooperative threads: they divide processing up
    into small slices, and voluntarily return execution to the process's
    main event loop from time to time until they complete."

A :class:`BackgroundTask` wraps a step function returning True while more
work remains.  The scheduler is weighted-round-robin across priorities:
within one idle moment, only one slice of one task runs, keeping event
latency bounded even while (say) 146,515 routes are being deleted.
"""

from __future__ import annotations

from collections import deque
from enum import IntEnum
from typing import Callable, Deque, Dict, Optional


class TaskPriority(IntEnum):
    """Lower value runs first when multiple tasks are runnable."""

    HIGH = 0
    DEFAULT = 4
    BACKGROUND = 8


class BackgroundTask:
    """Handle for one cooperative background task."""

    __slots__ = ("_step", "_scheduler", "_priority", "_alive", "name",
                 "slices_run", "_on_complete")

    def __init__(self, scheduler: "TaskScheduler", step: Callable[[], bool],
                 priority: TaskPriority, name: str,
                 on_complete: Optional[Callable[[], None]] = None):
        self._step = step
        self._scheduler = scheduler
        self._priority = priority
        self._alive = True
        self.name = name
        self.slices_run = 0
        self._on_complete = on_complete

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def priority(self) -> TaskPriority:
        return self._priority

    def kill(self) -> None:
        """Stop the task without running its completion callback."""
        self._alive = False

    def _run_slice(self) -> bool:
        """Run one slice.  Returns True if the task wants to run again."""
        if not self._alive:
            return False
        self.slices_run += 1
        more = bool(self._step())
        if not more:
            self._alive = False
            if self._on_complete is not None:
                self._on_complete()
        return more


class TaskScheduler:
    """Runs one background-task slice per idle moment of the event loop."""

    def __init__(self) -> None:
        self._queues: Dict[int, Deque[BackgroundTask]] = {}

    def spawn(self, step: Callable[[], bool], *,
              priority: TaskPriority = TaskPriority.DEFAULT,
              name: str = "task",
              on_complete: Optional[Callable[[], None]] = None) -> BackgroundTask:
        """Create and enqueue a background task.

        *step* is called once per slice and must return True while it has
        more work, False once done.
        """
        task = BackgroundTask(self, step, priority, name, on_complete)
        self._queues.setdefault(int(priority), deque()).append(task)
        return task

    def have_work(self) -> bool:
        return any(
            any(t.alive for t in queue) for queue in self._queues.values()
        )

    def pending_count(self) -> int:
        return sum(
            sum(1 for t in queue if t.alive) for queue in self._queues.values()
        )

    def run_one_slice(self) -> bool:
        """Run a slice of the highest-priority runnable task.

        Returns True if a slice ran.  Tasks at equal priority are rotated
        round-robin so a long deletion cannot starve its siblings.
        """
        for priority in sorted(self._queues):
            queue = self._queues[priority]
            while queue:
                task = queue.popleft()
                if not task.alive:
                    continue
                more = task._run_slice()
                if more and task.alive:
                    queue.append(task)
                return True
        return False
