"""Clock abstraction separating the event loop from wall time."""

from __future__ import annotations

import time


class Clock:
    """Source of the event loop's notion of "now" (seconds, float)."""

    def now(self) -> float:
        raise NotImplementedError

    @property
    def is_simulated(self) -> bool:
        return False


class SystemClock(Clock):
    """Wall-clock time via :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()


class SimulatedClock(Clock):
    """Deterministic virtual time.

    The clock never moves on its own; the event loop advances it to the next
    timer deadline when it runs out of ready work.  Tests may also advance it
    explicitly.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    @property
    def is_simulated(self) -> bool:
        return True

    def advance(self, delta: float) -> None:
        """Move time forward by *delta* seconds (never backwards)."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += delta

    def advance_to(self, deadline: float) -> None:
        """Move time forward to *deadline* if it is in the future."""
        if deadline > self._now:
            self._now = deadline
