"""The event loop itself.

Modeled on the SFS-toolkit-style select loop the paper describes: timers
and file descriptors generate events; callbacks are dispatched when events
occur; each event is processed to completion; background tasks run only
when no events are pending.

One loop instance is shared by every "process" object running in the same
interpreter (they are still isolated — they interact only via XRLs), which
mirrors how the simulated-network experiments schedule many routers.
"""

from __future__ import annotations

import selectors
from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.eventloop.clock import Clock, SimulatedClock, SystemClock
from repro.eventloop.tasks import BackgroundTask, TaskPriority, TaskScheduler
from repro.eventloop.timers import Timer, TimerList


class EventLoopExit(Exception):
    """Raised internally to leave :meth:`EventLoop.run`."""


class EventLoop:
    """Select-based event loop with timers and background tasks."""

    def __init__(self, clock: Optional[Clock] = None):
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.timers = TimerList(self.clock)
        self.tasks = TaskScheduler()
        self._deferred: Deque[Tuple[Callable, tuple]] = deque()
        self._selector = selectors.DefaultSelector()
        self._fd_count = 0
        self._stopping = False

    # -- time -------------------------------------------------------------
    def now(self) -> float:
        return self.clock.now()

    # -- observability -----------------------------------------------------
    def register_metrics(self, registry) -> None:
        """Expose queue depths as gauges on *registry* (a
        :class:`repro.obs.metrics.MetricsRegistry`).  Gauges are read only
        at scrape time, so registering costs the loop nothing.
        """
        registry.gauge("eventloop.deferred", lambda: len(self._deferred))
        registry.gauge("eventloop.timers", lambda: len(self.timers))
        registry.gauge("eventloop.tasks", self.tasks.pending_count)

    # -- deferred callbacks -------------------------------------------------
    def call_soon(self, cb: Callable, *args: Any) -> None:
        """Queue *cb* to run on the next loop iteration (an "event")."""
        self._deferred.append((cb, args))

    def _drain_deferred(self) -> None:
        """Run the callbacks queued before this iteration.

        New callbacks queued by handlers run next time, preserving
        fairness.  This is a named method (rather than inlined in
        :meth:`run_once`) so the sanitizer's schedule explorer can patch
        one dispatch point to permute the batch.
        """
        for __ in range(len(self._deferred)):
            if not self._deferred:
                break
            cb, args = self._deferred.popleft()
            cb(*args)

    # -- timers ---------------------------------------------------------------
    def call_later(self, delay: float, cb: Callable, *, name: str = "timer") -> Timer:
        return self.timers.schedule_after(delay, cb, name=name)

    def call_at(self, when: float, cb: Callable, *, name: str = "timer") -> Timer:
        return self.timers.schedule_at(when, cb, name=name)

    def call_periodic(self, interval: float, cb: Callable, *,
                      name: str = "periodic") -> Timer:
        return self.timers.schedule_periodic(interval, cb, name=name)

    # -- background tasks -------------------------------------------------
    def spawn_task(self, step: Callable[[], bool], *,
                   priority: TaskPriority = TaskPriority.DEFAULT,
                   name: str = "task",
                   on_complete: Optional[Callable[[], None]] = None) -> BackgroundTask:
        """Add a cooperative background task (see :mod:`repro.eventloop.tasks`)."""
        return self.tasks.spawn(step, priority=priority, name=name,
                                on_complete=on_complete)

    # -- file descriptors ---------------------------------------------------
    def add_reader(self, fileobj: Any, cb: Callable) -> None:
        """Dispatch *cb* whenever *fileobj* is readable (real clock only)."""
        self._register(fileobj, selectors.EVENT_READ, cb)

    def add_writer(self, fileobj: Any, cb: Callable) -> None:
        self._register(fileobj, selectors.EVENT_WRITE, cb)

    def _register(self, fileobj: Any, mask: int, cb: Callable) -> None:
        try:
            key = self._selector.get_key(fileobj)
        except KeyError:
            self._selector.register(fileobj, mask, {mask: cb})
            self._fd_count += 1
            return
        data = dict(key.data)
        data[mask] = cb
        self._selector.modify(fileobj, key.events | mask, data)

    def remove_reader(self, fileobj: Any) -> None:
        self._unregister(fileobj, selectors.EVENT_READ)

    def remove_writer(self, fileobj: Any) -> None:
        self._unregister(fileobj, selectors.EVENT_WRITE)

    def _unregister(self, fileobj: Any, mask: int) -> None:
        try:
            key = self._selector.get_key(fileobj)
        except KeyError:
            return
        events = key.events & ~mask
        data = {m: cb for m, cb in key.data.items() if m != mask}
        if events:
            self._selector.modify(fileobj, events, data)
        else:
            self._selector.unregister(fileobj)
            self._fd_count -= 1

    # -- running -----------------------------------------------------------
    def stop(self) -> None:
        """Make :meth:`run` return after the current event."""
        self._stopping = True

    def pending_events(self) -> bool:
        """True if an event (deferred callback or expired timer) is ready."""
        if self._deferred:
            return True
        expiry = self.timers.next_expiry()
        return expiry is not None and expiry <= self.clock.now()

    def poll_io(self, timeout: float = 0.0) -> bool:
        """Service ready I/O callbacks once, nothing else.

        Unlike :meth:`run_once` this never runs timers or deferred
        callbacks, so it is safe to call from *inside* a timer callback —
        the spawn manager uses it to pump Finder-daemon traffic while it
        blocks waiting for a freshly forked child to register.
        """
        if not self._fd_count:
            return False
        ran = False
        for key, mask in self._selector.select(timeout):
            for want_mask, cb in list(key.data.items()):
                if mask & want_mask:
                    cb()
                    ran = True
        return ran

    def run_once(self, block: bool = True) -> bool:
        """Process one batch of events; return True if anything ran.

        Order per iteration: deferred callbacks, expired timers, I/O events,
        then — only if none of those produced work — one background-task
        slice.  With a :class:`SimulatedClock` and no ready work, virtual
        time jumps to the next timer deadline.
        """
        ran = False

        if self._deferred:
            self._drain_deferred()
            ran = True

        if self.timers.run_expired():
            ran = True

        if self._fd_count:
            timeout = 0.0
            if block and not ran and not self.tasks.have_work():
                timeout = self._io_timeout()
            for key, mask in self._selector.select(timeout):
                for want_mask, cb in list(key.data.items()):
                    if mask & want_mask:
                        cb()
                        ran = True

        if not ran and not self.pending_events():
            if self.tasks.run_one_slice():
                return True
            if block and isinstance(self.clock, SimulatedClock):
                expiry = self.timers.next_expiry()
                if expiry is not None:
                    self.clock.advance_to(expiry)
                    return True
            return False
        return ran

    def _io_timeout(self) -> Optional[float]:
        expiry = self.timers.next_expiry()
        if expiry is None:
            return 0.05
        return max(0.0, min(expiry - self.clock.now(), 0.05))

    def run(self, duration: Optional[float] = None) -> None:
        """Run until :meth:`stop`, or until *duration* seconds elapse."""
        self._stopping = False
        deadline = None if duration is None else self.clock.now() + duration
        while not self._stopping:
            if deadline is not None and self.clock.now() >= deadline:
                return
            if (deadline is not None
                    and isinstance(self.clock, SimulatedClock)
                    and not self.pending_events()
                    and not self.tasks.have_work()):
                # Don't let the virtual clock jump past the deadline to a
                # far-future timer; stop exactly at the deadline instead.
                expiry = self.timers.next_expiry()
                if expiry is None or expiry > deadline:
                    self.clock.advance_to(deadline)
                    return
            progressed = self.run_once()
            if not progressed and self._idle():
                if isinstance(self.clock, SimulatedClock):
                    if deadline is None:
                        return  # simulation has fully quiesced
                    self.clock.advance_to(deadline)
                    return
                if deadline is None:
                    return

    def run_until(self, predicate: Callable[[], bool],
                  timeout: float = 30.0) -> bool:
        """Run until *predicate()* is true; return False on timeout."""
        deadline = self.clock.now() + timeout
        while not predicate():
            if self.clock.now() >= deadline:
                return False
            progressed = self.run_once()
            if not progressed and self._idle():
                if isinstance(self.clock, SimulatedClock):
                    return predicate()
        return True

    def _idle(self) -> bool:
        return (
            not self._deferred
            and self.timers.next_expiry() is None
            and not self.tasks.have_work()
            and self._fd_count == 0
        )
