"""Timer management for the event loop.

Timers are kept in a binary heap keyed by expiry time.  Cancellation and
rescheduling are lazy: a dead heap entry stays put until it surfaces, at
which point it is discarded (each entry carries the generation number of
the handle at push time).  The :class:`Timer` handle returned to callers
supports cancel, reschedule, and periodic operation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.eventloop.clock import Clock


class Timer:
    """Handle for a scheduled timer.

    Dropping every reference does **not** cancel the timer (unlike XORP,
    where ``XorpTimer`` unschedules on destruction) — Python destructor
    timing is too vague to hang semantics on.  Call :meth:`cancel`.
    """

    __slots__ = ("_list", "_cb", "_interval", "_expiry", "_scheduled", "_gen", "name")

    def __init__(self, timer_list: "TimerList", cb: Callable, expiry: float,
                 interval: Optional[float], name: str):
        self._list = timer_list
        self._cb = cb
        self._interval = interval
        self._expiry = expiry
        self._scheduled = True
        self._gen = 0
        self.name = name

    @property
    def expiry(self) -> float:
        return self._expiry

    @property
    def scheduled(self) -> bool:
        return self._scheduled

    @property
    def is_periodic(self) -> bool:
        return self._interval is not None

    def cancel(self) -> None:
        """Unschedule the timer; a periodic timer stops recurring."""
        self._scheduled = False

    def reschedule_after(self, delay: float) -> None:
        """Re-arm the timer to fire *delay* seconds from now."""
        self._gen += 1  # orphan any heap entry pushed earlier
        self._expiry = self._list.clock.now() + max(0.0, delay)
        self._scheduled = True
        self._list._push(self)

    def _fire(self) -> None:
        if self._interval is not None and self._scheduled:
            self._gen += 1
            self._expiry = self._list.clock.now() + self._interval
            self._list._push(self)
        self._cb()


class TimerList:
    """The heap of pending timers owned by one event loop."""

    def __init__(self, clock: Clock):
        self.clock = clock
        self._heap: List[Tuple[float, int, int, Timer]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        self._drop_dead()
        live = {id(t) for __, __, gen, t in self._heap if t.scheduled and gen == t._gen}
        return len(live)

    def empty(self) -> bool:
        return self.next_expiry() is None

    def schedule_after(self, delay: float, cb: Callable, *,
                       name: str = "timer") -> Timer:
        """One-shot timer firing *delay* seconds from now."""
        timer = Timer(self, cb, self.clock.now() + max(0.0, delay), None, name)
        self._push(timer)
        return timer

    def schedule_at(self, when: float, cb: Callable, *, name: str = "timer") -> Timer:
        """One-shot timer firing at absolute clock time *when*."""
        timer = Timer(self, cb, when, None, name)
        self._push(timer)
        return timer

    def schedule_periodic(self, interval: float, cb: Callable, *,
                          name: str = "periodic") -> Timer:
        """Recurring timer; first firing is one *interval* from now."""
        if interval <= 0:
            raise ValueError(f"periodic interval must be positive, got {interval}")
        timer = Timer(self, cb, self.clock.now() + interval, interval, name)
        self._push(timer)
        return timer

    def _push(self, timer: Timer) -> None:
        heapq.heappush(
            self._heap, (timer._expiry, next(self._counter), timer._gen, timer)
        )

    def _drop_dead(self) -> None:
        heap = self._heap
        while heap:
            __, __, gen, timer = heap[0]
            if not timer.scheduled or gen != timer._gen:
                heapq.heappop(heap)
            else:
                break

    def next_expiry(self) -> Optional[float]:
        """Expiry time of the earliest live timer, or None."""
        self._drop_dead()
        if not self._heap:
            return None
        return self._heap[0][0]

    def _pop_ready(self, now: float) -> Optional[Tuple[Timer, int]]:
        """Pop the earliest live entry with ``expiry <= now``, or None.

        Returns the timer plus the generation captured at pop time; a
        caller that defers firing (the sanitizer's schedule explorer pops
        a whole batch before firing any of it) must re-check
        ``timer.scheduled and timer._gen == gen`` before firing, so a
        timer cancelled or rescheduled by an earlier sibling stays dead.
        """
        self._drop_dead()
        if not self._heap or self._heap[0][0] > now:
            return None
        __, __, gen, timer = heapq.heappop(self._heap)
        return timer, gen

    def run_expired(self, limit: int = 64) -> int:
        """Fire up to *limit* timers whose expiry has passed; return count."""
        fired = 0
        now = self.clock.now()
        while fired < limit:
            entry = self._pop_ready(now)
            if entry is None:
                break
            timer, __ = entry
            if timer._interval is None:
                timer._scheduled = False
            timer._fire()
            fired += 1
        return fired
