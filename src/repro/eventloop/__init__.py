"""Single-threaded event-driven programming model (paper §4).

Every XORP process is built on a select-based event loop: events come from
timers and file descriptors, callbacks are dispatched when events fire, and
*background tasks* — cooperative threads that divide work into small slices —
run only when no events are being processed.

Two clocks are provided.  :class:`SystemClock` drives real sockets and wall
time (used by the XRL throughput benchmark).  :class:`SimulatedClock` gives
deterministic virtual time, which the latency experiments (paper Figures
10-13) use so that a 500-second experiment runs in milliseconds.
"""

from repro.eventloop.callbacks import Callback, callback
from repro.eventloop.clock import Clock, SimulatedClock, SystemClock
from repro.eventloop.eventloop import EventLoop
from repro.eventloop.tasks import BackgroundTask, TaskPriority
from repro.eventloop.timers import Timer

__all__ = [
    "BackgroundTask",
    "Callback",
    "Clock",
    "EventLoop",
    "SimulatedClock",
    "SystemClock",
    "TaskPriority",
    "Timer",
    "callback",
]
