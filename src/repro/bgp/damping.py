"""Route flap damping as a pluggable pipeline stage (paper §8.3).

    "Route flap damping was also not a part of our original BGP design.
    We are currently adding this functionality (ISPs demand it, even
    though it's a flawed mechanism), and can do so efficiently and simply
    by adding another stage to the BGP pipeline.  The code does not impact
    other stages, which need not be aware that damping is occurring."

RFC 2439-style figure-of-merit damping: each flap adds a penalty that
decays exponentially; a prefix whose penalty exceeds the suppress
threshold is withheld from downstream until it decays below the reuse
threshold.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.core.stages import RouteTableStage
from repro.net import IPNet

#: default RFC 2439-ish parameters (seconds / penalty units)
DEFAULT_HALF_LIFE = 900.0
DEFAULT_SUPPRESS = 3000.0
DEFAULT_REUSE = 750.0
DEFAULT_MAX_PENALTY = 12000.0
WITHDRAWAL_PENALTY = 1000.0
ATTRIBUTE_CHANGE_PENALTY = 500.0
REUSE_SCAN_INTERVAL = 10.0


class DampInfo:
    __slots__ = ("penalty", "last_update", "suppressed", "held_route",
                 "announced")

    def __init__(self) -> None:
        self.penalty = 0.0
        self.last_update = 0.0
        self.suppressed = False
        self.held_route: Optional[Any] = None
        #: whether downstream currently has an announcement for this prefix
        self.announced = False


class DampingStage(RouteTableStage):
    """Per-prefix flap damping on one peer's input branch."""

    def __init__(self, name: str, loop, *,
                 half_life: float = DEFAULT_HALF_LIFE,
                 suppress_threshold: float = DEFAULT_SUPPRESS,
                 reuse_threshold: float = DEFAULT_REUSE,
                 max_penalty: float = DEFAULT_MAX_PENALTY):
        super().__init__(name)
        self.loop = loop
        self.half_life = half_life
        self.suppress_threshold = suppress_threshold
        self.reuse_threshold = reuse_threshold
        self.max_penalty = max_penalty
        self.info: Dict[IPNet, DampInfo] = {}
        self.suppress_count = 0
        self._reuse_timer = loop.call_periodic(
            REUSE_SCAN_INTERVAL, self._reuse_scan, name=f"{name}-reuse")

    def stop(self) -> None:
        self._reuse_timer.cancel()

    # -- penalty arithmetic ---------------------------------------------------
    def _decayed(self, info: DampInfo) -> float:
        elapsed = self.loop.now() - info.last_update
        if elapsed <= 0:
            return info.penalty
        return info.penalty * math.pow(2.0, -elapsed / self.half_life)

    def _charge(self, info: DampInfo, penalty: float) -> None:
        info.penalty = min(self._decayed(info) + penalty, self.max_penalty)
        info.last_update = self.loop.now()

    def penalty_of(self, net: IPNet) -> float:
        info = self.info.get(net)
        return self._decayed(info) if info is not None else 0.0

    # -- stage messages ------------------------------------------------------
    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        info = self.info.get(route.net)
        if info is None:
            info = DampInfo()
            info.last_update = self.loop.now()
            self.info[route.net] = info
        if info.suppressed:
            info.held_route = route  # still suppressed: swallow
            return
        if self._decayed(info) >= self.suppress_threshold:
            info.suppressed = True
            info.held_route = route
            self.suppress_count += 1
            return
        info.announced = True
        info.held_route = None
        super().add_route(route, caller=caller)

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        info = self.info.get(route.net)
        if info is None:
            super().delete_route(route, caller=caller)
            return
        self._charge(info, WITHDRAWAL_PENALTY)
        if info.suppressed:
            info.held_route = None  # withdrawn while suppressed
            return
        if info.announced:
            info.announced = False
            super().delete_route(route, caller=caller)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        info = self.info.get(new_route.net)
        if info is None:
            info = DampInfo()
            info.last_update = self.loop.now()
            self.info[new_route.net] = info
        self._charge(info, ATTRIBUTE_CHANGE_PENALTY)
        if info.suppressed:
            info.held_route = new_route
            return
        if self._decayed(info) >= self.suppress_threshold and info.announced:
            # Suppress: withdraw from downstream, hold the new version.
            info.suppressed = True
            info.held_route = new_route
            info.announced = False
            self.suppress_count += 1
            super().delete_route(old_route, caller=caller)
            return
        info.announced = True
        super().replace_route(old_route, new_route, caller=caller)

    def lookup_route(self, net: IPNet, *,
                     caller: Optional[RouteTableStage] = None) -> Any:
        info = self.info.get(net)
        if info is not None and (info.suppressed or not info.announced):
            return None
        return super().lookup_route(net, caller=caller)

    # -- reuse ----------------------------------------------------------------
    def _reuse_scan(self) -> None:
        for net, info in list(self.info.items()):
            if info.suppressed and self._decayed(info) < self.reuse_threshold:
                info.suppressed = False
                held = info.held_route
                info.held_route = None
                if held is not None:
                    info.announced = True
                    super().add_route(held, caller=None)
            if (not info.suppressed and not info.announced
                    and self._decayed(info) < 1.0):
                del self.info[net]  # fully decayed; forget the prefix
