"""``python -m repro.bgp`` — BGP as a standalone OS process.

Besides the shared child bootstrap, this main owns the real BGP TCP
wiring: ``--bgp-listen`` accepts inbound sessions, ``--bgp-connect``
dials peers.  Peers themselves are configured later, over XRL from the
rtrmgr, so both sides poll: the passive side parks accepted connections
on the first enabled session-less peer handler; the active side keeps a
short re-dial timer until its peer appears, after which the FSM's own
connect-retry drives reconnection.
"""

import sys
from typing import Dict, List, Optional, Tuple

from repro.bgp import BgpProcess
from repro.bgp.session import TcpSession, TcpSessionListener
from repro.core.runtime import ChildRuntime, base_parser, parse_endpoint
from repro.net import IPv4


def wire_sessions(runtime: ChildRuntime, process: BgpProcess,
                  listen_port: Optional[int],
                  connects: Dict[str, Tuple[str, int]]) -> None:
    """Attach real TCP transports to peers as rtrmgr provisions them."""
    if listen_port is not None:
        def on_session(session: TcpSession) -> None:
            for handler in process.peers.values():
                if handler.enabled and (handler.session is None
                                        or not handler.session.connected):
                    handler.attach_session(session)
                    return
            session.close()

        TcpSessionListener(runtime.loop, on_session, port=listen_port)

    if connects:
        def dial() -> None:
            for peer_id, remote in connects.items():
                handler = process.peers.get(peer_id)
                if (handler is not None and handler.enabled
                        and handler.session is None):
                    handler.attach_session(
                        TcpSession(runtime.loop, remote=remote))
                    handler.session.connect()
            runtime.loop.call_later(0.2, dial, name="bgp-dial")

        runtime.loop.call_soon(dial)


def main(argv: Optional[List[str]] = None) -> None:
    parser = base_parser("repro.bgp")
    parser.add_argument("--local-as", type=int, default=65000)
    parser.add_argument("--bgp-id", default="127.0.0.1")
    parser.add_argument("--bgp-listen", type=int, default=None, metavar="PORT",
                        help="accept inbound BGP TCP sessions on this port")
    parser.add_argument("--bgp-connect", action="append", default=[],
                        type=parse_endpoint, metavar="PEER=HOST:PORT",
                        help="dial this peer's BGP TCP listener (repeatable)")
    args = parser.parse_args(argv)
    runtime = ChildRuntime(args.finder, codec=args.codec)
    process = BgpProcess(runtime.host, local_as=args.local_as,
                         bgp_id=IPv4(args.bgp_id))
    wire_sessions(runtime, process, args.bgp_listen, dict(args.bgp_connect))
    runtime.install_signal_handlers()
    runtime.run()


if __name__ == "__main__":  # pragma: no cover - exercised as subprocess
    main(sys.argv[1:])
