"""BGP session transports.

The peer handler talks to an abstract byte-stream session; concrete
implementations are the in-memory pair below (unit tests, single-host
experiments) and the simulated-network channel adapter in
:mod:`repro.simnet`.  Both carry the *real* encoded BGP messages.
"""

from __future__ import annotations

import socket as _socket
from typing import Callable, Optional


class BgpSession:
    """Abstract reliable, in-order byte stream between two BGP speakers."""

    def __init__(self) -> None:
        self.on_connected: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_closed: Optional[Callable[[], None]] = None

    def connect(self) -> None:
        """Initiate the transport (idempotent)."""
        raise NotImplementedError

    def send(self, data: bytes) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def connected(self) -> bool:
        raise NotImplementedError


class LoopbackSession(BgpSession):
    """One endpoint of an in-memory session pair."""

    def __init__(self, loop, latency: float = 0.0):
        super().__init__()
        self._loop = loop
        self._latency = latency
        self._peer: Optional["LoopbackSession"] = None
        self._connected = False

    @property
    def connected(self) -> bool:
        return self._connected

    def connect(self) -> None:
        if self._connected or self._peer is None:
            return
        self._connected = True
        self._peer._connected = True
        self._loop.call_soon(self._notify_connected)
        self._loop.call_soon(self._peer._notify_connected)

    def _notify_connected(self) -> None:
        if self._connected and self.on_connected is not None:
            self.on_connected()

    def send(self, data: bytes) -> None:
        if not self._connected or self._peer is None:
            return
        peer = self._peer

        def deliver() -> None:
            if peer._connected and peer.on_data is not None:
                peer.on_data(data)

        if self._latency > 0:
            self._loop.call_later(self._latency, deliver, name="bgp-session")
        else:
            self._loop.call_soon(deliver)

    def close(self) -> None:
        if not self._connected:
            return
        self._connected = False
        peer = self._peer
        if peer is not None and peer._connected:
            peer._connected = False
            if peer.on_closed is not None:
                self._loop.call_soon(peer.on_closed)


def session_pair(loop, latency: float = 0.0):
    """A connected pair of loopback sessions (caller wires them to peers)."""
    a, b = LoopbackSession(loop, latency), LoopbackSession(loop, latency)
    a._peer = b
    b._peer = a
    return a, b


class TcpSession(BgpSession):
    """A BGP session over a real TCP socket (multi-process deployment).

    Either wraps an already-accepted socket (passive side) or dials out
    on :meth:`connect` (active side).  All I/O is nonblocking through the
    event loop's readiness callbacks.
    """

    def __init__(self, loop, *, sock=None, remote=None):
        super().__init__()
        self._loop = loop
        self._remote = remote  # (host, port) for the active side
        self._sock = None
        self._out = bytearray()
        self._writing = False
        self._connected = False
        if sock is not None:
            self._adopt(sock, established=True)

    @property
    def connected(self) -> bool:
        return self._connected

    def _adopt(self, sock, *, established: bool) -> None:
        sock.setblocking(False)
        try:
            sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._sock = sock
        self._connected = established
        self._loop.add_reader(sock, self._on_readable)
        if established:
            self._loop.call_soon(self._notify_connected)

    def _notify_connected(self) -> None:
        if self._connected and self.on_connected is not None:
            self.on_connected()

    def connect(self) -> None:
        if self._sock is not None or self._remote is None:
            return
        sock = _socket.socket(_socket.AF_INET, _socket.SOCK_STREAM)
        sock.setblocking(False)
        try:
            sock.connect(self._remote)
        except BlockingIOError:
            pass
        except OSError:
            sock.close()
            if self.on_closed is not None:
                self._loop.call_soon(self.on_closed)
            return
        self._sock = sock
        # Writability signals connection completion (or refusal).
        self._writing = True
        self._loop.add_writer(sock, self._on_connect_ready)

    def _on_connect_ready(self) -> None:
        self._loop.remove_writer(self._sock)
        self._writing = False
        error = self._sock.getsockopt(_socket.SOL_SOCKET, _socket.SO_ERROR)
        if error:
            self._teardown(notify=True)
            return
        try:
            self._sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._connected = True
        self._loop.add_reader(self._sock, self._on_readable)
        self._notify_connected()

    def _on_readable(self) -> None:
        try:
            chunk = self._sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self._teardown(notify=True)
            return
        if not chunk:
            self._teardown(notify=True)
            return
        if self.on_data is not None:
            self.on_data(chunk)

    def send(self, data: bytes) -> None:
        if not self._connected:
            return
        self._out.extend(data)
        self._flush()

    def _flush(self) -> None:
        while self._out:
            try:
                sent = self._sock.send(self._out)
            except BlockingIOError:
                if not self._writing:
                    self._writing = True
                    self._loop.add_writer(self._sock, self._flush)
                return
            except OSError:
                self._teardown(notify=True)
                return
            del self._out[:sent]
        if self._writing:
            self._writing = False
            self._loop.remove_writer(self._sock)

    def _teardown(self, *, notify: bool) -> None:
        sock, self._sock = self._sock, None
        self._connected = False
        self._out.clear()
        if sock is not None:
            self._loop.remove_reader(sock)
            if self._writing:
                self._loop.remove_writer(sock)
                self._writing = False
            sock.close()
        # A failed dial reports the same as a close: connection_failed.
        if notify and self.on_closed is not None:
            self.on_closed()

    def close(self) -> None:
        self._teardown(notify=False)


class TcpSessionListener:
    """Accepts inbound BGP TCP connections and hands off TcpSessions."""

    def __init__(self, loop, on_session: Callable[["TcpSession"], None], *,
                 host: str = "127.0.0.1", port: int = 0):
        self._loop = loop
        self._on_session = on_session
        sock = _socket.socket(_socket.AF_INET, _socket.SOCK_STREAM)
        sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(16)
        sock.setblocking(False)
        self._sock = sock
        self.port = sock.getsockname()[1]
        loop.add_reader(sock, self._on_accept)

    def _on_accept(self) -> None:
        while True:
            try:
                conn, __ = self._sock.accept()
            except (BlockingIOError, OSError):
                return
            self._on_session(TcpSession(self._loop, sock=conn))

    def close(self) -> None:
        if self._sock is None:
            return
        self._loop.remove_reader(self._sock)
        self._sock.close()
        self._sock = None
