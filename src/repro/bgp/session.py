"""BGP session transports.

The peer handler talks to an abstract byte-stream session; concrete
implementations are the in-memory pair below (unit tests, single-host
experiments) and the simulated-network channel adapter in
:mod:`repro.simnet`.  Both carry the *real* encoded BGP messages.
"""

from __future__ import annotations

from typing import Callable, Optional


class BgpSession:
    """Abstract reliable, in-order byte stream between two BGP speakers."""

    def __init__(self) -> None:
        self.on_connected: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_closed: Optional[Callable[[], None]] = None

    def connect(self) -> None:
        """Initiate the transport (idempotent)."""
        raise NotImplementedError

    def send(self, data: bytes) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def connected(self) -> bool:
        raise NotImplementedError


class LoopbackSession(BgpSession):
    """One endpoint of an in-memory session pair."""

    def __init__(self, loop, latency: float = 0.0):
        super().__init__()
        self._loop = loop
        self._latency = latency
        self._peer: Optional["LoopbackSession"] = None
        self._connected = False

    @property
    def connected(self) -> bool:
        return self._connected

    def connect(self) -> None:
        if self._connected or self._peer is None:
            return
        self._connected = True
        self._peer._connected = True
        self._loop.call_soon(self._notify_connected)
        self._loop.call_soon(self._peer._notify_connected)

    def _notify_connected(self) -> None:
        if self._connected and self.on_connected is not None:
            self.on_connected()

    def send(self, data: bytes) -> None:
        if not self._connected or self._peer is None:
            return
        peer = self._peer

        def deliver() -> None:
            if peer._connected and peer.on_data is not None:
                peer.on_data(data)

        if self._latency > 0:
            self._loop.call_later(self._latency, deliver, name="bgp-session")
        else:
            self._loop.call_soon(deliver)

    def close(self) -> None:
        if not self._connected:
            return
        self._connected = False
        peer = self._peer
        if peer is not None and peer._connected:
            peer._connected = False
            if peer.on_closed is not None:
                self._loop.call_soon(peer.on_closed)


def session_pair(loop, latency: float = 0.0):
    """A connected pair of loopback sessions (caller wires them to peers)."""
    a, b = LoopbackSession(loop, latency), LoopbackSession(loop, latency)
    a._peer = b
    b._peer = a
    return a, b
