"""BGP path attributes and their wire encoding (RFC 1771/4271 style).

The attribute list is the unit BGP's decision process compares and the
unit UPDATE messages group routes by, so :class:`PathAttributeList` is
immutable, hashable, and supports cheap "with one field changed" copies —
the filter banks rewrite attributes constantly.
"""

from __future__ import annotations

import struct
from enum import IntEnum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net import IPv4


class BGPAttributeError(ValueError):
    """Malformed attribute data (encodes or decodes)."""


class Origin(IntEnum):
    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class AttrType(IntEnum):
    ORIGIN = 1
    AS_PATH = 2
    NEXT_HOP = 3
    MED = 4
    LOCAL_PREF = 5
    ATOMIC_AGGREGATE = 6
    AGGREGATOR = 7
    COMMUNITY = 8


#: attribute flag bits
FLAG_OPTIONAL = 0x80
FLAG_TRANSITIVE = 0x40
FLAG_PARTIAL = 0x20
FLAG_EXTENDED_LENGTH = 0x10

AS_SET = 1
AS_SEQUENCE = 2


class ASPath:
    """An AS path: a tuple of (segment_type, (as, as, ...)) segments."""

    __slots__ = ("segments", "_hash")

    def __init__(self, segments: Iterable[Tuple[int, Sequence[int]]] = ()):
        normalized = []
        for seg_type, as_numbers in segments:
            if seg_type not in (AS_SET, AS_SEQUENCE):
                raise BGPAttributeError(f"bad AS path segment type {seg_type}")
            numbers = tuple(int(a) for a in as_numbers)
            for asn in numbers:
                if not 0 <= asn <= 0xFFFF:
                    raise BGPAttributeError(f"AS number {asn} out of range")
            normalized.append((seg_type, numbers))
        self.segments: Tuple[Tuple[int, Tuple[int, ...]], ...] = tuple(normalized)
        self._hash = hash(self.segments)

    @classmethod
    def from_sequence(cls, *as_numbers: int) -> "ASPath":
        """An AS path made of a single AS_SEQUENCE segment."""
        if not as_numbers:
            return cls()
        return cls([(AS_SEQUENCE, as_numbers)])

    def prepend(self, asn: int) -> "ASPath":
        """A new path with *asn* prepended (EBGP export)."""
        if self.segments and self.segments[0][0] == AS_SEQUENCE:
            first = (AS_SEQUENCE, (asn,) + self.segments[0][1])
            return ASPath((first,) + self.segments[1:])
        return ASPath(((AS_SEQUENCE, (asn,)),) + self.segments)

    def path_length(self) -> int:
        """Decision-process length: an AS_SET counts as one hop."""
        length = 0
        for seg_type, numbers in self.segments:
            length += 1 if seg_type == AS_SET else len(numbers)
        return length

    def contains(self, asn: int) -> bool:
        """Loop detection: does *asn* appear anywhere in the path?"""
        return any(asn in numbers for __, numbers in self.segments)

    def first_asn(self) -> Optional[int]:
        """The neighbour AS (leftmost AS of the first sequence)."""
        for seg_type, numbers in self.segments:
            if numbers:
                return numbers[0]
        return None

    def as_list(self) -> List[int]:
        out: List[int] = []
        for __, numbers in self.segments:
            out.extend(numbers)
        return out

    def encode(self) -> bytes:
        parts = []
        for seg_type, numbers in self.segments:
            if len(numbers) > 255:
                raise BGPAttributeError("AS path segment too long")
            parts.append(struct.pack("!BB", seg_type, len(numbers)))
            parts.extend(struct.pack("!H", asn) for asn in numbers)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "ASPath":
        segments = []
        offset = 0
        while offset < len(data):
            if offset + 2 > len(data):
                raise BGPAttributeError("truncated AS path segment header")
            seg_type, count = struct.unpack_from("!BB", data, offset)
            offset += 2
            if offset + 2 * count > len(data):
                raise BGPAttributeError("truncated AS path segment body")
            numbers = struct.unpack_from(f"!{count}H", data, offset)
            offset += 2 * count
            segments.append((seg_type, numbers))
        return cls(segments)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ASPath) and self.segments == other.segments

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        rendered = []
        for seg_type, numbers in self.segments:
            text = " ".join(str(n) for n in numbers)
            rendered.append("{%s}" % text if seg_type == AS_SET else text)
        return " ".join(rendered) if rendered else "(empty)"

    def __repr__(self) -> str:
        return f"ASPath({str(self)!r})"


class PathAttributeList:
    """The immutable set of path attributes shared by a group of routes."""

    __slots__ = ("origin", "as_path", "nexthop", "med", "local_pref",
                 "atomic_aggregate", "aggregator", "communities", "_hash")

    def __init__(self, *, origin: Origin = Origin.IGP,
                 as_path: Optional[ASPath] = None,
                 nexthop: Optional[IPv4] = None,
                 med: Optional[int] = None,
                 local_pref: Optional[int] = None,
                 atomic_aggregate: bool = False,
                 aggregator: Optional[Tuple[int, IPv4]] = None,
                 communities: Iterable[int] = ()):
        if nexthop is None:
            raise BGPAttributeError("a route must carry a NEXT_HOP attribute")
        self.origin = Origin(origin)
        self.as_path = as_path if as_path is not None else ASPath()
        self.nexthop = nexthop
        self.med = med
        self.local_pref = local_pref
        self.atomic_aggregate = atomic_aggregate
        self.aggregator = aggregator
        self.communities = tuple(sorted(set(int(c) for c in communities)))
        self._hash = hash((self.origin, self.as_path, self.nexthop, self.med,
                           self.local_pref, self.atomic_aggregate,
                           self.aggregator, self.communities))

    def replace(self, **changes) -> "PathAttributeList":
        """A copy with the given fields changed (filter-bank workhorse)."""
        fields = {
            "origin": self.origin,
            "as_path": self.as_path,
            "nexthop": self.nexthop,
            "med": self.med,
            "local_pref": self.local_pref,
            "atomic_aggregate": self.atomic_aggregate,
            "aggregator": self.aggregator,
            "communities": self.communities,
        }
        fields.update(changes)
        return PathAttributeList(**fields)

    # -- wire encoding -----------------------------------------------------
    def encode(self) -> bytes:
        parts: List[bytes] = []

        def attr(flags: int, type_code: int, payload: bytes) -> None:
            if len(payload) > 255:
                flags |= FLAG_EXTENDED_LENGTH
                parts.append(struct.pack("!BBH", flags, type_code, len(payload)))
            else:
                parts.append(struct.pack("!BBB", flags, type_code, len(payload)))
            parts.append(payload)

        attr(FLAG_TRANSITIVE, AttrType.ORIGIN, bytes([self.origin]))
        attr(FLAG_TRANSITIVE, AttrType.AS_PATH, self.as_path.encode())
        attr(FLAG_TRANSITIVE, AttrType.NEXT_HOP, self.nexthop.to_bytes())
        if self.med is not None:
            attr(FLAG_OPTIONAL, AttrType.MED, struct.pack("!I", self.med))
        if self.local_pref is not None:
            attr(FLAG_TRANSITIVE, AttrType.LOCAL_PREF,
                 struct.pack("!I", self.local_pref))
        if self.atomic_aggregate:
            attr(FLAG_TRANSITIVE, AttrType.ATOMIC_AGGREGATE, b"")
        if self.aggregator is not None:
            asn, addr = self.aggregator
            attr(FLAG_OPTIONAL | FLAG_TRANSITIVE, AttrType.AGGREGATOR,
                 struct.pack("!H", asn) + addr.to_bytes())
        if self.communities:
            payload = b"".join(struct.pack("!I", c) for c in self.communities)
            attr(FLAG_OPTIONAL | FLAG_TRANSITIVE, AttrType.COMMUNITY, payload)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "PathAttributeList":
        offset = 0
        fields: Dict = {"communities": ()}
        seen = set()
        while offset < len(data):
            if offset + 2 > len(data):
                raise BGPAttributeError("truncated attribute header")
            flags, type_code = struct.unpack_from("!BB", data, offset)
            offset += 2
            if flags & FLAG_EXTENDED_LENGTH:
                if offset + 2 > len(data):
                    raise BGPAttributeError("truncated extended length")
                (length,) = struct.unpack_from("!H", data, offset)
                offset += 2
            else:
                if offset + 1 > len(data):
                    raise BGPAttributeError("truncated length")
                length = data[offset]
                offset += 1
            if offset + length > len(data):
                raise BGPAttributeError("attribute body overruns buffer")
            payload = data[offset : offset + length]
            offset += length
            if type_code in seen:
                raise BGPAttributeError(f"duplicate attribute {type_code}")
            seen.add(type_code)
            if type_code == AttrType.ORIGIN:
                if length != 1 or payload[0] > 2:
                    raise BGPAttributeError("bad ORIGIN")
                fields["origin"] = Origin(payload[0])
            elif type_code == AttrType.AS_PATH:
                fields["as_path"] = ASPath.decode(payload)
            elif type_code == AttrType.NEXT_HOP:
                if length != 4:
                    raise BGPAttributeError("bad NEXT_HOP length")
                fields["nexthop"] = IPv4(payload)
            elif type_code == AttrType.MED:
                if length != 4:
                    raise BGPAttributeError("bad MED length")
                fields["med"] = struct.unpack("!I", payload)[0]
            elif type_code == AttrType.LOCAL_PREF:
                if length != 4:
                    raise BGPAttributeError("bad LOCAL_PREF length")
                fields["local_pref"] = struct.unpack("!I", payload)[0]
            elif type_code == AttrType.ATOMIC_AGGREGATE:
                if length != 0:
                    raise BGPAttributeError("bad ATOMIC_AGGREGATE length")
                fields["atomic_aggregate"] = True
            elif type_code == AttrType.AGGREGATOR:
                if length != 6:
                    raise BGPAttributeError("bad AGGREGATOR length")
                asn = struct.unpack_from("!H", payload)[0]
                fields["aggregator"] = (asn, IPv4(payload[2:6]))
            elif type_code == AttrType.COMMUNITY:
                if length % 4:
                    raise BGPAttributeError("bad COMMUNITY length")
                fields["communities"] = struct.unpack(f"!{length // 4}I", payload)
            elif not flags & FLAG_OPTIONAL:
                raise BGPAttributeError(
                    f"unrecognised well-known attribute {type_code}"
                )
            # Unknown optional attributes are tolerated (and dropped).
        missing = {"origin", "as_path", "nexthop"} - set(fields)
        if missing:
            raise BGPAttributeError(f"missing mandatory attributes: {missing}")
        return cls(**fields)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PathAttributeList)
            and self._hash == other._hash
            and self.origin == other.origin
            and self.as_path == other.as_path
            and self.nexthop == other.nexthop
            and self.med == other.med
            and self.local_pref == other.local_pref
            and self.atomic_aggregate == other.atomic_aggregate
            and self.aggregator == other.aggregator
            and self.communities == other.communities
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        bits = [f"origin={self.origin.name}", f"as_path=[{self.as_path}]",
                f"nexthop={self.nexthop}"]
        if self.med is not None:
            bits.append(f"med={self.med}")
        if self.local_pref is not None:
            bits.append(f"local_pref={self.local_pref}")
        if self.communities:
            bits.append(f"communities={self.communities}")
        return f"<PathAttributeList {' '.join(bits)}>"
