"""The Fanout Queue stage (paper §5.1.1).

    "The Fanout Queue, which duplicates routes for each peer and for the
    RIB, is in practice complicated by the need to send routes to slow
    peers. ... Since the outgoing filter banks modify routes in different
    ways for different peers, the best place to queue changes is in the
    fanout stage, after the routes have been chosen but before they have
    been specialized.  The Fanout Queue module then maintains a single
    route change queue, with n readers (one for each peer) referencing
    it."

Readers attach with a *background dump* of the existing winners (the
route table a freshly-established peer must receive), correctly
interleaved with live changes: at enqueue time each dumping reader is
marked to receive the entry only if its dump already passed the prefix —
otherwise the dump itself will deliver the post-change state.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set

from repro.core.stages import RouteTableStage
from repro.eventloop.tasks import TaskPriority
from repro.net import IPNet
from repro.trie import RouteTrie, TrieIterator

ADD, DELETE, REPLACE = "add", "delete", "replace"


class _QueueEntry:
    __slots__ = ("serial", "op", "route", "old_route", "skip_readers")

    def __init__(self, serial: int, op: str, route: Any, old_route: Any,
                 skip_readers: Optional[Set[str]]):
        self.serial = serial
        self.op = op
        self.route = route
        self.old_route = old_route
        self.skip_readers = skip_readers


class Reader:
    """One consumer of the change queue (a peer branch or the RIB branch)."""

    __slots__ = ("name", "deliver", "next_serial", "busy", "dump_iterator",
                 "dump_task", "dumped_count")

    def __init__(self, name: str, deliver: Callable[[str, Any, Any], None],
                 next_serial: int):
        self.name = name
        #: deliver(op, route, old_route)
        self.deliver = deliver
        self.next_serial = next_serial
        self.busy = False
        self.dump_iterator: Optional[TrieIterator] = None
        self.dump_task = None
        self.dumped_count = 0

    @property
    def dumping(self) -> bool:
        return self.dump_iterator is not None

    def dump_front_key(self):
        """Key of the next route the dump will emit (None = past the end).

        The iterator is parked *on* the next node to emit, so prefixes
        ordered before it can never be reached by the dump and must be
        delivered through the queue; prefixes at or after it will be
        emitted by the dump in their post-change state.
        """
        iterator = self.dump_iterator
        if iterator is None or iterator.exhausted:
            return None
        return iterator.net.key()


class FanoutQueue(RouteTableStage):
    """Single change queue, n readers, per-reader background dumps."""

    def __init__(self, name: str, loop, *, bits: int = 32,
                 dump_slice: int = 64):
        super().__init__(name)
        self.loop = loop
        self.dump_slice = dump_slice
        self.winners = RouteTrie(bits)
        self.queue: Deque[_QueueEntry] = deque()
        self._next_serial = 0
        self.readers: Dict[str, Reader] = {}
        self._pump_scheduled: Set[str] = set()

    # -- reader management -----------------------------------------------------
    def add_reader(self, name: str,
                   deliver: Callable[[str, Any, Any], None], *,
                   dump: bool = True) -> Reader:
        """Attach a reader.

        With ``dump=True`` the reader first receives every existing winner
        as a background task, then seamlessly follows live changes.
        """
        if name in self.readers:
            raise ValueError(f"fanout reader {name!r} already attached")
        reader = Reader(name, deliver, self._next_serial)
        self.readers[name] = reader
        if dump and len(self.winners):
            reader.dump_iterator = self.winners.iterator()
            reader.dump_task = self.loop.spawn_task(
                lambda: self._dump_slice(reader),
                priority=TaskPriority.BACKGROUND,
                name=f"{self.name}-dump-{name}",
            )
        return reader

    def remove_reader(self, name: str) -> None:
        reader = self.readers.pop(name, None)
        if reader is None:
            return
        if reader.dump_task is not None:
            reader.dump_task.kill()
        if reader.dump_iterator is not None:
            reader.dump_iterator.close()
        self._trim()

    def set_reader_busy(self, name: str, busy: bool) -> None:
        """Flow control: a busy reader stops draining (slow peer)."""
        reader = self.readers[name]
        reader.busy = busy
        if not busy:
            self._schedule_pump(reader)

    # -- stage messages ----------------------------------------------------
    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        self.winners.insert(route.net, route)
        self._enqueue(ADD, route, None)

    def add_routes(self, routes: List[Any], *,
                   caller: Optional[RouteTableStage] = None) -> None:
        insert = self.winners.insert
        for route in routes:
            insert(route.net, route)
        self._enqueue_batch(ADD, routes)

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        self.winners.discard(route.net)
        self._enqueue(DELETE, route, None)

    def delete_routes(self, routes: List[Any], *,
                      caller: Optional[RouteTableStage] = None) -> None:
        discard = self.winners.discard
        for route in routes:
            discard(route.net)
        self._enqueue_batch(DELETE, routes)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        self.winners.insert(new_route.net, new_route)
        self._enqueue(REPLACE, new_route, old_route)

    def lookup_route(self, net: IPNet, *,
                     caller: Optional[RouteTableStage] = None) -> Any:
        return self.winners.exact(net)

    # -- queueing --------------------------------------------------------
    def _dump_skip_set(self, key) -> Optional[Set[str]]:
        """Dumping readers whose dump will still reach *key* (they must not
        also see it through the queue)."""
        skip: Optional[Set[str]] = None
        for reader in self.readers.values():
            if not reader.dumping:
                continue
            front = reader.dump_front_key()
            if front is not None and key >= front:
                # The dump will reach this prefix and emit the (already
                # updated) winners-trie state; the queue must stay silent.
                if skip is None:
                    skip = set()
                skip.add(reader.name)
        return skip

    def _enqueue(self, op: str, route: Any, old_route: Any) -> None:
        skip = self._dump_skip_set(route.net.key())
        entry = _QueueEntry(self._next_serial, op, route, old_route, skip)
        self._next_serial += 1
        self.queue.append(entry)
        if not self.readers:
            self.queue.clear()  # nobody will ever read this
            return
        for reader in self.readers.values():
            self._schedule_pump(reader)

    def _enqueue_batch(self, op: str, routes: List[Any]) -> None:
        """Append a whole burst, then schedule each reader's pump once.

        Dump front keys are computed per entry (they are monotone, and a
        dump advances only in background tasks, but prefix keys within a
        batch are not sorted so each route must be classified itself);
        the per-batch saving is the single pump scheduling pass.
        """
        if not self.readers:
            return
        any_dumping = any(r.dumping for r in self.readers.values())
        append = self.queue.append
        serial = self._next_serial
        for route in routes:
            skip = self._dump_skip_set(route.net.key()) if any_dumping \
                else None
            append(_QueueEntry(serial, op, route, None, skip))
            serial += 1
        self._next_serial = serial
        for reader in self.readers.values():
            self._schedule_pump(reader)

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    def _schedule_pump(self, reader: Reader) -> None:
        if reader.name in self._pump_scheduled or reader.busy:
            return
        self._pump_scheduled.add(reader.name)
        self.loop.call_soon(self._pump, reader.name)

    def _pump(self, name: str) -> None:
        self._pump_scheduled.discard(name)
        reader = self.readers.get(name)
        if reader is None:
            return
        base = self.queue[0].serial if self.queue else self._next_serial
        while not reader.busy and reader.next_serial < self._next_serial:
            entry = self.queue[reader.next_serial - base]
            reader.next_serial += 1
            if entry.skip_readers is not None and name in entry.skip_readers:
                continue
            reader.deliver(entry.op, entry.route, entry.old_route)
        self._trim()

    def _trim(self) -> None:
        if not self.readers:
            self.queue.clear()
            return
        low_water = min(r.next_serial for r in self.readers.values())
        queue = self.queue
        popleft = queue.popleft
        while queue and queue[0].serial < low_water:
            popleft()

    # -- background dumping ----------------------------------------------------
    def _dump_slice(self, reader: Reader) -> bool:
        if reader.name not in self.readers:
            return False
        budget = self.dump_slice
        iterator = reader.dump_iterator
        while budget > 0:
            if reader.busy:
                return True  # try again next idle moment
            if iterator.exhausted:
                break
            if iterator.valid:
                route = iterator.payload
                reader.dumped_count += 1
                reader.deliver(ADD, route, None)
                budget -= 1
            iterator.advance()
        if iterator.exhausted:
            iterator.close()
            reader.dump_iterator = None
            reader.dump_task = None
            return False
        return True
