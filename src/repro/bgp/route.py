"""BGP route objects as they flow through the staged pipeline."""

from __future__ import annotations

from typing import List, Optional

from repro.bgp.attributes import PathAttributeList
from repro.net import IPNet


class BGPRoute:
    """One BGP route: a prefix plus its path attribute list.

    The original version is stored only in the PeerIn stage (paper §5.1);
    stages downstream annotate *copies* — the nexthop resolver attaches
    ``igp_metric`` / ``resolvable``, the filter banks rewrite attributes.
    """

    __slots__ = ("net", "attributes", "peer_id", "igp_metric", "resolvable",
                 "policytags")

    def __init__(self, net: IPNet, attributes: PathAttributeList, *,
                 peer_id: str = "",
                 igp_metric: Optional[int] = None,
                 resolvable: Optional[bool] = None,
                 policytags: Optional[List[int]] = None):
        self.net = net
        self.attributes = attributes
        self.peer_id = peer_id
        self.igp_metric = igp_metric
        self.resolvable = resolvable
        self.policytags = list(policytags) if policytags else []

    @property
    def nexthop(self):
        return self.attributes.nexthop

    def with_attributes(self, attributes: PathAttributeList) -> "BGPRoute":
        """Copy with different attributes (same annotations)."""
        return BGPRoute(self.net, attributes, peer_id=self.peer_id,
                        igp_metric=self.igp_metric,
                        resolvable=self.resolvable,
                        policytags=self.policytags)

    def annotated(self, *, igp_metric: Optional[int],
                  resolvable: bool) -> "BGPRoute":
        """Copy with nexthop-resolver annotations attached."""
        return BGPRoute(self.net, self.attributes, peer_id=self.peer_id,
                        igp_metric=igp_metric, resolvable=resolvable,
                        policytags=self.policytags)

    def __repr__(self) -> str:
        flags = ""
        if self.resolvable is not None:
            flags = " resolvable" if self.resolvable else " unresolvable"
            if self.igp_metric is not None:
                flags += f" igp_metric={self.igp_metric}"
        return f"BGPRoute({self.net} via {self.nexthop} from {self.peer_id}{flags})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BGPRoute)
            and self.net == other.net
            and self.attributes == other.attributes
            and self.peer_id == other.peer_id
        )
