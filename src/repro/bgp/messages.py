"""BGP message wire codec: OPEN, UPDATE, NOTIFICATION, KEEPALIVE.

The simulated-network experiments run real byte streams between routers,
so this is a full encoder/decoder with header marker validation and the
standard error codes for NOTIFICATION generation.
"""

from __future__ import annotations

import struct
from enum import IntEnum
from typing import List, Optional, Tuple

from repro.bgp.attributes import BGPAttributeError, PathAttributeList
from repro.net import IPNet, IPv4

MARKER = b"\xff" * 16
HEADER_LEN = 19
MAX_MESSAGE_LEN = 4096
BGP_VERSION = 4


class MessageType(IntEnum):
    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4


class ErrorCode(IntEnum):
    MESSAGE_HEADER_ERROR = 1
    OPEN_MESSAGE_ERROR = 2
    UPDATE_MESSAGE_ERROR = 3
    HOLD_TIMER_EXPIRED = 4
    FSM_ERROR = 5
    CEASE = 6


class BGPDecodeError(ValueError):
    """Raised on malformed input; carries NOTIFICATION error codes."""

    def __init__(self, message: str, code: ErrorCode,
                 subcode: int = 0, data: bytes = b""):
        super().__init__(message)
        self.code = code
        self.subcode = subcode
        self.data = data


def _encode_prefix(net: IPNet) -> bytes:
    """<length, truncated address> NLRI encoding."""
    plen = net.prefix_len
    byte_count = (plen + 7) // 8
    return bytes([plen]) + net.network.to_bytes()[:byte_count]


def _decode_prefixes(data: bytes, what: str) -> List[IPNet]:
    prefixes = []
    offset = 0
    while offset < len(data):
        plen = data[offset]
        offset += 1
        if plen > 32:
            raise BGPDecodeError(
                f"bad prefix length {plen} in {what}",
                ErrorCode.UPDATE_MESSAGE_ERROR, 10,
            )
        byte_count = (plen + 7) // 8
        if offset + byte_count > len(data):
            raise BGPDecodeError(
                f"truncated prefix in {what}",
                ErrorCode.UPDATE_MESSAGE_ERROR, 10,
            )
        addr_bytes = data[offset : offset + byte_count] + b"\x00" * (4 - byte_count)
        offset += byte_count
        prefixes.append(IPNet(IPv4(addr_bytes), plen))
    return prefixes


def _frame(message_type: MessageType, body: bytes) -> bytes:
    length = HEADER_LEN + len(body)
    if length > MAX_MESSAGE_LEN:
        raise BGPDecodeError(
            f"message too long ({length})", ErrorCode.MESSAGE_HEADER_ERROR, 2
        )
    return MARKER + struct.pack("!HB", length, message_type) + body


class OpenMessage:
    """BGP OPEN: version, AS, hold time, identifier."""

    __slots__ = ("asn", "holdtime", "bgp_id", "version")

    message_type = MessageType.OPEN

    def __init__(self, asn: int, holdtime: int, bgp_id: IPv4,
                 version: int = BGP_VERSION):
        self.asn = asn
        self.holdtime = holdtime
        self.bgp_id = bgp_id
        self.version = version

    def encode(self) -> bytes:
        body = struct.pack("!BHH", self.version, self.asn, self.holdtime)
        body += self.bgp_id.to_bytes()
        body += b"\x00"  # no optional parameters
        return _frame(self.message_type, body)

    @classmethod
    def decode_body(cls, body: bytes) -> "OpenMessage":
        if len(body) < 10:
            raise BGPDecodeError("short OPEN", ErrorCode.OPEN_MESSAGE_ERROR)
        version, asn, holdtime = struct.unpack_from("!BHH", body, 0)
        if version != BGP_VERSION:
            raise BGPDecodeError(
                f"unsupported BGP version {version}",
                ErrorCode.OPEN_MESSAGE_ERROR, 1,
                struct.pack("!H", BGP_VERSION),
            )
        if holdtime in (1, 2):
            raise BGPDecodeError(
                "unacceptable hold time", ErrorCode.OPEN_MESSAGE_ERROR, 6
            )
        bgp_id = IPv4(body[5:9])
        opt_len = body[9]
        if len(body) != 10 + opt_len:
            raise BGPDecodeError(
                "OPEN optional parameter length mismatch",
                ErrorCode.OPEN_MESSAGE_ERROR,
            )
        return cls(asn, holdtime, bgp_id, version)

    def __repr__(self) -> str:
        return f"Open(as={self.asn} hold={self.holdtime} id={self.bgp_id})"


class UpdateMessage:
    """BGP UPDATE: withdrawn prefixes + (attributes, NLRI prefixes)."""

    # One UpdateMessage per peer per flush on the announce path: slotted
    # so a full-table burst does not pay a __dict__ per message.
    __slots__ = ("withdrawn", "attributes", "nlri")

    message_type = MessageType.UPDATE

    def __init__(self, withdrawn: Optional[List[IPNet]] = None,
                 attributes: Optional[PathAttributeList] = None,
                 nlri: Optional[List[IPNet]] = None):
        self.withdrawn = list(withdrawn) if withdrawn else []
        self.attributes = attributes
        self.nlri = list(nlri) if nlri else []
        if self.nlri and self.attributes is None:
            raise BGPDecodeError(
                "UPDATE with NLRI needs attributes",
                ErrorCode.UPDATE_MESSAGE_ERROR, 3,
            )

    def encode(self) -> bytes:
        withdrawn_bytes = b"".join(_encode_prefix(p) for p in self.withdrawn)
        attr_bytes = self.attributes.encode() if (
            self.attributes is not None and self.nlri
        ) else b""
        nlri_bytes = b"".join(_encode_prefix(p) for p in self.nlri)
        body = (
            struct.pack("!H", len(withdrawn_bytes)) + withdrawn_bytes
            + struct.pack("!H", len(attr_bytes)) + attr_bytes
            + nlri_bytes
        )
        return _frame(self.message_type, body)

    @classmethod
    def decode_body(cls, body: bytes) -> "UpdateMessage":
        if len(body) < 4:
            raise BGPDecodeError("short UPDATE", ErrorCode.UPDATE_MESSAGE_ERROR)
        (withdrawn_len,) = struct.unpack_from("!H", body, 0)
        offset = 2
        if offset + withdrawn_len + 2 > len(body):
            raise BGPDecodeError(
                "bad withdrawn length", ErrorCode.UPDATE_MESSAGE_ERROR, 1
            )
        withdrawn = _decode_prefixes(
            body[offset : offset + withdrawn_len], "withdrawn"
        )
        offset += withdrawn_len
        (attr_len,) = struct.unpack_from("!H", body, offset)
        offset += 2
        if offset + attr_len > len(body):
            raise BGPDecodeError(
                "bad attribute length", ErrorCode.UPDATE_MESSAGE_ERROR, 1
            )
        attr_bytes = body[offset : offset + attr_len]
        offset += attr_len
        nlri = _decode_prefixes(body[offset:], "NLRI")
        attributes = None
        if nlri:
            try:
                attributes = PathAttributeList.decode(attr_bytes)
            except BGPAttributeError as exc:
                raise BGPDecodeError(
                    str(exc), ErrorCode.UPDATE_MESSAGE_ERROR, 3
                ) from exc
        return cls(withdrawn, attributes, nlri)

    def __repr__(self) -> str:
        return (
            f"Update(withdraw={[str(p) for p in self.withdrawn]} "
            f"announce={[str(p) for p in self.nlri]})"
        )


class NotificationMessage:
    __slots__ = ("code", "subcode", "data")

    message_type = MessageType.NOTIFICATION

    def __init__(self, code: ErrorCode, subcode: int = 0, data: bytes = b""):
        self.code = ErrorCode(code)
        self.subcode = subcode
        self.data = data

    def encode(self) -> bytes:
        return _frame(self.message_type,
                      struct.pack("!BB", self.code, self.subcode) + self.data)

    @classmethod
    def decode_body(cls, body: bytes) -> "NotificationMessage":
        if len(body) < 2:
            raise BGPDecodeError(
                "short NOTIFICATION", ErrorCode.MESSAGE_HEADER_ERROR
            )
        try:
            code = ErrorCode(body[0])
        except ValueError as exc:
            raise BGPDecodeError(
                f"unknown NOTIFICATION error code {body[0]}",
                ErrorCode.MESSAGE_HEADER_ERROR,
            ) from exc
        return cls(code, body[1], body[2:])

    def __repr__(self) -> str:
        return f"Notification({self.code.name}/{self.subcode})"


class KeepaliveMessage:
    __slots__ = ()

    message_type = MessageType.KEEPALIVE

    def encode(self) -> bytes:
        return _frame(self.message_type, b"")

    @classmethod
    def decode_body(cls, body: bytes) -> "KeepaliveMessage":
        if body:
            raise BGPDecodeError(
                "KEEPALIVE with body", ErrorCode.MESSAGE_HEADER_ERROR, 2
            )
        return cls()

    def __repr__(self) -> str:
        return "Keepalive()"


_DECODERS = {
    MessageType.OPEN: OpenMessage.decode_body,
    MessageType.UPDATE: UpdateMessage.decode_body,
    MessageType.NOTIFICATION: NotificationMessage.decode_body,
    MessageType.KEEPALIVE: KeepaliveMessage.decode_body,
}


def decode_message(data: bytes):
    """Decode one complete framed message (header + body)."""
    if len(data) < HEADER_LEN:
        raise BGPDecodeError("short header", ErrorCode.MESSAGE_HEADER_ERROR)
    if data[:16] != MARKER:
        raise BGPDecodeError(
            "connection not synchronised", ErrorCode.MESSAGE_HEADER_ERROR, 1
        )
    length, msg_type = struct.unpack_from("!HB", data, 16)
    if length != len(data) or not HEADER_LEN <= length <= MAX_MESSAGE_LEN:
        raise BGPDecodeError(
            f"bad message length {length}", ErrorCode.MESSAGE_HEADER_ERROR, 2,
            struct.pack("!H", length),
        )
    decoder = _DECODERS.get(msg_type)
    if decoder is None:
        raise BGPDecodeError(
            f"bad message type {msg_type}", ErrorCode.MESSAGE_HEADER_ERROR, 3,
            bytes([msg_type]),
        )
    return decoder(data[HEADER_LEN:])


class MessageReader:
    """Incremental reassembly of BGP messages from a byte stream."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> List[object]:
        """Append stream bytes; return every complete decoded message."""
        self._buffer.extend(chunk)
        messages = []
        while len(self._buffer) >= HEADER_LEN:
            (length,) = struct.unpack_from("!H", self._buffer, 16)
            if not HEADER_LEN <= length <= MAX_MESSAGE_LEN:
                raise BGPDecodeError(
                    f"bad stream length {length}",
                    ErrorCode.MESSAGE_HEADER_ERROR, 2,
                )
            if len(self._buffer) < length:
                break
            frame = bytes(self._buffer[:length])
            del self._buffer[:length]
            messages.append(decode_message(frame))
        return messages
