"""Per-peer machinery: config, FSM wiring, input branch, output branch.

Each peering owns (paper Figures 4-6):

* an input branch — PeerIn (stores the *original* routes), an optional
  damping stage, the import filter bank, and a nexthop resolver stage —
  feeding the shared decision process;
* an output branch — export filter bank, optional consistency-checking
  cache stage, and the PeerOut which packs route changes into UPDATE
  messages — fed from the shared fanout queue;
* dynamic deletion stages spliced in after PeerIn when the session drops.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.bgp.attributes import PathAttributeList
from repro.bgp.damping import DampingStage
from repro.bgp.decision import PeerInfo
from repro.bgp.fsm import FsmActions, PeerFSM
from repro.bgp.messages import (
    BGPDecodeError,
    MessageReader,
    UpdateMessage,
)
from repro.bgp.route import BGPRoute
from repro.bgp.session import BgpSession
from repro.core.stages import (
    ConsistencyCheckStage,
    DeletionStage,
    FilterStage,
    OriginStage,
    RouteTableStage,
    stream_reset,
)
from repro.net import IPNet, IPv4
from repro.trie import RouteTrie


class PeerConfig:
    """Static configuration of one peering."""

    __slots__ = ("peer_addr", "peer_as", "local_as", "local_addr",
                 "holdtime", "enable_damping")

    def __init__(self, peer_addr: IPv4, peer_as: int, local_as: int,
                 local_addr: IPv4, *, holdtime: int = 90,
                 enable_damping: bool = False):
        self.peer_addr = peer_addr
        self.peer_as = peer_as
        self.local_as = local_as
        self.local_addr = local_addr
        self.holdtime = holdtime
        self.enable_damping = enable_damping

    @property
    def is_ibgp(self) -> bool:
        return self.peer_as == self.local_as

    @property
    def peer_id(self) -> str:
        return str(self.peer_addr)


class PeerOutStage(RouteTableStage):
    """Terminal output stage: packs changes into UPDATE messages.

    Changes arriving within one event-loop turn are coalesced into the
    fewest UPDATEs (withdrawals batched; announcements grouped by shared
    attribute list), then handed to the session.
    """

    def __init__(self, name: str, loop, send_update: Callable[[UpdateMessage], None]):
        super().__init__(name)
        self.loop = loop
        self._send_update = send_update
        self._pending: List = []  # (op, route, old_route)
        self._flush_scheduled = False
        self.updates_sent = 0

    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        self._pending.append(("add", route, None))
        self._schedule_flush()

    def add_routes(self, routes: List[Any], *,
                   caller: Optional[RouteTableStage] = None) -> None:
        self._pending.extend(("add", route, None) for route in routes)
        self._schedule_flush()

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        self._pending.append(("delete", route, None))
        self._schedule_flush()

    def delete_routes(self, routes: List[Any], *,
                      caller: Optional[RouteTableStage] = None) -> None:
        self._pending.extend(("delete", route, None) for route in routes)
        self._schedule_flush()

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        # A BGP announcement for a prefix implicitly replaces the previous
        # one, so a replace is just a fresh announcement.
        self._pending.append(("add", new_route, old_route))
        self._schedule_flush()

    def _schedule_flush(self) -> None:
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.loop.call_soon(self.flush)

    #: worst-case encoded prefix size (1 length byte + 4 address bytes)
    _PREFIX_WIRE_SIZE = 5
    #: header + withdrawn-len + attr-len fields
    _UPDATE_OVERHEAD = 23

    def flush(self) -> None:
        self._flush_scheduled = False
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        withdrawals: List[IPNet] = []
        announce_groups = {}  # attributes -> [nets]
        for op, route, __ in pending:
            if op == "delete":
                withdrawals.append(route.net)
            else:
                announce_groups.setdefault(route.attributes, []).append(route.net)
        from repro.bgp.messages import MAX_MESSAGE_LEN

        if withdrawals:
            per_update = (MAX_MESSAGE_LEN - self._UPDATE_OVERHEAD) \
                // self._PREFIX_WIRE_SIZE
            for start in range(0, len(withdrawals), per_update):
                self.updates_sent += 1
                self._send_update(UpdateMessage(
                    withdrawn=withdrawals[start : start + per_update]))
        for attributes, nets in announce_groups.items():
            room = (MAX_MESSAGE_LEN - self._UPDATE_OVERHEAD
                    - len(attributes.encode()))
            per_update = max(1, room // self._PREFIX_WIRE_SIZE)
            for start in range(0, len(nets), per_update):
                self.updates_sent += 1
                self._send_update(UpdateMessage(
                    attributes=attributes, nlri=nets[start : start + per_update]))


class PeerHandler(FsmActions):
    """Everything belonging to one peering."""

    def __init__(self, process, config: PeerConfig):
        self.process = process
        self.config = config
        self.loop = process.loop
        self.peer_id = config.peer_id
        self.fsm = PeerFSM(
            self.loop, self,
            local_as=config.local_as,
            bgp_id=process.bgp_id,
            peer_as=config.peer_as,
            holdtime=config.holdtime,
            name=f"bgp-{self.peer_id}",
        )
        self.session: Optional[BgpSession] = None
        self._reader = MessageReader()
        self.info = PeerInfo(self.peer_id, config.is_ibgp,
                             bgp_id=IPv4(0), peer_addr=config.peer_addr)
        self._build_input_branch()
        self._build_output_branch()
        self.enabled = False
        self.updates_received = 0
        self.deletion_stages_created = 0

    # -- pipeline construction ----------------------------------------------
    def _build_input_branch(self) -> None:
        from repro.bgp.nexthop import NexthopResolverStage

        self.peer_in = OriginStage(f"peer-in-{self.peer_id}")
        chain: List[RouteTableStage] = [self.peer_in]
        self.damping: Optional[DampingStage] = None
        if self.config.enable_damping:
            self.damping = DampingStage(f"damping-{self.peer_id}", self.loop)
            chain.append(self.damping)
        self.in_filter = FilterStage(f"in-filter-{self.peer_id}",
                                     self._import_filter)
        chain.append(self.in_filter)
        self.resolver_stage = NexthopResolverStage(
            f"nexthop-{self.peer_id}", self.process.resolver)
        chain.append(self.resolver_stage)
        RouteTableStage.plumb(*chain)
        self.process.decision.add_branch(self.resolver_stage)

    def _build_output_branch(self) -> None:
        self.out_filter = FilterStage(f"out-filter-{self.peer_id}",
                                      self._export_filter)
        self.peer_out = PeerOutStage(f"peer-out-{self.peer_id}", self.loop,
                                     self._send_update)
        stages: List[RouteTableStage] = [self.out_filter]
        if self.process.debug_cache_stages:
            # Paper §5.1: "This cache stage, just after the outgoing filter
            # bank in the output pipeline to each peer, has helped us
            # discover many subtle bugs."
            self.out_cache = ConsistencyCheckStage(f"out-cache-{self.peer_id}")
            stages.append(self.out_cache)
        stages.append(self.peer_out)
        RouteTableStage.plumb(*stages)

    # -- policy filters (the built-in BGP propagation rules) -------------------
    def _import_filter(self, route: BGPRoute) -> Optional[BGPRoute]:
        return self._import_with(route, self.process.import_policy)

    def _import_with(self, route: BGPRoute,
                     policy) -> Optional[BGPRoute]:
        attrs = route.attributes
        if not self.config.is_ibgp and attrs.as_path.contains(self.config.local_as):
            return None  # AS path loop
        if policy is not None:
            route = policy(route, self)
            if route is None:
                return None
        if route.attributes.local_pref is None:
            # Default applied only where policy did not set one.
            route = route.with_attributes(
                route.attributes.replace(local_pref=100))
        return route

    def _export_filter(self, route: BGPRoute) -> Optional[BGPRoute]:
        return self._export_with(route, self.process.export_policy)

    def _export_with(self, route: BGPRoute,
                     policy) -> Optional[BGPRoute]:
        if route.peer_id == self.peer_id:
            return None  # never send a route back to its origin
        origin_info = self.process.peer_info(route.peer_id)
        if self.config.is_ibgp and origin_info.is_ibgp:
            return None  # no IBGP reflection
        if policy is not None:
            route = policy(route, self)
            if route is None:
                return None
        attrs = route.attributes
        if not self.config.is_ibgp:
            attrs = attrs.replace(
                as_path=attrs.as_path.prepend(self.config.local_as),
                nexthop=self.config.local_addr,
                local_pref=None,
            )
            route = route.with_attributes(attrs)
        return route

    # -- dynamic policy re-filtering (paper §5.1.2) ---------------------------
    def refilter_imports(self, old_policy) -> None:
        """Policy changed: re-run the import path over stored routes.

        "We use the ability to add dynamic stages for many background
        tasks, such as when routing policy filters are changed by the
        operator and many routes need to be refiltered and reevaluated."
        A background task walks the PeerIn table with a safe iterator and
        reconciles the old filter's output with the new filter's.
        """
        from repro.eventloop.tasks import TaskPriority

        iterator = self.peer_in.routes.iterator()
        downstream = self.in_filter.next_table

        def run_slice() -> bool:
            deleted: list = []
            added: list = []
            done = False
            new_policy = self.process.import_policy
            for __ in range(64):
                if iterator.exhausted:
                    iterator.close()
                    done = True
                    break
                if not iterator.valid:
                    iterator.advance()
                    continue
                route = iterator.payload
                iterator.advance()
                old_out = self._import_with(route, old_policy)
                new_out = self._import_with(route, new_policy)
                if downstream is None:
                    continue
                if old_out is not None and new_out is not None:
                    if old_out != new_out:
                        downstream.replace_route(old_out, new_out,
                                                 caller=self.in_filter)
                elif old_out is not None:
                    deleted.append(old_out)
                elif new_out is not None:
                    added.append(new_out)
            if downstream is not None:
                if deleted:
                    downstream.delete_routes(deleted, caller=self.in_filter)
                if added:
                    downstream.add_routes(added, caller=self.in_filter)
            return not done

        self.loop.spawn_task(run_slice, priority=TaskPriority.BACKGROUND,
                             name=f"refilter-{self.peer_id}")

    def refilter_exports(self, old_policy) -> None:
        """Export policy changed: reconcile this peer's announced routes."""
        from repro.bgp.fsm import BgpState
        from repro.eventloop.tasks import TaskPriority

        if self.fsm.state != BgpState.ESTABLISHED:
            return
        iterator = self.process.fanout.winners.iterator()
        downstream = self.out_filter.next_table

        def run_slice() -> bool:
            deleted: list = []
            added: list = []
            done = False
            new_policy = self.process.export_policy
            for __ in range(64):
                if iterator.exhausted:
                    iterator.close()
                    done = True
                    break
                if not iterator.valid:
                    iterator.advance()
                    continue
                route = iterator.payload
                iterator.advance()
                old_out = self._export_with(route, old_policy)
                new_out = self._export_with(route, new_policy)
                if downstream is None:
                    continue
                if old_out is not None and new_out is not None:
                    if old_out != new_out:
                        downstream.replace_route(old_out, new_out,
                                                 caller=self.out_filter)
                elif old_out is not None:
                    deleted.append(old_out)
                elif new_out is not None:
                    added.append(new_out)
            if downstream is not None:
                if deleted:
                    downstream.delete_routes(deleted, caller=self.out_filter)
                if added:
                    downstream.add_routes(added, caller=self.out_filter)
            return not done

        self.loop.spawn_task(run_slice, priority=TaskPriority.BACKGROUND,
                             name=f"refilter-out-{self.peer_id}")

    # -- fanout plumbing -------------------------------------------------------
    def _fanout_deliver(self, op: str, route: Any, old_route: Any) -> None:
        if op == "add":
            self.out_filter.add_route(route)
        elif op == "delete":
            self.out_filter.delete_route(route)
        else:
            self.out_filter.replace_route(old_route, route)

    # -- FSM actions ------------------------------------------------------------
    def attach_session(self, session: BgpSession) -> None:
        self.session = session
        session.on_connected = self._on_session_connected
        session.on_data = self._on_session_data
        session.on_closed = self.fsm.connection_failed

    def _on_session_connected(self) -> None:
        # A fresh connection starts a fresh byte stream: any leftover
        # (possibly desynchronised) reassembly state must go.
        self._reader = MessageReader()
        self.fsm.connection_opened()

    def start_connect(self) -> None:
        if self.session is not None:
            self.session.connect()

    def send_message(self, message) -> None:
        if self.session is not None and self.session.connected:
            self.session.send(message.encode())

    def drop_connection(self) -> None:
        if self.session is not None and self.session.connected:
            self.session.close()

    def session_established(self, peer_open) -> None:
        self.info.bgp_id = peer_open.bgp_id
        self.process.fanout.add_reader(self.peer_id, self._fanout_deliver,
                                       dump=True)

    def session_down(self, reason: str) -> None:
        """Peering went down: spin up a dynamic deletion stage (§5.1.2)."""
        self.process.fanout.remove_reader(self.peer_id)
        # Reset the output branch: its state described the dead session.
        # The fresh dump at the next establishment repopulates it.
        self.peer_out._pending.clear()
        if self.process.debug_cache_stages:
            self.out_cache.cache.clear()
        # Tell any armed sanitizer the output branch's streams restarted:
        # the wipe above is a legitimate reset, not missed deletes.
        stream_reset(self.out_filter, self.peer_out)
        if self.process.debug_cache_stages:
            stream_reset(self.out_cache)
        if self.peer_in.route_count == 0:
            return
        old_routes = self.peer_in.routes
        self.peer_in.routes = RouteTrie(old_routes.bits)
        deletion = DeletionStage(
            f"deletion-{self.peer_id}-{self.deletion_stages_created}",
            self.loop, old_routes,
        )
        self.deletion_stages_created += 1
        self.peer_in.insert_downstream(deletion)
        deletion.start()

    # -- inbound data ------------------------------------------------------------
    def _on_session_data(self, data: bytes) -> None:
        try:
            messages = self._reader.feed(data)
        except BGPDecodeError as error:
            self.fsm.decode_error(error)
            return
        for message in messages:
            self.fsm.message_received(message)

    def update_received(self, update: UpdateMessage) -> None:
        """FSM callback: apply one UPDATE to the PeerIn stage.

        The UPDATE's prefixes enter the pipeline as batches (a peering
        burst is the paper's hot path): one ``withdraw_batch`` and one
        ``originate_batch`` instead of a pipeline traversal per prefix.
        """
        self.updates_received += 1
        prof = self.process.prof_ribin
        if update.withdrawn:
            for net in update.withdrawn:
                prof.log(f"delete {net}")
            self.peer_in.withdraw_batch(update.withdrawn)
        if update.nlri:
            attributes = update.attributes
            routes = []
            for net in update.nlri:
                prof.log(f"add {net}")
                routes.append(BGPRoute(net, attributes, peer_id=self.peer_id))
            self.peer_in.originate_batch(routes)

    # -- outbound updates -----------------------------------------------------
    def _send_update(self, update: UpdateMessage) -> None:
        from repro.bgp.fsm import BgpState

        if self.fsm.state == BgpState.ESTABLISHED:
            self.send_message(update)

    # -- admin ---------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True
        self.fsm.manual_start()

    def disable(self) -> None:
        self.enabled = False
        self.fsm.manual_stop()

    def tear_down(self) -> None:
        """Remove this peering entirely."""
        self.disable()
        self.process.decision.remove_branch(self.resolver_stage)
        if self.damping is not None:
            self.damping.stop()
