"""The BGP process (paper §5.1) — a staged pipeline implementation.

    "Routes come in from a specific BGP peer and progress through an
    incoming filter bank into the decision process.  The best routes then
    proceed down additional pipelines, one for each peering, through an
    outgoing filter bank and then on to the relevant peer router."

Pipeline shape (paper Figures 4-6)::

    PeerIn ──> DampingStage? ──> FilterBank(in) ──> NexthopResolver ─┐
    PeerIn ──> ...                                                    ├─> Decision ─> FanoutQueue ─┬─> FilterBank(out) ─> Cache ─> PeerOut
    PeerIn ──> ...                                                    ┘                            ├─> ...
                                                                                                   └─> (to RIB)

plus *dynamic* deletion stages spliced in after a PeerIn when its peering
goes down (§5.1.2).
"""

from repro.bgp.attributes import (
    ASPath,
    Origin,
    PathAttributeList,
)
from repro.bgp.route import BGPRoute
from repro.bgp.messages import (
    BGPDecodeError,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    decode_message,
)
from repro.bgp.fsm import BgpState, PeerFSM
from repro.bgp.decision import DecisionStage
from repro.bgp.fanout import FanoutQueue
from repro.bgp.nexthop import NexthopCache, NexthopResolverStage
from repro.bgp.damping import DampingStage
from repro.bgp.process import BgpProcess

__all__ = [
    "ASPath",
    "BGPDecodeError",
    "BGPRoute",
    "BgpProcess",
    "BgpState",
    "DampingStage",
    "DecisionStage",
    "FanoutQueue",
    "KeepaliveMessage",
    "NexthopCache",
    "NexthopResolverStage",
    "NotificationMessage",
    "OpenMessage",
    "Origin",
    "PathAttributeList",
    "PeerFSM",
    "UpdateMessage",
    "decode_message",
]
