"""The BGP decision process stage (paper §5.1.1).

    "XORP thus further decomposes the Decision Process into Nexthop
    Resolvers, a simple Decision Process, and a Fanout Queue."

By the time routes reach this stage they are annotated with nexthop
resolvability and IGP metric, so best-path selection is a pure function.
Alternative routes stay stored in the PeerIn stages; "the Decision Process
must be able to look up alternative routes via calls upstream through the
pipeline", which is exactly what happens on withdrawals.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.stages import RouteTableStage
from repro.net import IPNet, IPv4


class PeerInfo:
    """Decision-relevant facts about one peering."""

    __slots__ = ("peer_id", "is_ibgp", "bgp_id", "peer_addr")

    def __init__(self, peer_id: str, is_ibgp: bool, bgp_id: IPv4,
                 peer_addr: IPv4):
        self.peer_id = peer_id
        self.is_ibgp = is_ibgp
        self.bgp_id = bgp_id
        self.peer_addr = peer_addr


DEFAULT_LOCAL_PREF = 100


def route_ranking_key(route: Any, peer: PeerInfo) -> Tuple:
    """Comparable key: *larger* is better.

    Implements the standard best-path order: local-pref, AS-path length,
    origin, MED, EBGP-over-IBGP, IGP metric to nexthop, then lowest BGP ID
    and peer address as the final tiebreaks.  (MED is compared across all
    neighbour ASes — the "always-compare-med" policy — which keeps the
    order total; see DESIGN.md.)
    """
    attrs = route.attributes
    local_pref = (attrs.local_pref if attrs.local_pref is not None
                  else DEFAULT_LOCAL_PREF)
    med = attrs.med if attrs.med is not None else 0
    igp_metric = route.igp_metric if route.igp_metric is not None else 0
    return (
        local_pref,
        -attrs.as_path.path_length(),
        -int(attrs.origin),
        -med,
        not peer.is_ibgp,
        -igp_metric,
        -peer.bgp_id.to_int(),
        -peer.peer_addr.to_int(),
    )


class DecisionStage(RouteTableStage):
    """Chooses the best route per prefix across all peer branches."""

    def __init__(self, name: str,
                 peer_info_fn: Callable[[str], PeerInfo]):
        super().__init__(name)
        self.branches: List[RouteTableStage] = []
        self.peer_info = peer_info_fn
        #: current winner per prefix: net -> route
        self.winners: Dict[IPNet, Any] = {}

    def add_branch(self, branch: RouteTableStage) -> None:
        self.branches.append(branch)
        branch.next_table = self

    def remove_branch(self, branch: RouteTableStage) -> None:
        if branch in self.branches:
            self.branches.remove(branch)

    # -- selection ------------------------------------------------------------
    def _eligible(self, route: Any) -> bool:
        """Paper: "The BGP protocol requires that the next hop is
        resolvable for a route to be used."
        """
        return bool(route.resolvable)

    def _better(self, a: Any, b: Any) -> Any:
        key_a = route_ranking_key(a, self.peer_info(a.peer_id))
        key_b = route_ranking_key(b, self.peer_info(b.peer_id))
        return a if key_a >= key_b else b

    def _elect(self, net: IPNet, exclude: Optional[RouteTableStage] = None
               ) -> Optional[Any]:
        """Query every branch upstream for its route to *net*; pick best."""
        best = None
        for branch in self.branches:
            if branch is exclude:
                continue
            candidate = branch.lookup_route(net, caller=self)
            if candidate is None or not self._eligible(candidate):
                continue
            best = candidate if best is None else self._better(best, candidate)
        return best

    # -- stage messages ----------------------------------------------------
    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        net = route.net
        incumbent = self.winners.get(net)
        if not self._eligible(route):
            return
        if incumbent is None:
            self.winners[net] = route
            if self.next_table is not None:
                self.next_table.add_route(route, caller=self)
            return
        if self._better(route, incumbent) is route:
            self.winners[net] = route
            if self.next_table is not None:
                self.next_table.replace_route(incumbent, route, caller=self)

    def add_routes(self, routes: List[Any], *,
                   caller: Optional[RouteTableStage] = None) -> None:
        # A peering burst is mostly fresh winners: coalesce those into
        # one downstream batch; displacements flush and go out singular,
        # keeping the per-prefix event order of the singular decomposition.
        winners = self.winners
        winners_get = winners.get
        next_table = self.next_table
        if next_table is None:
            for route in routes:
                if self._eligible(route):
                    net = route.net
                    incumbent = winners_get(net)
                    if incumbent is None or self._better(route, incumbent) \
                            is route:
                        winners[net] = route
            return
        fresh: List[Any] = []
        for route in routes:
            if not self._eligible(route):
                continue
            net = route.net
            incumbent = winners_get(net)
            if incumbent is None:
                winners[net] = route
                fresh.append(route)
            elif self._better(route, incumbent) is route:
                if fresh:
                    next_table.add_routes(fresh, caller=self)
                    fresh = []
                winners[net] = route
                next_table.replace_route(incumbent, route, caller=self)
        if fresh:
            next_table.add_routes(fresh, caller=self)

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        net = route.net
        incumbent = self.winners.get(net)
        if incumbent is None or incumbent is not route:
            # A non-winning alternative went away: nothing visible changes.
            # (Identity comparison is right: the winner *is* the annotated
            # object the branch forwarded.)
            return
        replacement = self._elect(net, exclude=caller)
        if replacement is not None:
            self.winners[net] = replacement
            if self.next_table is not None:
                self.next_table.replace_route(incumbent, replacement,
                                              caller=self)
        else:
            del self.winners[net]
            if self.next_table is not None:
                self.next_table.delete_route(incumbent, caller=self)

    def delete_routes(self, routes: List[Any], *,
                      caller: Optional[RouteTableStage] = None) -> None:
        # Deletes of losing alternatives vanish; deleted winners without a
        # surviving alternative coalesce into one downstream batch, and
        # re-elections flush the segment and emit their replace singular.
        winners = self.winners
        winners_get = winners.get
        next_table = self.next_table
        if next_table is None:
            for route in routes:
                if winners_get(route.net) is route:
                    replacement = self._elect(route.net, exclude=caller)
                    if replacement is not None:
                        winners[route.net] = replacement
                    else:
                        del winners[route.net]
            return
        gone: List[Any] = []
        for route in routes:
            net = route.net
            incumbent = winners_get(net)
            if incumbent is None or incumbent is not route:
                continue
            replacement = self._elect(net, exclude=caller)
            if replacement is not None:
                if gone:
                    next_table.delete_routes(gone, caller=self)
                    gone = []
                winners[net] = replacement
                next_table.replace_route(incumbent, replacement,
                                         caller=self)
            else:
                del winners[net]
                gone.append(incumbent)
        if gone:
            next_table.delete_routes(gone, caller=self)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        net = new_route.net
        incumbent = self.winners.get(net)
        if incumbent is old_route:
            # The winner's own branch revised it: re-run the election with
            # the new version against all other branches.
            best_other = self._elect(net, exclude=caller)
            candidates = [c for c in (best_other,
                                      new_route if self._eligible(new_route)
                                      else None) if c is not None]
            if not candidates:
                del self.winners[net]
                if self.next_table is not None:
                    self.next_table.delete_route(incumbent, caller=self)
                return
            winner = candidates[0]
            for candidate in candidates[1:]:
                winner = self._better(winner, candidate)
            self.winners[net] = winner
            if self.next_table is not None:
                self.next_table.replace_route(incumbent, winner, caller=self)
            return
        # Another branch revised a non-winning route: treat as an add
        # (it may now beat the incumbent).
        self.add_route(new_route, caller=caller)

    def lookup_route(self, net: IPNet, *,
                     caller: Optional[RouteTableStage] = None) -> Any:
        """Downstream consumers see only winners (consistency rule 2)."""
        return self.winners.get(net)

    @property
    def route_count(self) -> int:
        return len(self.winners)
