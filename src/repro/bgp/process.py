"""The BGP process: pipeline assembly, XRL target, RIB interaction.

This is the composition root for paper Figure 5: per-peer input branches
(built in :mod:`repro.bgp.peer`) feed the shared decision process, whose
winners flow into the fanout queue with one reader per peer plus one
reader streaming best routes to the RIB over pipelined XRLs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.bgp.attributes import ASPath, Origin, PathAttributeList
from repro.bgp.decision import DecisionStage, PeerInfo
from repro.bgp.fanout import FanoutQueue
from repro.bgp.nexthop import NexthopResolver, NexthopResolverStage
from repro.bgp.peer import PeerConfig, PeerHandler
from repro.bgp.route import BGPRoute
from repro.core.process import Host, XorpProcess
from repro.core.stages import OriginStage, RouteTableStage
from repro.core.txqueue import XrlTransmitQueue
from repro.interfaces import BGP_IDL, COMMON_IDL, POLICY_IDL, RIB_CLIENT_IDL
from repro.net import IPNet, IPv4
from repro.profiler import PROFILER_IDL, Profiler
from repro.xrl import XrlArgs, XrlError
from repro.xrl.error import XrlErrorCode
from repro.xrl.xrl import Xrl

#: policy hook signature: (route, peer_handler) -> route | None
PolicyHook = Callable[[BGPRoute, Any], Optional[BGPRoute]]

LOCAL_PEER_ID = "local"


class BgpProcess(XorpProcess):
    """BGP as a XORP process."""

    process_name = "bgp"

    def __init__(self, host: Host, *, local_as: int = 65000,
                 bgp_id: Optional[IPv4] = None,
                 rib_target: Optional[str] = "rib",
                 window: int = 100,
                 retry_policy=None,
                 debug_cache_stages: bool = False):
        super().__init__(host)
        self.local_as = local_as
        self.bgp_id = bgp_id if bgp_id is not None else IPv4("127.0.0.1")
        self.rib_target = rib_target
        self.debug_cache_stages = debug_cache_stages
        self.xrl = self.create_router("bgp", singleton=True)
        self.profiler = Profiler(self.loop.clock)
        self.prof_ribin = self.profiler.create("route_ribin")
        self._prof_queued_rib = self.profiler.create("route_queued_rib")
        self._prof_sent_rib = self.profiler.create("route_sent_rib")
        #: opt-in retry for the idempotent RIB route stream / queries
        self.retry_policy = retry_policy
        self.txq = XrlTransmitQueue(self.xrl, window=window,
                                    retry=retry_policy)
        self.peers: Dict[str, PeerHandler] = {}

        # Policy hooks; the policy process installs compiled filters here.
        self.import_policy: Optional[PolicyHook] = None
        self.export_policy: Optional[PolicyHook] = None

        # Shared pipeline pieces.
        self.resolver = NexthopResolver(self._query_rib_nexthop)
        self.decision = DecisionStage("decision", self.peer_info)
        self.fanout = FanoutQueue("fanout", self.loop)
        self.decision.set_next(self.fanout)
        self.fanout.add_reader("__rib__", self._rib_deliver, dump=False)
        #: protocol name the RIB currently files each prefix under
        self._rib_protocol: Dict[IPNet, str] = {}

        # Local route origination branch.
        self._local_info = PeerInfo(LOCAL_PEER_ID, is_ibgp=False,
                                    bgp_id=self.bgp_id, peer_addr=IPv4(0))
        self.local_origin = OriginStage("local-origin")
        self._local_resolver_stage = NexthopResolverStage(
            "nexthop-local", self.resolver)
        RouteTableStage.plumb(self.local_origin, self._local_resolver_stage)
        self.decision.add_branch(self._local_resolver_stage)

        self.txq.register_metrics(self.metrics)
        self.metrics.gauge("decision.routes", lambda: self.decision.route_count)
        self.metrics.gauge("fanout.depth", lambda: self.fanout.queue_length)
        self.metrics.gauge("peers", lambda: len(self.peers))

        self.xrl.bind(BGP_IDL, self)
        self.xrl.bind(POLICY_IDL, self)
        self.xrl.bind(RIB_CLIENT_IDL, self)
        self.xrl.bind(PROFILER_IDL, self.profiler)
        self.xrl.bind(COMMON_IDL, self)
        self._rib_down = False
        if rib_target is not None:
            self._register_rib_tables()
            # Watch the RIB's lifetime: when it dies and comes back we
            # must re-seed it (tables, interest, and every best route).
            host.finder.watch(self._rib_watcher_name(), rib_target,
                              self._rib_lifetime)

    # -- peer info for the decision process ------------------------------------
    def peer_info(self, peer_id: str) -> PeerInfo:
        if peer_id == LOCAL_PEER_ID:
            return self._local_info
        handler = self.peers.get(peer_id)
        if handler is None:
            # A withdrawn peering's routes may still be draining; treat as
            # a worst-preference EBGP peer.
            return PeerInfo(peer_id, is_ibgp=False, bgp_id=IPv4.all_ones(),
                            peer_addr=IPv4.all_ones())
        return handler.info

    # -- policy hooks ------------------------------------------------------------
    def apply_import_policy(self, route: BGPRoute,
                            peer: PeerHandler) -> Optional[BGPRoute]:
        if self.import_policy is None:
            return route
        return self.import_policy(route, peer)

    def apply_export_policy(self, route: BGPRoute,
                            peer: PeerHandler) -> Optional[BGPRoute]:
        if self.export_policy is None:
            return route
        return self.export_policy(route, peer)

    # -- RIB interaction ------------------------------------------------------
    def _register_rib_tables(self) -> None:
        send = self.xrl.send
        for protocol in ("ebgp", "ibgp"):
            args = XrlArgs().add_txt("protocol", protocol)
            send(Xrl(self.rib_target, "rib", "1.0",
                     "add_egp_table4", args),
                 retry=self.retry_policy)

    def _rib_watcher_name(self) -> str:
        return f"bgp-ribwatch:{self.xrl.instance_name}"

    def _rib_lifetime(self, event: str, class_name: str,
                      instance: str) -> None:
        from repro.xrl.finder import BIRTH, DEATH

        if event == DEATH:
            self._rib_down = True
        elif event == BIRTH and self._rib_down and self.running:
            self._rib_down = False
            # Deferred: at BIRTH the reborn RIB has registered its
            # component but not yet bound its interfaces.
            self.loop.call_soon(self.resync_rib)

    def resync_rib(self) -> None:
        """Re-seed a restarted RIB (the resync contract in DESIGN.md).

        The new RIB has no ebgp/ibgp tables, no interest registrations,
        and none of our routes: re-create the tables, re-query every
        cached nexthop (which re-registers interest), and replay every
        winner through a fresh dumping fanout reader.
        """
        if self.rib_target is None or not self.running:
            return
        self._rib_protocol.clear()
        self._register_rib_tables()
        self.resolver.requery_all()
        self.fanout.remove_reader("__rib__")
        self.fanout.add_reader("__rib__", self._rib_deliver, dump=True)

    def _query_rib_nexthop(self, nexthop: IPv4, reply_cb) -> None:
        """register_interest4 with the RIB; synthetic answer without one."""
        if self.rib_target is None:
            self.loop.call_soon(
                reply_cb, IPNet(nexthop, 32), True, 0)
            return
        args = (XrlArgs().add_txt("target", self.xrl.class_name)
                .add_ipv4("addr", nexthop))
        xrl = Xrl(self.rib_target, "rib", "1.0", "register_interest4", args)

        def completion(error: XrlError, response: XrlArgs) -> None:
            if not error.is_okay:
                reply_cb(IPNet(nexthop, 32), False, 0)
                return
            reply_cb(response.get_ipv4net("subnet"),
                     response.get_bool("resolves"),
                     response.get_u32("metric"))

        self.xrl.send(xrl, completion, retry=self.retry_policy)

    def _route_protocol(self, route: Any) -> str:
        return "ibgp" if self.peer_info(route.peer_id).is_ibgp else "ebgp"

    def _rib_deliver(self, op: str, route: Any, old_route: Any) -> None:
        """Fanout reader: stream best routes to the RIB (pipelined XRLs)."""
        if self.rib_target is None:
            return
        if op == "add":
            self._rib_send("add", route)
        elif op == "delete":
            self._rib_send("delete", route)
        else:
            old_protocol = self._rib_protocol.get(route.net)
            new_protocol = self._route_protocol(route)
            if old_protocol is not None and old_protocol != new_protocol:
                # The winner moved between the RIB's ebgp/ibgp origin
                # tables; replace decomposes into delete + add.
                self._rib_send("delete", old_route)
                self._rib_send("add", route)
            else:
                self._rib_send("replace", route)

    def _rib_send(self, op: str, route: Any) -> None:
        protocol = self._route_protocol(route)
        net = route.net
        data = f"{op} {net}"
        self._prof_queued_rib.log(data)
        if op == "delete":
            protocol = self._rib_protocol.pop(net, protocol)
            args = (XrlArgs().add_txt("protocol", protocol)
                    .add_ipv4net("net", net))
            xrl = Xrl(self.rib_target, "rib", "1.0", "delete_route4", args)
        else:
            self._rib_protocol[net] = protocol
            metric = route.igp_metric if route.igp_metric is not None else 0
            args = (XrlArgs().add_txt("protocol", protocol)
                    .add_ipv4net("net", net)
                    .add_ipv4("nexthop", route.nexthop)
                    .add_u32("metric", metric)
                    .add_list("policytags", []))
            method = "add_route4" if op == "add" else "replace_route4"
            xrl = Xrl(self.rib_target, "rib", "1.0", method, args)
        # The fanout pump delivers a whole burst within one event-loop
        # turn; the batch hint lets the XRL layer frame those calls as one
        # wire flush (a lone send just defers one turn).
        self.txq.enqueue(xrl, on_sent=lambda: self._prof_sent_rib.log(data),
                         batch=True)

    # -- policy/0.1: the policy process pushes compiled-from-source filters --
    #: XORP's filter ids: 1 = import, 2 = source-match export, 4 = export
    FILTER_IMPORT = 1
    FILTER_SOURCEMATCH = 2
    FILTER_EXPORT = 4

    def xrl_configure_filter(self, filter_id: int, policy_source: str) -> None:
        """Install a policy filter from source text (paper §8.3).

        The source compiles to the shared stack language and runs in the
        appropriate filter-bank stage.  Installing re-uses the existing
        hook points; no other stage is aware policy is active.
        """
        from repro.policy import PolicyResult, PolicyVM, compile_source
        from repro.policy.varrw import BgpVarRW

        program = compile_source(policy_source)
        vm = PolicyVM()

        def hook(route, peer):
            varrw = BgpVarRW(route, neighbor=(
                peer.config.peer_addr if hasattr(peer, "config") else None))
            result = vm.run(program, varrw)
            if result == PolicyResult.REJECT:
                return None
            return varrw.result()

        if filter_id == self.FILTER_IMPORT:
            old_policy, self.import_policy = self.import_policy, hook
            for handler in self.peers.values():
                handler.refilter_imports(old_policy)
        elif filter_id in (self.FILTER_EXPORT, self.FILTER_SOURCEMATCH):
            old_policy, self.export_policy = self.export_policy, hook
            for handler in self.peers.values():
                handler.refilter_exports(old_policy)
        else:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED, f"unknown filter id {filter_id}"
            )

    def xrl_reset_filter(self, filter_id: int) -> None:
        if filter_id == self.FILTER_IMPORT:
            self.import_policy = None
        elif filter_id in (self.FILTER_EXPORT, self.FILTER_SOURCEMATCH):
            self.export_policy = None

    # -- rib_client/0.1 ------------------------------------------------------
    def xrl_route_info_invalid4(self, subnet) -> None:
        """The RIB invalidated part of our nexthop cache (§5.2.1)."""
        self.resolver.invalidate(subnet)

    # -- peer management ---------------------------------------------------------
    def add_peer(self, config: PeerConfig) -> PeerHandler:
        if config.peer_id in self.peers:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED,
                f"peer {config.peer_id} already configured",
            )
        handler = PeerHandler(self, config)
        self.peers[config.peer_id] = handler
        return handler

    def remove_peer(self, peer_id: str) -> None:
        handler = self.peers.pop(peer_id, None)
        if handler is not None:
            handler.tear_down()

    def peer(self, peer_id: str) -> PeerHandler:
        handler = self.peers.get(peer_id)
        if handler is None:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED, f"no peer {peer_id}"
            )
        return handler

    # -- bgp/1.0 handlers ----------------------------------------------------
    def xrl_set_local_as(self, **kwargs) -> None:
        self.local_as = kwargs["as"]

    def xrl_get_local_as(self) -> dict:
        return {"as": self.local_as}

    def xrl_set_bgp_id(self, id) -> None:
        self.bgp_id = id
        self._local_info.bgp_id = id

    def xrl_add_peer(self, peer, next_hop, holdtime, **kwargs) -> None:
        config = PeerConfig(peer, kwargs["as"], self.local_as, next_hop,
                            holdtime=holdtime)
        self.add_peer(config)

    def xrl_delete_peer(self, peer) -> None:
        self.remove_peer(str(peer))

    def xrl_enable_peer(self, peer) -> None:
        self.peer(str(peer)).enable()

    def xrl_disable_peer(self, peer) -> None:
        self.peer(str(peer)).disable()

    def xrl_originate_route4(self, net, next_hop, unicast) -> None:
        attributes = PathAttributeList(
            origin=Origin.IGP, as_path=ASPath(), nexthop=next_hop)
        route = BGPRoute(net, attributes, peer_id=LOCAL_PEER_ID)
        self.local_origin.originate(route)

    def xrl_withdraw_route4(self, net) -> None:
        if self.local_origin.withdraw_if_present(net) is None:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED, f"no local route for {net}"
            )

    def xrl_get_peer_list(self) -> dict:
        return {"peers": ",".join(sorted(self.peers))}

    def xrl_get_route_count(self) -> dict:
        return {"count": self.decision.route_count}

    # -- common/0.1 -----------------------------------------------------------
    def xrl_get_target_name(self) -> dict:
        return {"name": self.xrl.instance_name}

    def xrl_get_version(self) -> dict:
        return {"version": "repro-bgp/1.0"}

    def xrl_get_status(self) -> dict:
        return {"status": "running" if self.running else "shutdown"}

    def xrl_shutdown(self) -> None:
        self.loop.call_soon(self.shutdown)

    def shutdown(self) -> None:
        for handler in list(self.peers.values()):
            handler.tear_down()
        if self.rib_target is not None:
            self.host.finder.unwatch(self._rib_watcher_name(),
                                     self.rib_target)
        super().shutdown()
