"""Nexthop resolution: the stages and cache of paper §5.1.1 and §5.2.1.

    "The Nexthop Resolver stages talk asynchronously to the RIB to
    discover metrics to the nexthops in BGP's routes. ... Routes are held
    in a queue until the relevant nexthop metrics are received; this
    avoids the need for the Decision Process to wait on asynchronous
    operations."

The shared :class:`NexthopResolver` owns the query client and the cache of
RIB answers; one :class:`NexthopResolverStage` sits on each peer's input
branch and annotates routes with (resolvable, IGP metric) before they
reach the decision process.

Because the RIB guarantees that no returned valid-subnet overlaps another
(§5.2.1), :class:`NexthopCache` is a sorted array searched with bisection
— the "balanced trees for fast route lookup, with attendant performance
advantages" the paper describes.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.stages import RouteTableStage
from repro.net import IPNet, IPv4


class CacheEntry:
    __slots__ = ("subnet", "resolvable", "metric", "users")

    def __init__(self, subnet: IPNet, resolvable: bool, metric: int):
        self.subnet = subnet
        self.resolvable = resolvable
        self.metric = metric
        #: nexthop addresses answered from this entry (for invalidation)
        self.users: Set[int] = set()


class NexthopCache:
    """Non-overlapping valid-subnets, bisect-searchable by address."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._entries: List[CacheEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, addr: IPv4) -> Optional[CacheEntry]:
        value = addr.to_int()
        index = bisect.bisect_right(self._starts, value) - 1
        if index < 0:
            return None
        entry = self._entries[index]
        if entry.subnet.contains_addr(addr):
            return entry
        return None

    def insert(self, subnet: IPNet, resolvable: bool, metric: int) -> CacheEntry:
        entry = CacheEntry(subnet, resolvable, metric)
        start = subnet.first_addr().to_int()
        index = bisect.bisect_left(self._starts, start)
        if (index < len(self._starts) and self._starts[index] == start
                and self._entries[index].subnet == subnet):
            # Refresh in place, keeping users.
            entry.users = self._entries[index].users
            self._entries[index] = entry
            return entry
        self._starts.insert(index, start)
        self._entries.insert(index, entry)
        return entry

    def clear(self) -> List[CacheEntry]:
        """Drop every entry; return them (for re-query after RIB restart)."""
        removed = self._entries
        self._entries = []
        self._starts = []
        return removed

    def invalidate(self, subnet: IPNet) -> List[CacheEntry]:
        """Drop entries overlapping *subnet*; return them."""
        removed = []
        entries = self._entries
        starts = self._starts
        index = 0
        while index < len(entries):
            if entries[index].subnet.overlaps(subnet):
                removed.append(entries.pop(index))
                starts.pop(index)
            else:
                index += 1
        return removed


#: resolver answer callback: (resolvable, igp_metric)
AnswerCallback = Callable[[bool, int], None]
#: XRL query function: (nexthop, reply_cb(subnet, resolvable, metric))
QueryFn = Callable[[IPv4, Callable[[IPNet, bool, int], None]], None]


class NexthopResolver:
    """Shared query client + cache; one per BGP process."""

    def __init__(self, query_fn: QueryFn):
        self.cache = NexthopCache()
        self._query_fn = query_fn
        self._pending: Dict[int, List[AnswerCallback]] = {}
        self._stages: List["NexthopResolverStage"] = []
        self.queries_sent = 0
        self.cache_hits = 0

    def register_stage(self, stage: "NexthopResolverStage") -> None:
        self._stages.append(stage)

    def resolve(self, nexthop: IPv4, callback: AnswerCallback) -> bool:
        """Resolve *nexthop*; True if answered synchronously from cache."""
        entry = self.cache.lookup(nexthop)
        if entry is not None:
            self.cache_hits += 1
            entry.users.add(nexthop.to_int())
            callback(entry.resolvable, entry.metric)
            return True
        key = nexthop.to_int()
        waiters = self._pending.get(key)
        if waiters is not None:
            waiters.append(callback)
            return False
        self._pending[key] = [callback]
        self.queries_sent += 1
        self._query_fn(nexthop, lambda subnet, resolvable, metric:
                       self._answered(nexthop, subnet, resolvable, metric))
        return False

    def lookup_sync(self, nexthop: IPv4) -> Tuple[bool, int]:
        """Cache-only lookup for decision-time queries (no RIB round trip)."""
        entry = self.cache.lookup(nexthop)
        if entry is None:
            return False, 0
        return entry.resolvable, entry.metric

    def _answered(self, nexthop: IPv4, subnet: IPNet, resolvable: bool,
                  metric: int) -> None:
        entry = self.cache.insert(subnet, resolvable, metric)
        entry.users.add(nexthop.to_int())
        for callback in self._pending.pop(nexthop.to_int(), []):
            callback(resolvable, metric)

    def invalidate(self, subnet: IPNet) -> None:
        """RIB cache-invalidation (rib_client XRL): re-query and re-push."""
        removed = self.cache.invalidate(subnet)
        affected: Set[int] = set()
        for entry in removed:
            affected.update(entry.users)
        for nexthop_value in sorted(affected):
            nexthop = IPv4(nexthop_value)
            self.resolve(nexthop, lambda resolvable, metric, nh=nexthop:
                         self._notify_stages(nh, resolvable, metric))

    def requery_all(self) -> None:
        """Flush the cache and re-resolve every nexthop that used it.

        After a RIB restart the old interest registrations are gone, so
        cached answers can never be refreshed; re-querying also
        re-registers interest with the reborn RIB.
        """
        affected: Set[int] = set()
        for entry in self.cache.clear():
            affected.update(entry.users)
        for nexthop_value in sorted(affected):
            nexthop = IPv4(nexthop_value)
            self.resolve(nexthop, lambda resolvable, metric, nh=nexthop:
                         self._notify_stages(nh, resolvable, metric))

    def _notify_stages(self, nexthop: IPv4, resolvable: bool,
                       metric: int) -> None:
        for stage in self._stages:
            stage.reresolve(nexthop, resolvable, metric)


class NexthopResolverStage(RouteTableStage):
    """Annotates routes flowing down one peer branch.

    Holds a route when its nexthop answer is outstanding; guarantees the
    decision process only ever sees annotated routes, in a consistent
    add/delete/replace stream.
    """

    def __init__(self, name: str, resolver: NexthopResolver):
        super().__init__(name)
        self.resolver = resolver
        resolver.register_stage(self)
        #: last annotated version forwarded downstream, by prefix
        self.forwarded: Dict[IPNet, Any] = {}
        #: routes parked awaiting a nexthop answer, by prefix
        self.waiting: Dict[IPNet, Any] = {}
        #: nexthop -> set of prefixes forwarded with that nexthop
        self._nexthop_index: Dict[IPv4, Set[IPNet]] = {}

    # -- bookkeeping --------------------------------------------------------
    def _forward_add(self, route: Any, resolvable: bool, metric: int) -> None:
        annotated = route.annotated(igp_metric=metric, resolvable=resolvable)
        self.forwarded[route.net] = annotated
        self._nexthop_index.setdefault(route.nexthop, set()).add(route.net)
        if self.next_table is not None:
            self.next_table.add_route(annotated, caller=self)

    def _unindex(self, route: Any) -> None:
        nets = self._nexthop_index.get(route.nexthop)
        if nets is not None:
            nets.discard(route.net)
            if not nets:
                del self._nexthop_index[route.nexthop]

    # -- stage messages ---------------------------------------------------
    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        net = route.net
        if net in self.waiting:
            self.waiting[net] = route  # superseded while parked
            return

        def answered(resolvable: bool, metric: int) -> None:
            parked = self.waiting.pop(net, None)
            if parked is None:
                return  # cancelled by a delete while parked
            self._forward_add(parked, resolvable, metric)

        self.waiting[net] = route
        synchronous = self.resolver.resolve(route.nexthop, answered)
        # On a cache hit `answered` already ran; nothing more to do.

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        net = route.net
        if net in self.waiting:
            del self.waiting[net]  # never made it downstream
            return
        annotated = self.forwarded.pop(net, None)
        if annotated is None:
            return  # consistency: nothing to delete downstream
        self._unindex(annotated)
        if self.next_table is not None:
            self.next_table.delete_route(annotated, caller=self)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        net = new_route.net
        if net in self.waiting:
            self.waiting[net] = new_route
            return
        previous = self.forwarded.get(net)
        if previous is None:
            self.add_route(new_route, caller=caller)
            return

        def answered(resolvable: bool, metric: int) -> None:
            parked = self.waiting.pop(net, None)
            if parked is None:
                return
            current = self.forwarded.get(net)
            if current is None:
                self._forward_add(parked, resolvable, metric)
                return
            annotated = parked.annotated(igp_metric=metric,
                                         resolvable=resolvable)
            self._unindex(current)
            self.forwarded[net] = annotated
            self._nexthop_index.setdefault(parked.nexthop, set()).add(net)
            if self.next_table is not None:
                self.next_table.replace_route(current, annotated, caller=self)

        self.waiting[net] = new_route
        self.resolver.resolve(new_route.nexthop, answered)

    def lookup_route(self, net: IPNet, *,
                     caller: Optional[RouteTableStage] = None) -> Any:
        """Consistent with what flowed downstream: the forwarded version."""
        return self.forwarded.get(net)

    # -- RIB invalidation fallout ----------------------------------------------
    def reresolve(self, nexthop: IPv4, resolvable: bool, metric: int) -> None:
        """The IGP answer for *nexthop* changed: re-annotate affected routes.

        "a RIP route change must immediately notify BGP, which must then
        figure out all the BGP routes that might change as a result."
        """
        nets = self._nexthop_index.get(nexthop)
        if not nets:
            return
        forwarded = self.forwarded
        next_table = self.next_table
        for net in list(nets):
            current = forwarded.get(net)
            if current is None:
                continue
            if (current.resolvable == resolvable
                    and current.igp_metric == metric):
                continue
            annotated = current.annotated(igp_metric=metric,
                                          resolvable=resolvable)
            forwarded[net] = annotated
            if next_table is not None:
                next_table.replace_route(current, annotated, caller=self)
