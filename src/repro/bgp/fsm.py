"""The BGP peer finite state machine.

Transport-agnostic: the FSM raises/receives events and calls an *actions*
object for side effects (connect, send, tear down), so the same machine
drives loopback test sessions and simulated-network byte streams.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Optional

from repro.bgp.messages import (
    BGPDecodeError,
    ErrorCode,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.eventloop import EventLoop
from repro.net import IPv4


class BgpState(Enum):
    IDLE = "Idle"
    CONNECT = "Connect"
    ACTIVE = "Active"
    OPENSENT = "OpenSent"
    OPENCONFIRM = "OpenConfirm"
    ESTABLISHED = "Established"


class FsmActions:
    """Side effects the FSM needs from its owner (the peer handler)."""

    def start_connect(self) -> None:
        """Begin a transport connection attempt."""

    def send_message(self, message) -> None:
        """Transmit an encoded BGP message."""

    def drop_connection(self) -> None:
        """Tear down the transport."""

    def session_established(self, peer_open: OpenMessage) -> None:
        """The session reached ESTABLISHED."""

    def session_down(self, reason: str) -> None:
        """The session left ESTABLISHED."""

    def update_received(self, update: UpdateMessage) -> None:
        """An UPDATE arrived in ESTABLISHED."""


class PeerFSM:
    """One peering's state machine (paper Figure 2's per-peer box)."""

    def __init__(self, loop: EventLoop, actions: FsmActions, *,
                 local_as: int, bgp_id: IPv4,
                 peer_as: Optional[int] = None,
                 holdtime: int = 90,
                 connect_retry_secs: float = 5.0,
                 name: str = "peer"):
        self.loop = loop
        self.actions = actions
        self.local_as = local_as
        self.bgp_id = bgp_id
        self.expected_peer_as = peer_as
        self.configured_holdtime = holdtime
        self.connect_retry_secs = connect_retry_secs
        self.name = name
        self.state = BgpState.IDLE
        self.negotiated_holdtime = holdtime
        self.peer_open: Optional[OpenMessage] = None
        self._hold_timer = None
        self._keepalive_timer = None
        self._retry_timer = None
        self.state_transitions = []  # (time, state) history for tests

    # -- state bookkeeping --------------------------------------------------
    def _set_state(self, state: BgpState) -> None:
        previous = self.state
        self.state = state
        self.state_transitions.append((self.loop.now(), state))
        if previous == BgpState.ESTABLISHED and state != BgpState.ESTABLISHED:
            self._stop_session_timers()

    def _stop_session_timers(self) -> None:
        for timer in (self._hold_timer, self._keepalive_timer):
            if timer is not None:
                timer.cancel()
        self._hold_timer = None
        self._keepalive_timer = None

    def _stop_retry_timer(self) -> None:
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None

    # -- administrative events -----------------------------------------------
    def manual_start(self) -> None:
        if self.state != BgpState.IDLE:
            return
        self._set_state(BgpState.CONNECT)
        self.actions.start_connect()

    def manual_stop(self) -> None:
        if self.state == BgpState.ESTABLISHED:
            self.actions.send_message(NotificationMessage(ErrorCode.CEASE))
            self.actions.session_down("administrative stop")
        self._stop_session_timers()
        self._stop_retry_timer()
        self.actions.drop_connection()
        self._set_state(BgpState.IDLE)

    # -- transport events -------------------------------------------------------
    def connection_opened(self) -> None:
        """The transport is up (either direction)."""
        if self.state not in (BgpState.CONNECT, BgpState.ACTIVE):
            return
        self._stop_retry_timer()
        self.actions.send_message(OpenMessage(
            self.local_as, self.configured_holdtime, self.bgp_id))
        self._set_state(BgpState.OPENSENT)

    def connection_failed(self) -> None:
        if self.state == BgpState.IDLE:
            return
        was_established = self.state == BgpState.ESTABLISHED
        if was_established:
            self.actions.session_down("connection lost")
        self.actions.drop_connection()
        self._set_state(BgpState.ACTIVE)
        self._retry_timer = self.loop.call_later(
            self.connect_retry_secs, self._retry, name=f"{self.name}-retry")

    def _retry(self) -> None:
        if self.state == BgpState.ACTIVE:
            self._set_state(BgpState.CONNECT)
            self.actions.start_connect()

    # -- message events -----------------------------------------------------
    def message_received(self, message) -> None:
        if isinstance(message, OpenMessage):
            self._on_open(message)
        elif isinstance(message, KeepaliveMessage):
            self._on_keepalive()
        elif isinstance(message, UpdateMessage):
            self._on_update(message)
        elif isinstance(message, NotificationMessage):
            self._on_notification(message)

    def decode_error(self, error: BGPDecodeError) -> None:
        """A malformed message arrived: notify the peer and reset."""
        self.actions.send_message(
            NotificationMessage(error.code, error.subcode, error.data))
        self._tear_down(f"decode error: {error}")

    def _on_open(self, message: OpenMessage) -> None:
        if self.state != BgpState.OPENSENT:
            # An OPEN in any other state is an FSM error.
            self.actions.send_message(
                NotificationMessage(ErrorCode.FSM_ERROR))
            self._tear_down("OPEN in wrong state")
            return
        if (self.expected_peer_as is not None
                and message.asn != self.expected_peer_as):
            self.actions.send_message(NotificationMessage(
                ErrorCode.OPEN_MESSAGE_ERROR, 2))  # bad peer AS
            self._tear_down(
                f"peer AS {message.asn} != expected {self.expected_peer_as}")
            return
        self.peer_open = message
        self.negotiated_holdtime = min(self.configured_holdtime,
                                       message.holdtime)
        self.actions.send_message(KeepaliveMessage())
        self._set_state(BgpState.OPENCONFIRM)

    def _on_keepalive(self) -> None:
        if self.state == BgpState.OPENCONFIRM:
            self._set_state(BgpState.ESTABLISHED)
            self._start_session_timers()
            self.actions.session_established(self.peer_open)
        elif self.state == BgpState.ESTABLISHED:
            self._restart_hold_timer()

    def _on_update(self, message: UpdateMessage) -> None:
        if self.state != BgpState.ESTABLISHED:
            self.actions.send_message(NotificationMessage(ErrorCode.FSM_ERROR))
            self._tear_down("UPDATE in wrong state")
            return
        self._restart_hold_timer()
        self.actions.update_received(message)

    def _on_notification(self, message: NotificationMessage) -> None:
        self._tear_down(f"peer sent {message!r}", notify=False)

    # -- timers --------------------------------------------------------------
    def _start_session_timers(self) -> None:
        if self.negotiated_holdtime > 0:
            self._hold_timer = self.loop.call_later(
                self.negotiated_holdtime, self._hold_expired,
                name=f"{self.name}-hold")
            keepalive_interval = max(1.0, self.negotiated_holdtime / 3.0)
            self._keepalive_timer = self.loop.call_periodic(
                keepalive_interval, self._send_keepalive,
                name=f"{self.name}-keepalive")

    def _restart_hold_timer(self) -> None:
        if self._hold_timer is not None:
            self._hold_timer.reschedule_after(self.negotiated_holdtime)

    def _send_keepalive(self) -> None:
        if self.state in (BgpState.ESTABLISHED, BgpState.OPENCONFIRM):
            self.actions.send_message(KeepaliveMessage())

    def _hold_expired(self) -> None:
        self.actions.send_message(
            NotificationMessage(ErrorCode.HOLD_TIMER_EXPIRED))
        self._tear_down("hold timer expired", notify=False)

    def _tear_down(self, reason: str, notify: bool = True) -> None:
        if self.state == BgpState.ESTABLISHED:
            self.actions.session_down(reason)
        self._stop_session_timers()
        self.actions.drop_connection()
        self._set_state(BgpState.ACTIVE)
        self._retry_timer = self.loop.call_later(
            self.connect_retry_secs, self._retry, name=f"{self.name}-retry")
