"""Simulated network substrate.

The paper's evaluation ran on a testbed of real routers (a XORP box, a
Cisco 4500, Quagga and MRTD hosts) exchanging real packets.  This package
is the synthetic equivalent: hosts with interfaces, point-to-point links
with latency, a datagram service wired into each router's FEA, reliable
byte-stream channels for BGP sessions, and hop-by-hop packet forwarding
through the simulated FIBs — all on the deterministic simulated clock.
"""

from repro.simnet.network import Link, SimNetwork, SimPacketIO, SimRouter
from repro.simnet.baselines import (
    EventDrivenRouterModel,
    ScannerRouterModel,
)

__all__ = [
    "EventDrivenRouterModel",
    "Link",
    "ScannerRouterModel",
    "SimNetwork",
    "SimPacketIO",
    "SimRouter",
]
